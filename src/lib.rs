//! # ksplice-rs — automatic rebootless kernel updates
//!
//! A complete Rust reproduction of *Ksplice: Automatic Rebootless Kernel
//! Updates* (Arnold & Kaashoek, EuroSys 2009), including every substrate
//! the system needs: an ELF-style object format, an x86-flavoured
//! instruction set, an optimising C-like compiler exhibiting real
//! compiler freedoms, a simulated running kernel (loader, kallsyms,
//! threads, stop_machine), a unified-diff engine, the Ksplice core
//! (pre-post differencing, run-pre matching, hot apply/undo), and the
//! paper's 64-CVE evaluation.
//!
//! This crate is the facade: it re-exports the sub-crates under stable
//! names. See the README for architecture, `DESIGN.md` for the system
//! inventory and per-experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! # Examples
//!
//! ```
//! use ksplice::core::{create_update, ApplyOptions, CreateOptions, Ksplice};
//! use ksplice::kernel::Kernel;
//! use ksplice::lang::{Options, SourceTree};
//!
//! // Boot a (tiny) kernel the way a distributor ships it.
//! let mut tree = SourceTree::new();
//! tree.insert(
//!     "m.kc",
//!     "int check(int fd) {\n    if (fd > 4) {\n        return 0 - 9;\n    }\n    return fd;\n}\n",
//! );
//! let mut kernel = Kernel::boot(&tree, &Options::distro()).unwrap();
//! assert_eq!(kernel.call_function("check", &[4]).unwrap(), 4); // off-by-one
//!
//! // Hot-patch it from an ordinary unified diff. No reboot.
//! let patch = ksplice::patch::make_diff(
//!     "m.kc",
//!     tree.get("m.kc").unwrap(),
//!     "int check(int fd) {\n    if (fd >= 4) {\n        return 0 - 9;\n    }\n    return fd;\n}\n",
//! )
//! .unwrap();
//! let (pack, _) = create_update("fix", &tree, &patch, &CreateOptions::default()).unwrap();
//! Ksplice::new().apply(&mut kernel, &pack, &ApplyOptions::default()).unwrap();
//! assert_eq!(kernel.call_function("check", &[4]).unwrap() as i64, -9);
//! ```

/// K64 instruction set: encode/decode/disassemble, branch and no-op
/// knowledge for run-pre matching.
pub use ksplice_asm as asm;
/// The Ksplice system: differencing, matching, packaging, apply/undo.
pub use ksplice_core as core;
/// The §6 evaluation: base tree, 64-CVE corpus, exploits, stress test.
pub use ksplice_eval as eval;
/// The simulated kernel: memory, loader, kallsyms, VM, stop_machine.
pub use ksplice_kernel as kernel;
/// The `kc` compiler and `kbuild` driver.
pub use ksplice_lang as lang;
/// KELF relocatable objects.
pub use ksplice_object as object;
/// Unified diff parse/apply/generate.
pub use ksplice_patch as patch;
