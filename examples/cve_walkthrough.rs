//! CVE walkthrough: defeat a live exploit with a hot update.
//!
//! Run with: `cargo run --example cve_walkthrough`
//!
//! Reproduces the paper's exploit verification (§6.3): boot the
//! evaluation kernel, demonstrate the CVE-2006-2451 analog (a leftover
//! prctl debug hook grants root), hot-patch it while a stress workload
//! runs, and show the exploit is dead — all without rebooting.

use ksplice::core::{create_update, ApplyOptions, CreateOptions, Ksplice};
use ksplice::eval::{base_tree, corpus, load_stress, run_exploit, run_stress};
use ksplice::kernel::Kernel;
use ksplice::lang::Options;

fn main() {
    let case = corpus()
        .into_iter()
        .find(|c| c.id == "CVE-2006-2451")
        .expect("corpus entry");
    println!("== {} — {} ==\n", case.id, case.summary);

    println!("[1/5] booting the vulnerable kernel...");
    let mut kernel = Kernel::boot(&base_tree(), &Options::distro()).expect("boot");
    let stress = load_stress(&mut kernel).expect("stress module");

    println!("[2/5] running the exploit as an unprivileged task...");
    let worked = run_exploit(&mut kernel, &case) == Some(true);
    println!(
        "      uid 1000 -> uid 0 via prctl(99): {}",
        if worked { "EXPLOIT SUCCEEDS" } else { "failed" }
    );
    assert!(worked, "the base kernel must be vulnerable");

    println!("[3/5] creating and applying the hot update...");
    let (pack, _) = create_update(
        case.id,
        &base_tree(),
        &case.patch_text(),
        &CreateOptions::default(),
    )
    .expect("create");
    let mut ks = Ksplice::new();
    ks.apply(&mut kernel, &pack, &ApplyOptions::default())
        .expect("apply");
    println!(
        "      {} function(s) replaced; pause {:?}",
        pack.replaced_fn_count(),
        kernel.last_stop_machine.unwrap()
    );

    println!(
        "[4/5] stress-testing the patched kernel ({} syscall rounds)...",
        25
    );
    run_stress(&mut kernel, stress, 25).expect("stress must pass");
    println!("      all invariants hold; {} oopses", kernel.oopses.len());

    println!("[5/5] re-running the exploit...");
    let worked = run_exploit(&mut kernel, &case) == Some(true);
    println!(
        "      uid 1000 -> uid 0 via prctl(99): {}",
        if worked {
            "still succeeds!?"
        } else {
            "DEFEATED"
        }
    );
    assert!(!worked);
    println!("\nDone — the vulnerability was closed without a reboot.");
}
