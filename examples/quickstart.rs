//! Quickstart: hot-patch a running kernel from a unified diff.
//!
//! Run with: `cargo run --example quickstart`
//!
//! This walks the paper's §5 command sequence — create an update from a
//! source patch, apply it to the running kernel — against a small live
//! kernel, printing each step.

use ksplice::core::{create_update, ApplyOptions, CreateOptions, Ksplice};
use ksplice::kernel::Kernel;
use ksplice::lang::{Options, SourceTree};
use ksplice::patch::make_diff;

fn main() {
    // A one-file "kernel" with an off-by-one bounds check.
    let src = "int limit = 8;\n\
int table[8];\n\
int store(int i, int v) {\n\
    if (i > limit) {\n\
        return 0 - 22;\n\
    }\n\
    table[i & 7] = v;\n\
    return v;\n\
}\n";
    let mut tree = SourceTree::new();
    tree.insert("kernel/store.kc", src);

    println!("[1/4] booting the kernel (distro build: -O2, monolithic sections)...");
    let mut kernel = Kernel::boot(&tree, &Options::distro()).expect("boot");
    println!(
        "      store(8, 1) = {} (should have been rejected!)",
        kernel.call_function("store", &[8, 1]).unwrap() as i64
    );

    println!("[2/4] ksplice-create: building pre and post trees and diffing object code...");
    let fixed = src.replace("if (i > limit)", "if (i >= limit)");
    let patch = make_diff("kernel/store.kc", src, &fixed).expect("diff");
    print!("{patch}");
    let (pack, _patched_tree) =
        create_update("off-by-one", &tree, &patch, &CreateOptions::default()).expect("create");
    println!(
        "      -> {} function(s) to replace, helper {}B / primary {}B",
        pack.replaced_fn_count(),
        pack.helper_size(),
        pack.primary_size()
    );

    println!("[3/4] ksplice-apply: run-pre matching, safety check, trampolines...");
    let mut ks = Ksplice::new();
    ks.apply(&mut kernel, &pack, &ApplyOptions::default())
        .expect("apply");
    println!(
        "      applied; stop_machine pause: {:?}",
        kernel.last_stop_machine.unwrap()
    );
    println!(
        "      store(8, 1) = {} (fixed, no reboot)",
        kernel.call_function("store", &[8, 1]).unwrap() as i64
    );
    println!(
        "      store(3, 9) = {} (still works)",
        kernel.call_function("store", &[3, 9]).unwrap() as i64
    );

    println!("[4/4] ksplice-undo: restoring the original code...");
    ks.undo(&mut kernel, "off-by-one", &ApplyOptions::default())
        .expect("undo");
    println!(
        "      store(8, 1) = {} (vulnerable again)",
        kernel.call_function("store", &[8, 1]).unwrap() as i64
    );
    println!("Done!");
}
