//! The paper's §6 evaluation, end to end.
//!
//! Run with: `cargo run --release --example evaluation`
//!
//! Boots the 27-unit evaluation kernel once per CVE, hot-patches all 64
//! security vulnerabilities, runs the correctness-checking stress test
//! under each, verifies the four public exploits die, reverses every
//! update, and prints the paper's tables: the headline 56-of-64 /
//! 64-of-64 numbers, Figure 3, Table 1, and the §6.3 statistics.

use ksplice::eval::run_full_evaluation;

fn main() {
    let rounds = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    eprintln!("running all 64 CVEs end to end (stress rounds per CVE: {rounds})...");
    match run_full_evaluation(rounds) {
        Ok(report) => println!("{}", report.render()),
        Err(e) => {
            eprintln!("evaluation failed: {e}");
            std::process::exit(1);
        }
    }
}
