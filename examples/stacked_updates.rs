//! Stacked updates: patching a previously-patched kernel (paper §5.4),
//! then reversing the stack in **any** order.
//!
//! Run with: `cargo run --example stacked_updates`
//!
//! Part 1 stacks two successive hot updates — each created against the
//! previously-patched source, so the second update's run-pre matching
//! matches against the first update's replacement code — and then
//! reverses them in NON-LIFO order: the older update is undone first,
//! while the newer one stays live. The undo re-points the older
//! update's trampoline chain instead of unwinding it.
//!
//! Part 2 shows the safety limit: when a later update still *references
//! code the earlier update introduced* (a new function living only in
//! the earlier update's module), reversing the earlier update out of
//! order would leave dangling call targets. The dependency check
//! refuses with [`UndoError::Entangled`], naming the tying function,
//! and the stack must be unwound LIFO instead.
//!
//! [`UndoError::Entangled`]: ksplice::core::UndoError::Entangled

use ksplice::core::{create_update, ApplyOptions, CreateOptions, Ksplice, Tracer, UndoError};
use ksplice::kernel::Kernel;
use ksplice::lang::{Options, SourceTree};
use ksplice::patch::make_diff;

fn main() {
    part1_non_lifo();
    part2_entangled();
    println!("Done!");
}

/// Two stacked updates to one function, reversed oldest-first.
fn part1_non_lifo() {
    println!("--- part 1: non-LIFO undo re-points the trampoline chain ---");
    let v0 =
        "int policy(int n) {\n    if (n < 0) {\n        return 0 - 22;\n    }\n    return 1;\n}\n";
    let v1 = v0.replace("return 1;", "return 2;");
    let v2 = v1.replace("return 2;", "return 3;");

    let mut tree = SourceTree::new();
    tree.insert("policy.kc", v0);
    let mut kernel = Kernel::boot(&tree, &Options::distro()).expect("boot");
    let mut ks = Ksplice::new();
    println!(
        "booted:          policy(0) = {}",
        kernel.call_function("policy", &[0]).unwrap()
    );

    // Update 1: created against the original source.
    let p1 = make_diff("policy.kc", v0, &v1).unwrap();
    let (pack1, patched_src) =
        create_update("update-1", &tree, &p1, &CreateOptions::default()).unwrap();
    ks.apply(&mut kernel, &pack1, &ApplyOptions::default())
        .unwrap();

    // Update 2: created against the PREVIOUSLY-PATCHED source (§5.4).
    // Its run-pre matching targets update 1's replacement code.
    let p2 = make_diff("policy.kc", &v1, &v2).unwrap();
    let (pack2, _) =
        create_update("update-2", &patched_src, &p2, &CreateOptions::default()).unwrap();
    ks.apply(&mut kernel, &pack2, &ApplyOptions::default())
        .unwrap();
    println!(
        "both updates:    policy(0) = {}",
        kernel.call_function("policy", &[0]).unwrap()
    );

    // NON-LIFO: reverse update 1 *first*, while update 2 is still live.
    // Its patch site is re-pointed to jump straight to update 2's
    // replacement; update 2 inherits the original site's saved bytes.
    let report = ks
        .undo_any_traced(
            &mut kernel,
            "update-1",
            &ApplyOptions::default(),
            &mut Tracer::disabled(),
        )
        .expect("mid-stack undo");
    print!("{}", report.render());
    println!(
        "undo 1 (2 live): policy(0) = {}",
        kernel.call_function("policy", &[0]).unwrap()
    );

    // Now update 2 is the whole stack; undoing it restores the boot code.
    ks.undo_any(&mut kernel, "update-2", &ApplyOptions::default())
        .expect("final undo");
    println!(
        "undo 2:          policy(0) = {}",
        kernel.call_function("policy", &[0]).unwrap()
    );
}

/// A later update calling a function the earlier one introduced cannot
/// outlive it: the reversal is refused as entangled.
fn part2_entangled() {
    println!("--- part 2: entangled reversals are refused by the dependency check ---");
    // `audit` is deliberately loop-heavy so the optimiser cannot inline
    // it — the call from `policy` must survive as a real cross-module
    // reference for the updates to be genuinely entangled.
    let audit = "int audit(int x) {\n    int i;\n    int s;\n    s = x;\n    \
for (i = 0; i < 3; i = i + 1) {\n        s = s + i;\n    }\n    return s;\n}\n";
    let v0 = "int policy(int x) {\n    return x + 1;\n}\n";
    let v1 = format!("{audit}int policy(int x) {{\n    return audit(x) + 1;\n}}\n");
    let v2 = format!("{audit}int policy(int x) {{\n    return audit(x) + 2;\n}}\n");

    let mut tree = SourceTree::new();
    tree.insert("policy.kc", v0);
    let mut kernel = Kernel::boot(&tree, &Options::distro()).expect("boot");
    let mut ks = Ksplice::new();

    // Update A introduces `audit` and makes `policy` call it; update B
    // (created against the patched source) changes `policy` again but
    // still calls `audit` — which exists ONLY in update A's module.
    let pa = make_diff("policy.kc", v0, &v1).unwrap();
    let (pack_a, patched_src) =
        create_update("update-a", &tree, &pa, &CreateOptions::default()).unwrap();
    ks.apply(&mut kernel, &pack_a, &ApplyOptions::default())
        .unwrap();
    let pb = make_diff("policy.kc", &v1, &v2).unwrap();
    let (pack_b, _) =
        create_update("update-b", &patched_src, &pb, &CreateOptions::default()).unwrap();
    ks.apply(&mut kernel, &pack_b, &ApplyOptions::default())
        .unwrap();
    println!(
        "both updates:    policy(3) = {}",
        kernel.call_function("policy", &[3]).unwrap()
    );

    // Reversing A while B is live would leave B's call to `audit`
    // dangling; the dependency check names the tying function.
    match ks.undo_any(&mut kernel, "update-a", &ApplyOptions::default()) {
        Err(UndoError::Entangled {
            id,
            dependent,
            functions,
        }) => println!("refused:         {id} is pinned by {dependent} via {functions:?}"),
        other => panic!("expected Entangled, got {other:?}"),
    }

    // The legal order is LIFO: B first, then A.
    ks.undo_any(&mut kernel, "update-b", &ApplyOptions::default())
        .expect("undo b");
    ks.undo_any(&mut kernel, "update-a", &ApplyOptions::default())
        .expect("undo a");
    println!(
        "both reversed:   policy(3) = {}",
        kernel.call_function("policy", &[3]).unwrap()
    );
}
