//! Stacked updates: patching a previously-patched kernel (paper §5.4).
//!
//! Run with: `cargo run --example stacked_updates`
//!
//! Applies two successive hot updates — the second created against the
//! previously-patched source — then reverses them in LIFO order. The
//! second update's run-pre matching matches against the first update's
//! replacement code in the primary module, exactly as §5.4 describes.

use ksplice::core::{create_update, ApplyOptions, CreateOptions, Ksplice};
use ksplice::kernel::Kernel;
use ksplice::lang::{Options, SourceTree};
use ksplice::patch::make_diff;

fn main() {
    let v0 =
        "int policy(int n) {\n    if (n < 0) {\n        return 0 - 22;\n    }\n    return 1;\n}\n";
    let v1 = v0.replace("return 1;", "return 2;");
    let v2 = v1.replace("return 2;", "return 3;");

    let mut tree = SourceTree::new();
    tree.insert("policy.kc", v0);
    let mut kernel = Kernel::boot(&tree, &Options::distro()).expect("boot");
    let mut ks = Ksplice::new();
    println!(
        "booted:        policy(0) = {}",
        kernel.call_function("policy", &[0]).unwrap()
    );

    // Update 1: created against the original source.
    let p1 = make_diff("policy.kc", v0, &v1).unwrap();
    let (pack1, patched_src) =
        create_update("update-1", &tree, &p1, &CreateOptions::default()).unwrap();
    ks.apply(&mut kernel, &pack1, &ApplyOptions::default())
        .unwrap();
    println!(
        "after update1: policy(0) = {}",
        kernel.call_function("policy", &[0]).unwrap()
    );

    // Update 2: created against the PREVIOUSLY-PATCHED source (§5.4).
    // Its run-pre matching targets update 1's replacement code.
    let p2 = make_diff("policy.kc", &v1, &v2).unwrap();
    let (pack2, _) =
        create_update("update-2", &patched_src, &p2, &CreateOptions::default()).unwrap();
    ks.apply(&mut kernel, &pack2, &ApplyOptions::default())
        .unwrap();
    println!(
        "after update2: policy(0) = {}",
        kernel.call_function("policy", &[0]).unwrap()
    );

    // Undo is strictly LIFO: update 1 is pinned while update 2 is live.
    let denied = ks.undo(&mut kernel, "update-1", &ApplyOptions::default());
    println!(
        "undo update-1 while update-2 live: {}",
        denied.err().map(|e| e.to_string()).unwrap_or_default()
    );

    ks.undo(&mut kernel, "update-2", &ApplyOptions::default())
        .unwrap();
    println!(
        "after undo 2:  policy(0) = {}",
        kernel.call_function("policy", &[0]).unwrap()
    );
    ks.undo(&mut kernel, "update-1", &ApplyOptions::default())
        .unwrap();
    println!(
        "after undo 1:  policy(0) = {}",
        kernel.call_function("policy", &[0]).unwrap()
    );
    println!("Done!");
}
