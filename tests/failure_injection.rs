//! Failure injection: every abort path leaves the kernel untouched.

use ksplice::core::{create_update, ApplyError, ApplyOptions, CreateOptions, Ksplice, UpdatePack};
use ksplice::kernel::Kernel;
use ksplice::lang::{Options, SourceTree};
use ksplice::patch::make_diff;

fn simple_tree() -> SourceTree {
    let mut t = SourceTree::new();
    t.insert(
        "m.kc",
        "int guard(int x) {\n    if (x > 10) {\n        return 0 - 1;\n    }\n    return x;\n}\n",
    );
    t
}

fn simple_pack(id: &str) -> UpdatePack {
    let tree = simple_tree();
    let patch = make_diff(
        "m.kc",
        tree.get("m.kc").unwrap(),
        "int guard(int x) {\n    if (x >= 10) {\n        return 0 - 1;\n    }\n    return x;\n}\n",
    )
    .unwrap();
    create_update(id, &tree, &patch, &CreateOptions::default())
        .unwrap()
        .0
}

#[test]
fn corrupted_pack_bytes_rejected() {
    let pack = simple_pack("x");
    let bytes = pack.to_bytes();
    assert!(UpdatePack::parse(&bytes).is_ok());
    // Header corruption.
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert!(UpdatePack::parse(&bad).is_err());
    // Every truncation fails cleanly.
    for cut in [1, bytes.len() / 2, bytes.len() - 1] {
        assert!(UpdatePack::parse(&bytes[..cut]).is_err());
    }
}

#[test]
fn apply_to_unrelated_kernel_aborts_without_damage() {
    let pack = simple_pack("x");
    // A kernel that has no `guard` at all.
    let mut other = SourceTree::new();
    other.insert("n.kc", "int different() {\n    return 5;\n}\n");
    let mut kernel = Kernel::boot(&other, &Options::distro()).unwrap();
    let before_regions = kernel.mem.regions().len();
    let err = Ksplice::new()
        .apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap_err();
    assert!(matches!(err, ApplyError::Match(_)), "{err}");
    // All helper/primary regions rolled back.
    assert_eq!(kernel.mem.regions().len(), before_regions);
    assert!(kernel.modules.iter().all(|m| !m.name.contains("ksplice")));
}

#[test]
fn failing_apply_hook_rolls_back_trampolines() {
    let tree = simple_tree();
    let mut kernel = Kernel::boot(&tree, &Options::distro()).unwrap();
    // Custom code whose apply hook reports failure.
    let patched =
        "int guard(int x) {\n    if (x >= 10) {\n        return 0 - 1;\n    }\n    return x;\n}\n\
int bad_hook() {\n    return 7;\n}\n\
ksplice_apply(bad_hook);\n";
    let patch = make_diff("m.kc", tree.get("m.kc").unwrap(), patched).unwrap();
    let (pack, _) = create_update("hooked", &tree, &patch, &CreateOptions::default()).unwrap();
    let err = Ksplice::new()
        .apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap_err();
    assert!(matches!(err, ApplyError::Hook { .. }), "{err}");
    // The trampoline was rolled back: old behaviour intact.
    assert_eq!(kernel.call_function("guard", &[10]).unwrap(), 10);
}

#[test]
fn undo_is_idempotent_and_ordered() {
    let tree = simple_tree();
    let mut kernel = Kernel::boot(&tree, &Options::distro()).unwrap();
    let pack = simple_pack("only");
    let mut ks = Ksplice::new();
    ks.apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap();
    ks.undo(&mut kernel, "only", &ApplyOptions::default())
        .unwrap();
    // Second undo fails cleanly.
    assert!(ks
        .undo(&mut kernel, "only", &ApplyOptions::default())
        .is_err());
    // Unknown id fails cleanly.
    assert!(ks
        .undo(&mut kernel, "nope", &ApplyOptions::default())
        .is_err());
    // The kernel still works and can be re-patched.
    assert_eq!(kernel.call_function("guard", &[10]).unwrap(), 10);
    ks.apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap();
    assert_eq!(kernel.call_function("guard", &[10]).unwrap() as i64, -1);
}

#[test]
fn unresolvable_replacement_reference_aborts() {
    // The patch makes the replacement call a function that exists in the
    // post tree build... but we sabotage the pack so the symbol cannot
    // resolve in the running kernel.
    let tree = simple_tree();
    let mut kernel = Kernel::boot(&tree, &Options::distro()).unwrap();
    let mut pack = simple_pack("sab");
    // Inject a relocation against a nonexistent symbol into the
    // replacement code (the function itself has none — it is pure
    // register arithmetic — so add one).
    let primary = &mut pack.units[0].primary;
    let idx = primary.add_symbol(ksplice::object::Symbol::undefined(
        "no_such_symbol_anywhere",
    ));
    let (sec_idx, _) = primary
        .section_by_name(".text.guard")
        .expect("replacement section");
    primary.sections[sec_idx]
        .relocs
        .push(ksplice::object::Reloc {
            offset: 2,
            kind: ksplice::object::RelocKind::Abs64,
            symbol: idx,
            addend: 0,
        });
    let err = Ksplice::new()
        .apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap_err();
    assert!(
        matches!(err, ApplyError::Unresolved { .. } | ApplyError::Link(_)),
        "{err}"
    );
    assert_eq!(kernel.call_function("guard", &[10]).unwrap(), 10);
}

#[test]
fn corrupted_run_text_detected_by_matching() {
    let tree = simple_tree();
    let mut kernel = Kernel::boot(&tree, &Options::distro()).unwrap();
    // A rootkit-style in-place modification of the running function.
    let addr = kernel.syms.lookup_global("guard").unwrap().addr;
    let mut byte = kernel.mem.peek(addr + 9, 1).unwrap()[0];
    byte ^= 0x01;
    kernel.mem.poke(addr + 9, &[byte]).unwrap();
    let pack = simple_pack("tamper");
    let err = Ksplice::new()
        .apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap_err();
    assert!(matches!(err, ApplyError::Match(_)), "{err}");
}
