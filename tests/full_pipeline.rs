//! Cross-crate integration: the whole system through the facade crate.

use ksplice::core::{create_update, ApplyOptions, CreateOptions, Ksplice};
use ksplice::eval::{base_tree, corpus, load_stress, spawn_stress};
use ksplice::kernel::{Kernel, ThreadState};
use ksplice::lang::{Options, SourceTree};
use ksplice::patch::make_diff;

#[test]
fn update_applies_while_stress_workload_is_running() {
    // The paper's operational claim: updates land on a *busy* kernel with
    // only a sub-millisecond pause; running work continues unharmed.
    let mut kernel = Kernel::boot(&base_tree(), &Options::distro()).unwrap();
    let stress = load_stress(&mut kernel).unwrap();
    let tid = spawn_stress(&mut kernel, stress, 60).unwrap();
    kernel.run(20_000); // mid-workload

    let case = corpus()
        .into_iter()
        .find(|c| c.id == "CVE-2005-4639")
        .unwrap();
    let (pack, _) = create_update(
        case.id,
        &base_tree(),
        &case.patch_text(),
        &CreateOptions::default(),
    )
    .unwrap();
    let mut ks = Ksplice::new();
    ks.apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap();

    // The workload finishes cleanly on the patched kernel.
    while !matches!(kernel.thread(tid).unwrap().state, ThreadState::Exited(_)) {
        kernel.run(10_000_000);
    }
    assert_eq!(kernel.thread(tid).unwrap().state, ThreadState::Exited(0));
    assert!(kernel.oopses.is_empty(), "{:?}", kernel.oopses);
}

#[test]
fn multi_unit_patch_replaces_functions_in_both_units() {
    let base = base_tree();
    let mut kernel = Kernel::boot(&base, &Options::distro()).unwrap();
    // One patch touching two subsystems at once.
    let d1 = make_diff(
        "drivers/dst.kc",
        base.get("drivers/dst.kc").unwrap(),
        &base
            .get("drivers/dst.kc")
            .unwrap()
            .replace("freq > 2150", "freq > 2100"),
    )
    .unwrap();
    let d2 = make_diff(
        "net/igmp.kc",
        base.get("net/igmp.kc").unwrap(),
        &base
            .get("net/igmp.kc")
            .unwrap()
            .replace("return 0 - 105;", "return 0 - 12;"),
    )
    .unwrap();
    let patch = format!("{d1}{d2}");
    let (pack, _) = create_update("multi", &base, &patch, &CreateOptions::default()).unwrap();
    assert_eq!(pack.units.len(), 2);
    let mut ks = Ksplice::new();
    ks.apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap();
    assert_eq!(
        kernel.call_function("dst_attach", &[2120]).unwrap() as i64,
        -22
    );
    ks.undo(&mut kernel, "multi", &ApplyOptions::default())
        .unwrap();
    assert!(kernel.call_function("dst_attach", &[2120]).unwrap() as i64 > 0);
}

#[test]
fn patched_kernel_survives_many_syscall_rounds() {
    let mut kernel = Kernel::boot(&base_tree(), &Options::distro()).unwrap();
    let stress = load_stress(&mut kernel).unwrap();
    let case = corpus()
        .into_iter()
        .find(|c| c.id == "CVE-2008-0600")
        .unwrap(); // the big fs rework
    let (pack, _) = create_update(
        case.id,
        &base_tree(),
        &case.patch_text(),
        &CreateOptions::default(),
    )
    .unwrap();
    Ksplice::new()
        .apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap();
    ksplice::eval::run_stress(&mut kernel, stress, 40).unwrap();
}

#[test]
fn readme_style_minimal_flow() {
    let mut tree = SourceTree::new();
    tree.insert(
        "m.kc",
        "int greet() {\n    printk(\"hello from v1\");\n    return 1;\n}\n",
    );
    let mut kernel = Kernel::boot(&tree, &Options::distro()).unwrap();
    kernel.call_function("greet", &[]).unwrap();
    let patch = make_diff(
        "m.kc",
        tree.get("m.kc").unwrap(),
        "int greet() {\n    printk(\"hello from v2\");\n    return 2;\n}\n",
    )
    .unwrap();
    let (pack, _) = create_update("v2", &tree, &patch, &CreateOptions::default()).unwrap();
    Ksplice::new()
        .apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap();
    assert_eq!(kernel.call_function("greet", &[]).unwrap(), 2);
    assert_eq!(kernel.klog, vec!["hello from v1", "hello from v2"]);
}
