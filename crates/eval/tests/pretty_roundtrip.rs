//! Every `.kc` unit in the base tree must round-trip through the
//! canonical pretty-printer: `pretty(parse(src))` is a fixpoint, and the
//! canonicalized tree still compiles to a bootable kernel. The fuzzer
//! mutates canonical trees, so this is its ground truth.

use ksplice_eval::base_tree;
use ksplice_lang::{parse_unit, pretty_unit, Options, SourceTree};

#[test]
fn base_tree_pretty_is_fixpoint_and_compiles() {
    let base = base_tree();
    let mut canon = SourceTree::new();
    for (path, src) in base.iter() {
        if !path.ends_with(".kc") {
            canon.insert(path, src);
            continue;
        }
        let unit = parse_unit(path, src).unwrap_or_else(|e| panic!("{path}: parse: {e}"));
        let printed = pretty_unit(&unit);
        let reparsed =
            parse_unit(path, &printed).unwrap_or_else(|e| panic!("{path}: reparse: {e}\n{printed}"));
        assert_eq!(
            pretty_unit(&reparsed),
            printed,
            "{path}: pretty not a fixpoint"
        );
        canon.insert(path, &printed);
    }
    let set = ksplice_lang::build_tree(&canon, &Options::distro())
        .unwrap_or_else(|e| panic!("canonical tree build: {e}"));
    let mut kernel = ksplice_kernel::Kernel::boot_image(&set).expect("canonical tree boots");
    assert_eq!(kernel.call_function("sys_getuid", &[]).ok(), Some(0));
}
