//! Chaos sweep: seeded fault schedules against real corpus updates.
//!
//! For a corpus subset, every schedule in the sweep arms a random
//! combination of fault-injection sites (stack-busy windows, module-load
//! failures, text corruption, step jitter) plus a random retry policy,
//! then applies the real CVE update to a freshly booted kernel. The
//! invariant under test is the paper's §5 safety contract, mechanised:
//! **every outcome is a clean success or a clean abort** — a live,
//! working update, or an error with the kernel's mapped text
//! byte-identical to its pre-apply state. Never a half-applied update.
//!
//! All randomness is a pure function of the schedule seed, so a failing
//! schedule replays exactly. The smoke test (`chaos_smoke_fixed_seed`,
//! run by CI) covers 3 CVEs with a fixed seed; the full sweep runs 48
//! schedules. With `--nocapture`, the sweep prints the fault-site ×
//! outcome table EXPERIMENTS.md records.

use ksplice_core::trace::{RingSink, Tracer};
use ksplice_core::{
    ApplyOptions, BuildCache, HealthProbe, Ksplice, LifecycleError, RetryPolicy, SmpConfig,
    UpdateManager, UpdatePack, UpdateState, WatchPolicy,
};
use ksplice_eval::{base_tree, corpus, Cve};
use ksplice_kernel::{Fault, Kernel};
use ksplice_lang::{build_tree_cached, Options};
use ksplice_object::ObjectSet;

/// xorshift64* — tiny deterministic PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The corpus subset the sweep runs against: small, exploit-bearing and
/// multi-unit cases so every pipeline stage sees faults.
const SUBSET: [&str; 3] = ["CVE-2006-2451", "CVE-2008-0600", "CVE-2006-2934"];

struct Fixture {
    image: ObjectSet,
    packs: Vec<(&'static str, UpdatePack)>,
}

fn fixture() -> Fixture {
    let base = base_tree();
    let cache = BuildCache::new();
    let (image, _) = build_tree_cached(&base, &Options::distro(), &cache).unwrap();
    let cases = corpus();
    let packs = SUBSET
        .iter()
        .map(|id| {
            let case: &Cve = cases.iter().find(|c| c.id == *id).unwrap();
            let opts = ksplice_core::CreateOptions {
                accept_data_changes: case.needs_custom_code(),
                ..Default::default()
            };
            let patch = if case.needs_custom_code() {
                case.full_patch_text()
            } else {
                case.patch_text()
            };
            let (pack, _) = ksplice_core::create_update_cached_traced(
                case.id,
                &base,
                &patch,
                &opts,
                &cache,
                &mut Tracer::disabled(),
            )
            .unwrap();
            (case.id, pack)
        })
        .collect();
    Fixture { image, packs }
}

/// The SMP topology the suite runs under: `KSPLICE_SMP_CPUS` (CI's
/// smoke matrix sets 1, 2, 4), defaulting to the uniprocessor. The §5
/// clean-success / clean-abort contract must hold at every N.
fn smp_from_env() -> SmpConfig {
    match std::env::var("KSPLICE_SMP_CPUS") {
        Ok(v) => SmpConfig::with_cpus(v.parse().unwrap_or(1)),
        Err(_) => SmpConfig::default(),
    }
}

/// One armed schedule, described for the summary table.
struct Schedule {
    faults: Vec<Fault>,
    policy: RetryPolicy,
}

/// Draws the fault schedule for one seed: one to three sites, arming
/// counts sized so both recovery (windows < attempts) and abandonment
/// (windows ≥ attempts) happen across the sweep.
fn draw_schedule(rng: &mut Rng) -> Schedule {
    let attempts = 2 + rng.below(4) as u32;
    let delay = 100 + rng.below(1_500);
    let policy = match rng.below(3) {
        0 => RetryPolicy::fixed(attempts, delay),
        1 => RetryPolicy::exponential(attempts, delay, delay * 4),
        _ => RetryPolicy::exponential(attempts, delay, delay * 8).with_jitter(15, rng.next()),
    }
    .with_cooldown(rng.below(2) * 1_000);
    let mut faults = Vec::new();
    for _ in 0..1 + rng.below(2) {
        faults.push(match rng.below(4) {
            0 => Fault::StackBusy {
                windows: 1 + rng.below(attempts as u64 + 2) as u32,
            },
            1 => Fault::ModuleLoad {
                count: 1 + rng.below(2) as u32,
            },
            2 => Fault::CorruptText { addr: None },
            _ => Fault::StepJitter {
                max_steps: 1 + rng.below(300),
            },
        });
    }
    Schedule { faults, policy }
}

/// Applies one pack under one schedule and enforces the clean-success /
/// clean-abort invariant. Returns `(outcome, attempts)` for the table.
fn run_schedule(
    image: &ObjectSet,
    id: &str,
    pack: &UpdatePack,
    seed: u64,
    schedule: &Schedule,
) -> (&'static str, u32) {
    let mut kernel = Kernel::boot_image(image).unwrap();
    let smp = smp_from_env();
    if smp.cpus > 1 {
        kernel.configure_smp(smp.clone());
    }
    kernel.faults.reseed(seed);
    for fault in &schedule.faults {
        // Arming can itself fail only for corrupt-text on an empty
        // text map, which a booted kernel never has.
        kernel.arm_fault(*fault).unwrap();
    }

    // The reference point for the clean-abort check: the kernel as the
    // apply finds it, armed faults (including the flipped byte) and all.
    let text_before = kernel.mem.text_checksum();

    let ring = RingSink::new(512);
    let events = ring.handle();
    let mut tracer = Tracer::new().with_sink(Box::new(ring));
    let mut ks = Ksplice::new();
    let opts = ApplyOptions {
        retry: schedule.policy.clone(),
        smp,
    };
    match ks.apply_traced(&mut kernel, pack, &opts, &mut tracer) {
        Ok(report) => {
            // Clean success: the update is live and the kernel still
            // schedules, syscalls and runs threads.
            assert_eq!(ks.live_updates().count(), 1, "seed {seed} {id}");
            assert!(report.attempts >= 1 && report.attempts <= schedule.policy.max_attempts);
            kernel.run(5_000);
            assert!(
                kernel.oopses.is_empty(),
                "seed {seed} {id}: oops after clean success: {:?}",
                kernel.oopses
            );
            ("success", report.attempts)
        }
        Err(err) => {
            // Clean abort: byte-identical text, no live update, and the
            // trace carries the checksum-verified rollback.
            assert_eq!(
                kernel.mem.text_checksum(),
                text_before,
                "seed {seed} {id}: abort left text modified ({err})"
            );
            assert_eq!(ks.live_updates().count(), 0, "seed {seed} {id}");
            let verified = events.named("apply.rollback_verified");
            assert!(!verified.is_empty(), "seed {seed} {id}: no rollback event");
            assert!(
                verified
                    .iter()
                    .all(|e| e.field("restored").and_then(|v| v.as_bool()) == Some(true)),
                "seed {seed} {id}: rollback verification failed"
            );
            // Abandonments must carry the per-attempt backoff trail.
            let attempts = events.named("apply.stop_machine").len() as u32;
            if matches!(err, ksplice_core::ApplyError::NotQuiescent { .. }) {
                let delays = events.named("apply.retry_delay");
                assert_eq!(
                    delays.len() as u32 + 1,
                    schedule.policy.max_attempts,
                    "seed {seed} {id}"
                );
                for (i, e) in delays.iter().enumerate() {
                    assert_eq!(
                        e.u64_field("steps"),
                        Some(schedule.policy.delay_steps(i as u32 + 1)),
                        "seed {seed} {id}: delay {i} off schedule"
                    );
                }
            }
            kernel.run(5_000);
            assert!(
                kernel.oopses.is_empty(),
                "seed {seed} {id}: oops after clean abort"
            );
            (abort_kind(&err), attempts)
        }
    }
}

fn abort_kind(err: &ksplice_core::ApplyError) -> &'static str {
    match err {
        ksplice_core::ApplyError::NotQuiescent { .. } => "abort:not-quiescent",
        ksplice_core::ApplyError::Link(_) => "abort:link",
        ksplice_core::ApplyError::Match(_) => "abort:run-pre-mismatch",
        _ => "abort:other",
    }
}

fn fault_sites(schedule: &Schedule) -> String {
    let mut sites: Vec<String> = schedule.faults.iter().map(|f| f.to_string()).collect();
    sites.sort();
    sites.join("+")
}

#[test]
fn chaos_sweep_every_outcome_is_clean() {
    let fx = fixture();
    let mut rows: Vec<(String, &'static str, u32)> = Vec::new();
    for seed in 1..=16u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let schedule = draw_schedule(&mut rng);
        for (id, pack) in &fx.packs {
            let (outcome, attempts) = run_schedule(&fx.image, id, pack, seed, &schedule);
            rows.push((fault_sites(&schedule), outcome, attempts));
        }
    }
    // The sweep must actually exercise both halves of the contract.
    assert!(
        rows.iter().any(|(_, o, _)| *o == "success"),
        "sweep produced no successes"
    );
    assert!(
        rows.iter().any(|(_, o, _)| o.starts_with("abort")),
        "sweep produced no aborts"
    );
    // Fault site × outcome × attempts summary (EXPERIMENTS.md's table;
    // visible with --nocapture).
    let mut counts: std::collections::BTreeMap<(String, &'static str), (usize, u32)> =
        std::collections::BTreeMap::new();
    for (sites, outcome, attempts) in &rows {
        let e = counts.entry((sites.clone(), outcome)).or_insert((0, 0));
        e.0 += 1;
        e.1 = (e.1).max(*attempts);
    }
    println!("| fault schedule | outcome | runs | max attempts |");
    println!("|---|---|---|---|");
    for ((sites, outcome), (n, attempts)) in &counts {
        println!("| `{sites}` | {outcome} | {n} | {attempts} |");
    }
}

/// The CI smoke: one fixed seed per CVE in the subset, exercising the
/// quiescence-abandon, module-load and corruption paths deterministically.
#[test]
fn chaos_smoke_fixed_seed() {
    let fx = fixture();
    let schedules = [
        Schedule {
            faults: vec![Fault::StackBusy { windows: 10 }],
            policy: RetryPolicy::fixed(3, 200),
        },
        Schedule {
            faults: vec![Fault::ModuleLoad { count: 1 }],
            policy: RetryPolicy::default(),
        },
        Schedule {
            faults: vec![
                Fault::StackBusy { windows: 2 },
                Fault::StepJitter { max_steps: 100 },
            ],
            policy: RetryPolicy::exponential(5, 100, 800).with_jitter(10, 7),
        },
    ];
    for (i, ((id, pack), schedule)) in fx.packs.iter().zip(&schedules).enumerate() {
        let (outcome, _) = run_schedule(&fx.image, id, pack, 42 + i as u64, schedule);
        match i {
            0 => assert_eq!(outcome, "abort:not-quiescent"),
            1 => assert_eq!(outcome, "abort:link"),
            _ => assert_eq!(outcome, "success"),
        }
    }
}

/// Watch window under chaos: an injected probe failure during
/// quarantine must trigger the automatic rollback, and the rollback
/// must leave the kernel's text byte-identical to its pre-apply state
/// and healthy enough that a clean re-apply then commits.
#[test]
fn chaos_probe_fault_rolls_back_checksum_clean() {
    let fx = fixture();
    let (id, pack) = &fx.packs[0];
    let watch = WatchPolicy {
        rounds: 3,
        steps_per_round: 500,
    };
    // A probe that is genuinely healthy: the only failure can come from
    // the armed fault, proving the rollback path, not the probe.
    let healthy = || HealthProbe::Custom {
        name: "always-healthy".to_string(),
        check: Box::new(|_k: &mut Kernel| Ok(())),
    };

    let mut kernel = Kernel::boot_image(&fx.image).unwrap();
    let smp = smp_from_env();
    if smp.cpus > 1 {
        kernel.configure_smp(smp);
    }
    kernel.faults.reseed(99);
    kernel.arm_fault(Fault::ProbeFail { count: 1 }).unwrap();
    let text_before = kernel.mem.text_checksum();

    let ring = RingSink::new(512);
    let events = ring.handle();
    let mut tracer = Tracer::new().with_sink(Box::new(ring));
    let mut mgr = UpdateManager::with_watch(watch.clone());
    let mut probes = vec![healthy()];
    let err = mgr
        .apply_watched(&mut kernel, pack, &mut probes, &ApplyOptions::default(), &mut tracer)
        .expect_err("injected probe fault must fail quarantine");
    assert!(matches!(err, LifecycleError::Quarantine { .. }), "{err}");
    assert_eq!(mgr.state(id), Some(UpdateState::RolledBack));
    assert_eq!(
        kernel.mem.text_checksum(),
        text_before,
        "auto-rollback left text modified"
    );
    assert!(!events.named("watch.auto_rollback").is_empty());
    assert!(kernel
        .faults
        .fired()
        .iter()
        .any(|f| f.site == "probe-fail" && f.detail == "always-healthy"));

    // The fault burned itself out; the same pack now applies, survives
    // its full watch window and commits on the very same kernel.
    let mut probes = vec![healthy()];
    mgr.apply_watched(&mut kernel, pack, &mut probes, &ApplyOptions::default(), &mut tracer)
        .expect("clean re-apply after rollback");
    assert_eq!(mgr.state(id), Some(UpdateState::Committed));
    kernel.run(5_000);
    assert!(kernel.oopses.is_empty(), "oops after rollback + re-apply");
}

/// Undo under chaos: a cleanly applied update, reversed while faults
/// are armed, either reverses cleanly or abandons with text intact.
#[test]
fn chaos_undo_is_clean_too() {
    let fx = fixture();
    let (id, pack) = &fx.packs[0];
    for seed in 60..=71u64 {
        let mut rng = Rng::new(seed);
        let mut kernel = Kernel::boot_image(&fx.image).unwrap();
        let mut ks = Ksplice::new();
        ks.apply(&mut kernel, pack, &ApplyOptions::default()).unwrap();

        kernel.faults.reseed(seed);
        let windows = 1 + rng.below(6) as u32;
        kernel.arm_fault(Fault::StackBusy { windows }).unwrap();
        let policy = RetryPolicy::fixed(2 + rng.below(3) as u32, 150);
        let text_before = kernel.mem.text_checksum();

        match ks.undo(&mut kernel, id, &ApplyOptions::with_retry(policy)) {
            Ok(()) => assert_eq!(ks.live_updates().count(), 0, "seed {seed}"),
            Err(e) => {
                assert!(
                    matches!(e, ksplice_core::UndoError::NotQuiescent { .. }),
                    "seed {seed}: {e}"
                );
                assert_eq!(
                    kernel.mem.text_checksum(),
                    text_before,
                    "seed {seed}: undo abandon modified text"
                );
                assert_eq!(ks.live_updates().count(), 1, "seed {seed}");
            }
        }
        kernel.run(5_000);
        assert!(kernel.oopses.is_empty(), "seed {seed}");
    }
}
