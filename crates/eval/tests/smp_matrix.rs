//! The SMP smoke matrix: the update pipeline's contract at N = 1, 2, 4.
//!
//! CI runs the chaos suite once per vCPU count via `KSPLICE_SMP_CPUS`;
//! this test pins the same matrix in-process — one fixed-seed corpus
//! apply/undo cycle per topology — plus the headline SMP claim: at
//! N ≥ 2 a seeded background load produces a *real* nonzero
//! `NotQuiescent` abort rate (threads genuinely caught inside
//! `sys_open` by the §5.2 stack check), and the retry policy drains
//! every abort to a successful capture.

use ksplice_core::trace::Tracer;
use ksplice_core::{ApplyOptions, BuildCache, Ksplice, RetryPolicy, SmpConfig};
use ksplice_eval::{base_tree, corpus, run_quiescence_load, SmpLoadConfig};
use ksplice_kernel::Kernel;
use ksplice_lang::{build_tree_cached, Options};

/// One full apply → exploit-closed → undo cycle per vCPU count. The
/// observable outcome must be identical at every N: same attempt
/// count, same sites, clean undo.
#[test]
fn corpus_cycle_is_invariant_across_the_matrix() {
    let base = base_tree();
    let cache = BuildCache::new();
    let (image, _) = build_tree_cached(&base, &Options::distro(), &cache).unwrap();
    let case = corpus()
        .into_iter()
        .find(|c| c.id == "CVE-2006-2451")
        .unwrap();
    let (pack, _) = ksplice_core::create_update_cached_traced(
        case.id,
        &base,
        &case.patch_text(),
        &ksplice_core::CreateOptions::default(),
        &cache,
        &mut Tracer::disabled(),
    )
    .unwrap();

    let mut outcomes = Vec::new();
    for cpus in [1u32, 2, 4] {
        let mut kernel = Kernel::boot_image(&image).unwrap();
        let smp = SmpConfig::with_cpus(cpus);
        if cpus > 1 {
            kernel.configure_smp(smp.clone());
        }
        let opts = ApplyOptions {
            retry: RetryPolicy::default(),
            smp,
        };
        let mut ks = Ksplice::new();
        let report = ks
            .apply_traced(&mut kernel, &pack, &opts, &mut Tracer::disabled())
            .unwrap_or_else(|e| panic!("cpus={cpus}: apply failed: {e}"));
        outcomes.push((report.attempts, report.sites));
        kernel.run(5_000);
        assert!(kernel.oopses.is_empty(), "cpus={cpus}: oops under load");
        ks.undo_traced(&mut kernel, case.id, &opts, &mut Tracer::disabled())
            .unwrap_or_else(|e| panic!("cpus={cpus}: undo failed: {e}"));
        assert_eq!(ks.live_updates().count(), 0, "cpus={cpus}");
    }
    assert_eq!(outcomes[0], outcomes[1], "N=2 diverged from N=1");
    assert_eq!(outcomes[0], outcomes[2], "N=4 diverged from N=1");
}

/// The acceptance claim: under seeded background load at N = 4, some
/// single-attempt captures genuinely abort `NotQuiescent`, and the
/// retry policy drains every one of them to success. An idle machine
/// captures first try.
#[test]
fn loaded_aborts_are_real_and_drain_to_success() {
    let cfg = SmpLoadConfig {
        load_levels: vec![0, 6],
        probes: 8,
        ..SmpLoadConfig::default()
    };
    let report = run_quiescence_load(&cfg, &mut Tracer::disabled()).expect("sweep");
    assert_eq!(report.cpus, 4);
    assert_eq!(report.rows[0].aborts, 0, "idle machine captures first try");
    assert!(
        report.rows[1].aborts > 0,
        "load 6 never produced a real NotQuiescent abort"
    );
    // Every abort was drained: each probe still ended in a successful
    // window, whose rendezvous pause is on record.
    assert_eq!(report.rows[1].pause_steps.len() as u64, cfg.probes);
    assert!(report.rows[1].pause_steps.iter().all(|&p| p > 0));
    assert!(report.rows[1].drain_attempts > 0);
}
