//! The quiescence-risk acceptance bar: the profiler's top-ranked
//! function (highest on-stack frequency under the stress workload) must
//! be the function contributing the most observed `NotQuiescent`
//! stop_machine aborts, measured with real single-attempt applies under
//! a seeded busy-stack fault plan.

use ksplice_eval::{quiescence_correlation, ProfileConfig};
use ksplice_core::trace::Tracer;

#[test]
fn quiescence_ranking_matches_observed_abort_rates() {
    let cfg = ProfileConfig {
        rounds: 30,
        ..ProfileConfig::default()
    };
    let mut tracer = Tracer::new();
    let corr = quiescence_correlation(&cfg, 60, 3, &mut tracer).unwrap();

    // Every target absorbed its share of the seeded fault plan — the
    // synthetic windows exercise the abandon machinery equally, so they
    // cannot bias the ranking.
    assert!(
        corr.aborts.iter().all(|a| a.synthetic_aborts == 3),
        "{}",
        corr.render()
    );
    // Real aborts were observed at all: the workload genuinely collides
    // with the §5.2 stack check.
    let total_real: u64 = corr.aborts.iter().map(|a| a.real_aborts).sum();
    assert!(total_real > 0, "no real aborts observed\n{}", corr.render());

    // The headline claim: sampled on-stack frequency predicts observed
    // abort contribution.
    assert!(corr.rankings_agree(), "{}", corr.render());

    // The counters the correlation run is expected to leave behind.
    assert!(tracer.counter("profile.aborts_observed") >= total_real);
    assert!(tracer.counter("apply.stop_machine_attempts") > 0);
}
