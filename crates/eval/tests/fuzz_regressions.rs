//! Replays every checked-in fuzz regression case. Each `.fuzz` file under
//! `crates/eval/fuzz-regressions/` is a shrunk mutant from a past campaign
//! pinned to the outcome class the oracle assigned it; a class change here
//! means a pipeline gate or the differential oracle itself regressed.

use std::path::Path;

use ksplice_core::Tracer;
use ksplice_eval::{load_regression_dir, FuzzConfig, FuzzContext, Workload};

#[test]
fn checked_in_regression_cases_replay() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fuzz-regressions");
    let cases = load_regression_dir(&dir).expect("regression dir loads");
    assert!(
        cases.len() >= 3,
        "expected at least 3 checked-in regression cases, found {}",
        cases.len()
    );

    // The corpus was emitted from a syscalls-workload campaign; replay
    // under the same oracle configuration.
    let cfg = FuzzConfig {
        workload: Workload::Syscalls,
        ..FuzzConfig::default()
    };
    let cx = FuzzContext::new(&cfg).expect("fuzz context builds");
    let mut failures = Vec::new();
    for case in &cases {
        if let Err(e) = cx.replay(case, &mut Tracer::disabled()) {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "regression replays failed:\n{}", failures.join("\n"));
}
