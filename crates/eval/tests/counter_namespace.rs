//! The counter-namespace contract: every counter the pipeline emits is
//! registered here, spelled `stage.noun_verb` (three segments only for
//! the fuzz outcome/kill families), and the retired legacy spellings
//! fold into their canonical names via the registry and never reappear.

use ksplice_core::trace::{canonical_name, Tracer, COUNTER_RENAMES};
use ksplice_core::{
    create_update_cached_traced, preflight, ApplyOptions, CreateOptions, HealthProbe, Ksplice,
    UpdateManager, WatchPolicy,
};
use ksplice_eval::{base_tree, run_profile, ProfileConfig};
use ksplice_kernel::Kernel;
use ksplice_lang::{BuildCache, Options};

/// Every counter name the pipeline may emit. A new counter must be added
/// here — and follow the convention — before it ships.
const KNOWN_COUNTERS: &[&str] = &[
    "apply.packs_rejected",
    "apply.relocs_fulfilled",
    "apply.stop_machine_attempts",
    "apply.trampolines_written",
    "apply.updates_committed",
    "bench.create_cold_ms",
    "bench.create_warm_ms",
    "bench.eval_jobs",
    "bench.eval_parallel_ms",
    "bench.eval_serial_ms",
    "bench.fleet_loaded_nodes",
    "bench.fleet_loaded_sweep_ms",
    "bench.fleet_loaded_ticks",
    "bench.fleet_loaded_updates_per_sec",
    "bench.fleet_nodes",
    "bench.fleet_sweep_ms",
    "bench.fleet_ticks",
    "bench.fleet_updates_committed",
    "bench.fleet_updates_per_sec",
    "bench.fuzz_jobs",
    "bench.fuzz_mutants",
    "bench.fuzz_mutants_per_sec",
    "bench.fuzz_parallel_ms",
    "bench.fuzz_serial_ms",
    "bench.profile_ms",
    "bench.rebase_auto_pct_d1",
    "bench.rebase_auto_pct_d2",
    "bench.rebase_auto_pct_d3",
    "bench.rebase_auto_pct_d4",
    "bench.rebase_auto_ported",
    "bench.rebase_cells",
    "bench.rebase_misports",
    "bench.rebase_reused",
    "bench.rebase_sweep_ms",
    "bench.smp_abort_permille",
    "bench.smp_aborts",
    "bench.smp_pause_steps",
    "bench.smp_probes",
    "bench.smp_sweep_ms",
    "bench.vm_block_hit_permille",
    "bench.vm_blocks_decoded",
    "bench.vm_blocks_evicted",
    "bench.vm_icache_flushes",
    "bench.vm_steps_measured",
    "bench.vm_steps_per_sec",
    "build.cache_evictions",
    "build.cache_hits",
    "build.cache_misses",
    "build.units_compiled",
    "create.packs_built",
    "differ.fns_changed",
    "differ.units_changed",
    "eval.cases_run",
    "fleet.msgs_corrupted",
    "fleet.msgs_delivered",
    "fleet.msgs_dropped",
    "fleet.msgs_duplicated",
    "fleet.msgs_healed",
    "fleet.msgs_parked",
    "fleet.msgs_sent",
    "fleet.nodes_committed",
    "fleet.nodes_failed",
    "fleet.nodes_quarantined",
    "fleet.nodes_rolled_back",
    "fleet.packs_rejected",
    "fleet.packs_sent",
    "fleet.reports_received",
    "fleet.resends_sent",
    "fleet.rollbacks_sent",
    "fleet.rollbacks_verified",
    "fleet.stragglers_converged",
    "fleet.waves_halted",
    "fleet.waves_launched",
    "profile.aborts_observed",
    "profile.functions_migrated",
    "profile.samples_recorded",
    "rebase.auto_ported",
    "rebase.hunks_failed",
    "rebase.hunks_ported",
    "rebase.manual_needed",
    "rebase.moves_learned",
    "rebase.packs_reused",
    "rebase.renames_learned",
    "rebase.reuse_attempts",
    "rebase.updates_rejected",
    "runpre.bytes_matched",
    "runpre.nops_skipped",
    "runpre.pcrel_checks",
    "runpre.relocs_recovered",
    "runpre.symbols_recovered",
    "runpre.units_aborted",
    "runpre.units_matched",
    "stream.packs_applied",
    "undo.entangled_refusals",
    "undo.rollbacks_mismatched",
    "undo.sites_repointed",
    "undo.stop_machine_attempts",
    "undo.updates_reversed",
    "watch.probes_failed",
    "watch.rollbacks_triggered",
    "watch.updates_committed",
    "vm.icache_flush",
];

/// Stage prefixes a counter may start with.
const STAGE_PREFIXES: &[&str] = &[
    "create", "differ", "runpre", "apply", "watch", "undo", "stream", "build", "eval", "fuzz",
    "bench", "profile", "vm", "fleet", "rebase",
];

/// `stage.noun_verb` — lowercase segments, an underscore in the tail,
/// and a third segment only for the dynamic fuzz families.
fn conforms(name: &str) -> bool {
    let parts: Vec<&str> = name.split('.').collect();
    let tail_ok = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    };
    match parts.as_slice() {
        [stage, tail] => STAGE_PREFIXES.contains(stage) && tail_ok(tail) && tail.contains('_'),
        [stage, family, class] => {
            *stage == "fuzz" && matches!(*family, "outcome" | "kill") && tail_ok(class)
        }
        _ => false,
    }
}

const PATCH: &str = "\
--- a/fs/open.kc
+++ b/fs/open.kc
@@ -1,3 +1,9 @@
 int sys_open(int ino, int mode) {
     int fd;
+    if (ino < 0 || ino >= 64) {
+        return 0 - 22;
+    }
+    if (mode == 0) {
+        return 0 - 22;
+    }
     for (fd = 0; fd < 32; fd = fd + 1) {
";

#[test]
fn registry_is_consistent() {
    for name in KNOWN_COUNTERS {
        assert!(conforms(name), "registered counter `{name}` breaks the convention");
        assert_eq!(
            canonical_name(name),
            *name,
            "registered counter `{name}` is itself a legacy spelling"
        );
    }
    // The dynamic fuzz families pass too.
    assert!(conforms("fuzz.outcome.pass"));
    assert!(conforms("fuzz.kill.differ"));
    // Every retired spelling folds into a registered canonical name.
    for (legacy, canonical) in COUNTER_RENAMES {
        assert_ne!(legacy, canonical);
        assert_eq!(canonical_name(legacy), *canonical);
        assert!(
            KNOWN_COUNTERS.contains(canonical),
            "rename target `{canonical}` is not registered"
        );
    }
}

#[test]
fn full_lifecycle_emits_only_registered_counters() {
    let mut tracer = Tracer::new();
    let base = base_tree();
    let cache = BuildCache::new();

    // create → preflight → apply → quarantine commit.
    let (pack, _) = create_update_cached_traced(
        "cve-ns",
        &base,
        PATCH,
        &CreateOptions::default(),
        &cache,
        &mut tracer,
    )
    .unwrap();
    let mut kernel = Kernel::boot(&base, &Options::distro()).unwrap();
    let mut mgr = UpdateManager::with_watch(WatchPolicy {
        rounds: 1,
        steps_per_round: 100,
    });
    mgr.apply_watched(
        &mut kernel,
        &pack,
        &mut [],
        &ApplyOptions::default(),
        &mut tracer,
    )
    .unwrap();

    // A failing probe: quarantine rollback, so the undo counters fire.
    let mut kernel2 = Kernel::boot(&base, &Options::distro()).unwrap();
    let mut mgr2 = UpdateManager::with_watch(WatchPolicy {
        rounds: 1,
        steps_per_round: 100,
    });
    let mut probes = [HealthProbe::Custom {
        name: "always-fails".to_string(),
        check: Box::new(|_k: &mut Kernel| Err("synthetic".to_string())),
    }];
    let err = mgr2.apply_watched(
        &mut kernel2,
        &pack,
        &mut probes,
        &ApplyOptions::default(),
        &mut tracer,
    );
    assert!(err.is_err(), "failing probe must quarantine");

    // A preflight reject: an empty pack bounces at the gate.
    let bad = ksplice_core::UpdatePack {
        id: String::new(),
        ..pack.clone()
    };
    assert!(preflight(&Ksplice::new(), &kernel, &bad, &mut tracer).is_err());

    // The profiler's counters ride the same registry.
    run_profile(
        "CVE-2005-1263",
        &ProfileConfig {
            rounds: 5,
            ..ProfileConfig::default()
        },
        &mut tracer,
    )
    .unwrap();

    let counters = tracer.counters();
    assert!(!counters.is_empty());
    let names: Vec<&str> = counters.iter().map(|(name, _)| name).collect();
    for name in &names {
        assert!(
            KNOWN_COUNTERS.contains(name),
            "unregistered counter `{name}` observed"
        );
        assert!(conforms(name), "counter `{name}` breaks the convention");
    }
    // The legacy spellings never surface.
    for (legacy, _) in COUNTER_RENAMES {
        assert!(
            !names.contains(legacy),
            "legacy counter `{legacy}` observed"
        );
    }
    // Spot-check the expected families all fired.
    for expected in [
        "create.packs_built",
        "build.units_compiled",
        "runpre.units_matched",
        "apply.stop_machine_attempts",
        "apply.trampolines_written",
        "apply.packs_rejected",
        "watch.updates_committed",
        "watch.probes_failed",
        "watch.rollbacks_triggered",
        "undo.updates_reversed",
        "profile.samples_recorded",
        "profile.functions_migrated",
    ] {
        assert!(
            names.contains(&expected),
            "expected counter `{expected}` did not fire; got {names:?}"
        );
    }
}
