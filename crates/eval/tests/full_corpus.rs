//! The paper's full evaluation: all 64 CVEs end to end (§6.3).

use ksplice_eval::{run_full_evaluation, VulnClass};

#[test]
fn all_64_cves_hot_patch_successfully() {
    let report = run_full_evaluation(8).expect("evaluation infrastructure");
    println!("{}", report.render());

    // Headline numbers (paper §6.3).
    assert_eq!(report.outcomes.len(), 64);
    assert_eq!(report.applied_total(), 64, "all 64 must apply");
    assert_eq!(
        report.applied_without_new_code(),
        56,
        "56 of 64 with no new code"
    );
    assert!((report.average_custom_lines() - 16.5).abs() < 0.1);

    // Exploits: worked before, dead after (4 of 4).
    let exploit_outcomes: Vec<_> = report
        .outcomes
        .iter()
        .filter(|o| o.exploit_before.is_some())
        .collect();
    assert_eq!(exploit_outcomes.len(), 4);
    for o in exploit_outcomes {
        assert_eq!(o.exploit_before, Some(true), "{}", o.id);
        assert_eq!(o.exploit_after, Some(false), "{}", o.id);
    }

    // No stress-test regressions, every update reversible.
    for o in &report.outcomes {
        assert!(o.stress_ok, "{}: stress failed", o.id);
        assert!(o.undo_ok, "{}: undo failed", o.id);
        assert!(o.replaced_fns > 0 || o.needs_custom_code, "{}", o.id);
        // §5.1: helper (whole units) and primary both ship.
        assert!(o.helper_bytes > 0 && o.primary_bytes > 0, "{}", o.id);
    }

    // Figure 3 shape: most patches are small.
    let fig = report.figure3();
    let small = fig[0].1; // 1–5 lines
    let le15: usize = fig[..3].iter().map(|(_, n)| n).sum();
    assert!(small >= 30, "paper: 35 of 64 within 5 lines; got {small}");
    assert!(le15 >= 45, "paper: 53 of 64 within 15 lines; got {le15}");
    assert_eq!(fig.iter().map(|(_, n)| n).sum::<usize>(), 64);

    // §6.3 statistics.
    assert_eq!(report.corpus_stats.touching_inlined.len(), 20);
    assert_eq!(report.corpus_stats.touching_inline_keyword.len(), 4);
    assert_eq!(report.corpus_stats.touching_ambiguous.len(), 5);
}

#[test]
fn vulnerability_class_mix() {
    let c = ksplice_eval::corpus();
    let p = c
        .iter()
        .filter(|e| e.class == VulnClass::PrivilegeEscalation)
        .count();
    let i = c.len() - p;
    // Paper: about two-thirds privilege escalation, one-third disclosure.
    assert!(p * 10 >= c.len() * 6 && p * 10 <= c.len() * 7, "{p} vs {i}");
}
