//! Job-count and dispatcher determinism for the differential fuzzer.
//!
//! The 200-mutant fixed-seed campaign is the repo's canonical fuzz
//! artifact: its rendered report (verdict lines, class histogram, FNV
//! digest) must be byte-identical whether the campaign runs on one
//! worker or many, and must match `OLD_INTERPRETER_DIGEST` — the digest
//! recorded from the decode-per-step interpreter before the block-cache
//! dispatcher landed. A digest drift here means the cached VM changed
//! an architectural outcome (step counts, oops text, taint verdicts),
//! not just its speed.

use ksplice_core::Tracer;
use ksplice_eval::{run_campaign, FuzzConfig, Workload};

/// FNV-1a digest of the canonical campaign (seed 1, 200 mutants, both
/// workloads) recorded under the pre-block-cache interpreter.
const OLD_INTERPRETER_DIGEST: u64 = 0x4ec6378fa763158d;

fn canonical_config(jobs: usize) -> FuzzConfig {
    FuzzConfig {
        seed: 1,
        mutants: 200,
        jobs,
        workload: Workload::Both,
        ..FuzzConfig::default()
    }
}

#[test]
fn campaign_is_job_count_invariant_and_matches_old_interpreter() {
    let serial = run_campaign(&canonical_config(1), &mut Tracer::disabled())
        .expect("serial campaign");
    let parallel = run_campaign(&canonical_config(8), &mut Tracer::disabled())
        .expect("parallel campaign");

    // Byte-identical reports across job counts, not merely equal
    // histograms: ordering, details and digest all must agree.
    assert_eq!(
        serial.render(),
        parallel.render(),
        "campaign report differs between --jobs 1 and --jobs 8"
    );
    assert_eq!(serial.digest, parallel.digest);

    // And identical to what the decode-per-step interpreter produced.
    assert_eq!(
        serial.digest, OLD_INTERPRETER_DIGEST,
        "block-cache dispatcher changed an architectural outcome:\n{}",
        serial.render()
    );
}

/// The differential oracle now covers N ∈ {1, 2} vCPU schedules. The
/// N = 2 campaign must be deterministic in its own right, and the N = 1
/// smoke digest must stay pinned to the historical uniprocessor value —
/// the `cpus` knob may not perturb campaigns that do not turn it.
#[test]
fn campaign_covers_smp_schedules() {
    let smp_config = |jobs: usize| FuzzConfig {
        seed: 1,
        mutants: 40,
        jobs,
        workload: Workload::Both,
        cpus: 2,
        ..FuzzConfig::default()
    };
    let a = run_campaign(&smp_config(1), &mut Tracer::disabled()).expect("2-vCPU campaign");
    let b = run_campaign(&smp_config(4), &mut Tracer::disabled()).expect("2-vCPU campaign");
    assert_eq!(
        a.render(),
        b.render(),
        "2-vCPU campaign differs between --jobs 1 and --jobs 4"
    );
    assert_eq!(a.digest, b.digest);

    // N = 1 explicit must equal N = 1 default: the knob's off position
    // is byte-identical to the pre-knob fuzzer.
    let up = FuzzConfig {
        seed: 1,
        mutants: 40,
        jobs: 4,
        workload: Workload::Both,
        cpus: 1,
        ..FuzzConfig::default()
    };
    let default_cpus = FuzzConfig {
        seed: 1,
        mutants: 40,
        jobs: 4,
        workload: Workload::Both,
        ..FuzzConfig::default()
    };
    let u = run_campaign(&up, &mut Tracer::disabled()).expect("1-vCPU campaign");
    let d = run_campaign(&default_cpus, &mut Tracer::disabled()).expect("default campaign");
    assert_eq!(u.digest, d.digest);
}
