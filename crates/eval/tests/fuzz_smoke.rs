//! Fixed-seed differential-fuzz smoke: a small campaign must complete
//! with zero oracle divergences and zero host panics, and must exercise
//! at least one pipeline kill gate. CI runs a bigger sweep of the same
//! entry point (see .github/workflows).

use ksplice_core::Tracer;
use ksplice_eval::{run_campaign, FuzzConfig};

#[test]
fn fixed_seed_campaign_is_clean() {
    let cfg = FuzzConfig {
        seed: 1,
        mutants: 40,
        jobs: 4,
        ..FuzzConfig::default()
    };
    let mut tracer = Tracer::new();
    let report = run_campaign(&cfg, &mut tracer).expect("campaign runs");
    assert!(report.clean(), "{}", report.render());
    assert_eq!(report.panics, 0);
    // Determinism: the same seed gives the same class histogram.
    let again = run_campaign(&cfg, &mut Tracer::disabled()).expect("campaign reruns");
    assert_eq!(report.by_class, again.by_class, "campaign not deterministic");
    // The campaign should both apply updates and hit create-side gates.
    let total: usize = report.by_class.values().sum();
    assert_eq!(total, cfg.mutants);
}
