//! Corpus-wide lifecycle acceptance: every CVE passes the pre-flight
//! gate and survives quarantine; failing probes force checksum-clean
//! rollbacks; stacked updates reverse in random non-LIFO orders with
//! the kernel image restored byte-for-byte.

use ksplice_core::{Tracer, WatchPolicy};
use ksplice_eval::{lifecycle_corpus_sweep, non_lifo_reversal_sweep, DISJOINT_STACK};

#[test]
fn every_cve_passes_preflight_and_survives_quarantine() {
    // Short rounds keep the 64-entry sweep fast; the probes still run
    // every round.
    let watch = WatchPolicy {
        rounds: 2,
        steps_per_round: 200,
    };
    let outcomes = lifecycle_corpus_sweep(&watch, &mut Tracer::disabled()).unwrap();
    assert_eq!(outcomes.len(), 64);
    for o in &outcomes {
        assert!(o.preflight_ok, "{}: preflight rejected a good pack", o.id);
        assert!(o.committed, "{}: did not survive quarantine", o.id);
    }
    // The exploit-verified entries also ran the failing-probe leg: the
    // automatic rollback must restore the exact pre-apply text image.
    let rollbacks: Vec<_> = outcomes
        .iter()
        .filter(|o| o.rollback_clean.is_some())
        .collect();
    assert_eq!(rollbacks.len(), 4, "four exploit-verified entries");
    for o in &rollbacks {
        assert_eq!(
            o.rollback_clean,
            Some(true),
            "{}: failing probe did not roll back checksum-clean",
            o.id
        );
    }
}

#[test]
fn random_non_lifo_reversal_orders_restore_the_image() {
    // Distinct seeds exercise distinct reversal orders over the stack of
    // three disjoint updates; each must restore the image byte-for-byte
    // (asserted inside the sweep via both checksums).
    let mut seen = std::collections::BTreeSet::new();
    for seed in 1..=6u64 {
        let order = non_lifo_reversal_sweep(seed).unwrap();
        assert_eq!(order.len(), DISJOINT_STACK.len());
        seen.insert(order);
    }
    assert!(
        seen.len() > 1,
        "six seeds should produce more than one distinct order"
    );
}
