//! The parallel evaluation driver must be a pure wall-clock optimisation:
//! whatever `jobs` is, the rendered report — outcome order, per-CVE
//! verdicts, aggregate statistics — is identical to the serial run.

use ksplice_eval::{default_eval_jobs, run_full_evaluation_jobs};

const ROUNDS: u64 = 2;

/// The rendered report minus wall-clock measurements: the stop_machine
/// pause is real measured time and jitters between *any* two runs
/// (serial or not), so equality is asserted on everything else.
fn stable_render(report: &ksplice_eval::EvalReport) -> String {
    report
        .render()
        .lines()
        .filter(|l| !l.starts_with("max stop_machine pause:"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn parallel_report_matches_serial_report() {
    let serial = run_full_evaluation_jobs(ROUNDS, 1).expect("serial evaluation");
    let parallel = run_full_evaluation_jobs(ROUNDS, 4).expect("parallel evaluation");
    assert_eq!(stable_render(&serial), stable_render(&parallel));
    // Outcome ordering is deterministic: corpus order, not completion order.
    let ids = |r: &ksplice_eval::EvalReport| -> Vec<&str> {
        r.outcomes.iter().map(|o| o.id).collect()
    };
    assert_eq!(ids(&serial), ids(&parallel));
}

#[test]
fn default_jobs_report_matches_serial_report() {
    let serial = run_full_evaluation_jobs(ROUNDS, 1).expect("serial evaluation");
    let auto = run_full_evaluation_jobs(ROUNDS, default_eval_jobs()).expect("auto evaluation");
    assert_eq!(stable_render(&serial), stable_render(&auto));
}

#[test]
fn oversized_job_count_is_clamped_not_fatal() {
    let report = run_full_evaluation_jobs(0, 10_000).expect("evaluation with huge jobs");
    assert_eq!(report.outcomes.len(), 64);
}
