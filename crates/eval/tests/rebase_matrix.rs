//! The rebase acceptance suite: the 64-CVE × 4-drift-level matrix, the
//! checksum property for auto-ported cells, and the negative paths
//! (deleted / split patched functions must refuse loudly, never port
//! into the wrong function).

use ksplice_core::{
    rebase_update, ApplyOptions, BuildCache, Ksplice, RebaseOptions, RebaseStatus, Tracer,
};
use ksplice_eval::{canonical_base_tree, corpus, run_rebase_matrix, RebaseMatrixConfig};
use ksplice_kernel::Kernel;
use ksplice_lang::{
    build_tree_image_cached, generate_drift, DriftLevel, DriftLog, FnFate, Options, SourceTree,
};

/// The full 64 × {D1..D4} sweep: deterministic, ≥80% auto-port at D1,
/// every non-ported cell classified, zero ground-truth violations.
#[test]
fn full_matrix_meets_acceptance() {
    let cfg = RebaseMatrixConfig::default();
    let a = run_rebase_matrix(&cfg, &mut Tracer::disabled()).unwrap();
    let b = run_rebase_matrix(&cfg, &mut Tracer::disabled()).unwrap();
    assert_eq!(a.render(), b.render(), "same seed must give a byte-identical report");
    assert_eq!(a.to_json(), b.to_json());

    assert_eq!(a.cells.len(), 64 * 4);
    let d1 = a.auto_port_rate(DriftLevel::D1);
    assert!(d1 >= 80.0, "D1 auto-port rate {d1:.1}% below the 80% bar\n{}", a.render());

    assert!(a.misports().is_empty(), "ground-truth violations:\n{}", a.render());
    assert!(
        a.unclassified().is_empty(),
        "every non-ported cell must carry a classified reason:\n{}",
        a.render()
    );
    for c in &a.cells {
        if c.status == RebaseStatus::AutoPorted {
            assert!(
                c.verified,
                "{} @ {}: auto-ported without passing the apply+undo gate",
                c.cve, c.level
            );
        } else {
            // Reasons must name the responsible unit (a path-shaped
            // token) — "it failed" is not a classification.
            assert!(
                c.reasons.iter().any(|r| r.contains(".kc") || r.contains(".ks")),
                "{} @ {}: no unit named in {:?}",
                c.cve,
                c.level,
                c.reasons
            );
        }
    }
    // Drift-class attribution covers the structural mutators at D4.
    let classes: Vec<&str> = a.class_stats().iter().map(|(c, _, _)| c.name()).collect();
    for required in ["context-drift", "rename-static", "delete-fn", "split-fn"] {
        assert!(classes.contains(&required), "class {required} never attributed: {classes:?}");
    }
}

fn drifted_for(level: DriftLevel, seed: u64, victims: &[String]) -> (SourceTree, DriftLog) {
    generate_drift(&canonical_base_tree(), level, seed, victims).unwrap()
}

fn all_victims() -> Vec<String> {
    let mut v: Vec<String> = corpus()
        .iter()
        .flat_map(|c| c.edited_fns.iter().map(|f| f.to_string()))
        .collect();
    v.sort();
    v.dedup();
    v
}

/// Satellite: the PR 3 checksum contract extended to rebased packs.
/// For auto-ported cells, applying the *returned* pack to a freshly
/// booted drifted kernel and undoing it restores the text image
/// byte-identical.
#[test]
fn auto_ported_packs_restore_drifted_image_on_undo() {
    let cfg = RebaseMatrixConfig::default();
    let victims = all_victims();
    let cache = BuildCache::new();
    let canon = canonical_base_tree();
    let mut exercised = 0;
    for level in [DriftLevel::D2, DriftLevel::D3] {
        let (drifted, _log) = drifted_for(level, cfg.seed, &victims);
        let (image, _) =
            build_tree_image_cached(&drifted, &Options::distro(), &cache).unwrap();
        for case in corpus().iter().take(12) {
            let patched = if case.needs_custom_code() {
                case.patched_tree_with_custom()
            } else {
                case.patched_tree()
            };
            let patch = ksplice_eval::diff_trees(
                &canon,
                &ksplice_lang::canonicalize_tree(&patched),
            );
            let opts = RebaseOptions {
                create: ksplice_core::CreateOptions {
                    accept_data_changes: case.needs_custom_code(),
                    ..Default::default()
                },
                ..RebaseOptions::default()
            };
            let (report, pack) = rebase_update(
                case.id,
                &canon,
                &patch,
                &drifted,
                &opts,
                &cache,
                &mut Tracer::disabled(),
            )
            .unwrap();
            let Some(pack) = pack else { continue };
            assert_eq!(report.status, RebaseStatus::AutoPorted);
            // Independent re-proof on a fresh kernel, not trusting the
            // pipeline's own verified flag.
            let mut kernel = Kernel::boot_image(&image).unwrap();
            let before = kernel.mem.text_checksum();
            let mut ks = Ksplice::new();
            ks.apply_traced(&mut kernel, &pack, &ApplyOptions::default(), &mut Tracer::disabled())
                .unwrap_or_else(|e| panic!("{} @ {level}: apply: {e}", case.id));
            assert_ne!(
                kernel.mem.text_checksum(),
                before,
                "{} @ {level}: apply must change the text image",
                case.id
            );
            ks.undo_traced(&mut kernel, case.id, &ApplyOptions::default(), &mut Tracer::disabled())
                .unwrap_or_else(|e| panic!("{} @ {level}: undo: {e}", case.id));
            assert_eq!(
                kernel.mem.text_checksum(),
                before,
                "{} @ {level}: undo must restore the drifted image byte-identical",
                case.id
            );
            exercised += 1;
        }
    }
    assert!(exercised >= 8, "only {exercised} auto-ported cells exercised");
}

/// Finds a seed whose D4 drift gives `func` the wanted fate. The delete
/// pass runs before the split pass and a victim is only consumed once,
/// so the split search needs decoys in the pool for the deletes to eat.
fn seed_with_fate(func: &str, want_deleted: bool) -> (u64, SourceTree, DriftLog) {
    let victims: Vec<String> = if want_deleted {
        vec![func.to_string()]
    } else {
        [func, "sys_open", "sock_valid", "roundup4", "note_align", "ino_ok"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    };
    for seed in 0..64 {
        let (tree, log) = drifted_for(DriftLevel::D4, seed, &victims);
        let hit = match log.fate(func) {
            FnFate::Deleted => want_deleted,
            FnFate::Split => !want_deleted,
            FnFate::Present { .. } => false,
        };
        if hit {
            return (seed, tree, log);
        }
    }
    panic!("no seed in 0..64 {} {func}", if want_deleted { "deletes" } else { "splits" });
}

fn rebase_cve(id: &str, drifted: &SourceTree) -> ksplice_core::RebaseReport {
    let canon = canonical_base_tree();
    let case = corpus().into_iter().find(|c| c.id == id).unwrap();
    let patch =
        ksplice_eval::diff_trees(&canon, &ksplice_lang::canonicalize_tree(&case.patched_tree()));
    let (report, _) = rebase_update(
        case.id,
        &canon,
        &patch,
        drifted,
        &RebaseOptions::default(),
        &BuildCache::new(),
        &mut Tracer::disabled(),
    )
    .unwrap();
    report
}

/// Satellite negative path: drift that deletes the patched function
/// must yield manual-fix-needed naming the responsible unit and
/// function — never a silent port into leftover call sites.
#[test]
fn deleted_patched_function_refuses_with_unit_named() {
    let (_seed, drifted, log) = seed_with_fate("sys_prctl", true);
    assert_eq!(log.fate("sys_prctl"), FnFate::Deleted);
    let report = rebase_cve("CVE-2006-2451", &drifted);
    assert_eq!(report.status, RebaseStatus::ManualFixNeeded, "{}", report.render());
    assert!(
        report
            .reasons
            .iter()
            .any(|r| r.contains("kernel/sys.kc") && r.contains("sys_prctl")),
        "reason must name unit and function: {:?}",
        report.reasons
    );
    assert!(report.ported_fns.is_empty(), "nothing may claim to be ported: {:?}", report.ported_fns);
}

/// Satellite negative path: drift that splits the patched function must
/// either refuse or port into the split-off body — the wrapper keeping
/// the old name must never silently swallow the patch.
#[test]
fn split_patched_function_never_patches_the_wrapper() {
    let (_seed, drifted, log) = seed_with_fate("sys_prctl", false);
    assert_eq!(log.fate("sys_prctl"), FnFate::Split);
    let body_fn = log
        .split
        .iter()
        .find(|(_, f, _)| f == "sys_prctl")
        .map(|(_, _, b)| b.clone())
        .unwrap();
    let report = rebase_cve("CVE-2006-2451", &drifted);
    match report.status {
        RebaseStatus::AutoPorted => {
            assert!(
                report.ported_fns.contains(&body_fn),
                "auto-port must land in the split body {body_fn}: {:?}",
                report.ported_fns
            );
            assert!(
                !report.ported_fns.iter().any(|f| f == "sys_prctl"),
                "the wrapper must not be patched: {:?}",
                report.ported_fns
            );
        }
        _ => {
            assert!(
                report.reasons.iter().any(|r| r.contains("sys_prctl")),
                "refusal must name the split function: {:?}",
                report.reasons
            );
        }
    }
}
