//! PC-sampling profiles of an update's hot path, and the quiescence-risk
//! report derived from them.
//!
//! The paper's claim is behavioural: after `ksplice-apply`, calls land in
//! the *replacement* code. The profiler makes that claim measurable. A
//! fixed-interval PC sampler (see `ksplice_kernel::Profiler`) records
//! call stacks while the POSIX stress workload runs, once before the
//! update and once after; symbolizing both through kallsyms and the
//! region table shows the patched function's samples migrating from
//! original kernel text into the `ksplice*_primary_*` patch arena.
//!
//! The same samples answer a second question the paper leaves implicit:
//! *which functions will resist `stop_machine`?* A function's on-stack
//! frequency under a workload predicts how often the §5.2 stack safety
//! check finds it busy. [`quiescence_correlation`] measures both sides —
//! sampled on-stack frequency, and observed `NotQuiescent` abort rates
//! from real single-attempt applies — so the ranking can be validated
//! rather than asserted.

use std::collections::BTreeSet;

use ksplice_core::trace::{Severity, Stage, Tracer};
use ksplice_core::{
    create_update_cached_traced, ApplyError, ApplyOptions, CreateOptions, Ksplice, RetryPolicy,
    TRAMPOLINE_LEN,
};
use ksplice_kernel::{
    collapsed_stacks, hot_functions, quiescence_risk, Fault, HotFunc, Kernel, QuiesceRisk,
    Residency, Sample,
};
use ksplice_lang::BuildCache;

use crate::corpus::{corpus, Cve};
use crate::driver::distro_image;
use crate::stress::{load_stress_cached, run_stress, spawn_stress};
use crate::tree::base_tree;

/// Sampling parameters for a profile run. Everything is deterministic:
/// the same config against the same kernel yields byte-identical
/// samples, so CI can diff two runs.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// Steps between samples. A prime keeps the sampler from phase-
    /// locking with the workload's loop periods.
    pub interval: u64,
    /// Upper bound on retained samples per phase (overflow is counted,
    /// not silently dropped).
    pub max_samples: usize,
    /// Stress-workload rounds per phase.
    pub rounds: u64,
    /// Seed for the jittered attempt schedule in
    /// [`quiescence_correlation`].
    pub seed: u64,
}

impl Default for ProfileConfig {
    fn default() -> ProfileConfig {
        ProfileConfig {
            interval: 97,
            max_samples: 200_000,
            rounds: 40,
            seed: 0x5eed,
        }
    }
}

/// One sampled phase (pre- or post-apply) of a profile run.
#[derive(Debug, Clone)]
pub struct ProfilePhase {
    /// Samples recorded in this phase.
    pub samples: usize,
    /// Hot-function table, hottest first.
    pub hot: Vec<HotFunc>,
    /// Collapsed-stack lines (`root;...;leaf count`), flamegraph-ready.
    pub folded: String,
}

/// The result of [`run_profile`]: pre/post hot tables plus the migration
/// evidence.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// The CVE profiled.
    pub id: String,
    /// Sampling interval used.
    pub interval: u64,
    /// Profile of the unpatched kernel.
    pub pre: ProfilePhase,
    /// Profile after the update was applied.
    pub post: ProfilePhase,
    /// Functions whose samples moved from original text into the patch
    /// arena — the update's hot path demonstrably migrated.
    pub migrated: Vec<String>,
    /// stop_machine attempts the apply needed.
    pub attempts: u64,
    /// Per-function on-stack frequency from the pre-apply samples,
    /// riskiest first: the quiescence-risk ranking.
    pub risk: Vec<QuiesceRisk>,
}

impl ProfileReport {
    /// Renders a hot-function table for one phase.
    fn render_phase(out: &mut String, title: &str, phase: &ProfilePhase) {
        out.push_str(&format!("{title} ({} samples)\n", phase.samples));
        out.push_str(&format!(
            "  {:<24} {:<6} {:>6} {:>9}\n",
            "FUNCTION", "WHERE", "SELF", "ON-STACK"
        ));
        for h in phase.hot.iter().take(12) {
            out.push_str(&format!(
                "  {:<24} {:<6} {:>6} {:>9}\n",
                h.function,
                h.residency.label(),
                h.self_samples,
                h.on_stack_samples
            ));
        }
    }

    /// Human-readable report: both hot tables, the migration verdict,
    /// and the top of the quiescence-risk ranking.
    pub fn render(&self) -> String {
        let mut out = format!("profile of {} (interval {})\n\n", self.id, self.interval);
        ProfileReport::render_phase(&mut out, "pre-apply", &self.pre);
        out.push('\n');
        ProfileReport::render_phase(&mut out, "post-apply", &self.post);
        out.push('\n');
        if self.migrated.is_empty() {
            out.push_str("migrated into patch arena: (none)\n");
        } else {
            out.push_str(&format!(
                "migrated into patch arena: {}\n",
                self.migrated.join(", ")
            ));
        }
        out.push_str("\nquiescence risk (on-stack frequency, pre-apply)\n");
        for r in self.risk.iter().take(8) {
            out.push_str(&format!(
                "  {:<24} {:>6.1}%  ({}/{} samples)\n",
                r.function,
                r.frequency() * 100.0,
                r.on_stack,
                r.samples
            ));
        }
        out
    }

    /// The report as a JSON object (used by `profile --json` and the
    /// bench harness).
    pub fn to_json(&self) -> String {
        use ksplice_core::trace::json_escape;
        let phase = |p: &ProfilePhase| {
            let hot: Vec<String> = p
                .hot
                .iter()
                .map(|h| {
                    format!(
                        "{{\"function\":{},\"unit\":{},\"where\":\"{}\",\"self\":{},\"on_stack\":{}}}",
                        json_escape(&h.function),
                        json_escape(&h.unit),
                        h.residency.label(),
                        h.self_samples,
                        h.on_stack_samples
                    )
                })
                .collect();
            format!("{{\"samples\":{},\"hot\":[{}]}}", p.samples, hot.join(","))
        };
        let migrated: Vec<String> = self
            .migrated
            .iter()
            .map(|m| json_escape(m))
            .collect();
        let risk: Vec<String> = self
            .risk
            .iter()
            .map(|r| {
                format!(
                    "{{\"function\":{},\"on_stack\":{},\"samples\":{}}}",
                    json_escape(&r.function),
                    r.on_stack,
                    r.samples
                )
            })
            .collect();
        format!(
            "{{\"id\":{},\"interval\":{},\"attempts\":{},\"pre\":{},\"post\":{},\"migrated\":[{}],\"risk\":[{}]}}",
            json_escape(&self.id),
            self.interval,
            self.attempts,
            phase(&self.pre),
            phase(&self.post),
            migrated.join(","),
            risk.join(",")
        )
    }
}

fn find_case(cve_id: &str) -> Result<Cve, String> {
    corpus()
        .into_iter()
        .find(|c| c.id == cve_id)
        .ok_or_else(|| format!("unknown CVE `{cve_id}` (see `ksplice eval` for the corpus)"))
}

/// Samples one stress phase: arms the profiler, runs the workload
/// synchronously, and returns the recorded samples.
fn sample_phase(
    kernel: &mut Kernel,
    entry: u64,
    cfg: &ProfileConfig,
) -> Result<Vec<Sample>, String> {
    kernel.start_sampling(cfg.interval, cfg.max_samples);
    let run = run_stress(kernel, entry, cfg.rounds);
    let samples = kernel.stop_sampling();
    run?;
    Ok(samples)
}

/// Profiles one CVE's update end to end: sample the stress workload on
/// the unpatched kernel, apply the update, sample again, and report
/// which hot functions migrated into the patch arena.
pub fn run_profile(
    cve_id: &str,
    cfg: &ProfileConfig,
    tracer: &mut Tracer,
) -> Result<ProfileReport, String> {
    let case = find_case(cve_id)?;
    let cache = BuildCache::new();
    let base = base_tree();
    let image = distro_image(&base, &cache)?;
    let mut kernel = Kernel::boot_image(&image).map_err(|e| format!("boot: {e}"))?;
    let entry = load_stress_cached(&mut kernel, &cache)?;

    tracer.set_now(kernel.steps);
    let span = tracer.span_start(
        Stage::Bench,
        "profile",
        vec![("cve", cve_id.into()), ("interval", cfg.interval.into())],
    );

    // Phase 1: the unpatched kernel under the workload.
    let pre_samples = sample_phase(&mut kernel, entry, cfg)?;
    tracer.set_now(kernel.steps);
    tracer.count("profile.samples_recorded", pre_samples.len() as u64);
    let pre_hot = hot_functions(&kernel, &pre_samples, &[]);
    let pre_folded = collapsed_stacks(&kernel, &pre_samples, &[]);

    // The §5.2 risk ranking: on-stack frequency of every kernel function
    // observed in the pre-apply samples.
    let targets: Vec<(String, u64, u64)> = kernel
        .syms
        .iter()
        .filter(|s| s.is_func && s.size > 0)
        .map(|s| (s.name.clone(), s.addr, s.size))
        .collect();
    let risk: Vec<QuiesceRisk> = quiescence_risk(&pre_samples, &targets)
        .into_iter()
        .filter(|r| r.on_stack > 0)
        .collect();

    // Apply the update.
    let opts = if case.needs_custom_code() {
        CreateOptions {
            accept_data_changes: true,
            ..CreateOptions::default()
        }
    } else {
        CreateOptions::default()
    };
    let (pack, _) =
        create_update_cached_traced(case.id, &base, &case.full_patch_text(), &opts, &cache, tracer)
            .map_err(|e| format!("{cve_id}: create: {e}"))?;
    let mut ks = Ksplice::new();
    let report = ks
        .apply_traced(&mut kernel, &pack, &ApplyOptions::default(), tracer)
        .map_err(|e| format!("{cve_id}: apply: {e}"))?;
    let trampolines: Vec<(u64, u64)> = ks
        .updates
        .last()
        .map(|u| {
            u.sites
                .iter()
                .map(|s| (s.site_addr, TRAMPOLINE_LEN as u64))
                .collect()
        })
        .unwrap_or_default();

    // Phase 2: the patched kernel under the same workload.
    let post_samples = sample_phase(&mut kernel, entry, cfg)?;
    tracer.set_now(kernel.steps);
    tracer.count("profile.samples_recorded", post_samples.len() as u64);
    let post_hot = hot_functions(&kernel, &post_samples, &trampolines);
    let post_folded = collapsed_stacks(&kernel, &post_samples, &trampolines);

    // Migration evidence: functions sampled in original text before the
    // update and in the patch arena after it.
    let pre_original: BTreeSet<&str> = pre_hot
        .iter()
        .filter(|h| h.residency == Residency::Original && h.on_stack_samples > 0)
        .map(|h| h.function.as_str())
        .collect();
    let migrated: Vec<String> = post_hot
        .iter()
        .filter(|h| {
            h.residency == Residency::PatchArena
                && h.on_stack_samples > 0
                && pre_original.contains(h.function.as_str())
        })
        .map(|h| h.function.clone())
        .collect();
    tracer.count("profile.functions_migrated", migrated.len() as u64);
    tracer.emit(
        Stage::Bench,
        Severity::Info,
        "profile.done",
        vec![
            ("cve", cve_id.into()),
            ("pre_samples", pre_samples.len().into()),
            ("post_samples", post_samples.len().into()),
            ("migrated", migrated.len().into()),
        ],
    );
    tracer.span_end(span);

    Ok(ProfileReport {
        id: case.id.to_string(),
        interval: cfg.interval,
        pre: ProfilePhase {
            samples: pre_samples.len(),
            hot: pre_hot,
            folded: pre_folded,
        },
        post: ProfilePhase {
            samples: post_samples.len(),
            hot: post_hot,
            folded: post_folded,
        },
        migrated,
        attempts: report.attempts as u64,
        risk,
    })
}

/// The corpus CVEs used as quiescence-correlation targets: each patches
/// exactly one function the stress workload exercises, so a
/// `NotQuiescent` abort of its apply is attributable to that function.
pub const QUIESCE_TARGET_CVES: &[&str] = &[
    "CVE-2005-1263", // sys_open
    "CVE-2006-1863", // sys_write_file
    "CVE-2007-2876", // sys_socket
    "CVE-2005-3055", // sys_msgsnd
];

/// One target's measured abort rate in a [`QuiesceCorrelation`].
#[derive(Debug, Clone)]
pub struct TargetAborts {
    /// The patched function.
    pub function: String,
    /// The CVE whose update patches it.
    pub cve: String,
    /// `NotQuiescent` aborts from real single-attempt applies.
    pub real_aborts: u64,
    /// Aborts forced by the seeded stack-busy fault plan (equal per
    /// target, so they exercise the machinery without biasing the
    /// ranking).
    pub synthetic_aborts: u64,
    /// Real apply attempts made.
    pub attempts: u64,
}

/// The §5.2 validation pairing: sampled on-stack frequency vs observed
/// stop_machine abort rates, per target function.
#[derive(Debug, Clone)]
pub struct QuiesceCorrelation {
    /// Profiler-derived risk over the target functions, riskiest first.
    pub risk: Vec<QuiesceRisk>,
    /// Observed aborts per target, most aborts first.
    pub aborts: Vec<TargetAborts>,
}

impl QuiesceCorrelation {
    /// The function the profiler ranks riskiest.
    pub fn top_risk(&self) -> Option<&str> {
        self.risk.first().map(|r| r.function.as_str())
    }

    /// The function with the most observed real aborts.
    pub fn top_aborts(&self) -> Option<&str> {
        self.aborts.first().map(|a| a.function.as_str())
    }

    /// Whether the profiler's top-ranked function matches the function
    /// with the highest observed abort contribution.
    pub fn rankings_agree(&self) -> bool {
        match (self.top_risk(), self.top_aborts()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Human-readable correlation table.
    pub fn render(&self) -> String {
        let mut out = String::from("quiescence risk vs observed aborts\n");
        out.push_str(&format!(
            "  {:<18} {:>9} {:>12} {:>10}\n",
            "FUNCTION", "ON-STACK", "REAL-ABORTS", "SYNTHETIC"
        ));
        for r in &self.risk {
            let a = self.aborts.iter().find(|a| a.function == r.function);
            out.push_str(&format!(
                "  {:<18} {:>8.1}% {:>12} {:>10}\n",
                r.function,
                r.frequency() * 100.0,
                a.map(|a| a.real_aborts).unwrap_or(0),
                a.map(|a| a.synthetic_aborts).unwrap_or(0),
            ));
        }
        out.push_str(&format!(
            "rankings {}\n",
            if self.rankings_agree() {
                "agree"
            } else {
                "DISAGREE"
            }
        ));
        out
    }
}

/// A tiny deterministic PRNG (xorshift64*) for the jittered attempt
/// schedule; the VM forbids wall-clock randomness by design.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Measures, for each [`QUIESCE_TARGET_CVES`] update, how often a
/// single-attempt apply aborts `NotQuiescent` while the stress workload
/// runs — and pairs that with the profiler's on-stack ranking of the
/// same functions under the same workload.
///
/// Each target also absorbs `synthetic` seeded stack-busy fault windows
/// (the same count per target), so the retry/abandon machinery is
/// exercised under an armed fault plan without changing which function
/// ranks first on *real* aborts.
pub fn quiescence_correlation(
    cfg: &ProfileConfig,
    attempts: u64,
    synthetic: u64,
    tracer: &mut Tracer,
) -> Result<QuiesceCorrelation, String> {
    let cache = BuildCache::new();
    let base = base_tree();
    let image = distro_image(&base, &cache)?;

    // Side 1: the profiler's ranking, from a synchronous sampled run.
    let mut kernel = Kernel::boot_image(&image).map_err(|e| format!("boot: {e}"))?;
    let entry = load_stress_cached(&mut kernel, &cache)?;
    let samples = sample_phase(&mut kernel, entry, cfg)?;
    let mut cases = Vec::new();
    let mut targets = Vec::new();
    for id in QUIESCE_TARGET_CVES {
        let case = find_case(id)?;
        let fn_name = case.edited_fns[0];
        let sym = kernel
            .syms
            .lookup_global(fn_name)
            .ok_or_else(|| format!("{fn_name}: not in kallsyms"))?;
        targets.push((fn_name.to_string(), sym.addr, sym.size));
        cases.push(case);
    }
    let risk = quiescence_risk(&samples, &targets);

    // Side 2: observed abort rates from real applies against a running
    // workload, one fresh kernel per target.
    let span = tracer.span_start(
        Stage::Bench,
        "quiescence",
        vec![
            ("targets", cases.len().into()),
            ("attempts", attempts.into()),
        ],
    );
    let single = ApplyOptions::with_retry(RetryPolicy::fixed(1, 0));
    let mut aborts: Vec<TargetAborts> = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        let fn_name = case.edited_fns[0].to_string();
        let (pack, _) = create_update_cached_traced(
            case.id,
            &base,
            &case.full_patch_text(),
            &CreateOptions::default(),
            &cache,
            tracer,
        )
        .map_err(|e| format!("{}: create: {e}", case.id))?;

        let mut k = Kernel::boot_image(&image).map_err(|e| format!("boot: {e}"))?;
        let entry = load_stress_cached(&mut k, &cache)?;
        // A workload that outlives every attempt.
        spawn_stress(&mut k, entry, 1_000_000)?;
        k.run(10_000); // let it settle into steady state

        // The seeded fault plan: every target absorbs the same number of
        // synthetic busy windows.
        let mut ks = Ksplice::new();
        let mut synthetic_aborts = 0u64;
        if synthetic > 0 {
            k.arm_fault(Fault::StackBusy {
                windows: synthetic as u32,
            })
                .map_err(|e| format!("arm: {e}"))?;
            for _ in 0..synthetic {
                match ks.apply_traced(&mut k, &pack, &single, tracer) {
                    Err(ApplyError::NotQuiescent { .. }) => synthetic_aborts += 1,
                    Ok(_) => {
                        return Err(format!(
                            "{}: apply succeeded through an armed stack-busy window",
                            case.id
                        ))
                    }
                    Err(e) => return Err(format!("{}: synthetic apply: {e}", case.id)),
                }
            }
        }

        let mut rng = cfg.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut real_aborts = 0u64;
        for _ in 0..attempts {
            // Jittered schedule: land the attempt at a pseudo-random
            // phase of the workload loop.
            k.run(401 + xorshift(&mut rng) % 1009);
            match ks.apply_traced(&mut k, &pack, &single, tracer) {
                Ok(_) => {
                    // Nothing ran since the apply window, so the ranges
                    // are still clear and the undo cannot be refused.
                    ks.undo_traced(&mut k, case.id, &single, tracer)
                        .map_err(|e| format!("{}: undo: {e}", case.id))?;
                }
                Err(ApplyError::NotQuiescent { .. }) => real_aborts += 1,
                Err(e) => return Err(format!("{}: apply: {e}", case.id)),
            }
        }
        tracer.set_now(k.steps);
        tracer.count("profile.aborts_observed", real_aborts);
        tracer.emit(
            Stage::Bench,
            Severity::Info,
            "profile.quiesce_target",
            vec![
                ("function", fn_name.as_str().into()),
                ("real_aborts", real_aborts.into()),
                ("synthetic_aborts", synthetic_aborts.into()),
                ("attempts", attempts.into()),
            ],
        );
        aborts.push(TargetAborts {
            function: fn_name,
            cve: case.id.to_string(),
            real_aborts,
            synthetic_aborts,
            attempts,
        });
    }
    tracer.span_end(span);
    aborts.sort_by(|a, b| {
        b.real_aborts
            .cmp(&a.real_aborts)
            .then_with(|| a.function.cmp(&b.function))
    });
    Ok(QuiesceCorrelation { risk, aborts })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_shows_hot_path_migrating_into_arena() {
        let cfg = ProfileConfig {
            rounds: 25,
            ..ProfileConfig::default()
        };
        let mut tracer = Tracer::new();
        let report = run_profile("CVE-2005-1263", &cfg, &mut tracer).unwrap();
        assert!(report.pre.samples > 100, "pre phase sampled");
        assert!(report.post.samples > 100, "post phase sampled");
        // The acceptance bar: at least one function's samples moved from
        // original text into the patch arena.
        assert!(
            report.migrated.iter().any(|f| f == "sys_open"),
            "sys_open should migrate; got {:?}",
            report.migrated
        );
        // Pre-apply, nothing lives in the arena.
        assert!(report
            .pre
            .hot
            .iter()
            .all(|h| h.residency != Residency::PatchArena));
        // The folded output is flamegraph-shaped.
        assert!(report
            .post
            .folded
            .lines()
            .all(|l| l.rsplit_once(' ').is_some_and(|(_, n)| n.parse::<u64>().is_ok())));
    }

    #[test]
    fn profile_is_deterministic() {
        let cfg = ProfileConfig {
            rounds: 10,
            ..ProfileConfig::default()
        };
        let a = run_profile("CVE-2006-1863", &cfg, &mut Tracer::disabled()).unwrap();
        let b = run_profile("CVE-2006-1863", &cfg, &mut Tracer::disabled()).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json(), b.to_json());
        // The JSON report parses back through the crate's own parser.
        let doc = ksplice_core::trace::parse_json_object(&a.to_json()).unwrap();
        assert_eq!(
            doc.get("id").and_then(ksplice_core::trace::JsonValue::as_str),
            Some("CVE-2006-1863")
        );
        assert!(doc
            .get("pre")
            .and_then(|p| p.get("samples"))
            .and_then(ksplice_core::trace::JsonValue::as_u64)
            .is_some());
    }
}
