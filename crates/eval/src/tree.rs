//! The synthetic kernel source tree the evaluation patches.
//!
//! ~25 compilation units across the subsystems Linux security patches
//! actually land in (fs, net, mm, ipc, drivers, security, arch), written
//! in `kc` plus one assembly unit, with deliberately realistic hazards:
//! duplicate static symbol names across units (`debug`, `notesize`,
//! `state`), small helpers the optimiser inlines (with and without the
//! `inline` keyword), ops tables of function pointers, and the seeded
//! vulnerabilities the CVE corpus patches.

use ksplice_lang::SourceTree;

/// `(path, contents)` of every file in the base tree.
pub const BASE_FILES: &[(&str, &str)] = &[
    ("include/defs.kh", include_str!("../tree/include/defs.kh")),
    ("kernel/cred.kc", include_str!("../tree/kernel/cred.kc")),
    ("kernel/sys.kc", include_str!("../tree/kernel/sys.kc")),
    ("kernel/sched.kc", include_str!("../tree/kernel/sched.kc")),
    ("kernel/exit.kc", include_str!("../tree/kernel/exit.kc")),
    ("kernel/timer.kc", include_str!("../tree/kernel/timer.kc")),
    ("kernel/compat.kc", include_str!("../tree/kernel/compat.kc")),
    ("fs/open.kc", include_str!("../tree/fs/open.kc")),
    ("fs/inode.kc", include_str!("../tree/fs/inode.kc")),
    ("fs/file_rw.kc", include_str!("../tree/fs/file_rw.kc")),
    ("fs/exec.kc", include_str!("../tree/fs/exec.kc")),
    ("fs/readdir.kc", include_str!("../tree/fs/readdir.kc")),
    (
        "fs/binfmt_misc.kc",
        include_str!("../tree/fs/binfmt_misc.kc"),
    ),
    ("net/socket.kc", include_str!("../tree/net/socket.kc")),
    ("net/tcp.kc", include_str!("../tree/net/tcp.kc")),
    ("net/netlink.kc", include_str!("../tree/net/netlink.kc")),
    ("net/igmp.kc", include_str!("../tree/net/igmp.kc")),
    ("mm/mmap.kc", include_str!("../tree/mm/mmap.kc")),
    ("mm/brk.kc", include_str!("../tree/mm/brk.kc")),
    ("ipc/msg.kc", include_str!("../tree/ipc/msg.kc")),
    ("ipc/shm.kc", include_str!("../tree/ipc/shm.kc")),
    ("drivers/dst.kc", include_str!("../tree/drivers/dst.kc")),
    (
        "drivers/dst_ca.kc",
        include_str!("../tree/drivers/dst_ca.kc"),
    ),
    (
        "drivers/bluetooth.kc",
        include_str!("../tree/drivers/bluetooth.kc"),
    ),
    (
        "security/commoncap.kc",
        include_str!("../tree/security/commoncap.kc"),
    ),
    ("lib/string.kc", include_str!("../tree/lib/string.kc")),
    ("arch/entry.ks", include_str!("../tree/arch/entry.ks")),
];

/// Builds the base (vulnerable) source tree.
pub fn base_tree() -> SourceTree {
    BASE_FILES
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksplice_kernel::Kernel;
    use ksplice_lang::{build_tree, Options};

    #[test]
    fn base_tree_compiles_in_both_modes() {
        let tree = base_tree();
        build_tree(&tree, &Options::distro()).unwrap();
        build_tree(&tree, &Options::pre_post()).unwrap();
    }

    #[test]
    fn base_tree_boots_and_runs() {
        let tree = base_tree();
        let mut k = Kernel::boot(&tree, &Options::distro()).unwrap();
        // Syscall round trip through the dispatcher.
        let fd = k.call_function("sys_open", &[5, 6]).unwrap() as i64;
        assert!(fd >= 0);
        assert_eq!(
            k.call_function("sys_write_file", &[fd as u64, 7, 3])
                .unwrap(),
            3
        );
        assert_eq!(k.call_function("open_count", &[]).unwrap(), 1);
        assert_eq!(k.call_function("sys_close", &[fd as u64]).unwrap(), 0);
        // Sockets.
        let sd = k.call_function("sys_socket", &[80]).unwrap() as i64;
        assert!(sd >= 0);
        assert_eq!(k.call_function("sys_connect", &[sd as u64, 9]).unwrap(), 0);
        // The compat assembly entry dispatches through the table.
        assert_eq!(k.call_function("compat_entry", &[2, 42]).unwrap() as i64, 0);
    }
}
