//! The quiescence-under-load experiment (paper §5 / §6.3, for real).
//!
//! Every earlier abort measurement in this repo was either synthetic
//! (an armed stack-busy fault) or a uniprocessor race against a
//! *paused* workload. With the SMP substrate the experiment becomes
//! honest: N vCPUs run the POSIX stress workload concurrently while
//! `ksplice-apply` tries to capture the machine, so the §5.2 stack
//! check races threads that are genuinely parked mid-`sys_open` by the
//! barrier rendezvous.
//!
//! [`run_quiescence_load`] measures two things as a function of load
//! level (background stress threads):
//!
//! * the **NotQuiescent abort rate** of single-attempt applies — each
//!   probe boots a fresh kernel, spins up the load, lets it reach a
//!   seeded phase, and tries exactly one capture window; and
//! * the **pause distribution** of successful windows, in deterministic
//!   VM steps ([`ksplice_core::ApplyReport::pause_steps`]): barrier
//!   rendezvous plus stopped-machine work.
//!
//! Every probe that aborts is then re-applied on the *same* kernel
//! under a draining [`RetryPolicy`] and must succeed — the §5.2
//! retry-after-a-short-delay story, demonstrated against real
//! contention instead of a fault plan.
//!
//! Everything is seeded; the same config reproduces the same table.

use ksplice_core::trace::{Severity, Stage, Tracer};
use ksplice_core::{
    create_update_cached_traced, ApplyError, ApplyOptions, CreateOptions, Ksplice, RetryPolicy,
    SmpConfig,
};
use ksplice_kernel::Kernel;
use ksplice_lang::BuildCache;

use ksplice_lang::{compile_unit, options_fingerprint, Fingerprint, Options};

use crate::corpus::corpus;
use crate::driver::distro_image;
use crate::tree::base_tree;

/// The SMP load workload. The POSIX stress module checks cross-thread
/// invariants (`open_count() == before + 1`) that are *correctly*
/// violated the moment two threads interleave — useful as a race
/// detector, useless as sustained load. This loop drives the same
/// syscalls with no such checks, so N copies hammer `sys_open` (the
/// patch target) indefinitely; the filler calls dilute the time spent
/// inside it to a realistic on-stack fraction.
pub const SMP_LOAD_SRC: &str = "\
int smp_load_main(int rounds) {\n\
    int r;\n\
    int fd;\n\
    for (r = 0; r < rounds; r = r + 1) {\n\
        fd = sys_open(5 + (r & 7), 6);\n\
        if (fd >= 0) {\n\
            sys_write_file(fd, 10 + r, 4);\n\
            sys_read_file(fd, 0, 4);\n\
            sys_close(fd);\n\
        }\n\
        sys_brk(0);\n\
    }\n\
    return 0;\n\
}\n";

/// Loads the SMP load module through the shared build cache, returning
/// the `smp_load_main` entry address.
fn load_smp_load(kernel: &mut Kernel, cache: &BuildCache) -> Result<u64, String> {
    let opt = Options::pre_post();
    let mut fp = Fingerprint::new();
    fp.u64_field(options_fingerprint(&opt))
        .str_field("smp/load.kc")
        .str_field(SMP_LOAD_SRC);
    let key = fp.finish();
    let obj = match cache.lookup(key) {
        Some(obj) => obj,
        None => {
            let obj = compile_unit("smp/load.kc", SMP_LOAD_SRC, &opt)
                .map_err(|e| format!("smp load compile: {e}"))?;
            cache.store(key, obj.clone());
            obj
        }
    };
    let module = kernel
        .insmod(&obj, false)
        .map_err(|e| format!("smp load insmod: {e}"))?;
    module
        .symbol_addr("smp_load_main")
        .ok_or_else(|| "smp_load_main missing".to_string())
}

/// Parameters of one [`run_quiescence_load`] sweep.
#[derive(Debug, Clone)]
pub struct SmpLoadConfig {
    /// vCPUs the probed kernels run.
    pub cpus: u32,
    /// Load levels to sweep: background stress threads per probe.
    pub load_levels: Vec<u32>,
    /// Single-attempt apply probes per load level.
    pub probes: u64,
    /// Master seed: drives per-probe scheduler seeds and settle phases.
    pub seed: u64,
    /// The corpus CVE to apply. The default, CVE-2005-1263, patches
    /// `sys_open` — the syscall the stress workload opens every round
    /// with, so its quiescence genuinely degrades with load.
    pub cve: &'static str,
}

impl Default for SmpLoadConfig {
    fn default() -> SmpLoadConfig {
        SmpLoadConfig {
            cpus: 4,
            load_levels: vec![0, 1, 2, 4, 8],
            probes: 20,
            seed: 0x5eed_10ad,
            cve: "CVE-2005-1263",
        }
    }
}

/// Measured outcomes at one load level.
#[derive(Debug, Clone)]
pub struct LoadRow {
    /// Background stress threads during each probe.
    pub load: u32,
    /// Single-attempt probes made.
    pub probes: u64,
    /// Probes whose only capture window aborted `NotQuiescent`.
    pub aborts: u64,
    /// `pause_steps` of every successful window, in probe order.
    pub pause_steps: Vec<u64>,
    /// Total stop_machine attempts the draining retry policy spent
    /// turning this level's aborted probes into successes (0 when
    /// nothing aborted).
    pub drain_attempts: u64,
}

impl LoadRow {
    /// Abort fraction in [0, 1].
    pub fn abort_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.aborts as f64 / self.probes as f64
        }
    }

    /// (min, median, max) of the successful-window pause distribution.
    pub fn pause_summary(&self) -> (u64, u64, u64) {
        if self.pause_steps.is_empty() {
            return (0, 0, 0);
        }
        let mut sorted = self.pause_steps.clone();
        sorted.sort_unstable();
        (sorted[0], sorted[sorted.len() / 2], sorted[sorted.len() - 1])
    }
}

/// The result of one [`run_quiescence_load`] sweep.
#[derive(Debug, Clone)]
pub struct QuiescenceReport {
    /// vCPUs each probed kernel ran.
    pub cpus: u32,
    /// The CVE applied.
    pub cve: String,
    /// The patched function whose quiescence was contended.
    pub function: String,
    /// One row per load level, in sweep order.
    pub rows: Vec<LoadRow>,
}

impl QuiescenceReport {
    /// Human-readable sweep table (also the EXPERIMENTS.md format).
    pub fn render(&self) -> String {
        let mut out = format!(
            "quiescence under load: {} ({}) on {} vCPUs\n",
            self.cve, self.function, self.cpus
        );
        out.push_str(&format!(
            "  {:<5} {:>7} {:>7} {:>11} {:>22} {:>7}\n",
            "LOAD", "PROBES", "ABORTS", "ABORT-RATE", "PAUSE min/med/max", "DRAIN"
        ));
        for r in &self.rows {
            let (min, med, max) = r.pause_summary();
            out.push_str(&format!(
                "  {:<5} {:>7} {:>7} {:>10.0}% {:>14}/{}/{} {:>7}\n",
                r.load,
                r.probes,
                r.aborts,
                r.abort_rate() * 100.0,
                min,
                med,
                max,
                r.drain_attempts,
            ));
        }
        out
    }

    /// Total aborts across all load levels.
    pub fn total_aborts(&self) -> u64 {
        self.rows.iter().map(|r| r.aborts).sum()
    }
}

/// xorshift64* — the repo's standard seeded generator.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Runs the quiescence-under-load sweep. Emits `bench.smp_*` metrics on
/// `tracer` — counters per load level plus a labeled `pause_steps`
/// histogram — which `cargo bench -p ksplice-bench --bench smp` dumps
/// to `BENCH_smp.json`.
pub fn run_quiescence_load(
    cfg: &SmpLoadConfig,
    tracer: &mut Tracer,
) -> Result<QuiescenceReport, String> {
    let case = corpus()
        .into_iter()
        .find(|c| c.id == cfg.cve)
        .ok_or_else(|| format!("unknown CVE `{}`", cfg.cve))?;
    let function = case.edited_fns[0].to_string();
    let cache = BuildCache::new();
    let base = base_tree();
    let image = distro_image(&base, &cache)?;
    let (pack, _) = create_update_cached_traced(
        case.id,
        &base,
        &case.full_patch_text(),
        &CreateOptions::default(),
        &cache,
        &mut Tracer::disabled(),
    )
    .map_err(|e| format!("{}: create: {e}", case.id))?;

    let span = tracer.span_start(
        Stage::Bench,
        "smp.quiescence",
        vec![
            ("cpus", cfg.cpus.into()),
            ("levels", cfg.load_levels.len().into()),
            ("probes", cfg.probes.into()),
        ],
    );
    let single = ApplyOptions {
        retry: RetryPolicy::fixed(1, 0),
        smp: SmpConfig::with_cpus(cfg.cpus),
    };
    // The §5.2 drain policy: retry after a short delay, enough times
    // that real contention always yields a window eventually. At the
    // heaviest load levels every vCPU is busy and most capture windows
    // find `sys_open` on some stack, so the attempt budget is generous.
    let drain = ApplyOptions {
        retry: RetryPolicy::fixed(25, 3_000),
        smp: SmpConfig::with_cpus(cfg.cpus),
    };

    let mut rows = Vec::new();
    for &load in &cfg.load_levels {
        let mut rng = cfg.seed ^ (load as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut aborts = 0u64;
        let mut drain_attempts = 0u64;
        let mut pause_steps = Vec::new();
        let label = load.to_string();
        for _ in 0..cfg.probes {
            let mut k = Kernel::boot_image(&image).map_err(|e| format!("boot: {e}"))?;
            k.configure_smp(SmpConfig::with_cpus(cfg.cpus).with_seed(xorshift(&mut rng)));
            let entry = load_smp_load(&mut k, &cache)?;
            for _ in 0..load {
                // A workload that outlives every capture attempt.
                k.spawn_at(entry, &[1_000_000], "smp-load")
                    .map_err(|e| format!("load spawn: {e}"))?;
                // Stagger each entry by a seeded skid: threads that
                // share a run queue advance in quantum lockstep, so
                // without the skid every thread parks at the *same*
                // loop phase and the abort odds stop compounding.
                k.run(257 + xorshift(&mut rng) % 509);
            }
            // Settle into a seeded phase of the workload loop, so each
            // probe's capture window lands somewhere different.
            k.run(10_000 + xorshift(&mut rng) % 10_007);

            let mut ks = Ksplice::new();
            match ks.apply_traced(&mut k, &pack, &single, &mut Tracer::disabled()) {
                Ok(report) => {
                    pause_steps.push(report.pause_steps);
                    tracer.observe_labeled(
                        "bench.smp_pause_steps",
                        &[("load", &label)],
                        report.pause_steps,
                    );
                }
                Err(ApplyError::NotQuiescent { .. }) => {
                    aborts += 1;
                    // The §5.2 story: the same kernel, the same live
                    // load — retrying with delays must drain to success.
                    let report = ks
                        .apply_traced(&mut k, &pack, &drain, &mut Tracer::disabled())
                        .map_err(|e| format!("load {load}: drain apply failed: {e}"))?;
                    drain_attempts += report.attempts as u64;
                    pause_steps.push(report.pause_steps);
                    tracer.observe_labeled(
                        "bench.smp_pause_steps",
                        &[("load", &label)],
                        report.pause_steps,
                    );
                }
                Err(e) => return Err(format!("load {load}: apply: {e}")),
            }
        }
        tracer.count_labeled("bench.smp_probes", &[("load", &label)], cfg.probes);
        tracer.count_labeled("bench.smp_aborts", &[("load", &label)], aborts);
        tracer.gauge(
            "bench.smp_abort_permille",
            &[("load", &label)],
            (aborts as i64 * 1000) / cfg.probes.max(1) as i64,
        );
        tracer.emit(
            Stage::Bench,
            Severity::Info,
            "smp.load_level",
            vec![
                ("load", load.into()),
                ("aborts", aborts.into()),
                ("probes", cfg.probes.into()),
                ("drain_attempts", drain_attempts.into()),
            ],
        );
        rows.push(LoadRow {
            load,
            probes: cfg.probes,
            aborts,
            pause_steps,
            drain_attempts,
        });
    }
    tracer.span_end(span);
    Ok(QuiescenceReport {
        cpus: cfg.cpus,
        cve: case.id.to_string(),
        function,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_contention_is_real() {
        let cfg = SmpLoadConfig {
            load_levels: vec![0, 4],
            probes: 6,
            ..SmpLoadConfig::default()
        };
        let a = run_quiescence_load(&cfg, &mut Tracer::disabled()).unwrap();
        let b = run_quiescence_load(&cfg, &mut Tracer::disabled()).unwrap();
        assert_eq!(a.render(), b.render());
        // An unloaded machine always captures first try; a loaded one
        // aborts for real — no fault plan is armed anywhere here — and
        // the retry policy drains every abort back to success.
        assert_eq!(a.rows[0].aborts, 0);
        assert!(
            a.rows[1].aborts > 0,
            "expected real NotQuiescent aborts under load:\n{}",
            a.render()
        );
        assert_eq!(
            a.rows[1].pause_steps.len() as u64,
            cfg.probes,
            "every probe ends in a successful window"
        );
        // The rendezvous cost is visible: a loaded capture runs each
        // busy vCPU up to one quantum before the text write.
        assert!(a.rows[1].pause_steps.iter().all(|&p| p > 0));
    }
}
