//! The rebase evaluation matrix: 64 corpus CVEs × 4 drift levels.
//!
//! The paper's 56/64 table measures patches built against the *exact*
//! running tree. This matrix takes the axis one step deeper: for each
//! drift level D1–D4 ([`DriftLevel`]) the base tree is evolved by the
//! seeded drift generator, and every corpus update is ported onto the
//! drifted tree by the [`ksplice_core::rebase`] pipeline. Each cell is
//! classified auto-ported / manual-fix-needed / rejected, auto-port
//! success is attributed per mutator class, and — crucially — the
//! drift generator's ground-truth log is cross-checked against the
//! functions each port actually patched, so a silent wrong-function
//! patch can never count as a success.
//!
//! Everything is seeded and deterministic: the same
//! [`RebaseMatrixConfig`] produces a byte-identical [`RebaseMatrix`]
//! render, which CI pins with a two-run `cmp`.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

use ksplice_core::{
    rebase_update, BuildCache, CreateOptions, RebaseOptions, RebaseStatus, Tracer,
};
use ksplice_lang::{
    build_tree_image_cached, canonicalize_tree, generate_drift, DriftClass, DriftLevel, DriftLog,
    Options, SourceTree,
};

use crate::corpus::{corpus, diff_trees, Cve};
use crate::driver::default_eval_jobs;
use crate::fuzz::canonical_base_tree;

/// Shape of one matrix run.
#[derive(Debug, Clone)]
pub struct RebaseMatrixConfig {
    /// Drift-generator seed; every level derives its own stream from it.
    pub seed: u64,
    /// Drift levels to sweep (columns of the matrix).
    pub levels: Vec<DriftLevel>,
    /// Number of corpus CVEs to run, in corpus order (0 = all 64).
    pub cve_limit: usize,
    /// Worker threads (0 = one per hardware thread).
    pub jobs: usize,
}

impl Default for RebaseMatrixConfig {
    fn default() -> RebaseMatrixConfig {
        RebaseMatrixConfig {
            seed: 0xd41f_75ee,
            levels: DriftLevel::ALL.to_vec(),
            cve_limit: 0,
            jobs: 0,
        }
    }
}

impl RebaseMatrixConfig {
    /// The CI smoke shape: 8 CVEs × {D1, D2}.
    pub fn smoke() -> RebaseMatrixConfig {
        RebaseMatrixConfig {
            cve_limit: 8,
            levels: vec![DriftLevel::D1, DriftLevel::D2],
            ..RebaseMatrixConfig::default()
        }
    }
}

/// One (CVE, drift-level) cell.
#[derive(Debug, Clone)]
pub struct RebaseCell {
    /// CVE identifier.
    pub cve: &'static str,
    /// Drift level of the column.
    pub level: DriftLevel,
    /// The pipeline's verdict.
    pub status: RebaseStatus,
    /// The original pack still run-pre-matched the drifted kernel.
    pub reused: bool,
    /// The apply + checksum-verified-undo gate passed.
    pub verified: bool,
    /// Ladder strategies used across the cell's hunks (sorted, unique).
    pub strategies: Vec<&'static str>,
    /// Renames the fuzzy matcher learned for this cell.
    pub renames: usize,
    /// Cross-unit moves the fuzzy matcher learned.
    pub moves: usize,
    /// Classified refusal/rejection reasons (empty when auto-ported).
    pub reasons: Vec<String>,
    /// Drift classes that touched this CVE's patched functions or units
    /// (the attribution axis of the per-mutator-class table).
    pub classes: Vec<DriftClass>,
    /// A ground-truth violation: the cell claims auto-ported but the
    /// drift log proves a patched function was deleted or the patch
    /// landed in a split wrapper. Must never happen.
    pub misport: Option<String>,
}

/// Aggregate result of a matrix sweep.
#[derive(Debug, Clone)]
pub struct RebaseMatrix {
    /// Seed the drift streams derived from.
    pub seed: u64,
    /// Levels swept, in order.
    pub levels: Vec<DriftLevel>,
    /// Ground-truth drift logs, one per level.
    pub logs: Vec<DriftLog>,
    /// All cells, level-major then corpus order.
    pub cells: Vec<RebaseCell>,
}

impl RebaseMatrix {
    /// Cells of one level, in corpus order.
    pub fn level_cells(&self, level: DriftLevel) -> impl Iterator<Item = &RebaseCell> {
        self.cells.iter().filter(move |c| c.level == level)
    }

    /// Auto-port success rate (percent) at a level.
    pub fn auto_port_rate(&self, level: DriftLevel) -> f64 {
        let (mut auto_ported, mut total) = (0usize, 0usize);
        for c in self.level_cells(level) {
            total += 1;
            if c.status == RebaseStatus::AutoPorted {
                auto_ported += 1;
            }
        }
        100.0 * auto_ported as f64 / total.max(1) as f64
    }

    /// Per-mutator-class attribution: for every drift class, how many
    /// cells it touched and how many of those still auto-ported.
    pub fn class_stats(&self) -> Vec<(DriftClass, usize, usize)> {
        DriftClass::ALL
            .iter()
            .map(|&class| {
                let touched: Vec<&RebaseCell> = self
                    .cells
                    .iter()
                    .filter(|c| c.classes.contains(&class))
                    .collect();
                let ported = touched
                    .iter()
                    .filter(|c| c.status == RebaseStatus::AutoPorted)
                    .count();
                (class, touched.len(), ported)
            })
            .filter(|(_, touched, _)| *touched > 0)
            .collect()
    }

    /// Cells violating the ground truth (must be empty).
    pub fn misports(&self) -> Vec<&RebaseCell> {
        self.cells.iter().filter(|c| c.misport.is_some()).collect()
    }

    /// Non-auto-ported cells lacking a classified reason (must be
    /// empty: every refusal names why).
    pub fn unclassified(&self) -> Vec<&RebaseCell> {
        self.cells
            .iter()
            .filter(|c| c.status != RebaseStatus::AutoPorted && c.reasons.is_empty())
            .collect()
    }

    /// Deterministic human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "== rebase matrix (seed {:#x}) ==", self.seed);
        let cvs = self.cells.len() / self.levels.len().max(1);
        let _ = writeln!(s, "{} CVEs x {} drift levels", cvs, self.levels.len());
        for &level in &self.levels {
            let auto_ported = self
                .level_cells(level)
                .filter(|c| c.status == RebaseStatus::AutoPorted)
                .count();
            let reused = self.level_cells(level).filter(|c| c.reused).count();
            let _ = writeln!(
                s,
                "{}: {auto_ported}/{cvs} auto-ported ({:.1}%), {reused} by pack reuse",
                level.name(),
                self.auto_port_rate(level),
            );
        }
        let _ = writeln!(s, "\n-- auto-port rate by drift class --");
        for (class, touched, ported) in self.class_stats() {
            let _ = writeln!(
                s,
                "{:<16} {ported}/{touched} cells auto-ported",
                class.name()
            );
        }
        let _ = writeln!(s, "\n-- non-auto-ported cells --");
        for c in &self.cells {
            if c.status == RebaseStatus::AutoPorted {
                continue;
            }
            let _ = writeln!(s, "{} @ {}: {}", c.cve, c.level.name(), c.status.as_str());
            for r in &c.reasons {
                let _ = writeln!(s, "    {r}");
            }
        }
        for c in self.misports() {
            let _ = writeln!(
                s,
                "MISPORT {} @ {}: {}",
                c.cve,
                c.level.name(),
                c.misport.as_deref().unwrap_or("")
            );
        }
        s
    }

    /// Deterministic JSON for `BENCH_rebase.json` and the CLI's
    /// `--json` flag.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(
            s,
            "  \"levels\": [{}],",
            self.levels
                .iter()
                .map(|l| format!("\"{}\"", l.name()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        s.push_str("  \"auto_port_rate\": {");
        let rates: Vec<String> = self
            .levels
            .iter()
            .map(|&l| format!("\"{}\": {:.1}", l.name(), self.auto_port_rate(l)))
            .collect();
        s.push_str(&rates.join(", "));
        s.push_str("},\n");
        s.push_str("  \"class_stats\": {");
        let stats: Vec<String> = self
            .class_stats()
            .iter()
            .map(|(c, touched, ported)| {
                format!("\"{}\": {{\"touched\": {touched}, \"ported\": {ported}}}", c.name())
            })
            .collect();
        s.push_str(&stats.join(", "));
        s.push_str("},\n");
        let _ = writeln!(s, "  \"misports\": {},", self.misports().len());
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"cve\": \"{}\", \"level\": \"{}\", \"status\": \"{}\", \
                 \"reused\": {}, \"verified\": {}, \"strategies\": [{}], \"reasons\": {}}}{comma}",
                c.cve,
                c.level.name(),
                c.status.as_str(),
                c.reused,
                c.verified,
                c.strategies
                    .iter()
                    .map(|st| format!("\"{st}\""))
                    .collect::<Vec<_>>()
                    .join(", "),
                c.reasons.len(),
            );
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Runs the matrix: drift the base per level, rebase every corpus
/// update onto each drifted tree, cross-check against ground truth.
pub fn run_rebase_matrix(
    cfg: &RebaseMatrixConfig,
    tracer: &mut Tracer,
) -> Result<RebaseMatrix, String> {
    let mut cases = corpus();
    if cfg.cve_limit > 0 {
        cases.truncate(cfg.cve_limit);
    }
    let canon = canonical_base_tree();
    let cache = BuildCache::new();

    // Ground-truth drift victims: every function any corpus patch
    // edits, so the D4 delete/split ops actually exercise the
    // negative paths.
    let mut victims: Vec<String> = cases
        .iter()
        .flat_map(|c| c.edited_fns.iter().map(|f| f.to_string()))
        .collect();
    victims.sort();
    victims.dedup();

    // One drifted tree per level; the distro image is built (and
    // cached) up front so workers never duplicate the compile.
    let mut drifted: Vec<(SourceTree, DriftLog)> = Vec::new();
    for &level in &cfg.levels {
        let (tree, log) = generate_drift(&canon, level, cfg.seed, &victims)?;
        build_tree_image_cached(&tree, &Options::distro(), &cache)
            .map_err(|e| format!("drifted tree {level} does not build: {e}"))?;
        drifted.push((tree, log));
    }

    // Patches are recomputed in canonical space: the drift generator
    // pretty-prints its output, so the original raw-text diffs would
    // read formatting as drift.
    let patches: Vec<(String, CreateOptions)> = cases
        .iter()
        .map(|case| {
            let patched = if case.needs_custom_code() {
                case.patched_tree_with_custom()
            } else {
                case.patched_tree()
            };
            let opts = CreateOptions {
                accept_data_changes: case.needs_custom_code(),
                ..CreateOptions::default()
            };
            (diff_trees(&canon, &canonicalize_tree(&patched)), opts)
        })
        .collect();

    // Fan the (level, cve) cells out over workers, driver-style:
    // private tracers absorbed after join, index-ordered reassembly.
    let total = cfg.levels.len() * cases.len();
    let jobs = if cfg.jobs == 0 {
        default_eval_jobs()
    } else {
        cfg.jobs
    }
    .clamp(1, total.max(1));
    let mut results: Vec<Option<Result<RebaseCell, String>>> = Vec::new();
    results.resize_with(total, || None);

    let run_one = |i: usize, tracer: &mut Tracer| -> Result<RebaseCell, String> {
        let (li, ci) = (i / cases.len(), i % cases.len());
        let case = &cases[ci];
        let (tree, log) = &drifted[li];
        let (patch_text, create_opts) = &patches[ci];
        run_cell(
            case,
            cfg.levels[li],
            patch_text,
            create_opts,
            &canon,
            tree,
            log,
            &cache,
            tracer,
        )
    };

    if jobs == 1 {
        for (i, slot) in results.iter_mut().enumerate() {
            *slot = Some(run_one(i, tracer));
        }
    } else {
        let next = AtomicUsize::new(0);
        let trace_workers = tracer.is_enabled();
        let worker_outputs = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = if trace_workers {
                            Tracer::new()
                        } else {
                            Tracer::disabled()
                        };
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= total {
                                break;
                            }
                            done.push((i, run_one(i, &mut local)));
                        }
                        (done, local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rebase matrix worker panicked"))
                .collect::<Vec<_>>()
        });
        for (done, local) in worker_outputs {
            tracer.absorb(&local);
            for (i, result) in done {
                results[i] = Some(result);
            }
        }
    }

    let mut cells = Vec::with_capacity(total);
    for result in results {
        cells.push(result.expect("every cell index was claimed")?);
    }
    Ok(RebaseMatrix {
        seed: cfg.seed,
        levels: cfg.levels.clone(),
        logs: drifted.into_iter().map(|(_, log)| log).collect(),
        cells,
    })
}

/// One cell: rebase the update, then grade the outcome against the
/// drift log's ground truth.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    case: &Cve,
    level: DriftLevel,
    patch_text: &str,
    create_opts: &CreateOptions,
    canon: &SourceTree,
    tree: &SourceTree,
    log: &DriftLog,
    cache: &BuildCache,
    tracer: &mut Tracer,
) -> Result<RebaseCell, String> {
    let opts = RebaseOptions {
        create: create_opts.clone(),
        ..RebaseOptions::default()
    };
    let (report, _pack) = rebase_update(case.id, canon, patch_text, tree, &opts, cache, tracer)
        .map_err(|e| format!("{} @ {level}: {e}", case.id))?;

    // Drift-class attribution: ops in this CVE's patched units, plus
    // ops whose victim is one of its edited functions.
    let patched_paths: BTreeSet<&str> = canon
        .iter()
        .filter(|(p, c)| tree_changed(p, c, patch_text))
        .map(|(p, _)| p)
        .collect();
    let classes: Vec<DriftClass> = {
        let mut set = BTreeSet::new();
        for op in &log.ops {
            if patched_paths.contains(op.unit.as_str())
                || case.edited_fns.iter().any(|f| *f == op.func)
            {
                set.insert(op.class);
            }
        }
        set.into_iter().collect()
    };

    // Ground-truth cross-check: an auto-ported cell must not have
    // patched a deleted function's leftovers nor a split wrapper.
    let mut misport = None;
    if report.status == RebaseStatus::AutoPorted {
        for f in &case.edited_fns {
            match log.fate(f) {
                ksplice_lang::FnFate::Deleted => {
                    misport = Some(format!(
                        "{f} was deleted by drift, yet the cell claims auto-ported"
                    ));
                }
                ksplice_lang::FnFate::Split => {
                    if report.ported_fns.iter().any(|p| p == f) {
                        misport = Some(format!(
                            "{f} was split by drift, yet a hunk landed in the wrapper"
                        ));
                    }
                }
                ksplice_lang::FnFate::Present { .. } => {}
            }
        }
    }

    let mut strategies: Vec<&'static str> =
        report.ports.iter().map(|p| p.strategy).collect();
    strategies.sort();
    strategies.dedup();

    Ok(RebaseCell {
        cve: case.id,
        level,
        status: report.status,
        reused: report.reused_pack,
        verified: report.verified,
        strategies,
        renames: report.renames.len(),
        moves: report.moves.len(),
        reasons: report.reasons,
        classes,
        misport,
    })
}

/// Whether the canonical patch mentions `path` as a changed file.
fn tree_changed(path: &str, _content: &str, patch_text: &str) -> bool {
    patch_text
        .lines()
        .any(|l| l.strip_prefix("--- a/").is_some_and(|p| p == path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_is_deterministic_and_sound() {
        let cfg = RebaseMatrixConfig::smoke();
        let a = run_rebase_matrix(&cfg, &mut Tracer::disabled()).unwrap();
        let b = run_rebase_matrix(&cfg, &mut Tracer::disabled()).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.misports().is_empty(), "{}", a.render());
        assert!(a.unclassified().is_empty(), "{}", a.render());
        for c in &a.cells {
            if c.status == RebaseStatus::AutoPorted {
                assert!(c.verified, "{} @ {} auto-ported but unverified", c.cve, c.level);
            }
        }
    }
}
