//! The end-to-end evaluation driver (paper §6.2–§6.3).
//!
//! For every corpus entry: boot the vulnerable kernel, (optionally) prove
//! the exploit works, build the hot update with `ksplice-create`, apply
//! it to the running kernel, run the correctness-checking stress test,
//! prove the exploit is dead, and reverse the update. The aggregate
//! report regenerates the paper's headline numbers, Figure 3 and
//! Table 1.
//!
//! The driver is built for corpus throughput: one [`BuildCache`] is
//! shared across every CVE so the base tree (both the distro boot image
//! and the pre build) is compiled exactly once per process and each post
//! build recompiles only the patched units, and
//! [`run_full_evaluation_jobs`] fans the corpus out over
//! `std::thread::scope` workers — each CVE gets its own [`Kernel`], each
//! worker its own [`Tracer`] merged back via [`Tracer::absorb`] after
//! join, and outcome ordering is deterministic regardless of worker
//! interleaving.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use ksplice_core::{create_update_cached_traced, ApplyOptions, BuildCache, CreateOptions, Ksplice, Tracer};
use ksplice_kernel::Kernel;
use ksplice_lang::{build_tree_image_cached, Options, SourceTree};
use ksplice_object::ObjectSet;
use ksplice_patch::Patch;

use crate::corpus::{corpus, CustomReason, Cve};
use crate::exploits::run_exploit;
use crate::stats::{corpus_stats, figure3_buckets, symbol_stats, CorpusStats, SymbolStats};
use crate::stress::{load_stress_cached, run_stress};
use crate::tree::base_tree;

/// The result of running one CVE end to end.
#[derive(Debug, Clone)]
pub struct CveOutcome {
    /// CVE identifier.
    pub id: &'static str,
    /// Changed lines in the plain security patch (Figure 3's metric).
    pub patch_loc: usize,
    /// Whether the entry is one of Table 1's custom-code cases.
    pub needs_custom_code: bool,
    /// Logical lines of custom code (0 when none).
    pub custom_lines: u32,
    /// Why custom code was needed, when it was.
    pub custom_reason: Option<CustomReason>,
    /// Did the plain patch apply without programmer involvement?
    pub plain_applied: bool,
    /// Did the shippable patch (with custom code when needed) apply?
    pub applied: bool,
    /// Functions the shippable update replaced.
    pub replaced_fns: usize,
    /// The stress workload survived across the apply.
    pub stress_ok: bool,
    /// Exploit verdict pre-apply (`None` when the entry has no exploit).
    pub exploit_before: Option<bool>,
    /// Exploit verdict post-apply.
    pub exploit_after: Option<bool>,
    /// The update reversed cleanly afterwards.
    pub undo_ok: bool,
    /// stop_machine pause for the apply (paper: ~0.7 ms).
    pub pause: Duration,
    /// stop_machine attempts before the safety check passed (§5.2).
    pub attempts: u32,
    /// stop_machine attempts for the reversal (0 when the undo failed),
    /// from the same [`ksplice_core::UndoReport`] as its pause.
    pub undo_attempts: u32,
    /// Size of the helper (run-pre) module's object.
    pub helper_bytes: usize,
    /// Size of the primary (replacement-code) module's object.
    pub primary_bytes: usize,
}

/// Runs one corpus entry end to end (fresh cache, no tracing).
pub fn run_cve(case: &Cve, stress_rounds: u64) -> Result<CveOutcome, String> {
    run_cve_cached(case, stress_rounds, &BuildCache::new(), &mut Tracer::disabled())
}

/// [`run_cve`] through a shared [`BuildCache`], with cache and apply
/// counters on `tracer`.
pub fn run_cve_cached(
    case: &Cve,
    stress_rounds: u64,
    cache: &BuildCache,
    tracer: &mut Tracer,
) -> Result<CveOutcome, String> {
    let base = base_tree();
    let image = distro_image(&base, cache)?;
    baseline_stress_check(&image, cache, stress_rounds)
        .map_err(|e| format!("{}: {e}", case.id))?;
    run_cve_with(
        case,
        stress_rounds,
        &base,
        &image,
        cache,
        &ApplyOptions::default(),
        tracer,
    )
}

/// Proves the *unpatched* kernel passes the stress test. One freshly
/// booted image is as good as another, so the full evaluation runs this
/// once instead of once per CVE.
fn baseline_stress_check(
    image: &ObjectSet,
    cache: &BuildCache,
    stress_rounds: u64,
) -> Result<(), String> {
    let mut kernel = Kernel::boot_image(image).map_err(|e| format!("boot: {e}"))?;
    let entry = load_stress_cached(&mut kernel, cache)?;
    run_stress(&mut kernel, entry, stress_rounds.min(5)).map_err(|e| format!("baseline {e}"))
}

/// Builds the distro (run) kernel image through the cache, so 64 boots
/// cost one compile of the tree.
pub(crate) fn distro_image(base: &SourceTree, cache: &BuildCache) -> Result<ObjectSet, String> {
    build_tree_image_cached(base, &Options::distro(), cache)
        .map(|(set, _)| set)
        .map_err(|e| format!("boot: {e}"))
}

/// The worker body: one CVE end to end against a prebuilt boot image and
/// a shared build cache.
fn run_cve_with(
    case: &Cve,
    stress_rounds: u64,
    base: &SourceTree,
    image: &ObjectSet,
    cache: &BuildCache,
    apply_opts: &ApplyOptions,
    tracer: &mut Tracer,
) -> Result<CveOutcome, String> {
    let mut kernel = Kernel::boot_image(image).map_err(|e| format!("boot: {e}"))?;
    // Gated on cpus > 1 so the default path never re-homes threads —
    // the N = 1 corpus output stays byte-identical to the historical
    // uniprocessor driver.
    if apply_opts.smp.cpus > 1 {
        kernel.configure_smp(apply_opts.smp.clone());
    }
    let stress_entry = load_stress_cached(&mut kernel, cache)?;

    let exploit_before = run_exploit(&mut kernel, case);
    if let Some(worked) = exploit_before {
        if !worked {
            return Err(format!("{}: exploit should work pre-patch", case.id));
        }
    }

    // First, the §2 check: does the *plain* patch make it through
    // ksplice-create with no programmer involvement?
    let plain_patch = case.patch_text();
    let patch_loc = Patch::parse(&plain_patch)
        .map(|p| p.changed_line_count())
        .map_err(|e| format!("{}: {e}", case.id))?;
    let plain = create_update_cached_traced(
        case.id,
        base,
        &plain_patch,
        &CreateOptions::default(),
        cache,
        tracer,
    );
    let plain_applied = plain.is_ok();

    // The shippable update: with custom code (and the programmer's
    // data-semantics sign-off) when the corpus says it is needed.
    let (pack, _patched) = if case.needs_custom_code() {
        let opts = CreateOptions {
            accept_data_changes: true,
            ..CreateOptions::default()
        };
        create_update_cached_traced(case.id, base, &case.full_patch_text(), &opts, cache, tracer)
            .map_err(|e| format!("{}: create: {e}", case.id))?
    } else {
        plain.map_err(|e| format!("{}: create: {e}", case.id))?
    };

    let mut ks = Ksplice::new();
    let report = ks
        .apply_traced(&mut kernel, &pack, apply_opts, tracer)
        .map_err(|e| format!("{}: apply: {e}", case.id))?;
    // Both numbers come from the same ApplyReport: the pause and the
    // attempt count describe the same successful stop_machine window.
    let pause = report.pause;

    let stress_ok = run_stress(&mut kernel, stress_entry, stress_rounds).is_ok();
    let exploit_after = run_exploit(&mut kernel, case);

    let undo_report = ks.undo_traced(&mut kernel, case.id, apply_opts, tracer);
    let undo_ok = undo_report.is_ok();
    let undo_attempts = undo_report.map(|r| r.attempts).unwrap_or(0);

    Ok(CveOutcome {
        id: case.id,
        patch_loc,
        needs_custom_code: case.needs_custom_code(),
        custom_lines: case.custom.as_ref().map(|c| c.lines).unwrap_or(0),
        custom_reason: case.custom.as_ref().map(|c| c.reason),
        plain_applied,
        applied: true,
        replaced_fns: pack.replaced_fn_count(),
        stress_ok,
        exploit_before,
        exploit_after,
        undo_ok,
        pause,
        attempts: report.attempts,
        undo_attempts,
        helper_bytes: pack.helper_size(),
        primary_bytes: pack.primary_size(),
    })
}

/// The full evaluation: every CVE plus the aggregate statistics.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Per-CVE outcomes, in corpus order.
    pub outcomes: Vec<CveOutcome>,
    /// Kallsyms ambiguity measurements (§6.3).
    pub symbol_stats: SymbolStats,
    /// Aggregate patch-size and custom-code statistics.
    pub corpus_stats: CorpusStats,
}

impl EvalReport {
    /// Headline: CVEs applied with no new code (paper: 56 of 64).
    pub fn applied_without_new_code(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.plain_applied && !o.needs_custom_code)
            .count()
    }

    /// Headline: CVEs applied in total (paper: 64 of 64).
    pub fn applied_total(&self) -> usize {
        self.outcomes.iter().filter(|o| o.applied).count()
    }

    /// Average custom-code lines over the Table-1 entries (paper: ~17).
    pub fn average_custom_lines(&self) -> f64 {
        let custom: Vec<u32> = self
            .outcomes
            .iter()
            .filter(|o| o.needs_custom_code)
            .map(|o| o.custom_lines)
            .collect();
        custom.iter().sum::<u32>() as f64 / custom.len().max(1) as f64
    }

    /// Figure 3: number of patches per 5-line bucket.
    pub fn figure3(&self) -> Vec<(String, usize)> {
        let locs: Vec<usize> = self.outcomes.iter().map(|o| o.patch_loc).collect();
        figure3_buckets(&locs)
    }

    /// Table 1 rows, sorted paper-style (most recent first).
    pub fn table1(&self) -> Vec<(&'static str, &'static str, u32)> {
        let mut rows: Vec<(&'static str, &'static str, u32)> = self
            .outcomes
            .iter()
            .filter(|o| o.needs_custom_code)
            .map(|o| {
                let reason = match o.custom_reason {
                    Some(CustomReason::AddsFieldToStruct) => "adds field to struct",
                    _ => "changes data init",
                };
                (o.id, reason, o.custom_lines)
            })
            .collect();
        rows.sort_by(|a, b| b.0.cmp(a.0));
        rows
    }

    /// Renders the report the way the paper's evaluation section does.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "== Ksplice evaluation (paper §6) ==");
        let _ = writeln!(
            s,
            "patches applied without new code: {} of {} (paper: 56 of 64)",
            self.applied_without_new_code(),
            self.outcomes.len()
        );
        let _ = writeln!(
            s,
            "patches applied in total:         {} of {} (paper: 64 of 64)",
            self.applied_total(),
            self.outcomes.len()
        );
        let _ = writeln!(
            s,
            "avg custom code lines (Table 1):  {:.1} (paper: ~17)",
            self.average_custom_lines()
        );
        let exploits: Vec<&CveOutcome> = self
            .outcomes
            .iter()
            .filter(|o| o.exploit_before.is_some())
            .collect();
        let _ = writeln!(
            s,
            "exploits defeated:                {} of {} (paper: 4 of 4)",
            exploits
                .iter()
                .filter(|o| o.exploit_before == Some(true) && o.exploit_after == Some(false))
                .count(),
            exploits.len()
        );
        let stress_fail = self.outcomes.iter().filter(|o| !o.stress_ok).count();
        let _ = writeln!(s, "stress-test failures:             {stress_fail}");
        let max_pause = self
            .outcomes
            .iter()
            .map(|o| o.pause)
            .max()
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "max stop_machine pause:           {:?} (paper: ~0.7 ms)",
            max_pause
        );
        let max_attempts = self.outcomes.iter().map(|o| o.attempts).max().unwrap_or(0);
        let _ = writeln!(
            s,
            "max stop_machine attempts:        {max_attempts} (quiescence retries, §5.2)"
        );
        let _ = writeln!(s, "\n-- Figure 3: number of patches by patch length --");
        for (bucket, n) in self.figure3() {
            if n > 0 {
                let _ = writeln!(s, "{bucket:>6} lines: {}", "#".repeat(n));
            }
        }
        let _ = writeln!(s, "\n-- Table 1: patches that need new code --");
        let _ = writeln!(
            s,
            "{:<16} {:<22} {:>9}",
            "CVE ID", "Reason for failure", "New code"
        );
        for (id, reason, lines) in self.table1() {
            let _ = writeln!(s, "{id:<16} {reason:<22} {lines:>4} lines");
        }
        let _ = writeln!(
            s,
            "\n-- Symbol ambiguity (paper: 7.9% of symbols, 21.1% of units) --"
        );
        let _ = writeln!(
            s,
            "{} of {} symbols ambiguous ({:.1}%); {} of {} units affected ({:.1}%)",
            self.symbol_stats.ambiguous_symbols,
            self.symbol_stats.total_symbols,
            self.symbol_stats.ambiguous_fraction * 100.0,
            self.symbol_stats.units_with_ambiguous,
            self.symbol_stats.total_units,
            self.symbol_stats.unit_fraction * 100.0,
        );
        let _ = writeln!(
            s,
            "patches touching inlined fns: {} of 64 (paper: 20); declared inline: {} (paper: 4); ambiguous symbols: {} (paper: 5)",
            self.corpus_stats.touching_inlined.len(),
            self.corpus_stats.touching_inline_keyword.len(),
            self.corpus_stats.touching_ambiguous.len(),
        );
        s
    }
}

/// Worker count used when the caller does not specify `--jobs`: one per
/// available hardware thread.
pub fn default_eval_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs the whole corpus with [`default_eval_jobs`] workers.
/// `stress_rounds` trades coverage for time (the test suite uses a small
/// number; the bench uses more).
pub fn run_full_evaluation(stress_rounds: u64) -> Result<EvalReport, String> {
    run_full_evaluation_jobs(stress_rounds, default_eval_jobs())
}

/// [`run_full_evaluation`] with an explicit worker count (the CLI's
/// `--jobs N`). `jobs = 1` runs serially on the calling thread.
pub fn run_full_evaluation_jobs(stress_rounds: u64, jobs: usize) -> Result<EvalReport, String> {
    run_full_evaluation_traced(stress_rounds, jobs, &mut Tracer::disabled())
}

/// [`run_full_evaluation_jobs`] with cache/apply counters and histograms
/// merged onto `tracer`. Workers trace into private [`Tracer`]s absorbed
/// after join, so the merged metrics are identical for any `jobs` value;
/// outcome order always matches corpus order.
pub fn run_full_evaluation_traced(
    stress_rounds: u64,
    jobs: usize,
    tracer: &mut Tracer,
) -> Result<EvalReport, String> {
    run_full_evaluation_opts(stress_rounds, jobs, &ApplyOptions::default(), tracer)
}

/// [`run_full_evaluation_traced`] with an explicit apply-time policy
/// (the CLI's `--retry-policy` reaches every per-CVE apply and undo
/// through here).
pub fn run_full_evaluation_opts(
    stress_rounds: u64,
    jobs: usize,
    apply_opts: &ApplyOptions,
    tracer: &mut Tracer,
) -> Result<EvalReport, String> {
    let cases = corpus();
    let base = base_tree();
    let cache = BuildCache::new();
    // Compile the boot image (and warm the cache) once, up front — every
    // worker boots from these objects.
    let image = distro_image(&base, &cache)?;
    // The §6.2 sanity check that the unpatched kernel passes the stress
    // test: every per-CVE kernel boots from the identical image, so one
    // check covers them all.
    baseline_stress_check(&image, &cache, stress_rounds)?;

    let jobs = jobs.clamp(1, cases.len().max(1));
    let mut results: Vec<Option<Result<CveOutcome, String>>> = Vec::new();
    results.resize_with(cases.len(), || None);
    if jobs == 1 {
        for (case, slot) in cases.iter().zip(results.iter_mut()) {
            *slot = Some(run_cve_with(
                case,
                stress_rounds,
                &base,
                &image,
                &cache,
                apply_opts,
                tracer,
            ));
        }
    } else {
        let next = AtomicUsize::new(0);
        let trace_workers = tracer.is_enabled();
        let worker_outputs = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = if trace_workers {
                            Tracer::new()
                        } else {
                            Tracer::disabled()
                        };
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= cases.len() {
                                break;
                            }
                            done.push((
                                i,
                                run_cve_with(
                                    &cases[i],
                                    stress_rounds,
                                    &base,
                                    &image,
                                    &cache,
                                    apply_opts,
                                    &mut local,
                                ),
                            ));
                        }
                        (done, local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("evaluation worker panicked"))
                .collect::<Vec<_>>()
        });
        for (done, local) in worker_outputs {
            tracer.absorb(&local);
            for (i, result) in done {
                results[i] = Some(result);
            }
        }
    }

    // Deterministic error semantics: the failure at the lowest corpus
    // index wins, exactly as the serial loop would have reported it.
    let mut outcomes = Vec::with_capacity(cases.len());
    for result in results {
        outcomes.push(result.expect("every corpus index was claimed")?);
    }

    // The stats kernel boots from the same image — the base tree is built
    // once per evaluation, not twice more after the CVE loop.
    let kernel = Kernel::boot_image(&image).map_err(|e| format!("boot: {e}"))?;
    let units = base.iter().filter(|(p, _)| p.ends_with(".kc")).count();
    Ok(EvalReport {
        symbol_stats: symbol_stats(&kernel, units),
        corpus_stats: corpus_stats(&cases, &kernel),
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_exploit_cve_end_to_end() {
        let cases = corpus();
        let prctl = cases.iter().find(|c| c.id == "CVE-2006-2451").unwrap();
        let o = run_cve(prctl, 10).unwrap();
        assert!(o.plain_applied);
        assert!(o.applied && o.stress_ok && o.undo_ok);
        assert_eq!(o.exploit_before, Some(true));
        assert_eq!(o.exploit_after, Some(false));
        assert!(o.patch_loc <= 5);
    }

    #[test]
    fn one_custom_code_cve_end_to_end() {
        let cases = corpus();
        let shadow = cases.iter().find(|c| c.id == "CVE-2005-2709").unwrap();
        let o = run_cve(shadow, 10).unwrap();
        // The plain patch for the Table-1 init-changers fails create; for
        // the shadow case the plain patch builds but lacks the migration.
        assert!(o.applied && o.stress_ok && o.undo_ok);
        assert_eq!(o.custom_lines, 48);
    }

    #[test]
    fn a_data_init_cve_needs_signoff() {
        let cases = corpus();
        let brk = cases.iter().find(|c| c.id == "CVE-2008-0007").unwrap();
        let o = run_cve(brk, 5).unwrap();
        assert!(
            !o.plain_applied,
            "init change must be refused without sign-off"
        );
        assert!(o.applied && o.stress_ok && o.undo_ok);
        assert_eq!(o.custom_lines, 34);
    }
}
