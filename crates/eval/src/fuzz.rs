//! `ksplice-fuzz`: randomized patch campaigns with a cold-boot vs
//! hot-patch differential oracle.
//!
//! The property under test is the Ksplice contract itself: *a hot-patched
//! kernel must behave exactly like a kernel cold-booted from the patched
//! source*. Each campaign iteration generates a random source mutation
//! (standing in for a security patch), feeds it through the full
//! `ksplice-create` pipeline, and then compares two kernels:
//!
//! * the **reference**: booted cold from the *post*-mutation source, and
//! * the **subject**: booted from the *pre* source and hot-patched.
//!
//! Both run the same workload; their normalized call traces, final
//! memory images (outside legitimately-different regions), and exploit
//! outcomes must agree. Any disagreement — or any Rust-side panic — is an
//! oracle failure, auto-shrunk to a minimal mutation sequence and
//! rendered as a self-contained regression case for
//! `crates/eval/fuzz-regressions/`.
//!
//! Mutants the pipeline *rejects* are not failures: a post build that no
//! longer compiles, a data-semantics veto, a no-object-effect diff, or a
//! clean documented apply abort each exercise a guard the paper requires
//! (§2, §4.3). The campaign counts them per mutator as "kills" and the
//! report shows which pipeline gate killed what.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};

use ksplice_core::trace::{Severity, Stage};
use ksplice_core::{
    create_update_cached_traced, ApplyError, ApplyOptions, BuildCache, CreateError, CreateOptions,
    Ksplice, Tracer, UndoError,
};
use ksplice_kernel::{
    diff_images, diff_traces, normalize_call, traced_call, DiffOptions, Kernel, SmpConfig,
    TraceEntry,
};
use ksplice_lang::{
    apply_mutation, build_tree_cached, generate_mutant, parse_unit, pretty_unit, FuzzRng, Mutation,
    MutatorKind, Options, SourceTree, Type, Unit,
};
use ksplice_object::ObjectSet;

use crate::corpus::{corpus, diff_trees, Cve};
use crate::driver::{default_eval_jobs, distro_image};
use crate::exploits::run_exploit;
use crate::stress::load_stress_cached;
use crate::tree::base_tree;

/// Which workload both kernels run between apply and comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// A fixed sweep of int-argument exported functions across the whole
    /// tree, plus targeted probes of the mutated unit's own functions.
    Syscalls,
    /// The §6.2 stress module (files/sockets/ipc/brk/timers), traced via
    /// its checkpoint return value.
    Stress,
    /// Both of the above.
    Both,
}

impl Workload {
    /// Parses a `--workload` argument.
    pub fn parse(s: &str) -> Option<Workload> {
        match s {
            "syscalls" => Some(Workload::Syscalls),
            "stress" => Some(Workload::Stress),
            "both" => Some(Workload::Both),
            _ => None,
        }
    }

    fn includes_syscalls(self) -> bool {
        matches!(self, Workload::Syscalls | Workload::Both)
    }

    fn includes_stress(self) -> bool {
        matches!(self, Workload::Stress | Workload::Both)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Workload::Syscalls => "syscalls",
            Workload::Stress => "stress",
            Workload::Both => "both",
        })
    }
}

/// Campaign parameters (`ksplice fuzz --seed --mutants --workload`).
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; the i-th mutant's generator is derived from
    /// `(seed, i)`, so results do not depend on the job count.
    pub seed: u64,
    /// How many mutants to run.
    pub mutants: usize,
    /// Worker threads (1 = sequential).
    pub jobs: usize,
    /// Longest mutation sequence the generator may produce (1–3).
    pub max_mutations: usize,
    /// Workload both kernels run.
    pub workload: Workload,
    /// Per-workload-call interpreter step budget. Deliberately far below
    /// the interactive default: a mutant that loops forever should cost
    /// milliseconds, and both kernels hit the same limit deterministically.
    pub call_limit: u64,
    /// vCPU count for every kernel in the differential harness (the
    /// reference, calibration and subject all run the same topology, so
    /// the oracle compares like with like). 1 = the historical
    /// uniprocessor campaign, byte-identical to before the knob existed.
    pub cpus: u32,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 1,
            mutants: 200,
            jobs: default_eval_jobs(),
            max_mutations: 3,
            workload: Workload::Syscalls,
            call_limit: 2_000_000,
            cpus: 1,
        }
    }
}

/// What one mutant did, coarsely classified. `class` strings are stable:
/// regression cases assert on them and FAILURE_MODES.md documents them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The update applied and the subject matched the reference exactly.
    Survived,
    /// The generator found no applicable mutation site.
    NoMutation,
    /// `ksplice-create` (or the post cold-boot) rejected the mutant.
    Killed {
        /// Which gate: `compile-post`, `data-semantics`, `no-effect`,
        /// `post-distro-build`, `post-boot`.
        class: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// `ksplice-apply`/`undo` aborted cleanly (documented failure mode).
    Aborted {
        /// Lower-kebab `ApplyError`/`UndoError` variant name.
        class: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// ORACLE FAILURE: the hot-patched kernel did not match the
    /// cold-booted one.
    Diverged {
        /// What disagreed: `trace`, `exploit`, `image`, `undo-text`.
        class: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Infrastructure failure (pre build broke, patch machinery failed):
    /// as fatal as a divergence — it means the harness itself is wrong.
    Infra {
        /// What broke.
        detail: String,
    },
}

impl Outcome {
    /// Stable string key, e.g. `killed:data-semantics`.
    pub fn class_key(&self) -> String {
        match self {
            Outcome::Survived => "survived".to_string(),
            Outcome::NoMutation => "no-mutation".to_string(),
            Outcome::Killed { class, .. } => format!("killed:{class}"),
            Outcome::Aborted { class, .. } => format!("aborted:{class}"),
            Outcome::Diverged { class, .. } => format!("diverged:{class}"),
            Outcome::Infra { .. } => "infra".to_string(),
        }
    }

    /// True for outcomes that fail the campaign (oracle or harness bugs).
    pub fn is_failure(&self) -> bool {
        matches!(self, Outcome::Diverged { .. } | Outcome::Infra { .. })
    }

    /// The free-text detail, if any.
    pub fn detail(&self) -> &str {
        match self {
            Outcome::Killed { detail, .. }
            | Outcome::Aborted { detail, .. }
            | Outcome::Diverged { detail, .. }
            | Outcome::Infra { detail } => detail,
            _ => "",
        }
    }
}

/// True for oops entries caused by a memory fault (as opposed to
/// deterministic traps like divide errors): wild-pointer evidence.
fn is_memory_oops(e: &TraceEntry) -> bool {
    match e {
        TraceEntry::Oops(r) => {
            r.contains("read-only memory")
                || r.contains("paging request")
                || r.contains("not executable")
                || r.contains("bad native address")
        }
        _ => false,
    }
}

fn apply_abort_class(e: &ApplyError) -> &'static str {
    match e {
        ApplyError::Link(_) => "link",
        ApplyError::Match(_) => "run-pre-match",
        ApplyError::Unresolved { .. } => "unresolved",
        ApplyError::NotQuiescent { .. } => "not-quiescent",
        ApplyError::TooShort { .. } => "too-short",
        ApplyError::Hook { .. } => "hook",
        ApplyError::MissingMatch { .. } => "missing-match",
    }
}

fn undo_abort_class(e: &UndoError) -> &'static str {
    match e {
        UndoError::NotUndoable { .. } => "undo-not-undoable",
        UndoError::NotQuiescent { .. } => "undo-not-quiescent",
        UndoError::Hook { .. } => "undo-hook",
        UndoError::Entangled { .. } => "undo-entangled",
    }
}

/// One campaign row: the mutant and what happened to it.
#[derive(Debug, Clone)]
pub struct MutantRecord {
    /// Campaign index (also the per-mutant RNG discriminator).
    pub index: usize,
    /// The mutated `.kc` unit path.
    pub unit: String,
    /// The applied mutation sequence.
    pub mutations: Vec<Mutation>,
    /// Stable outcome class key.
    pub class: String,
    /// Free-text detail.
    pub detail: String,
}

/// Per-mutator tallies. A multi-mutation mutant counts once in the row
/// of *each distinct* mutator kind it used.
#[derive(Debug, Clone, Copy, Default)]
pub struct MutatorStats {
    /// Mutants that used this mutator.
    pub used: usize,
    /// ...and were rejected by a create/boot gate.
    pub killed: usize,
    /// ...and survived the full oracle.
    pub survived: usize,
    /// ...and cleanly aborted in apply/undo.
    pub aborted: usize,
    /// ...and diverged (oracle failure).
    pub diverged: usize,
}

/// The aggregate result of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Echo of the seed.
    pub seed: u64,
    /// Echo of the mutant count.
    pub mutants: usize,
    /// Echo of the workload.
    pub workload: Workload,
    /// Outcome counts by stable class key.
    pub by_class: BTreeMap<String, usize>,
    /// Per-mutator kill/survive/abort tallies.
    pub by_mutator: BTreeMap<&'static str, MutatorStats>,
    /// Every diverged/infra/panicked mutant, in index order.
    pub failures: Vec<MutantRecord>,
    /// The first mutant seen for each non-survived class, shrunk to a
    /// minimal sequence — exemplar regression cases.
    pub exemplars: Vec<RegressionCase>,
    /// Host panics caught (must be zero).
    pub panics: usize,
    /// FNV-1a fingerprint over every mutant record in index order
    /// (index, unit, class, detail, mutation list). Independent of
    /// `--jobs` by construction — records are hashed in campaign
    /// order, not completion order — so any change to this value
    /// means the oracle's verdicts themselves changed.
    pub digest: u64,
}

impl CampaignReport {
    /// True when the campaign found no oracle failures and no panics.
    pub fn clean(&self) -> bool {
        self.failures.is_empty() && self.panics == 0
    }

    /// Renders the human-readable campaign summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "ksplice-fuzz: {} mutants, seed {}, workload {}",
            self.mutants, self.seed, self.workload
        );
        let _ = writeln!(out, "digest: {:#018x}", self.digest);
        let _ = writeln!(out, "\noutcomes:");
        for (class, n) in &self.by_class {
            let _ = writeln!(out, "  {class:<28} {n}");
        }
        let _ = writeln!(
            out,
            "\nper-mutator (a mutant counts in every mutator row it used):"
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>6} {:>7} {:>9} {:>8} {:>9}",
            "mutator", "used", "killed", "survived", "aborted", "diverged"
        );
        for (name, s) in &self.by_mutator {
            let _ = writeln!(
                out,
                "  {:<12} {:>6} {:>7} {:>9} {:>8} {:>9}",
                name, s.used, s.killed, s.survived, s.aborted, s.diverged
            );
        }
        if !self.exemplars.is_empty() {
            let _ = writeln!(out, "\nshrunk exemplars (one per outcome class):");
            for c in &self.exemplars {
                let _ = writeln!(
                    out,
                    "  {:<28} {} [{}]",
                    c.expect,
                    c.unit,
                    c.mutations
                        .iter()
                        .map(|m| m.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                );
            }
        }
        for f in &self.failures {
            let _ = writeln!(
                out,
                "\nFAILURE mutant #{} ({}): {}\n  {}",
                f.index, f.unit, f.class, f.detail
            );
        }
        let _ = writeln!(
            out,
            "\nverdict: {}",
            if self.clean() {
                "clean (no divergences, no panics)"
            } else {
                "ORACLE FAILURES FOUND"
            }
        );
        out
    }
}

/// A checked-in, self-contained regression case: a unit, a mutation
/// sequence, and the outcome class the oracle must reproduce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegressionCase {
    /// Case name (file stem).
    pub name: String,
    /// The mutated unit path within the canonical base tree.
    pub unit: String,
    /// The expected `Outcome::class_key()`.
    pub expect: String,
    /// The mutation sequence to replay.
    pub mutations: Vec<Mutation>,
    /// Free-text provenance note.
    pub note: String,
}

impl RegressionCase {
    /// Serializes to the `.fuzz` file format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.note.is_empty() {
            for line in self.note.lines() {
                let _ = writeln!(out, "# {line}");
            }
        }
        let _ = writeln!(out, "unit: {}", self.unit);
        let _ = writeln!(out, "expect: {}", self.expect);
        for m in &self.mutations {
            let _ = writeln!(out, "mutation: {m}");
        }
        out
    }

    /// Parses the `.fuzz` file format.
    pub fn parse(name: &str, text: &str) -> Result<RegressionCase, String> {
        let mut unit = None;
        let mut expect = None;
        let mut mutations = Vec::new();
        let mut note = String::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if !note.is_empty() {
                    note.push('\n');
                }
                note.push_str(rest.trim());
            } else if let Some(rest) = line.strip_prefix("unit:") {
                unit = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("expect:") {
                expect = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("mutation:") {
                mutations.push(Mutation::parse(rest.trim())?);
            } else {
                return Err(format!("{name}: unrecognized line: {line}"));
            }
        }
        if mutations.is_empty() {
            return Err(format!("{name}: no mutations"));
        }
        Ok(RegressionCase {
            name: name.to_string(),
            unit: unit.ok_or_else(|| format!("{name}: missing unit:"))?,
            expect: expect.ok_or_else(|| format!("{name}: missing expect:"))?,
            mutations,
            note,
        })
    }
}

/// Loads every `*.fuzz` case under `dir`, sorted by file name.
pub fn load_regression_dir(dir: &std::path::Path) -> Result<Vec<RegressionCase>, String> {
    let mut cases = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "fuzz"))
        .collect();
    paths.sort();
    for p in paths {
        let name = p
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("case")
            .to_string();
        let text = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
        cases.push(RegressionCase::parse(&name, &text)?);
    }
    Ok(cases)
}

/// Returns the base tree with every `.kc` unit replaced by its canonical
/// pretty-printed form. Mutants are generated from — and diffed against —
/// this tree, so a one-node mutation produces a few-line unified diff
/// instead of a whole-file rewrite.
pub fn canonical_base_tree() -> SourceTree {
    let base = base_tree();
    let mut canon = SourceTree::new();
    for (path, src) in base.iter() {
        if path.ends_with(".kc") {
            let unit = parse_unit(path, src)
                .unwrap_or_else(|e| panic!("base tree unit {path} must parse: {e}"));
            canon.insert(path, &pretty_unit(&unit));
        } else {
            canon.insert(path, src);
        }
    }
    canon
}

/// Everything a campaign shares across mutants: the canonical pre tree
/// and its parsed units, the pre boot image, the build cache, the fixed
/// workload script, and the exploit case used as a behavioral probe.
pub struct FuzzContext {
    /// The canonical (pretty-printed) pre source tree.
    pub canon: SourceTree,
    units: Vec<(String, Unit)>,
    pre_image: ObjectSet,
    cache: BuildCache,
    apply_opts: ApplyOptions,
    diff_opts: DiffOptions,
    prctl: Cve,
    sweep: Vec<(String, Vec<u64>)>,
    workload: Workload,
    call_limit: u64,
    cpus: u32,
}

const SWEEP_CAP: usize = 48;
const STRESS_LIMIT: u64 = 30_000_000;
const STRESS_ROUNDS: u64 = 2;

impl FuzzContext {
    /// Builds the shared campaign state: canonicalizes the base tree,
    /// compiles the pre boot image once, and derives the deterministic
    /// cross-tree call sweep.
    pub fn new(cfg: &FuzzConfig) -> Result<FuzzContext, String> {
        let canon = canonical_base_tree();
        let mut units = Vec::new();
        for (path, src) in canon.iter() {
            if path.ends_with(".kc") {
                let unit = parse_unit(path, src).map_err(|e| format!("{path}: {e}"))?;
                units.push((path.to_string(), unit));
            }
        }
        let cache = BuildCache::new();
        let pre_image = distro_image(&canon, &cache)?;
        let prctl = corpus()
            .into_iter()
            .find(|c| c.id == "CVE-2006-2451")
            .ok_or("prctl exploit case missing from corpus")?;

        // The fixed sweep: every exported int-only function with at most
        // two parameters, in sorted order, with small deterministic
        // arguments. Both kernels run exactly this script.
        let mut sweep = Vec::new();
        for (_, unit) in &units {
            for f in unit.functions() {
                if f.is_static
                    || f.params.len() > 2
                    || !f.params.iter().all(|(_, ty)| matches!(ty, Type::Int))
                {
                    continue;
                }
                sweep.push(f.name.clone());
            }
        }
        sweep.sort();
        sweep.dedup();
        sweep.truncate(SWEEP_CAP);
        let sweep = sweep
            .into_iter()
            .enumerate()
            .map(|(k, name)| {
                let args = vec![(k as u64 % 5) + 1, (k as u64 * 7) % 11];
                (name, args)
            })
            .collect();

        // N > 1 threads the vCPU topology through the stop_machine path
        // of every apply/undo; the default stays on the historical
        // uniprocessor options so N = 1 campaigns are byte-identical.
        let apply_opts = if cfg.cpus > 1 {
            ApplyOptions::with_smp(SmpConfig::with_cpus(cfg.cpus))
        } else {
            ApplyOptions::default()
        };
        Ok(FuzzContext {
            canon,
            units,
            pre_image,
            cache,
            apply_opts,
            diff_opts: DiffOptions::default(),
            prctl,
            sweep,
            workload: cfg.workload,
            call_limit: cfg.call_limit,
            cpus: cfg.cpus,
        })
    }

    /// Applies the campaign vCPU topology to a freshly booted kernel,
    /// gated on N > 1 so uniprocessor campaigns never re-home threads.
    fn configure_kernel(&self, kernel: &mut Kernel) {
        if self.cpus > 1 {
            kernel.configure_smp(SmpConfig::with_cpus(self.cpus));
        }
    }

    /// The mutable `.kc` unit paths, in canonical order.
    pub fn unit_paths(&self) -> impl Iterator<Item = &str> {
        self.units.iter().map(|(p, _)| p.as_str())
    }

    fn unit(&self, path: &str) -> Option<&Unit> {
        self.units
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, u)| u)
    }

    /// Replays a mutation sequence against a canonical unit and runs the
    /// full oracle. This is the exact path the campaign, the shrinker,
    /// and checked-in regression cases all share.
    pub fn run_case(
        &self,
        unit_path: &str,
        mutations: &[Mutation],
        tracer: &mut Tracer,
    ) -> Result<Outcome, String> {
        let base = self
            .unit(unit_path)
            .ok_or_else(|| format!("{unit_path}: not a mutable unit"))?;
        let mut mutant = base.clone();
        for m in mutations {
            if let Err(e) = apply_mutation(&mut mutant, m) {
                return Err(format!("{unit_path}: {m}: {e}"));
            }
        }
        Ok(self.oracle(unit_path, &mutant, tracer))
    }

    /// The differential oracle for one already-mutated unit.
    fn oracle(&self, unit_path: &str, mutant: &Unit, tracer: &mut Tracer) -> Outcome {
        let id = "fuzz-mutant";
        let post_src = pretty_unit(mutant);
        let mut post_tree = self.canon.clone();
        post_tree.set(unit_path, post_src);
        let patch = diff_trees(&self.canon, &post_tree);
        if patch.is_empty() {
            return Outcome::Killed {
                class: "no-effect",
                detail: "mutation produced identical source".into(),
            };
        }

        // Stage 1: ksplice-create. Rejections here are pipeline gates
        // doing their job — kills, not failures.
        let pack = match create_update_cached_traced(
            id,
            &self.canon,
            &patch,
            &CreateOptions::default(),
            &self.cache,
            tracer,
        ) {
            Ok((pack, _)) => pack,
            Err(CreateError::Compile { phase: "post", error }) => {
                return Outcome::Killed {
                    class: "compile-post",
                    detail: error.to_string(),
                }
            }
            Err(CreateError::DataSemantics { changes }) => {
                return Outcome::Killed {
                    class: "data-semantics",
                    detail: changes
                        .iter()
                        .map(|(u, c)| format!("{u}:{}", c.section))
                        .collect::<Vec<_>>()
                        .join(", "),
                }
            }
            Err(CreateError::NoEffect) => {
                return Outcome::Killed {
                    class: "no-effect",
                    detail: "no object-code change".into(),
                }
            }
            // The pre tree is the canonical tree (known to compile) and
            // the patch came from diff_trees — these can only mean the
            // harness itself is broken.
            Err(e) => {
                return Outcome::Infra {
                    detail: format!("create: {e}"),
                }
            }
        };
        // Stage 2: two reference kernels, cold-booted from post source
        // with *different compiler versions*. Ksplice only promises the
        // hot-patched kernel matches a cold boot up to the freedoms the
        // compiler already has (layout, alignment, register choice) — so
        // any behavior the two references themselves disagree on (an
        // out-of-bounds-read mutant, say) is layout-defined, not
        // semantics, and is excluded from the subject comparison.
        let calib_options = Options {
            cc_version: 2,
            ..Options::distro()
        };
        let ref_image = match build_tree_cached(&post_tree, &Options::distro(), &self.cache) {
            Ok((set, _)) => set,
            Err(e) => {
                return Outcome::Killed {
                    class: "post-distro-build",
                    detail: e.to_string(),
                }
            }
        };
        let calib_image = match build_tree_cached(&post_tree, &calib_options, &self.cache) {
            Ok((set, _)) => set,
            Err(e) => {
                return Outcome::Killed {
                    class: "post-distro-build",
                    detail: format!("cc2: {e}"),
                }
            }
        };
        let mut reference = match Kernel::boot_image(&ref_image) {
            Ok(k) => k,
            Err(e) => {
                return Outcome::Killed {
                    class: "post-boot",
                    detail: e.to_string(),
                }
            }
        };
        self.configure_kernel(&mut reference);
        let mut calib = match Kernel::boot_image(&calib_image) {
            Ok(k) => k,
            Err(e) => {
                return Outcome::Killed {
                    class: "post-boot",
                    detail: format!("cc2: {e}"),
                }
            }
        };
        self.configure_kernel(&mut calib);

        // Stage 3: the subject kernel, hot-patched from pre.
        let mut subject = match Kernel::boot_image(&self.pre_image) {
            Ok(k) => k,
            Err(e) => {
                return Outcome::Infra {
                    detail: format!("pre boot: {e}"),
                }
            }
        };
        self.configure_kernel(&mut subject);

        // Both kernels load the stress module *before* the subject is
        // patched, mirroring live operation (the workload exists first,
        // the update arrives later).
        let mut stress_entries = None;
        if self.workload.includes_stress() {
            let re = match load_stress_cached(&mut reference, &self.cache) {
                Ok(e) => e,
                Err(e) => {
                    return Outcome::Infra {
                        detail: format!("reference stress load: {e}"),
                    }
                }
            };
            let ce = match load_stress_cached(&mut calib, &self.cache) {
                Ok(e) => e,
                Err(e) => {
                    return Outcome::Infra {
                        detail: format!("calibration stress load: {e}"),
                    }
                }
            };
            let se = match load_stress_cached(&mut subject, &self.cache) {
                Ok(e) => e,
                Err(e) => {
                    return Outcome::Infra {
                        detail: format!("subject stress load: {e}"),
                    }
                }
            };
            stress_entries = Some((re, ce, se));
        }
        let text_before = subject.mem.text_checksum();
        let mut ks = Ksplice::new();
        if let Err(e) = ks.apply_traced(&mut subject, &pack, &self.apply_opts, tracer) {
            return Outcome::Aborted {
                class: apply_abort_class(&e),
                detail: e.to_string(),
            };
        }
        // Stage 4: identical workloads on all three kernels, lockstep
        // comparison of the entries the two references agree on.
        //
        // UB taint: the oracle only speaks about *defined* behavior. An
        // entry is tainted when (a) any kernel hit its step budget — the
        // execution was cut off mid-flight, and where exactly the budget
        // expires depends on instruction counts the contract leaves free
        // (the subject pays trampoline overhead) — (b) the two references
        // themselves disagree — the result is decided by memory layout,
        // which the hot-patch contract explicitly leaves free — or (c)
        // the kernels disagree and at least one saw a memory-fault oops
        // (a wild pointer landed in a region that happens to differ
        // between layouts). Once any entry is tainted, downstream kernel
        // *state* has legitimately diverged, so only the trace prefix
        // before the first taint is comparable — which also means the
        // sweep can stop issuing calls the moment an entry taints (and a
        // budget-blown reference call need not even run on the other two
        // kernels): nothing at or after the taint index is ever read.
        // The full call plan, in lockstep order. Targeted probes: the
        // mutated unit's own exported functions, with two argument
        // patterns each. Derived from the canonical unit so every
        // kernel defines every probed symbol.
        let mut plan: Vec<(&str, Vec<u64>)> = Vec::new();
        if self.workload.includes_syscalls() {
            for (name, args) in &self.sweep {
                plan.push((name, args.clone()));
            }
            if let Some(base) = self.unit(unit_path) {
                for f in base.functions() {
                    if f.is_static
                        || f.params.len() > 3
                        || !f.params.iter().all(|(_, ty)| matches!(ty, Type::Int))
                    {
                        continue;
                    }
                    for pattern in [[2u64, 3, 5], [7, 1, 4]] {
                        plan.push((&f.name, pattern[..f.params.len()].to_vec()));
                    }
                }
            }
        }
        let mut ref_trace = Vec::new();
        let mut calib_trace = Vec::new();
        let mut subj_trace = Vec::new();
        let mut first_taint: Option<(usize, &'static str)> = None;
        let hit = |e: &TraceEntry| matches!(e, TraceEntry::StepLimit);
        for (i, (name, args)) in plan.iter().enumerate() {
            // Once an entry taints, nothing at or after it is ever
            // compared, so the two reference kernels stop running — only
            // the subject finishes the plan, because its step clock
            // stamps later trace events and must read exactly as if the
            // whole lockstep sweep had run.
            if first_taint.is_some() {
                let _ = traced_call(&mut subject, name, args, self.call_limit);
                continue;
            }
            let r = traced_call(&mut reference, name, args, self.call_limit);
            if hit(&r) {
                first_taint = Some((i, "truncated"));
                let _ = traced_call(&mut subject, name, args, self.call_limit);
                continue;
            }
            let c = traced_call(&mut calib, name, args, self.call_limit);
            if hit(&c) {
                first_taint = Some((i, "truncated"));
                let _ = traced_call(&mut subject, name, args, self.call_limit);
                continue;
            }
            let s = traced_call(&mut subject, name, args, self.call_limit);
            if hit(&s) {
                first_taint = Some((i, "truncated"));
            } else if r != c
                || (r != s && (is_memory_oops(&r) || is_memory_oops(&c) || is_memory_oops(&s)))
            {
                first_taint = Some((i, "wild-memory"));
            }
            ref_trace.push(r);
            calib_trace.push(c);
            subj_trace.push(s);
        }
        if let Some((re, ce, se)) = stress_entries {
            if first_taint.is_some() {
                let _ = subject.call_at_limited(se, &[STRESS_ROUNDS], STRESS_LIMIT);
            } else {
                let i = ref_trace.len();
                let r = normalize_call(reference.call_at_limited(re, &[STRESS_ROUNDS], STRESS_LIMIT));
                if hit(&r) {
                    first_taint = Some((i, "truncated"));
                    let _ = subject.call_at_limited(se, &[STRESS_ROUNDS], STRESS_LIMIT);
                } else {
                    let c = normalize_call(calib.call_at_limited(ce, &[STRESS_ROUNDS], STRESS_LIMIT));
                    if hit(&c) {
                        first_taint = Some((i, "truncated"));
                        let _ = subject.call_at_limited(se, &[STRESS_ROUNDS], STRESS_LIMIT);
                    } else {
                        let s = normalize_call(subject.call_at_limited(
                            se,
                            &[STRESS_ROUNDS],
                            STRESS_LIMIT,
                        ));
                        if hit(&s) {
                            first_taint = Some((i, "truncated"));
                        } else if r != c
                            || (r != s
                                && (is_memory_oops(&r) || is_memory_oops(&c) || is_memory_oops(&s)))
                        {
                            first_taint = Some((i, "wild-memory"));
                        }
                        ref_trace.push(r);
                        calib_trace.push(c);
                        subj_trace.push(s);
                    }
                }
            }
        }
        let prefix = first_taint.map_or(ref_trace.len(), |(i, _)| i);
        if let Some((i, r, s)) = diff_traces(&ref_trace[..prefix], &subj_trace[..prefix]) {
            return Outcome::Diverged {
                class: "trace",
                detail: format!("workload call #{i}: reference {r} vs subject {s}"),
            };
        }
        if let Some((at, cause)) = first_taint {
            // Tainted mutant: its behavior depends on layout or step
            // budgets, so the full-state comparison is meaningless. The
            // update still has to reverse cleanly, though (checked below).
            if let Err(e) = ks.undo_traced(&mut subject, id, &self.apply_opts, tracer) {
                return Outcome::Aborted {
                    class: undo_abort_class(&e),
                    detail: e.to_string(),
                };
            }
            if subject.mem.text_checksum() != text_before {
                return Outcome::Diverged {
                    class: "undo-text",
                    detail: "text checksum after undo differs from pre-apply".into(),
                };
            }
            let what = if cause == "truncated" {
                "step-budget truncation"
            } else {
                "layout-dependent behavior"
            };
            return Outcome::Killed {
                class: cause,
                detail: format!("{what} from workload call #{at} on"),
            };
        }

        // Stage 5: the exploit probe — privilege-escalation behavior must
        // match (all kernels implement post semantics), again only when
        // the two references agree on it.
        let ref_exploit = run_exploit(&mut reference, &self.prctl);
        let calib_exploit = run_exploit(&mut calib, &self.prctl);
        let subj_exploit = run_exploit(&mut subject, &self.prctl);
        if ref_exploit == calib_exploit && ref_exploit != subj_exploit {
            return Outcome::Diverged {
                class: "exploit",
                detail: format!("reference {ref_exploit:?} vs subject {subj_exploit:?}"),
            };
        }

        // Stage 6: final memory images must agree outside patched text.
        // Words the two references themselves disagree on (layout-derived
        // values a wild-but-undetected store left behind) are masked the
        // same way.
        let mut wide = self.diff_opts.clone();
        wide.max_deltas = usize::MAX;
        let unstable: std::collections::BTreeSet<(String, u64)> =
            diff_images(&reference, &calib, &wide)
                .deltas
                .into_iter()
                .map(|d| (d.region, d.offset))
                .collect();
        let image = diff_images(&reference, &subject, &self.diff_opts);
        let real: Vec<_> = image
            .deltas
            .iter()
            .filter(|d| !unstable.contains(&(d.region.clone(), d.offset)))
            .collect();
        if !real.is_empty() {
            return Outcome::Diverged {
                class: "image",
                detail: format!("{} delta(s), first: {}", real.len(), real[0]),
            };
        }

        // Stage 7: reversal restores the original text exactly.
        if let Err(e) = ks.undo_traced(&mut subject, id, &self.apply_opts, tracer) {
            return Outcome::Aborted {
                class: undo_abort_class(&e),
                detail: e.to_string(),
            };
        }
        if subject.mem.text_checksum() != text_before {
            return Outcome::Diverged {
                class: "undo-text",
                detail: "text checksum after undo differs from pre-apply".into(),
            };
        }
        Outcome::Survived
    }

    /// Delta-debugs a failing mutation sequence down to a minimal
    /// subsequence with the same outcome class. Sequences are at most 3
    /// long, so plain subset enumeration (singletons first) is exact.
    pub fn shrink(
        &self,
        unit_path: &str,
        mutations: &[Mutation],
        class: &str,
        tracer: &mut Tracer,
    ) -> Vec<Mutation> {
        if mutations.len() <= 1 {
            return mutations.to_vec();
        }
        let n = mutations.len();
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        for mask in 1u32..(1 << n) - 1 {
            let idx: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
            subsets.push(idx);
        }
        subsets.sort_by_key(|s| s.len());
        for subset in subsets {
            let seq: Vec<Mutation> = subset.iter().map(|&i| mutations[i]).collect();
            // Later mutations may address sites the dropped ones created;
            // a subsequence that no longer applies is simply skipped.
            match self.run_case(unit_path, &seq, tracer) {
                Ok(outcome) if outcome.class_key() == class => return seq,
                _ => {}
            }
        }
        mutations.to_vec()
    }

    /// Replays a checked-in regression case; `Ok` means the oracle
    /// reproduced the recorded outcome class.
    pub fn replay(&self, case: &RegressionCase, tracer: &mut Tracer) -> Result<(), String> {
        let outcome = self.run_case(&case.unit, &case.mutations, tracer)?;
        let got = outcome.class_key();
        if got == case.expect {
            Ok(())
        } else {
            Err(format!(
                "{}: expected {}, got {} ({})",
                case.name,
                case.expect,
                got,
                outcome.detail()
            ))
        }
    }
}

/// Generates and runs one mutant: derive its RNG from `(seed, index)`,
/// pick a unit, mutate, run the oracle. Host panics are caught and
/// reported as records with class `panicked`.
fn run_mutant(cx: &FuzzContext, cfg: &FuzzConfig, index: usize, tracer: &mut Tracer) -> MutantRecord {
    // Distinct, well-mixed stream per mutant; independent of job count.
    let mut rng = FuzzRng::new(
        cfg.seed ^ (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    let unit_idx = rng.below(cx.units.len() as u64) as usize;
    let (unit_path, base_unit) = &cx.units[unit_idx];
    let generated = generate_mutant(base_unit, &mut rng, cfg.max_mutations);
    let Some((mutant, mutations)) = generated else {
        return MutantRecord {
            index,
            unit: unit_path.clone(),
            mutations: Vec::new(),
            class: Outcome::NoMutation.class_key(),
            detail: String::new(),
        };
    };
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        cx.oracle(unit_path, &mutant, tracer)
    }));
    let outcome = match result {
        Ok(o) => o,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            return MutantRecord {
                index,
                unit: unit_path.clone(),
                mutations,
                class: "panicked".to_string(),
                detail: msg,
            };
        }
    };
    MutantRecord {
        index,
        unit: unit_path.clone(),
        mutations,
        class: outcome.class_key(),
        detail: outcome.detail().to_string(),
    }
}

/// Runs a full campaign: `cfg.mutants` mutants fanned out over
/// `cfg.jobs` workers against one shared [`FuzzContext`], with per-class
/// and per-mutator tallies, shrunk exemplars for every non-survived
/// class, and `fuzz.*` counters on `tracer`.
pub fn run_campaign(cfg: &FuzzConfig, tracer: &mut Tracer) -> Result<CampaignReport, String> {
    let cx = FuzzContext::new(cfg)?;
    tracer.emit(
        Stage::Fuzz,
        Severity::Info,
        "fuzz.start",
        vec![
            ("seed", cfg.seed.into()),
            ("mutants", cfg.mutants.into()),
            ("workload", cfg.workload.to_string().into()),
        ],
    );

    let jobs = cfg.jobs.clamp(1, cfg.mutants.max(1));
    let mut records: Vec<Option<MutantRecord>> = Vec::new();
    records.resize_with(cfg.mutants, || None);
    if jobs == 1 {
        for (i, slot) in records.iter_mut().enumerate() {
            *slot = Some(run_mutant(&cx, cfg, i, tracer));
        }
    } else {
        let next = AtomicUsize::new(0);
        let trace_workers = tracer.is_enabled();
        let worker_outputs = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = if trace_workers {
                            Tracer::new()
                        } else {
                            Tracer::disabled()
                        };
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= cfg.mutants {
                                break;
                            }
                            done.push((i, run_mutant(&cx, cfg, i, &mut local)));
                        }
                        (done, local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fuzz worker panicked"))
                .collect::<Vec<_>>()
        });
        for (done, local) in worker_outputs {
            tracer.absorb(&local);
            for (i, record) in done {
                records[i] = Some(record);
            }
        }
    }

    // Hash the records in campaign (index) order before tallying, so
    // the fingerprint is identical no matter how many workers ran.
    fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for record in records.iter().flatten() {
        digest = fnv1a(digest, &record.index.to_le_bytes());
        digest = fnv1a(digest, record.unit.as_bytes());
        digest = fnv1a(digest, record.class.as_bytes());
        digest = fnv1a(digest, record.detail.as_bytes());
        for m in &record.mutations {
            digest = fnv1a(digest, m.to_string().as_bytes());
        }
    }

    let mut by_class: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_mutator: BTreeMap<&'static str, MutatorStats> = BTreeMap::new();
    let mut failures = Vec::new();
    let mut panics = 0usize;
    let mut first_of_class: BTreeMap<String, MutantRecord> = BTreeMap::new();
    for record in records.into_iter().flatten() {
        *by_class.entry(record.class.clone()).or_default() += 1;
        tracer.count(&format!("fuzz.outcome.{}", record.class), 1);
        let mut kinds: Vec<MutatorKind> = record.mutations.iter().map(|m| m.kind).collect();
        kinds.sort_by_key(|k| k.name());
        kinds.dedup();
        for kind in kinds {
            let s = by_mutator.entry(kind.name()).or_default();
            s.used += 1;
            if record.class.starts_with("killed:") {
                s.killed += 1;
                tracer.count(&format!("fuzz.kill.{}", kind.name()), 1);
            } else if record.class == "survived" {
                s.survived += 1;
            } else if record.class.starts_with("aborted:") {
                s.aborted += 1;
            } else if record.class.starts_with("diverged:") {
                s.diverged += 1;
            }
        }
        if record.class == "panicked" {
            panics += 1;
        }
        let failed = record.class.starts_with("diverged:")
            || record.class == "infra"
            || record.class == "panicked";
        if failed {
            tracer.emit(
                Stage::Fuzz,
                Severity::Error,
                "fuzz.failure",
                vec![
                    ("index", record.index.into()),
                    ("unit", record.unit.as_str().into()),
                    ("class", record.class.as_str().into()),
                    ("detail", record.detail.as_str().into()),
                ],
            );
            failures.push(record.clone());
        }
        if record.class != "survived"
            && record.class != "no-mutation"
            && !record.mutations.is_empty()
        {
            first_of_class.entry(record.class.clone()).or_insert(record);
        }
    }

    // Shrink one exemplar per interesting class. Panicked mutants are
    // not re-run (the panic already poisoned determinism guarantees).
    let mut exemplars = Vec::new();
    for (class, record) in &first_of_class {
        if class == "panicked" {
            continue;
        }
        let minimal = cx.shrink(&record.unit, &record.mutations, class, tracer);
        exemplars.push(RegressionCase {
            name: format!("{}-{}", class.replace(':', "-"), record.index),
            unit: record.unit.clone(),
            expect: class.clone(),
            mutations: minimal,
            note: format!(
                "shrunk from campaign seed {} mutant #{} ({} mutation(s) originally)",
                cfg.seed,
                record.index,
                record.mutations.len()
            ),
        });
    }

    let report = CampaignReport {
        seed: cfg.seed,
        mutants: cfg.mutants,
        workload: cfg.workload,
        by_class,
        by_mutator,
        failures,
        exemplars,
        panics,
        digest,
    };
    tracer.emit(
        Stage::Fuzz,
        Severity::Info,
        "fuzz.done",
        vec![
            ("mutants", report.mutants.into()),
            ("failures", report.failures.len().into()),
            ("panics", report.panics.into()),
        ],
    );
    Ok(report)
}
