//! The correctness-checking stress test (paper §6.2: "the kernel needed
//! to continue functioning without any observed problems while running a
//! correctness-checking POSIX stress test").
//!
//! The workload is itself kernel code: a module whose `stress_main`
//! hammers the file, socket, IPC, memory and timer subsystems and checks
//! invariants as it goes (every resource it opens it can read back and
//! close; counts balance). It returns 0 on success and a nonzero
//! checkpoint number at the first violated invariant, so a wrong symbol
//! resolution or a botched replacement shows up as a concrete failure,
//! not a vibe.

use ksplice_kernel::{CallError, Kernel};
use ksplice_lang::{compile_unit, options_fingerprint, BuildCache, Fingerprint, Options};

/// The stress workload module source.
pub const STRESS_SRC: &str = "\
int stress_main(int rounds) {\n\
    int r;\n\
    int fd;\n\
    int sd;\n\
    int v;\n\
    int before;\n\
    for (r = 0; r < rounds; r = r + 1) {\n\
        before = open_count();\n\
        fd = sys_open(5 + (r & 7), 6);\n\
        if (fd < 0) {\n\
            return 1;\n\
        }\n\
        if (open_count() != before + 1) {\n\
            return 2;\n\
        }\n\
        if (sys_write_file(fd, 10 + r, 4) != 4) {\n\
            return 3;\n\
        }\n\
        v = sys_read_file(fd, 0, 4);\n\
        if (v < 0) {\n\
            return 4;\n\
        }\n\
        if (sys_close(fd) != 0) {\n\
            return 5;\n\
        }\n\
        sd = sys_socket(2000 + (r & 3));\n\
        if (sd < 0) {\n\
            return 6;\n\
        }\n\
        if (sys_connect(sd, 7) != 0) {\n\
            return 7;\n\
        }\n\
        if (sock_close(sd) != 0) {\n\
            return 8;\n\
        }\n\
        if (sys_msgsnd(r & 3, 1, 64) < 1) {\n\
            return 9;\n\
        }\n\
        if (sys_msgrcv(r & 3, 64) != 64) {\n\
            return 10;\n\
        }\n\
        if (sys_brk(0) < 0x10000) {\n\
            return 11;\n\
        }\n\
        if (timer_arm(r & 31, 50 + r) != 0) {\n\
            return 12;\n\
        }\n\
        if (timer_cancel(r & 31) != 0) {\n\
            return 13;\n\
        }\n\
        if (igmp_join(500 + (r & 1)) != 0) {\n\
            return 14;\n\
        }\n\
        if (igmp_leave(500 + (r & 1)) != 0) {\n\
            return 15;\n\
        }\n\
        yield_cpu();\n\
    }\n\
    return 0;\n\
}\n";

/// Loads the stress module into a kernel, returning the entry address.
pub fn load_stress(kernel: &mut Kernel) -> Result<u64, String> {
    load_stress_cached(kernel, &BuildCache::new())
}

/// [`load_stress`] through a shared [`BuildCache`]: the evaluation
/// driver loads this module into 64 kernels but compiles it once.
pub fn load_stress_cached(kernel: &mut Kernel, cache: &BuildCache) -> Result<u64, String> {
    let opt = Options::pre_post();
    let mut fp = Fingerprint::new();
    fp.u64_field(options_fingerprint(&opt))
        .str_field("stress/stress.kc")
        .str_field(STRESS_SRC);
    let key = fp.finish();
    let obj = match cache.lookup(key) {
        Some(obj) => obj,
        None => {
            let obj = compile_unit("stress/stress.kc", STRESS_SRC, &opt)
                .map_err(|e| format!("stress compile: {e}"))?;
            cache.store(key, obj.clone());
            obj
        }
    };
    let module = kernel
        .insmod(&obj, false)
        .map_err(|e| format!("stress load: {e}"))?;
    module
        .symbol_addr("stress_main")
        .ok_or_else(|| "stress_main missing".to_string())
}

/// Runs `rounds` of the stress workload synchronously; Ok(()) on a clean
/// pass, Err describing the first violated invariant or oops.
pub fn run_stress(kernel: &mut Kernel, entry: u64, rounds: u64) -> Result<(), String> {
    match kernel.call_at(entry, &[rounds]) {
        Ok(0) => Ok(()),
        Ok(checkpoint) => Err(format!("stress invariant {checkpoint} violated")),
        Err(CallError::Oops(o)) => Err(format!("stress oops: {}", o.reason)),
        Err(e) => Err(format!("stress: {e}")),
    }
}

/// Spawns the stress workload as a background kernel thread (for updates
/// applied *while the workload runs*).
pub fn spawn_stress(kernel: &mut Kernel, entry: u64, rounds: u64) -> Result<u64, String> {
    kernel
        .spawn_at(entry, &[rounds], "stress")
        .map_err(|e| format!("stress spawn: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::base_tree;
    use ksplice_kernel::ThreadState;

    #[test]
    fn stress_passes_on_the_base_kernel() {
        let mut k = Kernel::boot(&base_tree(), &Options::distro()).unwrap();
        let entry = load_stress(&mut k).unwrap();
        run_stress(&mut k, entry, 25).unwrap();
        assert!(k.oopses.is_empty());
    }

    #[test]
    fn stress_runs_as_background_thread() {
        let mut k = Kernel::boot(&base_tree(), &Options::distro()).unwrap();
        let entry = load_stress(&mut k).unwrap();
        let tid = spawn_stress(&mut k, entry, 10).unwrap();
        k.run(50_000_000);
        assert_eq!(k.thread(tid).unwrap().state, ThreadState::Exited(0));
    }
}
