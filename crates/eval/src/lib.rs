//! Evaluation substrate for the Ksplice reproduction (paper §6).

pub mod corpus;
pub mod driver;
pub mod exploits;
pub mod stats;
pub mod stress;
pub mod tree;

pub use corpus::{corpus, diff_trees, CustomCode, CustomReason, Cve, Edit, VulnClass};
pub use driver::{run_cve, run_full_evaluation, CveOutcome, EvalReport};
pub use exploits::run_exploit;
pub use stats::{corpus_stats, figure3_buckets, symbol_stats, CorpusStats, SymbolStats};
pub use stress::{load_stress, run_stress, spawn_stress, STRESS_SRC};
pub use tree::{base_tree, BASE_FILES};
