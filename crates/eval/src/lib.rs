//! Evaluation substrate for the Ksplice reproduction (paper §6).

#![deny(missing_docs)]

pub mod corpus;
pub mod driver;
pub mod exploits;
pub mod fuzz;
pub mod lifecycle;
pub mod profile;
pub mod rebase;
pub mod smp;
pub mod stats;
pub mod stress;
pub mod tree;

pub use corpus::{corpus, diff_trees, CustomCode, CustomReason, Cve, Edit, VulnClass};
pub use lifecycle::{
    lifecycle_corpus_sweep, non_lifo_reversal_sweep, LifecycleOutcome, DISJOINT_STACK,
};
pub use driver::{
    default_eval_jobs, run_cve, run_cve_cached, run_full_evaluation, run_full_evaluation_jobs,
    run_full_evaluation_opts, run_full_evaluation_traced, CveOutcome, EvalReport,
};
pub use exploits::run_exploit;
pub use fuzz::{
    canonical_base_tree, load_regression_dir, run_campaign, CampaignReport, FuzzConfig,
    FuzzContext, MutantRecord, MutatorStats, Outcome, RegressionCase, Workload,
};
pub use stats::{corpus_stats, figure3_buckets, symbol_stats, CorpusStats, SymbolStats};
pub use profile::{
    quiescence_correlation, run_profile, ProfileConfig, ProfilePhase, ProfileReport,
    QuiesceCorrelation, TargetAborts, QUIESCE_TARGET_CVES,
};
pub use rebase::{run_rebase_matrix, RebaseCell, RebaseMatrix, RebaseMatrixConfig};
pub use smp::{run_quiescence_load, LoadRow, QuiescenceReport, SmpLoadConfig};
pub use stress::{load_stress, run_stress, spawn_stress, STRESS_SRC};
pub use tree::{base_tree, BASE_FILES};
