//! Corpus-wide lifecycle sweeps: the pre-flight gate and quarantine
//! watch window over every CVE, and randomized non-LIFO reversal of
//! stacked updates.
//!
//! Two claims are exercised here, corpus-wide rather than on toy
//! fixtures:
//!
//! * every shippable corpus update passes the pre-flight gate, survives
//!   its quarantine watch window, and commits — and for the
//!   exploit-verified entries, a deliberately wrong health probe forces
//!   an automatic rollback that restores the exact pre-apply text image;
//! * a stack of updates to disjoint units can be reversed in *any*
//!   order (trampoline chains are re-pointed, not unwound), and the
//!   kernel image comes back byte-for-byte.

use ksplice_core::{
    create_update_cached_traced, preflight, ApplyOptions, BuildCache, CreateOptions, HealthProbe,
    Ksplice, LifecycleError, Tracer, UpdateManager, UpdatePack, UpdateState, WatchPolicy,
};
use ksplice_kernel::Kernel;
use ksplice_object::ObjectSet;

use crate::corpus::{corpus, Cve};
use crate::driver::distro_image;
use crate::exploits::run_exploit;
use crate::tree::base_tree;

/// The lifecycle verdict for one corpus entry.
#[derive(Debug, Clone)]
pub struct LifecycleOutcome {
    /// The CVE id.
    pub id: &'static str,
    /// The pre-flight gate accepted the pack against a fresh kernel.
    pub preflight_ok: bool,
    /// The update survived its watch window and committed.
    pub committed: bool,
    /// For exploit-verified entries: a probe demanding the *vulnerable*
    /// behaviour forced an automatic rollback that restored the exact
    /// pre-apply text checksum. `None` for entries with no exploit.
    pub rollback_clean: Option<bool>,
}

/// Builds the shippable pack for one corpus entry through a shared
/// build cache.
fn pack_for(
    case: &Cve,
    cache: &BuildCache,
    tracer: &mut Tracer,
) -> Result<UpdatePack, String> {
    let opts = CreateOptions {
        accept_data_changes: case.needs_custom_code(),
        ..CreateOptions::default()
    };
    let patch = if case.needs_custom_code() {
        case.full_patch_text()
    } else {
        case.patch_text()
    };
    create_update_cached_traced(case.id, &base_tree(), &patch, &opts, cache, tracer)
        .map(|(pack, _)| pack)
        .map_err(|e| format!("{}: create: {e}", case.id))
}

/// An exploit-backed health probe: healthy means the exploit is dead.
fn exploit_probe(case: &Cve) -> HealthProbe {
    let c = case.clone();
    HealthProbe::Custom {
        name: format!("exploit:{}", c.id),
        check: Box::new(move |k: &mut Kernel| match run_exploit(k, &c) {
            Some(true) => Err("exploit still succeeds".to_string()),
            _ => Ok(()),
        }),
    }
}

/// Runs one corpus entry through the full lifecycle: pre-flight, apply,
/// quarantine under its exploit probe (when it has one), commit — plus
/// the failing-probe leg on a second kernel for exploit entries.
fn lifecycle_one(
    case: &Cve,
    image: &ObjectSet,
    cache: &BuildCache,
    watch: &WatchPolicy,
    tracer: &mut Tracer,
) -> Result<LifecycleOutcome, String> {
    let pack = pack_for(case, cache, tracer)?;

    // Leg 1: the healthy path. The exploit (when present) doubles as the
    // health probe — a committed update means it was dead every round.
    let mut kernel = Kernel::boot_image(image).map_err(|e| format!("{}: boot: {e}", case.id))?;
    let mut mgr = UpdateManager::with_watch(watch.clone());
    let preflight_ok = preflight(mgr.ksplice(), &kernel, &pack, tracer).is_ok();
    let mut probes: Vec<HealthProbe> = Vec::new();
    if case.exploit.is_some() {
        probes.push(exploit_probe(case));
    }
    let committed = mgr
        .apply_watched(&mut kernel, &pack, &mut probes, &ApplyOptions::default(), tracer)
        .is_ok()
        && mgr.state(case.id) == Some(UpdateState::Committed);

    // Leg 2 (exploit entries only): a probe that demands the *vulnerable*
    // answer fails on the patched kernel; quarantine must roll back and
    // leave the text image exactly as it was before the apply.
    let rollback_clean = if case.exploit.is_some() {
        let mut kernel =
            Kernel::boot_image(image).map_err(|e| format!("{}: boot: {e}", case.id))?;
        let text_before = kernel.mem.text_checksum();
        let c = case.clone();
        let mut probes = vec![HealthProbe::Custom {
            name: format!("still-vulnerable:{}", c.id),
            check: Box::new(move |k: &mut Kernel| match run_exploit(k, &c) {
                Some(true) => Ok(()),
                _ => Err("exploit no longer works".to_string()),
            }),
        }];
        let mut mgr = UpdateManager::with_watch(watch.clone());
        let quarantined = matches!(
            mgr.apply_watched(&mut kernel, &pack, &mut probes, &ApplyOptions::default(), tracer),
            Err(LifecycleError::Quarantine { .. })
        );
        Some(
            quarantined
                && mgr.state(case.id) == Some(UpdateState::RolledBack)
                && kernel.mem.text_checksum() == text_before,
        )
    } else {
        None
    };

    Ok(LifecycleOutcome {
        id: case.id,
        preflight_ok,
        committed,
        rollback_clean,
    })
}

/// Runs every corpus entry through the full lifecycle (pre-flight,
/// watched apply, and for exploit entries the failing-probe rollback
/// leg) with a shared build cache. Outcomes come back in corpus order.
pub fn lifecycle_corpus_sweep(
    watch: &WatchPolicy,
    tracer: &mut Tracer,
) -> Result<Vec<LifecycleOutcome>, String> {
    let cases = corpus();
    let base = base_tree();
    let cache = BuildCache::new();
    let image = distro_image(&base, &cache)?;
    let mut out = Vec::with_capacity(cases.len());
    for case in &cases {
        out.push(lifecycle_one(case, &image, &cache, watch, tracer)?);
    }
    Ok(out)
}

/// The three exploit-verified corpus entries patching pairwise-disjoint
/// compilation units — they stack and reverse independently.
pub const DISJOINT_STACK: [&str; 3] = ["CVE-2006-2451", "CVE-2005-0750", "CVE-2005-4605"];

/// A tiny deterministic xorshift64* generator for reversal orders.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Applies [`DISJOINT_STACK`] to one kernel, then reverses the three
/// updates in a `seed`-determined random order via non-LIFO undo.
/// Asserts (by `Err`) that text and full image checksums return to the
/// pre-apply values. Returns the reversal order used.
pub fn non_lifo_reversal_sweep(seed: u64) -> Result<Vec<&'static str>, String> {
    let cases = corpus();
    let base = base_tree();
    let cache = BuildCache::new();
    let image = distro_image(&base, &cache)?;
    let mut kernel = Kernel::boot_image(&image).map_err(|e| format!("boot: {e}"))?;
    let text_before = kernel.mem.text_checksum();
    let image_before = kernel.mem.image_checksum();

    let mut tracer = Tracer::disabled();
    let mut ks = Ksplice::new();
    for id in DISJOINT_STACK {
        let case = cases.iter().find(|c| c.id == id).expect("corpus entry");
        let pack = pack_for(case, &cache, &mut tracer)?;
        ks.apply_traced(&mut kernel, &pack, &ApplyOptions::default(), &mut tracer)
            .map_err(|e| format!("{id}: apply: {e}"))?;
    }

    // Fisher–Yates with the seeded generator.
    let mut order: Vec<&'static str> = DISJOINT_STACK.to_vec();
    let mut state = seed | 1;
    for i in (1..order.len()).rev() {
        let j = (xorshift(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }

    for id in &order {
        ks.undo_any_traced(&mut kernel, id, &ApplyOptions::default(), &mut tracer)
            .map_err(|e| format!("{id}: undo: {e}"))?;
    }

    if kernel.mem.text_checksum() != text_before {
        return Err(format!("text checksum drifted after reversal order {order:?}"));
    }
    if kernel.mem.image_checksum() != image_before {
        return Err(format!("image checksum drifted after reversal order {order:?}"));
    }
    Ok(order)
}
