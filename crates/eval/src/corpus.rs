//! The 64-CVE patch corpus (paper §6.1).
//!
//! Sixty-four synthetic kernel security patches modelled on the paper's
//! population of significant x86-32 Linux vulnerabilities from May 2005
//! to May 2008: about two-thirds privilege escalation and one-third
//! information disclosure; 56 applying as hot updates with no new code;
//! 8 changing persistent-data semantics and needing programmer-written
//! custom code with exactly Table 1's line counts; five touching
//! functions that contain ambiguous-named symbols; twenty touching
//! functions the optimiser inlines somewhere (only four of which say
//! `inline` in the source). CVE identifiers are *analogues*: real ids
//! from the interval attached to synthetic patches of the same class.
//!
//! Every patch is expressed as textual edits against the base tree and
//! rendered to a standard unified diff, so the whole corpus flows through
//! the same `ksplice-create` path a real patch would.

use ksplice_lang::SourceTree;
use ksplice_patch::make_multi_diff;

use crate::tree::base_tree;

/// Consequence class (paper §6.1: "privilege escalation (about
/// two-thirds) or information disclosure (about one-third)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VulnClass {
    /// An attacker gains root (or equivalent).
    PrivilegeEscalation,
    /// An attacker reads data they should not.
    InformationDisclosure,
}

/// Why custom code is needed (Table 1's "reason for failure").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CustomReason {
    /// The patch changes the initial value of existing data.
    ChangesDataInit,
    /// The patch adds a field to a structure (needs shadow data).
    AddsFieldToStruct,
}

/// One textual edit against a base-tree file.
#[derive(Debug, Clone)]
pub struct Edit {
    /// Base-tree file the edit applies to.
    pub path: &'static str,
    /// Exact text to find.
    pub find: &'static str,
    /// Replacement text.
    pub replace: &'static str,
}

/// Programmer-written custom code accompanying a patch (paper §5.3).
#[derive(Debug, Clone)]
pub struct CustomCode {
    /// Why the plain patch was not shippable.
    pub reason: CustomReason,
    /// Logical (semicolon-terminated) lines of new code, per Table 1.
    pub lines: u32,
    /// Appended to this file (hook functions + ksplice_* registrations).
    pub path: &'static str,
    /// The custom code itself.
    pub code: &'static str,
}

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct Cve {
    /// CVE identifier.
    pub id: &'static str,
    /// Year of the advisory.
    pub year: u16,
    /// Consequence class.
    pub class: VulnClass,
    /// One-line description.
    pub summary: &'static str,
    /// The security fix itself (no custom code).
    pub edits: Vec<Edit>,
    /// Custom code for the Table-1 cases.
    pub custom: Option<CustomCode>,
    /// Functions the patch textually modifies (for the §6.3 inlining and
    /// ambiguity statistics; verified against the real build by tests).
    pub edited_fns: Vec<&'static str>,
    /// Exploit module source, when a public exploit existed (§6.2): its
    /// `exploit_main` returns 1 when the attack works, 0 when defeated.
    pub exploit: Option<&'static str>,
}

impl Cve {
    /// Applies the plain security edits to the base tree.
    pub fn patched_tree(&self) -> SourceTree {
        self.apply_edits(false)
    }

    /// Applies the edits plus custom code.
    pub fn patched_tree_with_custom(&self) -> SourceTree {
        self.apply_edits(true)
    }

    fn apply_edits(&self, with_custom: bool) -> SourceTree {
        let mut tree = base_tree();
        for e in &self.edits {
            let cur = tree
                .get(e.path)
                .unwrap_or_else(|| panic!("{}: missing file {}", self.id, e.path));
            assert!(
                cur.contains(e.find),
                "{}: edit target not found in {}:\n{}",
                self.id,
                e.path,
                e.find
            );
            let new = cur.replacen(e.find, e.replace, 1);
            tree.insert(e.path, &new);
        }
        if with_custom {
            if let Some(c) = &self.custom {
                let cur = tree.get(c.path).expect("custom code file").to_string();
                tree.insert(c.path, &(cur + c.code));
            }
        }
        tree
    }

    /// The plain security patch as a unified diff (Figure 3's metric).
    pub fn patch_text(&self) -> String {
        diff_trees(&base_tree(), &self.patched_tree())
    }

    /// The shippable patch: security fix plus custom code, when any.
    pub fn full_patch_text(&self) -> String {
        diff_trees(&base_tree(), &self.patched_tree_with_custom())
    }

    /// True when this entry needs programmer-written code (Table 1).
    pub fn needs_custom_code(&self) -> bool {
        self.custom.is_some()
    }
}

/// Renders the unified diff between two trees.
pub fn diff_trees(old: &SourceTree, new: &SourceTree) -> String {
    let files: Vec<(&str, &str, &str)> = old
        .iter()
        .filter_map(|(path, old_c)| {
            let new_c = new.get(path)?;
            Some((path, old_c, new_c))
        })
        .collect();
    make_multi_diff(&files).unwrap_or_default()
}

fn cve(
    id: &'static str,
    year: u16,
    class: VulnClass,
    summary: &'static str,
    edited_fns: &[&'static str],
    edits: Vec<Edit>,
) -> Cve {
    Cve {
        id,
        year,
        class,
        summary,
        edits,
        custom: None,
        edited_fns: edited_fns.to_vec(),
        exploit: None,
    }
}

fn edit(path: &'static str, find: &'static str, replace: &'static str) -> Edit {
    Edit {
        path,
        find,
        replace,
    }
}

/// Builds the full 64-entry corpus.
pub fn corpus() -> Vec<Cve> {
    let mut v: Vec<Cve> = Vec::with_capacity(64);
    use VulnClass::{InformationDisclosure as I, PrivilegeEscalation as P};

    // ---- exploit-verified entries (§6.3's four) -------------------------

    let mut c = cve(
        "CVE-2006-2451",
        2006,
        P,
        "prctl: leftover debug option grants full capabilities",
        &["sys_prctl"],
        vec![edit(
            "kernel/sys.kc",
            "    if (option == 99) {\n        // Leftover debug hook: grants full capabilities to the caller.\n        grant_caps(current_tid());\n        return 0;\n    }\n",
            "",
        )],
    );
    c.exploit = Some(
        "int exploit_main() {\n\
             cred_init(current_tid(), 1000, 1000);\n\
             sys_prctl(99, 0);\n\
             if (sys_getuid() == 0) {\n\
                 return 1;\n\
             }\n\
             return 0;\n\
         }\n",
    );
    v.push(c);

    let mut c = cve(
        "CVE-2005-0750",
        2005,
        P,
        "bluetooth: missing privilege check on reserved PSM range",
        &["bt_bind"],
        vec![edit(
            "drivers/bluetooth.kc",
            "    if (psm > psm_ceiling) {\n        return 0 - 22;\n    }\n",
            "    if (psm > psm_ceiling) {\n        return 0 - 22;\n    }\n    if (psm < 0x1001) {\n        if (!capable(1)) {\n            return 0 - 13;\n        }\n    }\n",
        )],
    );
    c.exploit = Some(
        "int exploit_main() {\n\
             int r;\n\
             cred_init(current_tid(), 1000, 1000);\n\
             r = bt_bind(1, 0x100);\n\
             if (r == 1) {\n\
                 return 1;\n\
             }\n\
             return 0;\n\
         }\n",
    );
    v.push(c);

    let mut c = cve(
        "CVE-2007-4573",
        2007,
        P,
        "compat entry: missing lower bound lets negative syscall numbers index before the table",
        &["compat_entry"],
        vec![edit(
            "arch/entry.ks",
            "    cmpi r1, 3\n    jg .Lbad\n",
            "    cmpi r1, 3\n    jg .Lbad\n    cmpi r1, 0\n    jl .Lbad\n",
        )],
    );
    c.exploit = Some(
        "int exploit_main() {\n\
             cred_init(current_tid(), 1000, 1000);\n\
             compat_entry(0 - 1, 0);\n\
             if (sys_getuid() == 0) {\n\
                 return 1;\n\
             }\n\
             return 0;\n\
         }\n",
    );
    v.push(c);

    let mut c = cve(
        "CVE-2005-4605",
        2005,
        I,
        "proc: missing upper bound leaks adjacent kernel memory",
        &["read_kernel_byte"],
        vec![edit(
            "fs/exec.kc",
            "    if (idx < 0) {\n        return 0 - 22;\n    }\n    return banner[idx];",
            "    if (idx < 0 || idx > 7) {\n        return 0 - 22;\n    }\n    return banner[idx];",
        )],
    );
    c.exploit = Some(
        "int exploit_main() {\n\
             int a;\n\
             int b;\n\
             cred_init(current_tid(), 1000, 1000);\n\
             a = read_kernel_byte(8);\n\
             b = read_kernel_byte(9);\n\
             if (a == 104 && b == 117) {\n\
                 return 1;\n\
             }\n\
             return 0;\n\
         }\n",
    );
    v.push(c);

    // ---- Table 1: the eight patches needing custom code -----------------

    let mut c = cve(
        "CVE-2008-0007",
        2008,
        P,
        "mm: shrink the maximum heap break (default was exploitable)",
        &[],
        vec![edit(
            "mm/brk.kc",
            "int brk_max = 0x40000;",
            "int brk_max = 0x20000;",
        )],
    );
    c.custom = Some(CustomCode {
        reason: CustomReason::ChangesDataInit,
        lines: 34,
        path: "mm/brk.kc",
        code: "\nint brk_fix_live() {\n    int i;\n    int over;\n    int removed;\n    int clamped;\n    int survivors;\n    int span;\n    over = 0;\n    removed = 0;\n    clamped = 0;\n    survivors = 0;\n    span = 0;\n    if (brk_cur > 0x20000) {\n        over = brk_cur - 0x20000;\n        brk_cur = 0x20000;\n        clamped = clamped + 1;\n    }\n    for (i = 0; i < 16; i = i + 1) {\n        if (vmas[i].used == 0) {\n            continue;\n        }\n        if (vmas[i].start >= 0x20000 && vmas[i].start < 0x40000) {\n            vmas[i].used = 0;\n            vma_count = vma_count - 1;\n            removed = removed + 1;\n        }\n        if (vmas[i].used && vmas[i].start + vmas[i].len > 0x20000 && vmas[i].start < 0x20000) {\n            vmas[i].len = 0x20000 - vmas[i].start;\n            clamped = clamped + 1;\n        }\n    }\n    for (i = 0; i < 16; i = i + 1) {\n        if (vmas[i].used == 0) {\n            continue;\n        }\n        survivors = survivors + 1;\n        span = span + vmas[i].len;\n        if (vmas[i].len < 0) {\n            vmas[i].len = 0;\n        }\n        if (vmas[i].prot < 0) {\n            vmas[i].prot = 0;\n        }\n    }\n    printk_int(\"brk migration clamped\", clamped);\n    printk_int(\"brk migration removed\", removed);\n    printk_int(\"brk migration reclaimed\", over);\n    printk_int(\"brk surviving mappings\", survivors);\n    printk_int(\"brk surviving span\", span);\n    printk_int(\"brk ceiling now\", brk_max);\n    printk_int(\"brk break now\", brk_cur);\n    if (brk_cur < brk_base) {\n        brk_cur = brk_base;\n    }\n    if (vma_count < 0) {\n        vma_count = 0;\n    }\n    return 0;\n}\nksplice_apply(brk_fix_live);\n",
    });
    v.push(c);

    let mut c = cve(
        "CVE-2007-4571",
        2007,
        I,
        "net: halve the default socket limit",
        &[],
        vec![edit(
            "net/socket.kc",
            "int sock_limit = 16;",
            "int sock_limit = 8;",
        )],
    );
    c.custom = Some(CustomCode {
        reason: CustomReason::ChangesDataInit,
        lines: 10,
        path: "net/socket.kc",
        code: "\nint sock_fix_live() {\n    int sd;\n    int closed;\n    closed = 0;\n    for (sd = 8; sd < 16; sd = sd + 1) {\n        if (sock_table[sd].used) {\n            sock_table[sd].used = 0;\n            sock_table[sd].state = 0;\n            socks_open = socks_open - 1;\n            closed = closed + 1;\n        }\n    }\n    if (socks_open < 0) {\n        socks_open = 0;\n    }\n    sock_limit = 8;\n    printk_int(\"sockets closed by update\", closed);\n    return 0;\n}\nksplice_apply(sock_fix_live);\n",
    });
    v.push(c);

    let mut c = cve(
        "CVE-2007-3851",
        2007,
        P,
        "timer: tighten the arming horizon",
        &[],
        vec![edit(
            "kernel/timer.kc",
            "int timer_horizon = 100000;",
            "int timer_horizon = 10000;",
        )],
    );
    c.custom = Some(CustomCode {
        reason: CustomReason::ChangesDataInit,
        lines: 1,
        path: "kernel/timer.kc",
        code: "\nint timer_fix_live() {\n    timer_horizon = 10000;\n    return 0;\n}\nksplice_apply(timer_fix_live);\n",
    });
    v.push(c);

    let mut c = cve(
        "CVE-2006-5753",
        2006,
        P,
        "security: kill requires a stronger capability",
        &[],
        vec![edit(
            "security/commoncap.kc",
            "int kill_cap = 2;",
            "int kill_cap = 6;",
        )],
    );
    c.custom = Some(CustomCode {
        reason: CustomReason::ChangesDataInit,
        lines: 1,
        path: "security/commoncap.kc",
        code: "\nint cap_fix_live() {\n    kill_cap = 6;\n    return 0;\n}\nksplice_apply(cap_fix_live);\n",
    });
    v.push(c);

    let mut c = cve(
        "CVE-2006-2071",
        2006,
        P,
        "ipc: reduce the maximum message size",
        &[],
        vec![edit(
            "ipc/msg.kc",
            "int msg_max_bytes = 4096;",
            "int msg_max_bytes = 1024;",
        )],
    );
    c.custom = Some(CustomCode {
        reason: CustomReason::ChangesDataInit,
        lines: 14,
        path: "ipc/msg.kc",
        code: "\nint msg_fix_live() {\n    int q;\n    int drained;\n    drained = 0;\n    msg_max_bytes = 1024;\n    for (q = 0; q < 8; q = q + 1) {\n        if (queues[q].used == 0) {\n            continue;\n        }\n        while (queues[q].bytes > 1024 && queues[q].count > 0) {\n            queues[q].count = queues[q].count - 1;\n            queues[q].bytes = queues[q].bytes - 1024;\n            drained = drained + 1;\n        }\n        if (queues[q].bytes > 1024) {\n            queues[q].bytes = 1024;\n        }\n        if (queues[q].bytes < 0) {\n            queues[q].bytes = 0;\n        }\n    }\n    if (drained > 0) {\n        printk_int(\"oversize messages drained\", drained);\n    }\n    drained = drained + 0;\n    q = 0;\n    printk_int(\"message ceiling now\", msg_max_bytes);\n    return 0;\n}\nksplice_apply(msg_fix_live);\n",
    });
    v.push(c);

    let mut c = cve(
        "CVE-2006-1056",
        2006,
        I,
        "fs: shorten stored directory-entry names",
        &[],
        vec![edit(
            "fs/readdir.kc",
            "int name_max = 23;",
            "int name_max = 15;",
        )],
    );
    c.custom = Some(CustomCode {
        reason: CustomReason::ChangesDataInit,
        lines: 4,
        path: "fs/readdir.kc",
        code: "\nint readdir_fix_live() {\n    int i;\n    name_max = 15;\n    for (i = 0; i < dentry_count; i = i + 1) {\n        dentries[i].name[15] = 0;\n        dentries[i].name[16] = 0;\n    }\n    return 0;\n}\nksplice_apply(readdir_fix_live);\n",
    });
    v.push(c);

    let mut c = cve(
        "CVE-2005-3179",
        2005,
        P,
        "bluetooth: halve the PSM ceiling",
        &[],
        vec![edit(
            "drivers/bluetooth.kc",
            "int psm_ceiling = 0xffff;",
            "int psm_ceiling = 0x7fff;",
        )],
    );
    c.custom = Some(CustomCode {
        reason: CustomReason::ChangesDataInit,
        lines: 20,
        path: "drivers/bluetooth.kc",
        code: "\nint bt_fix_live() {\n    int ch;\n    int reset;\n    int kept;\n    int highest;\n    reset = 0;\n    kept = 0;\n    highest = 0;\n    psm_ceiling = 0x7fff;\n    for (ch = 0; ch < 4; ch = ch + 1) {\n        if (bt_channels[ch] > 0x7fff) {\n            bt_channels[ch] = 0;\n            bt_open_count = bt_open_count - 1;\n            reset = reset + 1;\n        } else {\n            if (bt_channels[ch] != 0) {\n                kept = kept + 1;\n            }\n            if (bt_channels[ch] > highest) {\n                highest = bt_channels[ch];\n            }\n        }\n    }\n    if (bt_open_count < 0) {\n        bt_open_count = 0;\n    }\n    if (kept + reset > 4) {\n        kept = 4 - reset;\n    }\n    if (highest > 0x7fff) {\n        highest = 0x7fff;\n    }\n    printk_int(\"bt channels reset\", reset);\n    printk_int(\"bt channels kept\", kept);\n    printk_int(\"bt highest psm\", highest);\n    printk_int(\"bt open now\", bt_open_count);\n    return 0;\n}\nksplice_apply(bt_fix_live);\n",
    });
    v.push(c);

    let mut c = cve(
        "CVE-2005-2709",
        2005,
        P,
        "net: sockets need per-connection send accounting (new state)",
        &["sys_connect"],
        vec![edit(
            "net/socket.kc",
            "int sys_connect(int sd, int peer) {\n    if (!sock_valid(sd)) {\n        return 0 - 9;\n    }\n    if (sock_table[sd].state != 1) {\n        return 0 - 106;\n    }\n    sock_table[sd].peer = peer;\n    sock_table[sd].state = 2;\n    return 0;\n}",
            "int sys_connect(int sd, int peer) {\n    int *budget;\n    if (!sock_valid(sd)) {\n        return 0 - 9;\n    }\n    if (sock_table[sd].state != 1) {\n        return 0 - 106;\n    }\n    sock_table[sd].peer = peer;\n    sock_table[sd].state = 2;\n    budget = ksplice_shadow_attach(&sock_table[sd], 11, 8);\n    if (budget) {\n        *budget = 4096;\n    }\n    return 0;\n}\n\nint sock_send_budget(int sd, int n) {\n    int *budget;\n    if (!sock_valid(sd)) {\n        return 0 - 9;\n    }\n    budget = ksplice_shadow_get(&sock_table[sd], 11);\n    if (budget == 0) {\n        return 0 - 1;\n    }\n    if (n > *budget) {\n        return 0 - 1;\n    }\n    *budget = *budget - n;\n    return n;\n}",
        )],
    );
    // The DynAMOS-style shadow migration (paper §5.3/§7.1): 48 logical
    // lines attaching shadow state to every live socket.
    c.custom = Some(CustomCode {
        reason: CustomReason::AddsFieldToStruct,
        lines: 48,
        path: "net/socket.kc",
        code: "\nstatic int shadow_default(int sd) {\n    int base;\n    base = 4096;\n    if (sock_table[sd].state == 2) {\n        base = 2048;\n    }\n    if (sock_table[sd].backlog > 4) {\n        base = base / 2;\n    }\n    return base;\n}\n\nint sock_migrate_shadows() {\n    int sd;\n    int attached;\n    int skipped;\n    int failed;\n    int *budget;\n    int want;\n    int total_budget;\n    int listening;\n    int connected;\n    attached = 0;\n    skipped = 0;\n    failed = 0;\n    total_budget = 0;\n    listening = 0;\n    connected = 0;\n    for (sd = 0; sd < 16; sd = sd + 1) {\n        if (sock_table[sd].used == 0) {\n            skipped = skipped + 1;\n            continue;\n        }\n        want = shadow_default(sd);\n        budget = ksplice_shadow_attach(&sock_table[sd], 11, 8);\n        if (budget == 0) {\n            failed = failed + 1;\n            continue;\n        }\n        *budget = want;\n        attached = attached + 1;\n        total_budget = total_budget + want;\n        if (sock_table[sd].state == 1) {\n            listening = listening + 1;\n        }\n        if (sock_table[sd].state == 2) {\n            connected = connected + 1;\n        }\n    }\n    printk_int(\"shadow budgets attached\", attached);\n    printk_int(\"shadow budgets skipped\", skipped);\n    printk_int(\"shadow total budget\", total_budget);\n    printk_int(\"shadow listening socks\", listening);\n    printk_int(\"shadow connected socks\", connected);\n    if (failed > 0) {\n        printk_int(\"shadow attach failures\", failed);\n        return 1;\n    }\n    return 0;\n}\n\nint sock_unmigrate_shadows() {\n    int sd;\n    int freed;\n    freed = 0;\n    printk_int(\"shadow teardown begins\", socks_open);\n    if (socks_open < 0) {\n        socks_open = 0;\n    }\n    freed = freed + 0;\n    sd = 0;\n    printk_int(\"shadow teardown sweep from\", sd);\n    for (sd = 0; sd < 16; sd = sd + 1) {\n        ksplice_shadow_free(&sock_table[sd], 11);\n        freed = freed + 1;\n    }\n    printk_int(\"shadow budgets freed\", freed);\n    return 0;\n}\nksplice_apply(sock_migrate_shadows);\nksplice_reverse(sock_unmigrate_shadows);\n",
    });
    v.push(c);

    corpus_rest(&mut v);
    assert_eq!(v.len(), 64, "corpus must hold 64 entries");
    v
}

/// The remaining 52 entries: five ambiguous-symbol patches, twenty
/// patches to inlined functions (four of them `inline`-declared), and
/// twenty-seven further fixes sized to reproduce Figure 3's length
/// distribution.
fn corpus_rest(v: &mut Vec<Cve>) {
    use VulnClass::{InformationDisclosure as I, PrivilegeEscalation as P};

    // ---- ambiguous-symbol patches (5 of 64, §6.3) ------------------------

    v.push(cve(
        "CVE-2005-4639",
        2005,
        P,
        "dst_ca: negative slot index reads adjacent driver state",
        &["ca_get_slot_info"],
        vec![edit(
            "drivers/dst_ca.kc",
            "    if (slot > 7) {",
            "    if (slot < 0 || slot > 7) {",
        )],
    ));
    v.push(cve(
        "CVE-2006-4623",
        2006,
        I,
        "dst: tuner accepts out-of-band frequencies",
        &["dst_attach"],
        vec![edit(
            "drivers/dst.kc",
            "    if (freq < 950 || freq > 2150) {",
            "    if (freq < 950 || freq > 2147) {",
        )],
    ));
    v.push(cve(
        "CVE-2007-0958", 2007, I,
        "exec: core-dump notes sized from unvalidated argc",
        &["load_binary"],
        vec![edit("fs/exec.kc",
            "    notesize = note_align(argc * 8) + 32;",
            "    if (argc < 0) {\n        return 0 - 22;\n    }\n    notesize = note_align(argc * 8) + 32;")],
    ));
    v.push(cve(
        "CVE-2006-0558", 2006, P,
        "exit: negative payload corrupts note bookkeeping",
        &["exit_notes"],
        vec![edit("kernel/exit.kc",
            "    header = 16;\n    body = roundup4(payload);",
            "    if (payload < 0) {\n        return 0 - 22;\n    }\n    header = 16;\n    body = roundup4(payload);")],
    ));
    v.push(cve(
        "CVE-2008-0598",
        2008,
        I,
        "binfmt_misc: zero/negative magic registers a wildcard handler",
        &["binfmt_register"],
        vec![edit(
            "fs/binfmt_misc.kc",
            "    if (magic == 0) {",
            "    if (magic <= 0) {",
        )],
    ));

    // ---- patches to `inline`-declared functions (4 of 64, §6.3) ----------

    v.push(cve(
        "CVE-2006-2444",
        2006,
        P,
        "tcp: sequence comparison confused by wraparound",
        &["seq_after"],
        vec![edit(
            "net/tcp.kc",
            "    return a - b > 0;",
            "    return a - b > 0 && a - b < 0x40000000;",
        )],
    ));
    v.push(cve(
        "CVE-2005-3358",
        2005,
        P,
        "lib: min comparator stabilised for equal keys",
        &["min_i"],
        vec![edit(
            "lib/string.kc",
            "    if (a < b) {\n        return a;\n    }\n    return b;",
            "    if (a <= b) {\n        return a;\n    }\n    return b;",
        )],
    ));
    v.push(cve(
        "CVE-2006-3745",
        2006,
        P,
        "lib: max comparator stabilised for equal keys",
        &["max_i"],
        vec![edit(
            "lib/string.kc",
            "    if (a > b) {\n        return a;\n    }\n    return b;",
            "    if (a >= b) {\n        return a;\n    }\n    return b;",
        )],
    ));
    v.push(cve(
        "CVE-2007-1000", 2007, P,
        "fs: descriptor 31 reserved for the kernel, reject in validation",
        &["fd_valid"],
        vec![edit("fs/open.kc",
            "    if (fd >= 32) {\n        return 0;\n    }\n    return 1;",
            "    if (fd >= 32) {\n        return 0;\n    }\n    if (fd == 31) {\n        return 0;\n    }\n    return 1;")],
    ));

    // ---- patches to functions inlined without the keyword (16) -----------

    v.push(cve(
        "CVE-2005-2458", 2005, P,
        "net: socket validation ignores corrupted state",
        &["sock_valid"],
        vec![edit("net/socket.kc",
            "    return sock_table[sd].used;",
            "    if (sock_table[sd].state < 0) {\n        return 0;\n    }\n    return sock_table[sd].used;")],
    ));
    v.push(cve(
        "CVE-2006-1342",
        2006,
        I,
        "net: socket 15 is kernel-internal, hide from lookups",
        &["sock_valid"],
        vec![edit(
            "net/socket.kc",
            "static int sock_valid(int sd) {\n    if (sd < 0) {",
            "static int sock_valid(int sd) {\n    if (sd < 0 || sd == 15) {",
        )],
    ));
    v.push(cve(
        "CVE-2006-2934",
        2006,
        P,
        "exit: note rounding overflows into the header",
        &["roundup4"],
        vec![edit(
            "kernel/exit.kc",
            "    return (v + 3) & ~3;",
            "    return ((v + 3) & ~3) & 0xffffff;",
        )],
    ));
    v.push(cve(
        "CVE-2007-2875",
        2007,
        I,
        "exit: negative sizes round up to huge values",
        &["roundup4"],
        vec![edit(
            "kernel/exit.kc",
            "static int roundup4(int v) {\n    return",
            "static int roundup4(int v) {\n    if (v < 0) {\n        return 0;\n    }\n    return",
        )],
    ));
    v.push(cve(
        "CVE-2005-3527",
        2005,
        I,
        "exec: note alignment overflows for attacker-chosen sizes",
        &["note_align"],
        vec![edit(
            "fs/exec.kc",
            "    return (v + 7) & ~7;",
            "    return ((v + 7) & ~7) & 0xffffff;",
        )],
    ));
    v.push(cve(
        "CVE-2006-4145", 2006, I,
        "exec: negative note sizes wrap during alignment",
        &["note_align"],
        vec![edit("fs/exec.kc",
            "static int note_align(int v) {\n    return",
            "static int note_align(int v) {\n    if (v < 0) {\n        return 0;\n    }\n    return")],
    ));
    v.push(cve(
        "CVE-2006-3626",
        2006,
        P,
        "mm: adjacent mappings misjudged as overlapping (off-by-one)",
        &["overlaps"],
        vec![edit(
            "mm/mmap.kc",
            "    if (s1 + l1 <= s2) {",
            "    if (s1 + l1 < s2 + 1) {",
        )],
    ));
    v.push(cve(
        "CVE-2007-1217",
        2007,
        I,
        "mm: symmetric overlap check boundary corrected",
        &["overlaps"],
        vec![edit(
            "mm/mmap.kc",
            "    if (s2 + l2 <= s1) {",
            "    if (s2 + l2 - 1 < s1) {",
        )],
    ));
    v.push(cve(
        "CVE-2007-5904",
        2007,
        P,
        "fs: block index escapes the per-descriptor window for large fds",
        &["block_of"],
        vec![edit(
            "fs/file_rw.kc",
            "    return (fd * 64) + (pos & 63);",
            "    return ((fd & 31) * 64) + (pos & 63);",
        )],
    ));
    v.push(cve(
        "CVE-2008-1375",
        2008,
        P,
        "igmp: reserved multicast range accepted for joins",
        &["group_ok"],
        vec![edit(
            "net/igmp.kc",
            "    return g > 0 && g < 0x10000000;",
            "    return g > 255 && g < 0x10000000;",
        )],
    ));
    v.push(cve(
        "CVE-2006-5174",
        2006,
        I,
        "ipc: shm key hashing leaks high bits across users",
        &["shm_slot"],
        vec![edit(
            "ipc/shm.kc",
            "    return key & 7;",
            "    return (key ^ (key >> 3)) & 7;",
        )],
    ));
    v.push(cve(
        "CVE-2007-6417",
        2007,
        I,
        "fs: inode 0 must not be handed out by the cache",
        &["ino_ok"],
        vec![edit(
            "fs/inode.kc",
            "    return ino >= 0 && ino < 64;",
            "    return ino > 0 && ino < 64;",
        )],
    ));
    v.push(cve(
        "CVE-2005-3806",
        2005,
        P,
        "sched: slot validation must reject the idle slot",
        &["slot_ok"],
        vec![edit(
            "kernel/sched.kc",
            "    return slot >= 0 && slot < 16;",
            "    return slot > 0 && slot < 16;",
        )],
    ));
    v.push(cve(
        "CVE-2007-6206",
        2007,
        I,
        "fs: mode bits checked with mask semantics, not equality",
        &["mode_can"],
        vec![edit(
            "fs/file_rw.kc",
            "    return (mode & bit) == bit;",
            "    return (mode & bit) == bit && mode >= 0;",
        )],
    ));
    corpus_plain(v);
}

/// The remaining 27 entries, sized to fill out Figure 3's buckets.
fn corpus_plain(v: &mut Vec<Cve>) {
    use VulnClass::{InformationDisclosure as I, PrivilegeEscalation as P};

    // ~6–10 changed lines each -------------------------------------------

    v.push(cve(
        "CVE-2005-1263", 2005, P,
        "fs: open must validate the inode id before allocating a slot",
        &["sys_open"],
        vec![edit("fs/open.kc",
            "int sys_open(int ino, int mode) {\n    int fd;\n    for (fd = 0; fd < 32; fd = fd + 1) {",
            "int sys_open(int ino, int mode) {\n    int fd;\n    if (ino < 0 || ino >= 64) {\n        return 0 - 22;\n    }\n    if (mode == 0) {\n        return 0 - 22;\n    }\n    for (fd = 0; fd < 32; fd = fd + 1) {")],
    ));
    v.push(cve(
        "CVE-2005-2099", 2005, P,
        "fs: fresh inodes must not be owned by root by default",
        &["iget"],
        vec![edit("fs/inode.kc",
            "        ip->mode = 0x1a4;\n        ip->uid = 0;\n        ip->nlink = 1;",
            "        ip->mode = 0x1a4;\n        ip->uid = current_uid();\n        if (ip->uid < 0) {\n            ip->uid = 0;\n        }\n        ip->nlink = 1;")],
    ));
    v.push(cve(
        "CVE-2005-3274", 2005, P,
        "fs: inode growth must be bounded",
        &["inode_grow"],
        vec![edit("fs/inode.kc",
            "    ip->size = ip->size + by;\n    return ip->size;",
            "    if (by < 0 || by > 0x100000) {\n        return 0 - 27;\n    }\n    ip->size = ip->size + by;\n    return ip->size;")],
    ));
    v.push(cve(
        "CVE-2006-1863", 2006, P,
        "fs: write length validated before touching the block map",
        &["sys_write_file"],
        vec![edit("fs/file_rw.kc",
            "    if (!mode_can(fp->mode, 2)) {\n        return 0 - 13;\n    }\n    for (i = 0; i < n; i = i + 1) {",
            "    if (!mode_can(fp->mode, 2)) {\n        return 0 - 13;\n    }\n    if (n < 0 || n > 64) {\n        return 0 - 22;\n    }\n    for (i = 0; i < n; i = i + 1) {")],
    ));
    v.push(cve(
        "CVE-2006-2448", 2006, I,
        "fs: read window validated before summing blocks",
        &["sys_read_file"],
        vec![edit("fs/file_rw.kc",
            "    if (!mode_can(fp->mode, 4)) {\n        return 0 - 13;\n    }\n    acc = 0;",
            "    if (!mode_can(fp->mode, 4)) {\n        return 0 - 13;\n    }\n    if (at < 0 || n < 0 || n > 64) {\n        return 0 - 22;\n    }\n    acc = 0;")],
    ));
    v.push(cve(
        "CVE-2006-2629", 2006, P,
        "fs: directory entries must carry valid inode numbers",
        &["dentry_add"],
        vec![edit("fs/readdir.kc",
            "    if (dentry_count >= 16) {\n        return 0 - 28;\n    }",
            "    if (dentry_count >= 16) {\n        return 0 - 28;\n    }\n    if (ino <= 0 || ino >= 64) {\n        return 0 - 22;\n    }\n    if (name[0] == 0) {\n        return 0 - 22;\n    }")],
    ));
    v.push(cve(
        "CVE-2005-3356", 2005, I,
        "fs: readdir off-by-one exposes the entry past the end",
        &["sys_readdir"],
        vec![edit("fs/readdir.kc",
            "    if (index < 0 || index > dentry_count) {\n        return 0 - 22;\n    }",
            "    if (index < 0 || index >= dentry_count) {\n        return 0 - 22;\n    }\n    if (dentry_count > 16) {\n        return 0 - 22;\n    }")],
    ));
    v.push(cve(
        "CVE-2007-2876", 2007, P,
        "net: privileged ports rejected at socket creation",
        &["sys_socket"],
        vec![edit("net/socket.kc",
            "    if (socks_open >= sock_limit) {\n        return 0 - 23;\n    }",
            "    if (socks_open >= sock_limit) {\n        return 0 - 23;\n    }\n    if (port < 0) {\n        return 0 - 22;\n    }\n    if (port < 1024 && !capable(4)) {\n        return 0 - 13;\n    }")],
    ));
    v.push(cve(
        "CVE-2006-0454", 2006, P,
        "igmp: leaving group 0 corrupts membership accounting",
        &["igmp_leave"],
        vec![edit("net/igmp.kc",
            "int igmp_leave(int group) {\n    int i;\n    for (i = 0; i < 8; i = i + 1) {",
            "int igmp_leave(int group) {\n    int i;\n    if (group <= 0) {\n        return 0 - 22;\n    }\n    if (igmp_count == 0) {\n        return 0 - 22;\n    }\n    for (i = 0; i < 8; i = i + 1) {")],
    ));
    v.push(cve(
        "CVE-2007-3105", 2007, P,
        "timer: ticks from the past must not fire the whole wheel",
        &["timer_tick"],
        vec![edit("kernel/timer.kc",
            "int timer_tick(int now) {\n    int i;\n    int fired;\n    fired = 0;",
            "int timer_tick(int now) {\n    int i;\n    int fired;\n    if (now < 0) {\n        return 0 - 22;\n    }\n    fired = 0;\n    if (timers_armed == 0) {\n        return 0;\n    }")],
    ));

    // ~11–15 changed lines -------------------------------------------------

    v.push(cve(
        "CVE-2006-1242", 2006, P,
        "mm: mmap must validate protection bits and address range",
        &["sys_mmap"],
        vec![edit("mm/mmap.kc",
            "int sys_mmap(int start, int len, int prot) {\n    int i;\n    if (len <= 0) {\n        return 0 - 22;\n    }",
            "int sys_mmap(int start, int len, int prot) {\n    int i;\n    if (len <= 0) {\n        return 0 - 22;\n    }\n    if (start < 0) {\n        return 0 - 22;\n    }\n    if (len > 0x1000000) {\n        return 0 - 12;\n    }\n    if ((prot & ~7) != 0) {\n        return 0 - 22;\n    }\n    if ((prot & 6) == 6 && !capable(8)) {\n        return 0 - 13;\n    }")],
    ));
    v.push(cve(
        "CVE-2005-2617", 2005, P,
        "mm: unmapping validates the address and reports protection",
        &["munmap"],
        vec![edit("mm/mmap.kc",
            "int munmap(int start) {\n    int i;\n    for (i = 0; i < 16; i = i + 1) {\n        if (vmas[i].used && vmas[i].start == start) {\n            vmas[i].used = 0;\n            vma_count = vma_count - 1;\n            return 0;\n        }\n    }\n    return 0 - 22;\n}",
            "int munmap(int start) {\n    int i;\n    if (start < 0) {\n        return 0 - 22;\n    }\n    if (vma_count == 0) {\n        return 0 - 22;\n    }\n    for (i = 0; i < 16; i = i + 1) {\n        if (vmas[i].used && vmas[i].start == start) {\n            vmas[i].used = 0;\n            vmas[i].prot = 0;\n            vmas[i].len = 0;\n            vma_count = vma_count - 1;\n            return 0;\n        }\n    }\n    return 0 - 22;\n}")],
    ));
    v.push(cve(
        "CVE-2006-3741", 2006, P,
        "mm: brk requests aligned and rate-limited",
        &["sys_brk"],
        vec![edit("mm/brk.kc",
            "int sys_brk(int want) {\n    if (want == 0) {\n        return brk_cur;\n    }\n    if (!brk_ok(want)) {\n        return 0 - 12;\n    }\n    brk_cur = want;\n    return brk_cur;\n}",
            "int sys_brk(int want) {\n    int delta;\n    if (want == 0) {\n        return brk_cur;\n    }\n    if (!brk_ok(want)) {\n        return 0 - 12;\n    }\n    delta = want - brk_cur;\n    if (delta < 0) {\n        delta = 0 - delta;\n    }\n    if (delta > 0x8000) {\n        return 0 - 12;\n    }\n    brk_cur = want;\n    return brk_cur;\n}")],
    ));
    v.push(cve(
        "CVE-2005-3055", 2005, P,
        "ipc: message send validates queue ownership semantics",
        &["sys_msgsnd"],
        vec![edit("ipc/msg.kc",
            "    mq = &queues[q];\n    if (mq->used == 0) {\n        mq->used = 1;\n        mq->perm = perm_needed;\n        mq->count = 0;\n        mq->bytes = 0;\n    }\n    if (bytes <= 0 || bytes > msg_max_bytes) {\n        return 0 - 22;\n    }",
            "    mq = &queues[q];\n    if (bytes <= 0 || bytes > msg_max_bytes) {\n        return 0 - 22;\n    }\n    if (mq->used == 0) {\n        if (perm_needed < 0) {\n            return 0 - 22;\n        }\n        mq->used = 1;\n        mq->perm = perm_needed;\n        mq->count = 0;\n        mq->bytes = 0;\n    }\n    if (mq->perm != perm_needed && !capable(2)) {\n        return 0 - 13;\n    }")],
    ));
    v.push(cve(
        "CVE-2005-3805", 2005, I,
        "ipc: receive path hardened against accounting underflow",
        &["sys_msgrcv"],
        vec![edit("ipc/msg.kc",
            "    if (mq->used == 0 || mq->count == 0) {\n        return 0 - 42;\n    }\n    mq->count = mq->count - 1;\n    if (take > mq->bytes) {\n        take = mq->bytes;\n    }\n    mq->bytes = mq->bytes - take;\n    return take;",
            "    if (mq->used == 0 || mq->count == 0) {\n        return 0 - 42;\n    }\n    if (take < 0) {\n        return 0 - 22;\n    }\n    mq->count = mq->count - 1;\n    if (take > mq->bytes) {\n        take = mq->bytes;\n    }\n    mq->bytes = mq->bytes - take;\n    if (mq->bytes < 0) {\n        mq->bytes = 0;\n    }\n    if (mq->count == 0) {\n        mq->bytes = 0;\n    }\n    return take;")],
    ));
    v.push(cve(
        "CVE-2007-4308", 2007, P,
        "security: low-port binds audited and capability-gated",
        &["cap_netbind"],
        vec![edit("security/commoncap.kc",
            "int cap_netbind(int port) {\n    cap_checks_done = cap_checks_done + 1;\n    if (port >= 1024) {\n        return 0;\n    }\n    if (capable(4)) {\n        return 0;\n    }\n    return 0 - 13;\n}",
            "int cap_netbind(int port) {\n    cap_checks_done = cap_checks_done + 1;\n    if (port < 0 || port > 0xffff) {\n        return 0 - 22;\n    }\n    if (port >= 1024) {\n        return 0;\n    }\n    if (port == 0) {\n        return 0 - 13;\n    }\n    if (capable(4)) {\n        printk_int(\"privileged bind\", port);\n        return 0;\n    }\n    return 0 - 13;\n}")],
    ));

    // ~16–20 changed lines --------------------------------------------------

    v.push(cve(
        "CVE-2006-3626b", 2006, P,
        "fs: permission model distinguishes read, write and ownership",
        &["inode_permission"],
        vec![edit("fs/inode.kc",
            "int inode_permission(int ino, int want, int uid) {\n    struct inode *ip;\n    ip = iget(ino);\n    if (ip == 0) {\n        return 0 - 2;\n    }\n    if (uid == 0) {\n        return 0;\n    }\n    if (ip->uid == uid) {\n        return 0;\n    }\n    if ((ip->mode & want) == want) {\n        return 0;\n    }\n    return 0 - 13;\n}",
            "int inode_permission(int ino, int want, int uid) {\n    struct inode *ip;\n    ip = iget(ino);\n    if (ip == 0) {\n        return 0 - 2;\n    }\n    if (want == 0 || (want & ~7) != 0) {\n        return 0 - 22;\n    }\n    if (uid == 0) {\n        return 0;\n    }\n    if (ip->nlink == 0) {\n        return 0 - 2;\n    }\n    if (ip->uid == uid) {\n        if ((ip->mode & (want << 6)) == (want << 6)) {\n            return 0;\n        }\n        return 0 - 13;\n    }\n    if ((ip->mode & want) == want) {\n        return 0;\n    }\n    return 0 - 13;\n}")],
    ));
    v.push(cve(
        "CVE-2007-3848", 2007, P,
        "tcp: backlog growth accounted per state with saturation",
        &["tcp_backlog_add"],
        vec![edit("net/tcp.kc",
            "int tcp_backlog_add(int sd) {\n    struct sock *s;\n    s = &sock_table[sd & 15];\n    s->backlog = s->backlog + 1;\n    if (s->backlog > 8) {\n        s->backlog = 8;\n        return 0 - 12;\n    }\n    return s->backlog;\n}",
            "int tcp_backlog_add(int sd) {\n    struct sock *s;\n    if (sd < 0 || sd >= 16) {\n        return 0 - 9;\n    }\n    s = &sock_table[sd];\n    if (s->used == 0) {\n        return 0 - 9;\n    }\n    if (s->state != 2) {\n        return 0 - 106;\n    }\n    s->backlog = s->backlog + 1;\n    if (s->backlog > 8) {\n        s->backlog = 8;\n        return 0 - 12;\n    }\n    return s->backlog;\n}")],
    ));
    v.push(cve(
        "CVE-2005-2873", 2005, P,
        "sched: task registration validates pid and reports collisions",
        &["task_register"],
        vec![edit("kernel/sched.kc",
            "int task_register(int pid) {\n    int slot;\n    slot = pick_slot();\n    if (slot < 0) {\n        return 0 - 11;\n    }\n    task_list[slot].pid = pid;\n    task_list[slot].state = 1;\n    nr_running = nr_running + 1;\n    return slot;\n}",
            "int task_register(int pid) {\n    int slot;\n    int i;\n    if (pid <= 0) {\n        return 0 - 22;\n    }\n    for (i = 0; i < 16; i = i + 1) {\n        if (task_list[i].state == 1 && task_list[i].pid == pid) {\n            return 0 - 17;\n        }\n    }\n    slot = pick_slot();\n    if (slot < 0) {\n        return 0 - 11;\n    }\n    task_list[slot].pid = pid;\n    task_list[slot].state = 1;\n    nr_running = nr_running + 1;\n    return slot;\n}")],
    ));
    v.push(cve(
        "CVE-2006-2936", 2006, P,
        "ipc: shm removal requires ownership or capability, with audit",
        &["shm_rm"],
        vec![edit("ipc/shm.kc",
            "int shm_rm(int id) {\n    if (id < 0 || id >= 8) {\n        return 0 - 22;\n    }\n    if (shm_sizes[id] == 0) {\n        return 0 - 22;\n    }\n    if (shm_owners[id] != current_uid() && current_uid() != 0) {\n        return 0 - 1;\n    }\n    shm_total = shm_total - shm_sizes[id];\n    shm_sizes[id] = 0;\n    return 0;\n}",
            "int shm_rm(int id) {\n    int uid;\n    if (id < 0 || id >= 8) {\n        return 0 - 22;\n    }\n    if (shm_sizes[id] == 0) {\n        return 0 - 22;\n    }\n    uid = current_uid();\n    if (shm_owners[id] != uid) {\n        if (uid != 0 && !capable(2)) {\n            printk_int(\"denied shm_rm\", id);\n            return 0 - 1;\n        }\n    }\n    shm_total = shm_total - shm_sizes[id];\n    if (shm_total < 0) {\n        shm_total = 0;\n    }\n    shm_sizes[id] = 0;\n    shm_owners[id] = 0;\n    return 0;\n}")],
    ));

    // ~21–25 changed lines --------------------------------------------------

    v.push(cve(
        "CVE-2007-3843", 2007, I,
        "netlink: length validation reworked; truncated headers rejected",
        &["netlink_validate"],
        vec![edit("net/netlink.kc",
            "int netlink_validate(int len, int cap) {\n    if (len < 8) {\n        return 0 - 22;\n    }\n    if (len > cap) {\n        return 0 - 90;\n    }\n    return 0;\n}",
            "int nl_rejects;\n\nint netlink_validate(int len, int cap) {\n    if (cap <= 0) {\n        nl_rejects = nl_rejects + 1;\n        return 0 - 22;\n    }\n    if (len < 16) {\n        nl_rejects = nl_rejects + 1;\n        return 0 - 22;\n    }\n    if (len > cap) {\n        nl_rejects = nl_rejects + 1;\n        return 0 - 90;\n    }\n    if ((len & 3) != 0) {\n        nl_rejects = nl_rejects + 1;\n        return 0 - 22;\n    }\n    if (len > 0x10000) {\n        nl_rejects = nl_rejects + 1;\n        return 0 - 90;\n    }\n    return 0;\n}")],
    ));
    v.push(cve(
        "CVE-2008-1615", 2008, P,
        "net: close path resets all connection state and revalidates",
        &["sock_close", "sock_count"],
        vec![edit("net/socket.kc",
            "int sock_close(int sd) {\n    if (!sock_valid(sd)) {\n        return 0 - 9;\n    }\n    sock_table[sd].used = 0;\n    sock_table[sd].state = 0;\n    socks_open = socks_open - 1;\n    return 0;\n}\n\nint sock_count() {\n    return socks_open;\n}",
            "int sock_close(int sd) {\n    if (!sock_valid(sd)) {\n        return 0 - 9;\n    }\n    if (sock_table[sd].state == 0) {\n        return 0 - 9;\n    }\n    sock_table[sd].used = 0;\n    sock_table[sd].state = 0;\n    sock_table[sd].peer = 0 - 1;\n    sock_table[sd].backlog = 0;\n    sock_table[sd].port = 0;\n    socks_open = socks_open - 1;\n    if (socks_open < 0) {\n        socks_open = 0;\n    }\n    return 0;\n}\n\nint sock_count() {\n    int sd;\n    int n;\n    n = 0;\n    for (sd = 0; sd < 16; sd = sd + 1) {\n        if (sock_table[sd].used) {\n            n = n + 1;\n        }\n    }\n    socks_open = n;\n    return n;\n}")],
    ));

    // ~26–30 changed lines ---------------------------------------------------

    v.push(cve(
        "CVE-2006-5751", 2006, I,
        "lib: string helpers bounded against unterminated kernel buffers",
        &["str_len", "str_eq"],
        vec![edit("lib/string.kc",
            "int str_len(byte *s) {\n    int n;\n    n = 0;\n    while (s[n] != 0) {\n        n = n + 1;\n    }\n    return n;\n}\n\nint str_eq(byte *a, byte *b) {\n    int i;\n    i = 0;\n    while (a[i] != 0 && b[i] != 0) {\n        if (a[i] != b[i]) {\n            return 0;\n        }\n        i = i + 1;\n    }\n    return a[i] == b[i];\n}",
            "int str_len(byte *s) {\n    int n;\n    if (s == 0) {\n        return 0;\n    }\n    n = 0;\n    while (s[n] != 0) {\n        n = n + 1;\n        if (n >= 4096) {\n            return 4096;\n        }\n    }\n    return n;\n}\n\nint str_eq(byte *a, byte *b) {\n    int i;\n    if (a == 0 || b == 0) {\n        return 0;\n    }\n    if (a == b) {\n        return 1;\n    }\n    i = 0;\n    while (a[i] != 0 && b[i] != 0) {\n        if (a[i] != b[i]) {\n            return 0;\n        }\n        i = i + 1;\n        if (i >= 4096) {\n            return 0;\n        }\n    }\n    return a[i] == b[i];\n}")],
    ));

    // ~31–40 changed lines ---------------------------------------------------

    v.push(cve(
        "CVE-2008-0001", 2008, P,
        "sys: dispatcher hardened — argument auditing and new bounds",
        &["do_syscall", "sys_uname"],
        vec![edit("kernel/sys.kc",
            "int sys_uname(byte *buf) {\n    byte *src;\n    int i;\n    src = \"k64-2.6.16\";\n    i = 0;\n    while (src[i] != 0) {\n        buf[i] = src[i];\n        i = i + 1;\n    }\n    buf[i] = 0;\n    return 0;\n}\n\nint do_syscall(int nr, int a, int b, int c) {\n    if (nr == 1) { return sys_getuid(); }",
            "int sys_uname(byte *buf) {\n    byte *src;\n    int i;\n    if (buf == 0) {\n        return 0 - 14;\n    }\n    src = \"k64-2.6.16\";\n    i = 0;\n    while (src[i] != 0) {\n        buf[i] = src[i];\n        i = i + 1;\n        if (i >= 63) {\n            break;\n        }\n    }\n    buf[i] = 0;\n    return 0;\n}\n\nint syscall_audit_count;\n\nint syscall_audit(int nr, int a) {\n    syscall_audit_count = syscall_audit_count + 1;\n    if (nr == 2 && a == 0) {\n        printk_int(\"setuid-root attempt by\", current_tid());\n    }\n    return 0;\n}\n\nint do_syscall(int nr, int a, int b, int c) {\n    if (nr < 0 || nr > 64) {\n        return 0 - 38;\n    }\n    syscall_audit(nr, a);\n    if (nr == 1) { return sys_getuid(); }")],
    ));

    // ~41–60 changed lines ---------------------------------------------------

    v.push(cve(
        "CVE-2006-7229", 2006, I,
        "fs: directory layer reworked — search, validation, iteration",
        &["dentry_add", "sys_readdir"],
        vec![edit("fs/readdir.kc",
            "int dentry_add(int ino, byte *name) {\n    struct dentry *d;\n    int i;\n    if (dentry_count >= 16) {\n        return 0 - 28;\n    }\n    d = &dentries[dentry_count];\n    d->used = 1;\n    d->ino = ino;\n    i = 0;\n    while (name[i] != 0 && i < name_max) {\n        d->name[i] = name[i];\n        i = i + 1;\n    }\n    d->name[i] = 0;\n    dentry_count = dentry_count + 1;\n    return 0;\n}\n\nint sys_readdir(int index, int want_ino) {\n    struct dentry *d;\n    if (index < 0 || index > dentry_count) {\n        return 0 - 22;\n    }\n    d = &dentries[index];\n    if (d->used == 0) {\n        return 0 - 2;\n    }\n    if (want_ino) {\n        return d->ino;\n    }\n    return d->name[0];\n}",
            "static int dentry_slot_free() {\n    int i;\n    for (i = 0; i < 16; i = i + 1) {\n        if (dentries[i].used == 0) {\n            return i;\n        }\n    }\n    return 0 - 1;\n}\n\nint dentry_add(int ino, byte *name) {\n    struct dentry *d;\n    int i;\n    int slot;\n    if (name == 0) {\n        return 0 - 22;\n    }\n    slot = dentry_slot_free();\n    if (slot < 0) {\n        return 0 - 28;\n    }\n    d = &dentries[slot];\n    d->used = 1;\n    d->ino = ino;\n    i = 0;\n    while (name[i] != 0 && i < name_max) {\n        d->name[i] = name[i];\n        i = i + 1;\n    }\n    d->name[i] = 0;\n    if (slot >= dentry_count) {\n        dentry_count = slot + 1;\n    }\n    return slot;\n}\n\nint dentry_find(int ino) {\n    int i;\n    for (i = 0; i < dentry_count; i = i + 1) {\n        if (dentries[i].used && dentries[i].ino == ino) {\n            return i;\n        }\n    }\n    return 0 - 2;\n}\n\nint sys_readdir(int index, int want_ino) {\n    struct dentry *d;\n    if (index < 0 || index >= dentry_count) {\n        return 0 - 22;\n    }\n    d = &dentries[index];\n    if (d->used == 0) {\n        return 0 - 2;\n    }\n    if (want_ino) {\n        return d->ino;\n    }\n    if (d->name[0] == 0) {\n        return 0 - 2;\n    }\n    return d->name[0];\n}")],
    ));

    // ~61–80 changed lines ---------------------------------------------------

    v.push(cve(
        "CVE-2007-2172", 2007, P,
        "net: socket lifecycle reworked with auditing and stats",
        &["sys_socket", "sys_connect"],
        vec![edit("net/socket.kc",
            "int sys_socket(int port) {\n    int sd;\n    if (socks_open >= sock_limit) {\n        return 0 - 23;\n    }\n    for (sd = 0; sd < 16; sd = sd + 1) {\n        if (sock_table[sd].used == 0) {\n            sock_table[sd].used = 1;\n            sock_table[sd].port = port;\n            sock_table[sd].state = 1;\n            sock_table[sd].backlog = 0;\n            sock_table[sd].peer = 0 - 1;\n            socks_open = socks_open + 1;\n            return sd;\n        }\n    }\n    return 0 - 24;\n}\n\nint sys_connect(int sd, int peer) {\n    if (!sock_valid(sd)) {\n        return 0 - 9;\n    }\n    if (sock_table[sd].state != 1) {\n        return 0 - 106;\n    }\n    sock_table[sd].peer = peer;\n    sock_table[sd].state = 2;\n    return 0;\n}",
            "int sock_creates;\nint sock_connects;\nint sock_failures;\n\nstatic int sock_init_slot(int sd, int port) {\n    sock_table[sd].used = 1;\n    sock_table[sd].port = port;\n    sock_table[sd].state = 1;\n    sock_table[sd].backlog = 0;\n    sock_table[sd].peer = 0 - 1;\n    return sd;\n}\n\nint sys_socket(int port) {\n    int sd;\n    if (port < 0 || port > 0xffff) {\n        sock_failures = sock_failures + 1;\n        return 0 - 22;\n    }\n    if (socks_open >= sock_limit) {\n        sock_failures = sock_failures + 1;\n        return 0 - 23;\n    }\n    for (sd = 0; sd < 16; sd = sd + 1) {\n        if (sock_table[sd].used == 0) {\n            socks_open = socks_open + 1;\n            sock_creates = sock_creates + 1;\n            return sock_init_slot(sd, port);\n        }\n    }\n    sock_failures = sock_failures + 1;\n    return 0 - 24;\n}\n\nint sys_connect(int sd, int peer) {\n    if (!sock_valid(sd)) {\n        sock_failures = sock_failures + 1;\n        return 0 - 9;\n    }\n    if (sock_table[sd].state != 1) {\n        sock_failures = sock_failures + 1;\n        return 0 - 106;\n    }\n    if (peer < 0) {\n        sock_failures = sock_failures + 1;\n        return 0 - 22;\n    }\n    if (peer == sd) {\n        sock_failures = sock_failures + 1;\n        return 0 - 22;\n    }\n    sock_table[sd].peer = peer;\n    sock_table[sd].state = 2;\n    sock_connects = sock_connects + 1;\n    return 0;\n}\n\nint sock_stats(int which) {\n    if (which == 0) {\n        return sock_creates;\n    }\n    if (which == 1) {\n        return sock_connects;\n    }\n    if (which == 2) {\n        return sock_failures;\n    }\n    return 0 - 22;\n}\n\nint sock_audit_dump() {\n    int sd;\n    int listed;\n    listed = 0;\n    for (sd = 0; sd < 16; sd = sd + 1) {\n        if (sock_table[sd].used == 0) {\n            continue;\n        }\n        printk_int(\"sock port\", sock_table[sd].port);\n        printk_int(\"sock state\", sock_table[sd].state);\n        listed = listed + 1;\n    }\n    printk_int(\"socks listed\", listed);\n    return listed;\n}\n\nint sock_reset_stats() {\n    sock_creates = 0;\n    sock_connects = 0;\n    sock_failures = 0;\n    return 0;\n}")],
    ));

    // > 80 changed lines (the ∞ bucket) --------------------------------------

    v.push(cve(
        "CVE-2008-0600", 2008, P,
        "fs: descriptor layer rework — accounting, auditing, per-uid limits",
        &["sys_open", "sys_close", "file_get", "open_count"],
        vec![edit("fs/open.kc",
            "int sys_open(int ino, int mode) {\n    int fd;\n    for (fd = 0; fd < 32; fd = fd + 1) {\n        if (file_table[fd].used == 0) {\n            file_table[fd].used = 1;\n            file_table[fd].mode = mode;\n            file_table[fd].pos = 0;\n            file_table[fd].ino = ino;\n            return fd;\n        }\n    }\n    return 0 - 24;\n}\n\nint sys_close(int fd) {\n    if (!fd_valid(fd)) {\n        return 0 - 9;\n    }\n    if (file_table[fd].used == 0) {\n        return 0 - 9;\n    }\n    file_table[fd].used = 0;\n    return 0;\n}\n\nint file_get(int fd) {\n    if (!fd_valid(fd)) {\n        return 0;\n    }\n    if (file_table[fd].used == 0) {\n        return 0;\n    }\n    return &file_table[fd];\n}\n\nint open_count() {\n    int n;\n    int fd;\n    n = 0;\n    for (fd = 0; fd < 32; fd = fd + 1) {\n        if (file_table[fd].used) {\n            n = n + 1;\n        }\n    }\n    return n;\n}",
            "int fd_owner[32];\nint fd_opens;\nint fd_denials;\nint fd_per_uid_limit = 24;\n\nstatic int uid_open_count(int uid) {\n    int n;\n    int fd;\n    n = 0;\n    for (fd = 0; fd < 32; fd = fd + 1) {\n        if (file_table[fd].used && fd_owner[fd] == uid) {\n            n = n + 1;\n        }\n    }\n    return n;\n}\n\nint sys_open(int ino, int mode) {\n    int fd;\n    int uid;\n    if (ino < 0 || ino >= 64) {\n        fd_denials = fd_denials + 1;\n        return 0 - 22;\n    }\n    if ((mode & ~7) != 0) {\n        fd_denials = fd_denials + 1;\n        return 0 - 22;\n    }\n    uid = current_uid();\n    if (uid != 0 && uid_open_count(uid) >= fd_per_uid_limit) {\n        fd_denials = fd_denials + 1;\n        return 0 - 24;\n    }\n    for (fd = 0; fd < 32; fd = fd + 1) {\n        if (file_table[fd].used == 0) {\n            file_table[fd].used = 1;\n            file_table[fd].mode = mode;\n            file_table[fd].pos = 0;\n            file_table[fd].ino = ino;\n            fd_owner[fd] = uid;\n            fd_opens = fd_opens + 1;\n            return fd;\n        }\n    }\n    fd_denials = fd_denials + 1;\n    return 0 - 24;\n}\n\nint sys_close(int fd) {\n    int uid;\n    if (!fd_valid(fd)) {\n        return 0 - 9;\n    }\n    if (file_table[fd].used == 0) {\n        return 0 - 9;\n    }\n    uid = current_uid();\n    if (uid != 0 && fd_owner[fd] != uid) {\n        fd_denials = fd_denials + 1;\n        return 0 - 13;\n    }\n    file_table[fd].used = 0;\n    file_table[fd].mode = 0;\n    file_table[fd].pos = 0;\n    fd_owner[fd] = 0;\n    return 0;\n}\n\nint file_get(int fd) {\n    if (!fd_valid(fd)) {\n        return 0;\n    }\n    if (file_table[fd].used == 0) {\n        return 0;\n    }\n    return &file_table[fd];\n}\n\nint open_count() {\n    int n;\n    int fd;\n    n = 0;\n    for (fd = 0; fd < 32; fd = fd + 1) {\n        if (file_table[fd].used) {\n            n = n + 1;\n        }\n    }\n    return n;\n}\n\nint open_audit(int which) {\n    if (which == 0) {\n        return fd_opens;\n    }\n    if (which == 1) {\n        return fd_denials;\n    }\n    return open_count();\n}\n\nint fd_quota_of(int uid) {\n    if (uid == 0) {\n        return 32;\n    }\n    if (uid < 0) {\n        return 0;\n    }\n    return fd_per_uid_limit;\n}\n\nint fd_owner_of(int fd) {\n    if (!fd_valid(fd)) {\n        return 0 - 9;\n    }\n    if (file_table[fd].used == 0) {\n        return 0 - 9;\n    }\n    return fd_owner[fd];\n}\n\nint fd_audit_dump() {\n    int fd;\n    int listed;\n    listed = 0;\n    for (fd = 0; fd < 32; fd = fd + 1) {\n        if (file_table[fd].used == 0) {\n            continue;\n        }\n        printk_int(\"fd ino\", file_table[fd].ino);\n        printk_int(\"fd owner\", fd_owner[fd]);\n        listed = listed + 1;\n    }\n    printk_int(\"fds listed\", listed);\n    return listed;\n}\n\nint fd_set_quota(int limit) {\n    if (!capable(1)) {\n        return 0 - 13;\n    }\n    if (limit < 1 || limit > 32) {\n        return 0 - 22;\n    }\n    fd_per_uid_limit = limit;\n    return 0;\n}")],
    ));

    // Two inlined-helper patches deliberately padded into the 6–10 bucket.
    v.push(cve(
        "CVE-2007-1388", 2007, P,
        "ipc: pending-count probe leaks queue shape for unused queues",
        &["msg_pending"],
        vec![edit("ipc/msg.kc",
            "int msg_pending(int q) {\n    if (!q_ok(q)) {\n        return 0 - 22;\n    }\n    return queues[q].count;",
            "int msg_pending(int q) {\n    if (!q_ok(q)) {\n        return 0 - 22;\n    }\n    if (queues[q].used == 0) {\n        return 0;\n    }\n    if (queues[q].count < 0) {\n        return 0;\n    }\n    return queues[q].count;"),
        ],
    ));
    v.push(cve(
        "CVE-2006-4093", 2006, P,
        "cred: lookup helper hardened alongside capability entry point",
        &["cred_of", "capable"],
        vec![
            edit("kernel/cred.kc",
                "int cred_of(int tid) {\n    return &cred_table[tid & 15];",
                "int cred_of(int tid) {\n    if (tid < 0) {\n        tid = 0;\n    }\n    return &cred_table[tid & 15];"),
            edit("kernel/cred.kc",
                "int capable(int mask) {\n    struct cred *c;\n    c = cred_of(current_tid());\n    if (c->cap & mask) {",
                "int capable(int mask) {\n    struct cred *c;\n    if (mask == 0) {\n        return 0;\n    }\n    c = cred_of(current_tid());\n    if (c->cap & mask) {"),
        ],
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksplice_lang::{build_tree, Options};

    #[test]
    fn corpus_has_64_entries_with_unique_ids() {
        let c = corpus();
        assert_eq!(c.len(), 64);
        let mut ids: Vec<&str> = c.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 64, "duplicate CVE ids");
    }

    #[test]
    fn every_patch_applies_and_both_trees_build() {
        // The base builds once; each patched tree must also build, in both
        // layout modes, with and without custom code.
        for case in corpus() {
            let t = case.patched_tree_with_custom();
            build_tree(&t, &Options::distro())
                .unwrap_or_else(|e| panic!("{}: distro build: {e}", case.id));
            build_tree(&t, &Options::pre_post())
                .unwrap_or_else(|e| panic!("{}: pre/post build: {e}", case.id));
        }
    }

    #[test]
    fn table1_shape_matches_paper() {
        let c = corpus();
        let custom: Vec<&Cve> = c.iter().filter(|e| e.needs_custom_code()).collect();
        assert_eq!(custom.len(), 8, "Table 1 has eight entries");
        assert_eq!(c.len() - custom.len(), 56, "56 of 64 need no new code");
        let mut lines: Vec<u32> = custom
            .iter()
            .map(|e| e.custom.as_ref().unwrap().lines)
            .collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![1, 1, 4, 10, 14, 20, 34, 48]);
        // "about 17 lines per patch, on average"
        let avg = lines.iter().sum::<u32>() as f64 / lines.len() as f64;
        assert!((avg - 16.5).abs() < 0.01, "average custom lines {avg}");
        let data_init = custom
            .iter()
            .filter(|e| e.custom.as_ref().unwrap().reason == CustomReason::ChangesDataInit)
            .count();
        assert_eq!(data_init, 7);
    }

    #[test]
    fn custom_code_line_counts_are_honest() {
        // Table 1 counts "logical lines (semicolon-terminated lines)" of
        // new C code; the corpus must actually contain that much code.
        for case in corpus() {
            let Some(custom) = &case.custom else { continue };
            // Logical lines: statements ending in `;`, excluding the
            // registration macros and bare `return 0;` boilerplate.
            let logical = custom
                .code
                .lines()
                .map(str::trim)
                .filter(|l| l.ends_with(';') && !l.starts_with("ksplice_") && *l != "return 0;")
                .count() as u32;
            assert_eq!(
                logical, custom.lines,
                "{}: custom code has {} logical lines, metadata says {}",
                case.id, logical, custom.lines
            );
        }
    }

    #[test]
    fn class_mix_roughly_two_thirds_escalation() {
        let c = corpus();
        let priv_esc = c
            .iter()
            .filter(|e| e.class == VulnClass::PrivilegeEscalation)
            .count();
        assert!((38..=46).contains(&priv_esc), "priv-esc count {priv_esc}");
    }

    #[test]
    fn exploits_present_for_four() {
        let c = corpus();
        assert_eq!(c.iter().filter(|e| e.exploit.is_some()).count(), 4);
    }

    #[test]
    fn years_span_the_paper_interval() {
        let c = corpus();
        assert!(c.iter().all(|e| (2005..=2008).contains(&e.year)));
        for y in 2005..=2008 {
            assert!(c.iter().any(|e| e.year == y), "no entries for {y}");
        }
    }
}
