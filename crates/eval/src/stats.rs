//! Evaluation statistics (paper §6.3).
//!
//! Three measurements the paper uses to argue the object-code approach
//! is necessary: symbol-name ambiguity in kallsyms, the incidence of
//! inlining among patched functions, and how often the `inline` keyword
//! would have predicted it (it would not).

use std::collections::BTreeSet;

use ksplice_kernel::Kernel;
use ksplice_lang::{build_tree, tree_function_index, tree_inline_report, Options};
use ksplice_object::ObjectSet;

use crate::corpus::Cve;
use crate::tree::base_tree;

/// Kallsyms ambiguity measurements (paper: 6,164 symbols / 7.9 % of the
/// total; 21.1 % of compilation units contain at least one).
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolStats {
    /// All kallsyms entries.
    pub total_symbols: usize,
    /// Entries whose bare name is shared with another symbol.
    pub ambiguous_symbols: usize,
    /// `ambiguous_symbols / total_symbols`.
    pub ambiguous_fraction: f64,
    /// Compilation units in the image.
    pub total_units: usize,
    /// Units containing at least one ambiguous symbol.
    pub units_with_ambiguous: usize,
    /// `units_with_ambiguous / total_units`.
    pub unit_fraction: f64,
}

/// Computes kallsyms ambiguity statistics for a booted kernel.
pub fn symbol_stats(kernel: &Kernel, total_units: usize) -> SymbolStats {
    let total = kernel.syms.len();
    let ambiguous = kernel.syms.ambiguous_symbol_count();
    let units = kernel.syms.units_with_ambiguous_symbols().len();
    SymbolStats {
        total_symbols: total,
        ambiguous_symbols: ambiguous,
        ambiguous_fraction: ambiguous as f64 / total.max(1) as f64,
        total_units,
        units_with_ambiguous: units,
        unit_fraction: units as f64 / total_units.max(1) as f64,
    }
}

/// Per-corpus incidence statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusStats {
    /// CVEs whose patch modifies a function that the distro build inlines
    /// somewhere (paper: 20 of 64).
    pub touching_inlined: Vec<&'static str>,
    /// CVEs whose patch modifies a function declared `inline` (paper: 4
    /// of 64).
    pub touching_inline_keyword: Vec<&'static str>,
    /// CVEs whose patch modifies a function referencing a symbol whose
    /// name is ambiguous in kallsyms (paper: 5 of 64).
    pub touching_ambiguous: Vec<&'static str>,
}

/// Computes the §6.3 incidence statistics for a corpus against the base
/// tree.
pub fn corpus_stats(corpus: &[Cve], kernel: &Kernel) -> CorpusStats {
    let tree = base_tree();
    let inline_map = tree_inline_report(&tree, &Options::distro()).expect("base tree compiles");
    let inlined_fns: BTreeSet<&str> = inline_map
        .values()
        .flat_map(|r| r.keys().map(|k| k.as_str()))
        .collect();
    let fn_index = tree_function_index(&tree).expect("base tree parses");
    let inline_kw_fns: BTreeSet<&str> = fn_index
        .values()
        .flatten()
        .filter(|(_, kw)| *kw)
        .map(|(n, _)| n.as_str())
        .collect();
    // Pre build for relocation inspection.
    let pre = build_tree(&tree, &Options::pre_post()).expect("base tree compiles");

    let mut out = CorpusStats {
        touching_inlined: Vec::new(),
        touching_inline_keyword: Vec::new(),
        touching_ambiguous: Vec::new(),
    };
    for case in corpus {
        let inlined = case.edited_fns.iter().any(|f| inlined_fns.contains(f));
        let kw = case.edited_fns.iter().any(|f| inline_kw_fns.contains(f));
        let ambiguous = case
            .edited_fns
            .iter()
            .any(|f| fn_references_ambiguous(&pre, kernel, f));
        if inlined {
            out.touching_inlined.push(case.id);
        }
        if kw {
            out.touching_inline_keyword.push(case.id);
        }
        if ambiguous {
            out.touching_ambiguous.push(case.id);
        }
    }
    out
}

/// True when function `f` (in the pre build) references — or is itself —
/// a symbol whose name appears more than once in kallsyms.
fn fn_references_ambiguous(pre: &ObjectSet, kernel: &Kernel, f: &str) -> bool {
    let section = format!(".text.{f}");
    for (_, obj) in pre.iter() {
        let Some((_, sec)) = obj.section_by_name(&section) else {
            continue;
        };
        if kernel.syms.lookup_name(f).len() > 1 {
            return true;
        }
        for r in &sec.relocs {
            if let Some(sym) = obj.symbols.get(r.symbol) {
                if kernel.syms.lookup_name(&sym.name).len() > 1 {
                    return true;
                }
            }
        }
    }
    false
}

/// Figure 3's histogram buckets: 0–80 in steps of 5, plus the ∞ bucket.
pub fn figure3_buckets(loc_counts: &[usize]) -> Vec<(String, usize)> {
    let mut buckets: Vec<(String, usize)> = (0..16)
        .map(|i| (format!("{}-{}", i * 5 + 1, (i + 1) * 5), 0))
        .collect();
    buckets.push(("\u{221e}".to_string(), 0));
    for &loc in loc_counts {
        let idx = if loc == 0 { 0 } else { ((loc - 1) / 5).min(16) };
        buckets[idx].1 += 1;
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::corpus;
    use ksplice_kernel::Kernel;

    fn booted() -> Kernel {
        Kernel::boot(&base_tree(), &Options::distro()).expect("boot")
    }

    #[test]
    fn ambiguity_statistics_match_paper_shape() {
        let kernel = booted();
        let units = base_tree()
            .iter()
            .filter(|(p, _)| p.ends_with(".kc"))
            .count();
        let s = symbol_stats(&kernel, units);
        // The paper reports 7.9 % ambiguous symbols and 21.1 % of units
        // containing one; the synthetic tree lands in the same regime.
        assert!(s.ambiguous_symbols >= 4, "{s:?}");
        assert!(
            s.ambiguous_fraction > 0.01 && s.ambiguous_fraction < 0.25,
            "{s:?}"
        );
        assert!(s.units_with_ambiguous >= 4, "{s:?}");
        assert!(s.unit_fraction > 0.05 && s.unit_fraction < 0.5, "{s:?}");
    }

    #[test]
    fn inlining_statistics_match_paper() {
        let kernel = booted();
        let c = corpus();
        let s = corpus_stats(&c, &kernel);
        assert_eq!(
            s.touching_inlined.len(),
            20,
            "paper: 20 of 64 modify an inlined function; got {:?}",
            s.touching_inlined
        );
        assert_eq!(
            s.touching_inline_keyword.len(),
            4,
            "paper: only 4 declare inline; got {:?}",
            s.touching_inline_keyword
        );
        // The keyword set is a subset of the inlined set.
        for id in &s.touching_inline_keyword {
            assert!(s.touching_inlined.contains(id));
        }
    }

    #[test]
    fn ambiguous_symbol_patch_count_matches_paper() {
        let kernel = booted();
        let c = corpus();
        let s = corpus_stats(&c, &kernel);
        assert_eq!(
            s.touching_ambiguous.len(),
            5,
            "paper: 5 of 64 modify a function with an ambiguous symbol; got {:?}",
            s.touching_ambiguous
        );
    }

    #[test]
    fn figure3_bucketing() {
        let b = figure3_buckets(&[2, 2, 7, 12, 85, 200]);
        assert_eq!(b[0], ("1-5".to_string(), 2));
        assert_eq!(b[1].1, 1);
        assert_eq!(b[2].1, 1);
        assert_eq!(b.last().unwrap().1, 2);
        assert_eq!(b.iter().map(|(_, n)| n).sum::<usize>(), 6);
    }
}
