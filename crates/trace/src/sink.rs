//! Event sinks: ring buffer, JSONL writer, human renderer.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::{Arc, Mutex};

use crate::event::{Event, Severity};

/// Where events go. Implementations must be cheap: `record` runs inside
/// the pipeline, including between stop_machine attempts.
pub trait Sink: Send {
    /// Accepts one event. Must not panic or block the pipeline.
    fn record(&mut self, event: &Event);
    /// Flushes any buffered output; the default does nothing.
    fn flush(&mut self) {}
}

/// A bounded in-memory buffer that drops the oldest events once full —
/// the always-on flight recorder. Reads go through the shared
/// [`RingHandle`], which stays valid after the sink is boxed into a
/// tracer.
pub struct RingSink {
    capacity: usize,
    buf: Arc<Mutex<VecDeque<Event>>>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// A shared read handle to the buffer.
    pub fn handle(&self) -> RingHandle {
        RingHandle {
            buf: Arc::clone(&self.buf),
        }
    }
}

impl Sink for RingSink {
    fn record(&mut self, event: &Event) {
        let mut buf = self.buf.lock().expect("ring lock");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Shared reader for a [`RingSink`]'s contents.
#[derive(Clone)]
pub struct RingHandle {
    buf: Arc<Mutex<VecDeque<Event>>>,
}

impl RingHandle {
    /// A snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf
            .lock()
            .expect("ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// How many events are currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring lock").len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events whose name matches exactly.
    pub fn named(&self, name: &str) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| e.name == name)
            .collect()
    }

    /// Events at or above a severity.
    pub fn at_least(&self, severity: Severity) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| e.severity >= severity)
            .collect()
    }

    /// Empties the buffer.
    pub fn clear(&self) {
        self.buf.lock().expect("ring lock").clear();
    }
}

/// Writes one JSON object per line — the `--trace <path>` format.
pub struct JsonlSink<W: Write> {
    w: W,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates/truncates a JSONL trace file.
    pub fn create(path: &std::path::Path) -> io::Result<JsonlSink<BufWriter<File>>> {
        Ok(JsonlSink {
            w: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer as a JSONL sink.
    pub fn new(w: W) -> JsonlSink<W> {
        JsonlSink { w }
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        // A failing trace file must not abort the update itself.
        let _ = writeln!(self.w, "{}", event.to_json());
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// Severity-filtered human-readable renderer — the `--verbose`/default
/// console output.
pub struct HumanSink<W: Write> {
    w: W,
    min_severity: Severity,
}

impl HumanSink<io::Stdout> {
    /// A renderer on stdout showing events at or above `min_severity`.
    pub fn stdout(min_severity: Severity) -> HumanSink<io::Stdout> {
        HumanSink {
            w: io::stdout(),
            min_severity,
        }
    }
}

impl HumanSink<io::Stderr> {
    /// A renderer on stderr showing events at or above `min_severity`.
    pub fn stderr(min_severity: Severity) -> HumanSink<io::Stderr> {
        HumanSink {
            w: io::stderr(),
            min_severity,
        }
    }
}

impl<W: Write> HumanSink<W> {
    /// Wraps any writer as a severity-filtered human renderer.
    pub fn new(w: W, min_severity: Severity) -> HumanSink<W> {
        HumanSink { w, min_severity }
    }
}

impl<W: Write + Send> Sink for HumanSink<W> {
    fn record(&mut self, event: &Event) {
        if event.severity >= self.min_severity {
            let _ = writeln!(self.w, "{}", event.render_human());
        }
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Stage, Value};

    fn event(seq: u64, severity: Severity) -> Event {
        Event {
            seq,
            ts_steps: seq * 10,
            stage: Stage::Apply,
            severity,
            name: format!("e{seq}"),
            fields: vec![("n".to_string(), Value::U64(seq))],
        }
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let mut ring = RingSink::new(3);
        let h = ring.handle();
        for i in 1..=5 {
            ring.record(&event(i, Severity::Info));
        }
        let names: Vec<String> = h.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["e3", "e4", "e5"]);
        assert_eq!(h.len(), 3);
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    fn ring_handle_filters() {
        let mut ring = RingSink::new(10);
        let h = ring.handle();
        ring.record(&event(1, Severity::Debug));
        ring.record(&event(2, Severity::Error));
        assert_eq!(h.at_least(Severity::Warn).len(), 1);
        assert_eq!(h.named("e1").len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut out = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut out);
            sink.record(&event(1, Severity::Info));
            sink.record(&event(2, Severity::Warn));
            sink.flush();
        }
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Event::from_json(line).unwrap();
        }
    }

    #[test]
    fn human_sink_filters_below_min_severity() {
        let mut out = Vec::new();
        {
            let mut sink = HumanSink::new(&mut out, Severity::Warn);
            sink.record(&event(1, Severity::Debug));
            sink.record(&event(2, Severity::Error));
        }
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("e1"));
        assert!(text.contains("e2"));
    }
}
