//! The labeled metrics registry: counters, gauges and log2 histograms
//! keyed by `(name, label set)`, with snapshot/diff, Prometheus-style
//! text and JSONL export.
//!
//! Every series is stored under a canonical **series key**:
//! `name{k="v",k2="v2"}` with labels sorted by key (a bare `name` when
//! unlabeled). Metric names follow the `stage.noun_verb` convention
//! (`apply.trampolines_written`, `watch.probes_failed`); the registry
//! also owns the rename table that folds the pre-registry legacy
//! spellings into their canonical names, so old call sites and replayed
//! v1 traces aggregate into the same series.

use std::collections::BTreeMap;

use crate::json;
use crate::metrics::{Counters, Histogram};

/// Legacy counter names and their canonical `stage.noun_verb`
/// replacements. Applied on every write path ([`Registry::inc`] and
/// friends), so a stray emitter using the old spelling still lands in
/// the canonical series.
pub const COUNTER_RENAMES: &[(&str, &str)] = &[
    ("rollback.text_mismatch", "undo.rollbacks_mismatched"),
    ("watch.auto_rollbacks", "watch.rollbacks_triggered"),
    ("watch.probe_failures", "watch.probes_failed"),
    ("preflight.rejects", "apply.packs_rejected"),
    ("build.cache_hit", "build.cache_hits"),
    ("build.cache_miss", "build.cache_misses"),
    ("build.cache_evict", "build.cache_evictions"),
    ("eval.cases", "eval.cases_run"),
];

/// Maps a (possibly legacy) metric name to its canonical name.
pub fn canonical_name(name: &str) -> &str {
    COUNTER_RENAMES
        .iter()
        .find(|(old, _)| *old == name)
        .map(|(_, new)| *new)
        .unwrap_or(name)
}

/// Encodes a name plus label pairs into the canonical series key.
/// Labels are sorted by key; values are JSON-escaped, so any byte is
/// representable and the encoding is unambiguous.
pub fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    let name = canonical_name(name);
    if labels.is_empty() {
        return name.to_string();
    }
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_unstable();
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{k}={}", json::escape(v)))
        .collect();
    format!("{name}{{{}}}", body.join(","))
}

/// The registry: one table per metric kind, all keyed by series key.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Counters,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `n` to an unlabeled counter.
    pub fn inc(&mut self, name: &str, n: u64) {
        self.counters.add(canonical_name(name), n);
    }

    /// Adds `n` to a labeled counter series.
    pub fn inc_labeled(&mut self, name: &str, labels: &[(&str, &str)], n: u64) {
        self.counters.add(&series_key(name, labels), n);
    }

    /// Reads a counter series by its exact key (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(canonical_name(key))
    }

    /// Reads a labeled counter series.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters.get(&series_key(name, labels))
    }

    /// The whole counter table (series key → value, sorted).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Sets a gauge to an absolute value (last write wins).
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.gauges.insert(series_key(name, labels), value);
    }

    /// Reads a gauge series (`None` when never set).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges.get(&series_key(name, labels)).copied()
    }

    /// All gauges in series-key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Records one observation into an unlabeled histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(canonical_name(name).to_string())
            .or_default()
            .record(value);
    }

    /// Records one observation into a labeled histogram series.
    pub fn observe_labeled(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.histograms
            .entry(series_key(name, labels))
            .or_default()
            .record(value);
    }

    /// A histogram series by exact key.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(canonical_name(key))
    }

    /// All histograms in series-key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Merges another registry into this one: counters and histogram
    /// observations add; gauges take the elementwise maximum (the only
    /// order-independent merge for absolute values, which keeps parallel
    /// worker absorption deterministic).
    pub fn absorb(&mut self, other: &Registry) {
        self.counters.absorb(&other.counters);
        for (key, v) in &other.gauges {
            self.gauges
                .entry(key.clone())
                .and_modify(|g| *g = (*g).max(*v))
                .or_insert(*v);
        }
        for (key, h) in &other.histograms {
            self.histograms.entry(key.clone()).or_default().absorb(h);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A point-in-time copy of every series, for later [`Snapshot::diff`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.iter().map(|(k, v)| (k.to_string(), v)).collect(),
            gauges: self.gauges.clone(),
            observations: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), (h.count(), h.sum())))
                .collect(),
        }
    }

    /// Prometheus-style text exposition: `# TYPE` headers, one
    /// `series value` line per series. Dots in metric names become
    /// underscores (Prometheus names cannot contain `.`); label sets are
    /// emitted verbatim. Histograms export `_count`/`_sum`/`_min`/`_max`
    /// gauge series.
    pub fn prometheus_text(&self) -> String {
        fn mangle(key: &str) -> (String, &str) {
            let (name, labels) = match key.find('{') {
                Some(i) => key.split_at(i),
                None => (key, ""),
            };
            (name.replace('.', "_"), labels)
        }
        let mut out = String::new();
        let mut last_header = String::new();
        let mut header = |out: &mut String, name: &str, kind: &str| {
            if *name != last_header {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_header = name.to_string();
            }
        };
        for (key, v) in self.counters.iter() {
            let (name, labels) = mangle(key);
            header(&mut out, &name, "counter");
            out.push_str(&format!("{name}{labels} {v}\n"));
        }
        for (key, v) in &self.gauges {
            let (name, labels) = mangle(key);
            header(&mut out, &name, "gauge");
            out.push_str(&format!("{name}{labels} {v}\n"));
        }
        for (key, h) in &self.histograms {
            let (name, labels) = mangle(key);
            header(&mut out, &name, "summary");
            out.push_str(&format!("{name}_count{labels} {}\n", h.count()));
            out.push_str(&format!("{name}_sum{labels} {}\n", h.sum()));
            out.push_str(&format!("{name}_min{labels} {}\n", h.min()));
            out.push_str(&format!("{name}_max{labels} {}\n", h.max()));
        }
        out
    }

    /// JSONL exposition: one JSON object per series, stable order
    /// (counters, then gauges, then histograms; each table sorted by
    /// series key).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (key, v) in self.counters.iter() {
            out.push_str(&format!(
                "{{\"kind\":\"counter\",\"series\":{},\"value\":{v}}}\n",
                json::escape(key)
            ));
        }
        for (key, v) in &self.gauges {
            out.push_str(&format!(
                "{{\"kind\":\"gauge\",\"series\":{},\"value\":{v}}}\n",
                json::escape(key)
            ));
        }
        for (key, h) in &self.histograms {
            out.push_str(&format!(
                "{{\"kind\":\"histogram\",\"series\":{},\"value\":{}}}\n",
                json::escape(key),
                h.to_json()
            ));
        }
        out
    }
}

/// A point-in-time copy of a [`Registry`]'s series values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    /// Histogram series → (count, sum) at snapshot time.
    observations: BTreeMap<String, (u64, u64)>,
}

impl Snapshot {
    /// The change from `earlier` to `self`: only series that moved are
    /// reported. Counter deltas are saturating (a counter that went
    /// backwards — impossible in one registry — reads as 0).
    pub fn diff(&self, earlier: &Snapshot) -> SnapshotDiff {
        let mut d = SnapshotDiff::default();
        for (key, v) in &self.counters {
            let before = earlier.counters.get(key).copied().unwrap_or(0);
            if *v != before {
                d.counters.push((key.clone(), v.saturating_sub(before)));
            }
        }
        for (key, v) in &self.gauges {
            let before = earlier.gauges.get(key).copied();
            if before != Some(*v) {
                d.gauges.push((key.clone(), *v - before.unwrap_or(0)));
            }
        }
        for (key, (count, sum)) in &self.observations {
            let (c0, s0) = earlier.observations.get(key).copied().unwrap_or((0, 0));
            if *count != c0 {
                d.observations.push((
                    key.clone(),
                    count.saturating_sub(c0),
                    sum.saturating_sub(s0),
                ));
            }
        }
        d
    }
}

/// What changed between two [`Snapshot`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotDiff {
    /// Counter series that advanced: (series key, delta).
    pub counters: Vec<(String, u64)>,
    /// Gauges that moved: (series key, signed delta).
    pub gauges: Vec<(String, i64)>,
    /// Histograms with new observations: (series key, count delta,
    /// sum delta).
    pub observations: Vec<(String, u64, u64)>,
}

impl SnapshotDiff {
    /// True when nothing changed between the snapshots.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.observations.is_empty()
    }

    /// One line per change, for human output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, delta) in &self.counters {
            out.push_str(&format!("{key} +{delta}\n"));
        }
        for (key, delta) in &self.gauges {
            out.push_str(&format!("{key} {delta:+}\n"));
        }
        for (key, count, sum) in &self.observations {
            out.push_str(&format!("{key} +{count} obs (+{sum})\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_keys_sort_labels_and_escape_values() {
        assert_eq!(series_key("a.b", &[]), "a.b");
        assert_eq!(
            series_key("a.b", &[("z", "1"), ("a", "x\"y")]),
            "a.b{a=\"x\\\"y\",z=\"1\"}"
        );
    }

    #[test]
    fn legacy_names_fold_into_canonical_series() {
        let mut r = Registry::new();
        r.inc("rollback.text_mismatch", 1);
        r.inc("undo.rollbacks_mismatched", 2);
        assert_eq!(r.counter("undo.rollbacks_mismatched"), 3);
        // Reading through the legacy name sees the same series.
        assert_eq!(r.counter("rollback.text_mismatch"), 3);
        assert_eq!(r.counters().len(), 1);
    }

    #[test]
    fn labeled_series_are_independent() {
        let mut r = Registry::new();
        r.inc_labeled("apply.trampolines_written", &[("cve", "a")], 2);
        r.inc_labeled("apply.trampolines_written", &[("cve", "b")], 5);
        assert_eq!(r.counter_labeled("apply.trampolines_written", &[("cve", "a")]), 2);
        assert_eq!(r.counter_labeled("apply.trampolines_written", &[("cve", "b")]), 5);
        r.set_gauge("watch.packs_active", &[], 3);
        assert_eq!(r.gauge("watch.packs_active", &[]), Some(3));
        r.observe_labeled("apply.pause_us", &[("cve", "a")], 700);
        assert_eq!(
            r.histogram("apply.pause_us{cve=\"a\"}").unwrap().count(),
            1
        );
    }

    #[test]
    fn absorb_adds_counters_and_maxes_gauges() {
        let mut a = Registry::new();
        a.inc("x.y", 1);
        a.set_gauge("g.h", &[], 5);
        let mut b = Registry::new();
        b.inc("x.y", 2);
        b.set_gauge("g.h", &[], 3);
        b.set_gauge("g.i", &[], 7);
        b.observe("h.o", 10);
        a.absorb(&b);
        assert_eq!(a.counter("x.y"), 3);
        assert_eq!(a.gauge("g.h", &[]), Some(5)); // max wins
        assert_eq!(a.gauge("g.i", &[]), Some(7));
        assert_eq!(a.histogram("h.o").unwrap().count(), 1);
        // Absorb order does not matter for the merged values.
        let mut c = Registry::new();
        c.absorb(&b);
        let mut a2 = Registry::new();
        a2.inc("x.y", 1);
        a2.set_gauge("g.h", &[], 5);
        c.absorb(&a2);
        assert_eq!(c.counter("x.y"), a.counter("x.y"));
        assert_eq!(c.gauge("g.h", &[]), a.gauge("g.h", &[]));
    }

    #[test]
    fn snapshot_diff_reports_only_changes() {
        let mut r = Registry::new();
        r.inc("a.b", 1);
        r.set_gauge("g.h", &[], 2);
        r.observe("h.o", 4);
        let before = r.snapshot();
        assert!(before.diff(&before).is_empty());
        r.inc("a.b", 3);
        r.inc("c.d", 1);
        r.set_gauge("g.h", &[], 1);
        r.observe("h.o", 6);
        let d = r.snapshot().diff(&before);
        assert_eq!(d.counters, vec![("a.b".into(), 3), ("c.d".into(), 1)]);
        assert_eq!(d.gauges, vec![("g.h".into(), -1)]);
        assert_eq!(d.observations, vec![("h.o".into(), 1, 6)]);
        assert!(d.render().contains("a.b +3"));
        assert!(d.render().contains("g.h -1"));
    }

    #[test]
    fn prometheus_text_mangles_names() {
        let mut r = Registry::new();
        r.inc_labeled("apply.updates_committed", &[("cve", "x")], 2);
        r.set_gauge("watch.packs_active", &[], 1);
        r.observe("apply.pause_us", 700);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE apply_updates_committed counter"), "{text}");
        assert!(text.contains("apply_updates_committed{cve=\"x\"} 2"), "{text}");
        assert!(text.contains("watch_packs_active 1"), "{text}");
        assert!(text.contains("apply_pause_us_count 1"), "{text}");
        assert!(text.contains("apply_pause_us_sum 700"), "{text}");
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let mut r = Registry::new();
        r.inc_labeled("a.b", &[("k", "v")], 1);
        r.set_gauge("g.h", &[], -2);
        r.observe("h.o", 3);
        for line in r.to_jsonl().lines() {
            let v = crate::json::parse_json_object(line).unwrap();
            assert!(v.get("kind").is_some(), "{line}");
            assert!(v.get("series").is_some(), "{line}");
        }
    }
}
