//! `ksplice_trace` — the structured observability layer for the
//! hot-update pipeline.
//!
//! The paper's safety story (§4 run-pre matching aborts on any byte
//! mismatch; §5.2 stop_machine stack checks retry then abort) demands
//! per-stage evidence when an update aborts: *which* unit diverged, at
//! what offset, how many capture attempts failed and on whose stack.
//! This crate provides that evidence channel with zero dependencies:
//!
//! * [`Event`] — one structured record: a step-clock timestamp, a
//!   pipeline [`Stage`], a [`Severity`], an event name, and typed
//!   key/value fields.
//! * [`Sink`] — where events go. Built-ins: [`RingSink`] (bounded
//!   in-memory buffer with a shared read handle), [`JsonlSink`] (one
//!   JSON object per line), [`HumanSink`] (severity-filtered
//!   human-readable renderer).
//! * [`Tracer`] — the bus the pipeline emits into, which also owns the
//!   labeled metrics [`Registry`] (monotonic counters, gauges, and
//!   power-of-two [`Histogram`]s) that feeds the `BENCH_*.json` perf
//!   trajectory, and the causal-[`Span`] stack that turns the update
//!   lifecycle (preflight → apply attempts → watch → commit/rollback)
//!   into a tree renderable as a Chrome trace
//!   ([`chrome_trace_json`]).
//!
//! Every pipeline entry point (`differ`, `runpre`, `apply`, `create`,
//! `stream`) has a `_traced` variant taking `&mut Tracer`; the untraced
//! names delegate with [`Tracer::disabled`], which short-circuits to
//! nothing so the hot paths pay one branch.

#![deny(missing_docs)]

mod event;
mod json;
mod metrics;
mod registry;
mod sink;
mod span;

pub use event::{Event, Severity, Stage, Value, EVENT_SCHEMA_VERSION};
pub use json::{escape as json_escape, parse_json_object, JsonValue};
pub use metrics::{Counters, Histogram};
pub use registry::{
    canonical_name, series_key, Registry, Snapshot, SnapshotDiff, COUNTER_RENAMES,
};
pub use sink::{HumanSink, JsonlSink, RingHandle, RingSink, Sink};
pub use span::{chrome_trace_json, render_span_tree, Span, SpanId};

/// The event bus: sinks plus the pipeline-wide metrics [`Registry`] and
/// the causal-span stack.
///
/// Single-threaded by design (the simulated kernel is too): emitters
/// hold `&mut Tracer` for exactly the scope of a pipeline call.
#[derive(Default)]
pub struct Tracer {
    enabled: bool,
    /// Step-clock value stamped on emitted events (set from
    /// `Kernel::steps` by the pipeline as it advances).
    now_steps: u64,
    seq: u64,
    sinks: Vec<Box<dyn Sink>>,
    registry: Registry,
    spans: Vec<Span>,
    span_stack: Vec<u64>,
    next_span_id: u64,
}

impl Tracer {
    /// An enabled tracer with no sinks: events are sequenced and counted
    /// but stored nowhere until a sink is attached.
    pub fn new() -> Tracer {
        let mut t = Tracer::default();
        t.enabled = true;
        t
    }

    /// The no-op tracer the untraced API delegates through. Emitting,
    /// counting and observing all return immediately.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Whether this tracer records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attaches a sink; every subsequent event is fanned out to it.
    pub fn add_sink(&mut self, sink: Box<dyn Sink>) -> &mut Tracer {
        self.sinks.push(sink);
        self
    }

    /// Builder form of [`Tracer::add_sink`].
    pub fn with_sink(mut self, sink: Box<dyn Sink>) -> Tracer {
        self.sinks.push(sink);
        self
    }

    /// Advances the step clock stamped on subsequent events.
    pub fn set_now(&mut self, steps: u64) {
        // The clock never runs backwards even if a caller re-stamps from
        // a freshly booted kernel mid-pipeline.
        self.now_steps = self.now_steps.max(steps);
    }

    /// The current step-clock reading.
    pub fn now(&self) -> u64 {
        self.now_steps
    }

    /// Emits one event to every sink.
    pub fn emit(
        &mut self,
        stage: Stage,
        severity: Severity,
        name: &str,
        fields: Vec<(&str, Value)>,
    ) {
        if !self.enabled {
            return;
        }
        self.seq += 1;
        let event = Event {
            seq: self.seq,
            ts_steps: self.now_steps,
            stage,
            severity,
            name: name.to_string(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        };
        for sink in &mut self.sinks {
            sink.record(&event);
        }
    }

    /// Adds `n` to a named monotonic counter. Legacy counter names are
    /// folded into their canonical `stage.noun_verb` spellings by the
    /// registry (see [`COUNTER_RENAMES`]).
    pub fn count(&mut self, name: &str, n: u64) {
        if self.enabled {
            self.registry.inc(name, n);
        }
    }

    /// Adds `n` to a labeled counter series.
    pub fn count_labeled(&mut self, name: &str, labels: &[(&str, &str)], n: u64) {
        if self.enabled {
            self.registry.inc_labeled(name, labels, n);
        }
    }

    /// Reads a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.registry.counter(name)
    }

    /// Sets a gauge to an absolute value.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: i64) {
        if self.enabled {
            self.registry.set_gauge(name, labels, value);
        }
    }

    /// Records one observation into a named histogram (step durations,
    /// pause microseconds, byte counts — any u64 measure).
    pub fn observe(&mut self, name: &str, value: u64) {
        if self.enabled {
            self.registry.observe(name, value);
        }
    }

    /// Records one observation into a labeled histogram series.
    pub fn observe_labeled(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        if self.enabled {
            self.registry.observe_labeled(name, labels, value);
        }
    }

    /// Merges another tracer's metrics registry into this one — how the
    /// parallel evaluation driver folds per-worker tracers back into the
    /// caller's after `thread::scope` joins. Events and spans are not
    /// transferred (workers attach their own sinks if they want them);
    /// the step clock advances to the furthest worker's reading.
    pub fn absorb(&mut self, other: &Tracer) {
        if !self.enabled {
            return;
        }
        self.registry.absorb(&other.registry);
        self.now_steps = self.now_steps.max(other.now_steps);
    }

    /// The counter table (series key → value).
    pub fn counters(&self) -> &Counters {
        self.registry.counters()
    }

    /// A named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.registry.histogram(name)
    }

    /// The full metrics registry (labeled series, gauges, exports).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A point-in-time snapshot of every metric series, for
    /// [`Snapshot::diff`].
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Opens a span: subsequent spans nest under it until it ends.
    /// Emits a `span.begin` event (Debug) carrying `span_id`/`parent_id`
    /// plus the given fields, so JSONL traces round-trip the tree.
    pub fn span_start(
        &mut self,
        stage: Stage,
        name: &str,
        fields: Vec<(&str, Value)>,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        self.next_span_id += 1;
        let id = self.next_span_id;
        let parent = self.span_stack.last().copied().unwrap_or(0);
        self.spans.push(Span {
            id,
            parent,
            stage,
            name: name.to_string(),
            start_steps: self.now_steps,
            end_steps: None,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
        self.span_stack.push(id);
        self.emit(
            stage,
            Severity::Debug,
            "span.begin",
            span::begin_fields(name, id, parent, fields),
        );
        SpanId(id)
    }

    /// Closes a span. Children left open inside it (an abort path that
    /// early-returned past their `span_end`) are closed first, innermost
    /// out. No-op for [`SpanId::NONE`] or an already-closed id.
    pub fn span_end(&mut self, id: SpanId) {
        if !self.enabled || id.is_none() {
            return;
        }
        match self.span_stack.iter().rposition(|&s| s == id.0) {
            Some(pos) => {
                let popped: Vec<u64> = self.span_stack.drain(pos..).collect();
                for sid in popped.into_iter().rev() {
                    self.close_one_span(sid);
                }
            }
            None => self.close_one_span(id.0),
        }
    }

    fn close_one_span(&mut self, id: u64) {
        let now = self.now_steps;
        let Some(span) = self.spans.iter_mut().find(|s| s.id == id && s.end_steps.is_none())
        else {
            return;
        };
        span.end_steps = Some(now);
        let (stage, name, parent, dur) =
            (span.stage, span.name.clone(), span.parent, span.dur_steps());
        self.emit(
            stage,
            Severity::Debug,
            "span.end",
            span::end_fields(&name, id, parent, dur),
        );
    }

    /// Runs `f` inside a span, closing it on the way out.
    pub fn in_span<R>(
        &mut self,
        stage: Stage,
        name: &str,
        fields: Vec<(&str, Value)>,
        f: impl FnOnce(&mut Tracer) -> R,
    ) -> R {
        let id = self.span_start(stage, name, fields);
        let r = f(self);
        self.span_end(id);
        r
    }

    /// The id of the innermost open span (0 when none).
    pub fn current_span(&self) -> u64 {
        self.span_stack.last().copied().unwrap_or(0)
    }

    /// Every span recorded by this tracer, in open order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Renders every counter, gauge and histogram as one JSON object —
    /// the payload of the `BENCH_*.json` metric dumps.
    pub fn metrics_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (k, v)) in self.registry.counters().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{v}", json::escape(k)));
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.registry.gauges().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{v}", json::escape(k)));
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.registry.histograms().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{}", json::escape(k), h.to_json()));
        }
        s.push_str("}}");
        s
    }

    /// Flushes every sink (file sinks buffer).
    pub fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let ring = RingSink::new(8);
        let handle = ring.handle();
        let mut t = Tracer::disabled().with_sink(Box::new(ring));
        t.emit(Stage::Apply, Severity::Info, "x", vec![]);
        t.count("c", 3);
        t.observe("h", 5);
        assert!(handle.events().is_empty());
        assert_eq!(t.counter("c"), 0);
        assert!(t.histogram("h").is_none());
    }

    #[test]
    fn events_are_sequenced_and_stamped() {
        let ring = RingSink::new(8);
        let handle = ring.handle();
        let mut t = Tracer::new().with_sink(Box::new(ring));
        t.set_now(100);
        t.emit(Stage::RunPre, Severity::Info, "a", vec![("k", 1u64.into())]);
        t.set_now(250);
        t.emit(Stage::Apply, Severity::Warn, "b", vec![]);
        let events = handle.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[0].ts_steps, 100);
        assert_eq!(events[1].ts_steps, 250);
        // The clock is monotonic even if re-stamped lower.
        t.set_now(10);
        assert_eq!(t.now(), 250);
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let mut t = Tracer::new();
        t.count("runpre.bytes_matched", 100);
        t.count("runpre.bytes_matched", 50);
        t.observe("apply.pause_us", 700);
        t.observe("apply.pause_us", 900);
        assert_eq!(t.counter("runpre.bytes_matched"), 150);
        let h = t.histogram("apply.pause_us").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 700);
        assert_eq!(h.max(), 900);
        let json = t.metrics_json();
        assert!(json.contains("\"runpre.bytes_matched\":150"), "{json}");
        assert!(json.contains("\"apply.pause_us\""), "{json}");
    }

    #[test]
    fn absorb_merges_worker_tracers() {
        let mut main = Tracer::new();
        main.count("build.cache_hit", 1);
        main.set_now(50);
        let mut w1 = Tracer::new();
        w1.count("build.cache_hit", 4);
        w1.observe("apply.pause_us", 700);
        w1.set_now(900);
        let mut w2 = Tracer::new();
        w2.count("build.units_compiled", 2);
        w2.observe("apply.pause_us", 300);
        main.absorb(&w1);
        main.absorb(&w2);
        assert_eq!(main.counter("build.cache_hit"), 5);
        assert_eq!(main.counter("build.units_compiled"), 2);
        let h = main.histogram("apply.pause_us").unwrap();
        assert_eq!((h.count(), h.min(), h.max()), (2, 300, 700));
        assert_eq!(main.now(), 900);
        // A disabled tracer absorbs nothing.
        let mut off = Tracer::disabled();
        off.absorb(&w1);
        assert_eq!(off.counter("build.cache_hit"), 0);
    }

    #[test]
    fn metrics_json_parses_back() {
        let mut t = Tracer::new();
        t.count("a", 1);
        t.observe("h", 42);
        let parsed = parse_json_object(&t.metrics_json()).unwrap();
        let JsonValue::Object(top) = parsed else {
            panic!("not an object")
        };
        assert!(top.iter().any(|(k, _)| k == "counters"));
    }
}
