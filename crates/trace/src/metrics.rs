//! Counters and power-of-two histograms.

use std::collections::BTreeMap;

/// Named monotonic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    table: BTreeMap<String, u64>,
}

impl Counters {
    /// An empty counter table.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Adds `n` to the named counter, creating it at zero first.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.table.entry(name.to_string()).or_insert(0) += n;
    }

    /// Reads a counter; absent names read as zero.
    pub fn get(&self, name: &str) -> u64 {
        self.table.get(name).copied().unwrap_or(0)
    }

    /// Adds every counter of `other` into this table.
    pub fn absorb(&mut self, other: &Counters) {
        for (name, n) in other.iter() {
            self.add(name, n);
        }
    }

    /// All counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.table.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// How many distinct counters exist.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// A histogram over u64 observations with power-of-two buckets: bucket
/// `i` counts values whose bit length is `i` (bucket 0 holds zeros).
/// Constant memory, O(1) record, good enough resolution for step counts
/// and microsecond pauses.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let bucket = 64 - value.leading_zeros() as usize; // bit length
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram's observations into this one, as if
    /// every value had been recorded here.
    pub fn absorb(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (bucket, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *bucket += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupied buckets as `(lower_bound_inclusive, count)`.
    pub fn occupied(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
            .collect()
    }

    /// JSON object with the summary stats and occupied buckets.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .occupied()
            .iter()
            .map(|(lo, n)| format!("[{lo},{n}]"))
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.1},\"buckets\":\"{}\"}}",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.mean(),
            buckets.join(" ")
        )
    }

    /// One-line human summary.
    pub fn render(&self) -> String {
        format!(
            "n={} min={} mean={:.1} max={} sum={}",
            self.count,
            self.min(),
            self.mean(),
            self.max,
            self.sum
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let mut c = Counters::new();
        c.add("x", 2);
        c.add("x", 3);
        c.add("y", 1);
        assert_eq!(c.get("x"), 5);
        assert_eq!(c.get("y"), 1);
        assert_eq!(c.get("absent"), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1010);
        // 0 → bucket 0; 1 → [1,2); 2,3 → [2,4); 4 → [4,8); 1000 → [512,1024).
        assert_eq!(h.occupied(), vec![(0, 1), (1, 1), (2, 2), (4, 1), (512, 1)]);
    }

    #[test]
    fn histograms_absorb_each_other() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(700);
        let mut b = Histogram::new();
        b.record(0);
        b.record(900);
        a.absorb(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 1601);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 900);
        // Absorbing an empty histogram changes nothing (min stays valid).
        let before = a.occupied();
        a.absorb(&Histogram::new());
        assert_eq!(a.occupied(), before);
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn counters_absorb_each_other() {
        let mut a = Counters::new();
        a.add("x", 2);
        let mut b = Counters::new();
        b.add("x", 3);
        b.add("y", 1);
        a.absorb(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.to_json().contains("\"count\":0"));
    }
}
