//! Minimal JSON writer/reader for the trace formats.
//!
//! The crate is zero-dependency, so it carries its own escaping and a
//! small recursive-descent parser covering exactly what the JSONL sink
//! emits: objects whose values are strings, integers, booleans, null, or
//! nested objects/arrays of the same. Floats are parsed to their integer
//! truncation (the sink never writes them).

use std::fmt::Write as _;

/// Escapes a string into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value (the subset the trace formats use).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// `true` or `false`.
    Bool(bool),
    /// A string.
    Str(String),
    /// Objects keep insertion order.
    Object(Vec<(String, JsonValue)>),
    /// Arrays (the Chrome-trace `traceEvents` list and histogram bucket
    /// dumps use them).
    Array(Vec<JsonValue>),
}

impl JsonValue {
    /// Looks up a key in an `Object`; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON object from a string (whole-input).
pub fn parse_json_object(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.at));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.at,
                self.peek().map(|c| c as char).unwrap_or('∅')
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::U64(0)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected `{}` at byte {}",
                other.map(|c| c as char).unwrap_or('∅'),
                self.at
            )),
        }
    }

    fn literal(&mut self, text: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape `\\{}`",
                                other.map(|c| c as char).unwrap_or('∅')
                            ))
                        }
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.at..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).map_err(|e| e.to_string())?;
        if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(JsonValue::I64(v));
        }
        text.parse::<f64>()
            .map(|f| JsonValue::I64(f as i64))
            .map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parse_nested_object() {
        let v = parse_json_object(
            "{\"a\":1,\"b\":-2,\"c\":true,\"d\":\"x\\ny\",\"e\":{\"f\":99},\"g\":null}",
        )
        .unwrap();
        let JsonValue::Object(o) = v else { panic!() };
        assert_eq!(o[0], ("a".to_string(), JsonValue::U64(1)));
        assert_eq!(o[1], ("b".to_string(), JsonValue::I64(-2)));
        assert_eq!(o[2], ("c".to_string(), JsonValue::Bool(true)));
        assert_eq!(o[3], ("d".to_string(), JsonValue::Str("x\ny".to_string())));
        assert!(matches!(o[4].1, JsonValue::Object(_)));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json_object("{\"a\":}").is_err());
        assert!(parse_json_object("{\"a\":1} trailing").is_err());
        assert!(parse_json_object("").is_err());
    }

    #[test]
    fn parse_arrays() {
        let v = parse_json_object("{\"a\":[1,\"x\",[2],{\"b\":3}],\"e\":[]}").unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_str(), Some("x"));
        assert_eq!(a[2].as_array().unwrap()[0].as_u64(), Some(2));
        assert_eq!(a[3].get("b").unwrap().as_u64(), Some(3));
        assert!(v.get("e").unwrap().as_array().unwrap().is_empty());
        assert!(parse_json_object("[1,2]").is_ok());
        assert!(parse_json_object("[1,").is_err());
    }

    #[test]
    fn escape_parse_roundtrip_unicode() {
        let s = "naïve — \"quoted\" \t done";
        let v = parse_json_object(&format!("{{\"k\":{}}}", escape(s))).unwrap();
        let JsonValue::Object(o) = v else { panic!() };
        assert_eq!(o[0].1, JsonValue::Str(s.to_string()));
    }
}
