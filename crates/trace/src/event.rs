//! The event record: stage taxonomy, severity, typed field values.

use std::fmt;

use crate::json::{self, parse_json_object, JsonValue};

/// Which pipeline stage emitted an event.
///
/// The taxonomy follows the paper's workflow: `ksplice-create` builds and
/// diffs (§3), run-pre matching verifies and resolves (§4), apply/undo
/// redirect under `stop_machine` (§5), streams deliver (§8). `Cli` and
/// `Bench` cover the tooling around the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// `ksplice-create`: patch → update pack (§5.1).
    Create,
    /// Pre-post object differencing (§3).
    Differ,
    /// Run-pre matching and symbol recovery (§4).
    RunPre,
    /// Applying an update under `stop_machine` (§5.2).
    Apply,
    /// The post-apply quarantine watch window: health probes running
    /// against the freshly patched kernel, and any automatic rollback
    /// they trigger.
    Watch,
    /// Reversing a live update.
    Undo,
    /// Update-stream packaging and delivery (§8).
    Stream,
    /// Command-line tooling around the pipeline.
    Cli,
    /// Benchmark and evaluation harnesses.
    Bench,
    /// Randomized patch campaigns and the differential oracle.
    Fuzz,
    /// Fleet-scale rollout: wave orchestration, pack transport, node
    /// contact and mass rollback.
    Fleet,
    /// Porting an update across kernel-version drift: fuzzy unit
    /// matching, hunk rewriting and the rebased-pack verification gate.
    Rebase,
}

impl Stage {
    /// Every stage, in taxonomy order.
    pub const ALL: [Stage; 12] = [
        Stage::Create,
        Stage::Differ,
        Stage::RunPre,
        Stage::Apply,
        Stage::Watch,
        Stage::Undo,
        Stage::Stream,
        Stage::Cli,
        Stage::Bench,
        Stage::Fuzz,
        Stage::Fleet,
        Stage::Rebase,
    ];

    /// The lowercase wire name (`"apply"`, `"runpre"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Create => "create",
            Stage::Differ => "differ",
            Stage::RunPre => "runpre",
            Stage::Apply => "apply",
            Stage::Watch => "watch",
            Stage::Undo => "undo",
            Stage::Stream => "stream",
            Stage::Cli => "cli",
            Stage::Bench => "bench",
            Stage::Fuzz => "fuzz",
            Stage::Fleet => "fleet",
            Stage::Rebase => "rebase",
        }
    }

    /// Inverse of [`Stage::as_str`].
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.as_str() == s)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Event severity, ordered: `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Per-attempt detail; hidden by default in human output.
    Debug,
    /// Normal pipeline milestones.
    Info,
    /// Recoverable trouble (a failed stack check that will retry).
    Warn,
    /// An abort or verification failure.
    Error,
}

impl Severity {
    /// The lowercase wire name (`"debug"`, `"info"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Inverse of [`Severity::as_str`].
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned count, address, or step reading.
    U64(u64),
    /// A signed quantity (deltas, offsets).
    I64(i64),
    /// A flag, e.g. `restored` on rollback verification.
    Bool(bool),
    /// Free text: names, details, messages.
    Str(String),
}

impl Value {
    /// The value as a `u64`; in-range `I64`s convert.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, for `Str` only.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, for `Bool` only.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => json::escape(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// The JSONL wire-schema version stamped on every emitted event line as
/// `"v"`. Version history:
///
/// * **1** (implicit — lines with no `v` key): seq/ts_steps/stage/
///   severity/event/fields.
/// * **2**: identical layout plus the explicit `v` key; span lifecycle
///   events (`span.begin`/`span.end`) carry `span_id`/`parent_id`
///   fields.
///
/// The reader accepts any version up to this one.
pub const EVENT_SCHEMA_VERSION: u64 = 2;

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic per-tracer sequence number (1-based).
    pub seq: u64,
    /// Kernel step-clock reading when emitted (0 when no kernel is
    /// involved, e.g. create-time differencing).
    pub ts_steps: u64,
    /// Which pipeline stage emitted the event.
    pub stage: Stage,
    /// How serious the event is.
    pub severity: Severity,
    /// Dotted event name, e.g. `runpre.mismatch`.
    pub name: String,
    /// Typed key/value payload, in emission order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Shortcut: a u64 field.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(Value::as_u64)
    }

    /// Shortcut: a string field.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.field(key).and_then(Value::as_str)
    }

    /// One JSON object, no trailing newline. Stable field order:
    /// v, seq, ts_steps, stage, severity, event, fields.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"v\":{EVENT_SCHEMA_VERSION},\"seq\":{},\"ts_steps\":{},\"stage\":\"{}\",\"severity\":\"{}\",\"event\":{},\"fields\":{{",
            self.seq,
            self.ts_steps,
            self.stage.as_str(),
            self.severity.as_str(),
            json::escape(&self.name),
        );
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json::escape(k));
            s.push(':');
            s.push_str(&v.to_json());
        }
        s.push_str("}}");
        s
    }

    /// Parses one line of [`Event::to_json`] output (the `ksplice report`
    /// reader). Tolerates unknown keys; requires stage/severity/event.
    /// Lines without a `"v"` key are read as schema v1; versions newer
    /// than [`EVENT_SCHEMA_VERSION`] are rejected.
    pub fn from_json(line: &str) -> Result<Event, String> {
        let JsonValue::Object(top) = parse_json_object(line)? else {
            return Err("event line is not a JSON object".to_string());
        };
        let get = |key: &str| top.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        if let Some(JsonValue::U64(v)) = get("v") {
            if *v > EVENT_SCHEMA_VERSION {
                return Err(format!(
                    "event schema v{v} is newer than supported v{EVENT_SCHEMA_VERSION}"
                ));
            }
        }
        let stage_str = match get("stage") {
            Some(JsonValue::Str(s)) => s.as_str(),
            _ => return Err("missing stage".to_string()),
        };
        let stage = Stage::parse(stage_str).ok_or_else(|| format!("bad stage `{stage_str}`"))?;
        let sev_str = match get("severity") {
            Some(JsonValue::Str(s)) => s.as_str(),
            _ => return Err("missing severity".to_string()),
        };
        let severity =
            Severity::parse(sev_str).ok_or_else(|| format!("bad severity `{sev_str}`"))?;
        let name = match get("event") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => return Err("missing event name".to_string()),
        };
        let num = |key: &str| match get(key) {
            Some(JsonValue::U64(v)) => *v,
            _ => 0,
        };
        let mut fields = Vec::new();
        if let Some(JsonValue::Object(fs)) = get("fields") {
            for (k, v) in fs {
                let value = match v {
                    JsonValue::U64(n) => Value::U64(*n),
                    JsonValue::I64(n) => Value::I64(*n),
                    JsonValue::Bool(b) => Value::Bool(*b),
                    JsonValue::Str(s) => Value::Str(s.clone()),
                    JsonValue::Object(_) | JsonValue::Array(_) => continue,
                };
                fields.push((k.clone(), value));
            }
        }
        Ok(Event {
            seq: num("seq"),
            ts_steps: num("ts_steps"),
            stage,
            severity,
            name,
            fields,
        })
    }

    /// Human-readable single-line rendering: a fixed-width header, the
    /// event name, a free-text `msg` field (if present) and the remaining
    /// fields as `key=value`.
    pub fn render_human(&self) -> String {
        let mut s = format!(
            "[{:>10} {:<6} {:<5}] {}",
            self.ts_steps,
            self.stage.as_str(),
            self.severity.as_str(),
            self.name
        );
        if let Some(msg) = self.str_field("msg") {
            s.push_str(": ");
            s.push_str(msg);
        }
        for (k, v) in &self.fields {
            if k != "msg" {
                s.push_str(&format!(" {k}={v}"));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            seq: 7,
            ts_steps: 12345,
            stage: Stage::Apply,
            severity: Severity::Warn,
            name: "apply.stop_machine".to_string(),
            fields: vec![
                ("attempt".to_string(), Value::U64(2)),
                ("ok".to_string(), Value::Bool(false)),
                (
                    "busy_fn".to_string(),
                    Value::Str("worker \"x\"".to_string()),
                ),
                ("delta".to_string(), Value::I64(-4)),
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let e = sample();
        let parsed = Event::from_json(&e.to_json()).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn json_carries_schema_version() {
        let line = sample().to_json();
        assert!(line.starts_with("{\"v\":2,"), "{line}");
        // A v1 line (no `v` key) still parses.
        let v1 = "{\"seq\":1,\"ts_steps\":5,\"stage\":\"apply\",\"severity\":\"info\",\
                  \"event\":\"x\",\"fields\":{}}";
        assert_eq!(Event::from_json(v1).unwrap().name, "x");
        // A future version is rejected loudly rather than misread.
        let v9 = "{\"v\":9,\"stage\":\"apply\",\"severity\":\"info\",\"event\":\"x\"}";
        assert!(Event::from_json(v9).unwrap_err().contains("schema"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let line = sample().to_json();
        assert!(line.contains("\"busy_fn\":\"worker \\\"x\\\"\""), "{line}");
        assert!(Event::from_json("not json").is_err());
        assert!(Event::from_json("{\"stage\":\"nope\"}").is_err());
    }

    #[test]
    fn human_rendering_promotes_msg() {
        let mut e = sample();
        e.fields
            .push(("msg".to_string(), Value::Str("retrying".to_string())));
        let line = e.render_human();
        assert!(line.contains("apply.stop_machine: retrying"), "{line}");
        assert!(line.contains("attempt=2"), "{line}");
        assert!(!line.contains("msg="), "{line}");
    }

    #[test]
    fn stage_and_severity_parse_roundtrip() {
        for s in Stage::ALL {
            assert_eq!(Stage::parse(s.as_str()), Some(s));
        }
        for sev in [
            Severity::Debug,
            Severity::Info,
            Severity::Warn,
            Severity::Error,
        ] {
            assert_eq!(Severity::parse(sev.as_str()), Some(sev));
        }
        assert!(Severity::Debug < Severity::Error);
    }
}
