//! Causal spans: nested intervals over the step clock.
//!
//! A span wraps one pipeline phase (preflight → apply attempt →
//! quarantine watch → commit/rollback) and records its parent, so the
//! update lifecycle becomes a tree instead of a flat event list. Spans
//! ride the ordinary event stream as `span.begin`/`span.end` events
//! carrying `span_id`/`parent_id` fields — which means a JSONL trace
//! file round-trips the whole tree, and `ksplice report --spans` /
//! `--timeline` can rebuild it offline.

use crate::event::{Event, Stage, Value};
use crate::json;

/// Identifies one span within a tracer. Id 0 is reserved for "no span"
/// (the value returned by a disabled tracer, and the parent id of
/// roots); ending it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: parents of roots, and what disabled tracers hand
    /// out.
    pub const NONE: SpanId = SpanId(0);

    /// True for the null span.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// This span's id (1-based, unique per tracer).
    pub id: u64,
    /// The enclosing span's id, 0 for roots.
    pub parent: u64,
    /// Pipeline stage the span belongs to.
    pub stage: Stage,
    /// Span name, e.g. `apply.attempt`.
    pub name: String,
    /// Step-clock reading when the span opened.
    pub start_steps: u64,
    /// Step-clock reading when the span closed (`None` while open).
    pub end_steps: Option<u64>,
    /// Fields captured at `span_start`.
    pub fields: Vec<(String, Value)>,
}

impl Span {
    /// Steps elapsed inside the span (0 while still open).
    pub fn dur_steps(&self) -> u64 {
        self.end_steps
            .map(|e| e.saturating_sub(self.start_steps))
            .unwrap_or(0)
    }
}

/// A span rebuilt from `span.begin`/`span.end` events (the offline view
/// `report` works from).
#[derive(Debug, Clone)]
struct ReplaySpan {
    id: u64,
    parent: u64,
    stage: Stage,
    name: String,
    start: u64,
    end: Option<u64>,
    args: Vec<(String, Value)>,
}

fn replay(events: &[Event]) -> Vec<ReplaySpan> {
    let mut spans: Vec<ReplaySpan> = Vec::new();
    let mut last_ts = 0;
    for e in events {
        last_ts = last_ts.max(e.ts_steps);
        match e.name.as_str() {
            "span.begin" => {
                let id = e.u64_field("span_id").unwrap_or(0);
                if id == 0 {
                    continue;
                }
                spans.push(ReplaySpan {
                    id,
                    parent: e.u64_field("parent_id").unwrap_or(0),
                    stage: e.stage,
                    name: e
                        .str_field("span")
                        .unwrap_or("span")
                        .to_string(),
                    start: e.ts_steps,
                    end: None,
                    args: e
                        .fields
                        .iter()
                        .filter(|(k, _)| !matches!(k.as_str(), "span" | "span_id" | "parent_id"))
                        .cloned()
                        .collect(),
                });
            }
            "span.end" => {
                let id = e.u64_field("span_id").unwrap_or(0);
                if let Some(s) = spans.iter_mut().rev().find(|s| s.id == id) {
                    s.end = Some(e.ts_steps);
                }
            }
            _ => {}
        }
    }
    // A crashed pipeline leaves spans open; close them at the last
    // observed timestamp so durations stay meaningful.
    for s in &mut spans {
        if s.end.is_none() {
            s.end = Some(last_ts.max(s.start));
        }
    }
    spans
}

fn stage_tid(stage: Stage) -> usize {
    Stage::ALL.iter().position(|s| *s == stage).unwrap_or(0)
}

/// Renders the events' span tree as an indented text outline — the
/// `report --spans` view. Spans with no recorded parent are roots;
/// children appear in begin order.
pub fn render_span_tree(events: &[Event]) -> String {
    let spans = replay(events);
    if spans.is_empty() {
        return "no spans recorded\n".to_string();
    }
    let mut out = String::new();
    fn emit(out: &mut String, spans: &[ReplaySpan], parent: u64, depth: usize) {
        for s in spans.iter().filter(|s| s.parent == parent) {
            let end = s.end.unwrap_or(s.start);
            let args: String = s
                .args
                .iter()
                .map(|(k, v)| format!(" {k}={v}"))
                .collect();
            out.push_str(&format!(
                "{:indent$}{} [{}] {}..{} (+{} steps){}\n",
                "",
                s.name,
                s.stage,
                s.start,
                end,
                end.saturating_sub(s.start),
                args,
                indent = depth * 2
            ));
            emit(out, spans, s.id, depth + 1);
        }
    }
    emit(&mut out, &spans, 0, 0);
    out
}

/// Converts the events into Chrome trace format (the JSON object
/// Perfetto and `chrome://tracing` load): each span becomes a complete
/// (`"ph":"X"`) event on its stage's track, each non-span event an
/// instant (`"ph":"i"`). One step is rendered as one microsecond.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let spans = replay(events);
    let mut entries: Vec<String> = Vec::new();
    for s in &spans {
        let mut args = format!("\"span_id\":{},\"parent_id\":{}", s.id, s.parent);
        for (k, v) in &s.args {
            let rendered = match v {
                Value::Str(t) => json::escape(t),
                other => other.to_string(),
            };
            args.push_str(&format!(",{}:{rendered}", json::escape(k)));
        }
        entries.push(format!(
            "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{{args}}}}}",
            json::escape(&s.name),
            s.stage,
            s.start,
            s.end.unwrap_or(s.start).saturating_sub(s.start).max(1),
            stage_tid(s.stage),
        ));
    }
    for e in events {
        if e.name == "span.begin" || e.name == "span.end" {
            continue;
        }
        entries.push(format!(
            "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
            json::escape(&e.name),
            e.stage,
            e.ts_steps,
            stage_tid(e.stage),
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        entries.join(",")
    )
}

/// The fields a `span.begin` event carries ahead of the caller's own.
pub(crate) fn begin_fields<'a>(
    name: &'a str,
    id: u64,
    parent: u64,
    mut fields: Vec<(&'a str, Value)>,
) -> Vec<(&'a str, Value)> {
    let mut all = vec![
        ("span", Value::Str(name.to_string())),
        ("span_id", Value::U64(id)),
        ("parent_id", Value::U64(parent)),
    ];
    all.append(&mut fields);
    all
}

/// The fields a `span.end` event carries.
pub(crate) fn end_fields(name: &str, id: u64, parent: u64, dur: u64) -> Vec<(&str, Value)> {
    vec![
        ("span", Value::Str(name.to_string())),
        ("span_id", Value::U64(id)),
        ("parent_id", Value::U64(parent)),
        ("dur_steps", Value::U64(dur)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Severity;
    use crate::json::parse_json_object;
    use crate::{RingSink, Tracer};

    fn traced_tree() -> Vec<Event> {
        let ring = RingSink::new(64);
        let handle = ring.handle();
        let mut t = Tracer::new().with_sink(Box::new(ring));
        t.set_now(100);
        let update = t.span_start(Stage::Apply, "update", vec![("cve", "X".into())]);
        t.set_now(150);
        let pre = t.span_start(Stage::Apply, "preflight", vec![]);
        t.emit(Stage::Apply, Severity::Info, "preflight.checked", vec![]);
        t.set_now(200);
        t.span_end(pre);
        let att = t.span_start(Stage::Apply, "apply.attempt", vec![("attempt", 1u64.into())]);
        t.set_now(260);
        t.span_end(att);
        t.set_now(300);
        t.span_end(update);
        handle.events()
    }

    #[test]
    fn spans_nest_and_close() {
        let events = traced_tree();
        let begins: Vec<&Event> = events.iter().filter(|e| e.name == "span.begin").collect();
        assert_eq!(begins.len(), 3);
        assert_eq!(begins[0].u64_field("parent_id"), Some(0));
        assert_eq!(begins[1].u64_field("parent_id"), begins[0].u64_field("span_id"));
        assert_eq!(begins[2].u64_field("parent_id"), begins[0].u64_field("span_id"));
        let ends: Vec<&Event> = events.iter().filter(|e| e.name == "span.end").collect();
        assert_eq!(ends.len(), 3);
        assert_eq!(ends[0].u64_field("dur_steps"), Some(50));
    }

    #[test]
    fn tree_renders_nested() {
        let text = render_span_tree(&traced_tree());
        assert!(text.contains("update [apply] 100..300 (+200 steps) cve=X"), "{text}");
        assert!(text.contains("\n  preflight [apply] 150..200"), "{text}");
        assert!(text.contains("\n  apply.attempt"), "{text}");
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let json = chrome_trace_json(&traced_tree());
        let v = parse_json_object(&json).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 3 spans as X entries + 1 instant event.
        assert_eq!(events.len(), 4);
        let first = &events[0];
        assert_eq!(first.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(first.get("ts").unwrap().as_u64(), Some(100));
        assert_eq!(first.get("dur").unwrap().as_u64(), Some(200));
        assert!(events
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("i")));
    }

    #[test]
    fn unclosed_spans_close_at_last_timestamp() {
        let ring = RingSink::new(16);
        let handle = ring.handle();
        let mut t = Tracer::new().with_sink(Box::new(ring));
        t.set_now(10);
        let _open = t.span_start(Stage::Undo, "undo", vec![]);
        t.set_now(90);
        t.emit(Stage::Undo, Severity::Error, "undo.aborted", vec![]);
        let text = render_span_tree(&handle.events());
        assert!(text.contains("undo [undo] 10..90 (+80 steps)"), "{text}");
    }

    #[test]
    fn disabled_tracer_hands_out_null_spans() {
        let mut t = Tracer::disabled();
        let id = t.span_start(Stage::Apply, "x", vec![]);
        assert!(id.is_none());
        t.span_end(id); // no-op, no panic
        assert!(t.spans().is_empty());
    }
}
