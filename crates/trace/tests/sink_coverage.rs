//! Sink edge cases the pipeline actually hits: oops text with hex and
//! quoted function names through the JSONL escaper, ring-buffer
//! wraparound under sustained emission, and `Tracer::absorb` merge
//! ordering as the parallel (`--jobs`) evaluation driver uses it.

use ksplice_trace::{
    Event, JsonlSink, RingSink, Severity, Stage, Tracer, Value,
};

fn oops_event(seq: u64, detail: &str) -> Event {
    Event {
        seq,
        ts_steps: seq * 100,
        stage: Stage::Watch,
        severity: Severity::Error,
        name: "watch.probe_failed".to_string(),
        fields: vec![("msg".to_string(), Value::Str(detail.to_string()))],
    }
}

#[test]
fn jsonl_escapes_oops_hex_and_quoted_names() {
    let cases = [
        "Oops: store to unmapped 0xf00012ab in sys_open [tid 3]",
        "oops in \"do_exit\" (backtrace 0xf0000100 -> 0xf0000200)",
        "corrupt text: byte at 0xdead\tflipped\nsecond line \\ backslash",
        "unicode fn naïve_lookup — offset 0x1f",
    ];
    let mut out = Vec::new();
    {
        let mut sink = JsonlSink::new(&mut out);
        use ksplice_trace::Sink;
        for (i, c) in cases.iter().enumerate() {
            sink.record(&oops_event(i as u64 + 1, c));
        }
        sink.flush();
    }
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), cases.len());
    for (line, case) in lines.iter().zip(cases.iter()) {
        let e = Event::from_json(line).expect("escaped line parses");
        assert_eq!(e.str_field("msg"), Some(*case), "{line}");
    }
}

#[test]
fn ring_wraps_and_keeps_newest_under_overflow() {
    let ring = RingSink::new(16);
    let handle = ring.handle();
    let mut t = Tracer::new().with_sink(Box::new(ring));
    for i in 0..1000u64 {
        t.set_now(i);
        t.emit(Stage::Apply, Severity::Debug, "apply.step", vec![("i", i.into())]);
    }
    let events = handle.events();
    assert_eq!(events.len(), 16);
    // Oldest were dropped; the window is exactly the newest 16, in order.
    let seen: Vec<u64> = events.iter().filter_map(|e| e.u64_field("i")).collect();
    assert_eq!(seen, (984..1000).collect::<Vec<u64>>());
    // Sequence numbers stay monotonic across the wrap.
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
}

#[test]
fn absorb_is_order_independent_across_workers() {
    // Three "workers" as the --jobs driver spawns them, each counting
    // and observing a different overlap of series.
    let make_worker = |salt: u64| {
        let mut w = Tracer::new();
        w.count("eval.cases_run", salt);
        w.count("apply.updates_committed", 1);
        w.count_labeled("apply.updates_committed", &[("worker", &salt.to_string())], 1);
        w.observe("apply.pause_us", 100 * salt);
        w.gauge("watch.packs_active", &[], salt as i64);
        w.set_now(1000 * salt);
        w
    };
    let workers = [make_worker(1), make_worker(2), make_worker(3)];

    let mut forward = Tracer::new();
    for w in &workers {
        forward.absorb(w);
    }
    let mut reverse = Tracer::new();
    for w in workers.iter().rev() {
        reverse.absorb(w);
    }
    assert_eq!(forward.counter("eval.cases_run"), 6);
    assert_eq!(forward.counter("apply.updates_committed"), 3);
    assert_eq!(forward.metrics_json(), reverse.metrics_json());
    assert_eq!(forward.now(), reverse.now());
    let h = forward.histogram("apply.pause_us").unwrap();
    assert_eq!((h.count(), h.min(), h.max()), (3, 100, 300));
    // Gauges merge by max: deterministic regardless of join order.
    assert_eq!(forward.registry().gauge("watch.packs_active", &[]), Some(3));
}

#[test]
fn absorb_folds_legacy_counter_spellings() {
    // A worker still emitting the pre-registry names merges into the
    // canonical series of the main tracer.
    let mut legacy = Tracer::new();
    legacy.count("watch.auto_rollbacks", 2);
    legacy.count("build.cache_hit", 4);
    let mut main = Tracer::new();
    main.count("watch.rollbacks_triggered", 1);
    main.absorb(&legacy);
    assert_eq!(main.counter("watch.rollbacks_triggered"), 3);
    assert_eq!(main.counter("build.cache_hits"), 4);
}
