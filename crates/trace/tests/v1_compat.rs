//! Schema-compatibility: a checked-in v1 trace (written before the
//! `"v"` key existed) must replay cleanly through today's reader.

use ksplice_trace::{Event, Severity, Stage};

const V1_FIXTURE: &str = include_str!("fixtures/trace_v1.jsonl");

#[test]
fn v1_fixture_replays_without_error() {
    let events: Vec<Event> = V1_FIXTURE
        .lines()
        .map(|l| Event::from_json(l).expect("v1 line parses"))
        .collect();
    assert_eq!(events.len(), 7);
    // Spot checks: values survive, not just parse.
    assert_eq!(events[0].stage, Stage::Create);
    assert_eq!(events[0].str_field("cve"), Some("CVE-2008-0600"));
    assert_eq!(events[2].severity, Severity::Warn);
    assert_eq!(events[2].str_field("busy_fn"), Some("sys_open"));
    assert_eq!(events[3].u64_field("pause_us"), Some(712));
    assert_eq!(
        events[5].str_field("probe"),
        Some("oops \"quoted fn\" at 0xf0001a2b")
    );
    assert_eq!(events[6].field("restored").and_then(|v| v.as_bool()), Some(true));
}

#[test]
fn v1_lines_reserialize_as_v2() {
    for line in V1_FIXTURE.lines() {
        let e = Event::from_json(line).unwrap();
        let reserialized = e.to_json();
        assert!(reserialized.starts_with("{\"v\":2,"), "{reserialized}");
        // And the v2 form round-trips to the same event.
        assert_eq!(Event::from_json(&reserialized).unwrap(), e);
    }
}
