//! Property tests: KELF serialisation roundtrips and parser totality.

// Gated: the proptest dependency only resolves with registry access.
// Re-add `proptest` to [dev-dependencies] and build with
// `--features proptest-tests` to run this suite.
#![cfg(feature = "proptest-tests")]

use ksplice_object::{
    Binding, Object, ObjectSet, Reloc, RelocKind, Section, SectionFlags, SectionKind, SymKind,
    Symbol, SymbolDef,
};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_./]{0,24}"
}

fn arb_flags() -> impl Strategy<Value = SectionFlags> {
    (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(alloc, write, exec)| SectionFlags {
        alloc,
        write,
        exec,
    })
}

fn arb_section() -> impl Strategy<Value = Section> {
    (
        arb_name(),
        prop_oneof![
            Just(SectionKind::Progbits),
            Just(SectionKind::Nobits),
            Just(SectionKind::Note)
        ],
        arb_flags(),
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::collection::vec(
            (
                0u64..64,
                prop_oneof![
                    Just(RelocKind::Abs64),
                    Just(RelocKind::Abs32),
                    Just(RelocKind::Pcrel32)
                ],
                0usize..8,
                any::<i64>(),
            ),
            0..6,
        ),
    )
        .prop_map(|(name, kind, flags, data, relocs)| {
            let size = if kind == SectionKind::Nobits {
                data.len() as u64 + 100
            } else {
                data.len() as u64
            };
            let data = if kind == SectionKind::Nobits {
                Vec::new()
            } else {
                data
            };
            Section {
                name,
                kind,
                flags,
                align: 16,
                data,
                size,
                relocs: relocs
                    .into_iter()
                    .map(|(offset, kind, symbol, addend)| Reloc {
                        offset,
                        kind,
                        symbol,
                        addend,
                    })
                    .collect(),
            }
        })
}

fn arb_symbol() -> impl Strategy<Value = Symbol> {
    (
        arb_name(),
        any::<bool>(),
        0u8..4,
        proptest::option::of((0usize..4, any::<u64>(), any::<u64>())),
    )
        .prop_map(|(name, global, kind, def)| Symbol {
            name,
            binding: if global {
                Binding::Global
            } else {
                Binding::Local
            },
            kind: match kind {
                0 => SymKind::Func,
                1 => SymKind::Object,
                2 => SymKind::Section,
                _ => SymKind::NoType,
            },
            def: def.map(|(section, offset, size)| SymbolDef {
                section,
                offset,
                size,
            }),
        })
}

fn arb_object() -> impl Strategy<Value = Object> {
    (
        arb_name(),
        proptest::collection::vec(arb_section(), 0..5),
        proptest::collection::vec(arb_symbol(), 0..6),
    )
        .prop_map(|(name, sections, symbols)| Object {
            name,
            sections,
            symbols,
        })
}

proptest! {
    /// Serialisation then parsing reproduces the object exactly.
    #[test]
    fn object_roundtrip(obj in arb_object()) {
        let bytes = obj.to_bytes();
        prop_assert_eq!(Object::parse(&bytes).unwrap(), obj);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Object::parse(&bytes);
        let _ = ObjectSet::parse(&bytes);
    }

    /// Corrupting any single byte of a serialised object either fails to
    /// parse or parses to *something* — never panics.
    #[test]
    fn single_byte_corruption_is_safe(obj in arb_object(), idx in any::<proptest::sample::Index>(), bit in 0u8..8) {
        let mut bytes = obj.to_bytes();
        if !bytes.is_empty() {
            let i = idx.index(bytes.len());
            bytes[i] ^= 1 << bit;
            let _ = Object::parse(&bytes);
        }
    }

    /// Archive roundtrip with several objects.
    #[test]
    fn set_roundtrip(objs in proptest::collection::vec(arb_object(), 0..4)) {
        let set: ObjectSet = objs.into_iter().collect();
        prop_assert_eq!(ObjectSet::parse(&set.to_bytes()).unwrap(), set);
    }
}
