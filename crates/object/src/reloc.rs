//! Relocation arithmetic.
//!
//! Three parties share these rules: the module loader (applying
//! relocations when code is linked into the kernel), `ksplice-create`
//! (leaving them *unapplied* in the pre/post objects), and run-pre
//! matching, which runs the arithmetic **backwards** to recover a symbol's
//! address from already-relocated run bytes: `S = val + P_run − A` for
//! PC-relative fields (paper §4.3, Figure 2).

use crate::model::RelocKind;

/// Errors applying or reading a relocation field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelocError {
    /// The field lies outside the section data.
    OutOfBounds { offset: u64, len: usize },
    /// A 32-bit field cannot represent the computed value.
    Overflow { kind: RelocKind, value: i64 },
}

impl std::fmt::Display for RelocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelocError::OutOfBounds { offset, len } => {
                write!(
                    f,
                    "relocation field at {offset:#x} outside {len}-byte section"
                )
            }
            RelocError::Overflow { kind, value } => {
                write!(f, "value {value:#x} overflows {kind:?} field")
            }
        }
    }
}

impl std::error::Error for RelocError {}

/// Computes the value stored in a relocated field.
///
/// `s` is the symbol address, `a` the addend, and `p` the absolute address
/// of the field itself (only used for PC-relative kinds).
pub fn stored_value(kind: RelocKind, s: u64, a: i64, p: u64) -> Result<u64, RelocError> {
    match kind {
        RelocKind::Abs64 => Ok(s.wrapping_add(a as u64)),
        RelocKind::Abs32 => {
            let v = s.wrapping_add(a as u64);
            if v > u32::MAX as u64 {
                return Err(RelocError::Overflow {
                    kind,
                    value: v as i64,
                });
            }
            Ok(v)
        }
        RelocKind::Pcrel32 => {
            let v = (s.wrapping_add(a as u64)).wrapping_sub(p) as i64;
            if i32::try_from(v).is_err() {
                return Err(RelocError::Overflow { kind, value: v });
            }
            Ok(v as u64)
        }
    }
}

/// Patches the relocation field at `offset` within `data`.
///
/// `section_addr` is the absolute load address of the section, so the
/// field's own address is `section_addr + offset`.
pub fn apply(
    kind: RelocKind,
    data: &mut [u8],
    offset: u64,
    section_addr: u64,
    s: u64,
    a: i64,
) -> Result<(), RelocError> {
    let p = section_addr.wrapping_add(offset);
    let value = stored_value(kind, s, a, p)?;
    let w = kind.width();
    let len = data.len();
    let field = data
        .get_mut(offset as usize..offset as usize + w)
        .ok_or(RelocError::OutOfBounds { offset, len })?;
    field.copy_from_slice(&value.to_le_bytes()[..w]);
    Ok(())
}

/// Reads the raw value of a relocation field.
pub fn read_field(kind: RelocKind, data: &[u8], offset: u64) -> Result<u64, RelocError> {
    let w = kind.width();
    let field = data
        .get(offset as usize..offset as usize + w)
        .ok_or(RelocError::OutOfBounds {
            offset,
            len: data.len(),
        })?;
    let mut bytes = [0u8; 8];
    bytes[..w].copy_from_slice(field);
    let mut v = u64::from_le_bytes(bytes);
    // Sign-extend 32-bit PC-relative fields.
    if kind == RelocKind::Pcrel32 {
        v = v as u32 as i32 as i64 as u64;
    }
    Ok(v)
}

/// Recovers a symbol's address from an **already-relocated** field — the
/// heart of run-pre matching's symbol resolution (paper §4.3).
///
/// Given the stored value `val` read from the run code, the absolute run
/// address `p_run` of the field, and the addend `a` known from the pre
/// code's metadata:
///
/// * PC-relative: `S = val + P_run − A`
/// * absolute: `S = val − A`
pub fn recover_symbol_value(kind: RelocKind, val: u64, p_run: u64, a: i64) -> u64 {
    match kind {
        RelocKind::Pcrel32 => val.wrapping_add(p_run).wrapping_sub(a as u64),
        RelocKind::Abs64 | RelocKind::Abs32 => val.wrapping_sub(a as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from paper §4.3 / Figure 2: stored value
    /// `0x00111100`, field address `0xf0000003`, addend −4 recovers
    /// `S = 0xf0111107`.
    #[test]
    fn paper_figure2_example() {
        let s = recover_symbol_value(RelocKind::Pcrel32, 0x00111100, 0xf000_0003, -4);
        assert_eq!(s, 0xf011_1107);
    }

    #[test]
    fn apply_then_recover_pcrel() {
        let mut data = vec![0u8; 16];
        let (s, a, base, off) = (0x4000_1234u64, -4i64, 0x4100_0000u64, 8u64);
        apply(RelocKind::Pcrel32, &mut data, off, base, s, a).unwrap();
        let val = read_field(RelocKind::Pcrel32, &data, off).unwrap();
        assert_eq!(
            recover_symbol_value(RelocKind::Pcrel32, val, base + off, a),
            s
        );
    }

    #[test]
    fn apply_then_recover_abs64() {
        let mut data = vec![0u8; 16];
        let (s, a) = (0xdead_beef_0000u64, 16i64);
        apply(RelocKind::Abs64, &mut data, 0, 0, s, a).unwrap();
        let val = read_field(RelocKind::Abs64, &data, 0).unwrap();
        assert_eq!(recover_symbol_value(RelocKind::Abs64, val, 0, a), s);
    }

    #[test]
    fn abs32_overflow_rejected() {
        let mut data = vec![0u8; 8];
        let err = apply(RelocKind::Abs32, &mut data, 0, 0, u64::MAX / 2, 0).unwrap_err();
        assert!(matches!(err, RelocError::Overflow { .. }));
    }

    #[test]
    fn pcrel_overflow_rejected() {
        let mut data = vec![0u8; 8];
        // Distance of 2^40 cannot fit a 32-bit displacement.
        let err = apply(RelocKind::Pcrel32, &mut data, 0, 1u64 << 40, 0, 0).unwrap_err();
        assert!(matches!(err, RelocError::Overflow { .. }));
    }

    #[test]
    fn out_of_bounds_field() {
        let mut data = vec![0u8; 3];
        let err = apply(RelocKind::Abs32, &mut data, 0, 0, 1, 0).unwrap_err();
        assert!(matches!(err, RelocError::OutOfBounds { .. }));
        assert!(read_field(RelocKind::Abs64, &data, 0).is_err());
    }

    #[test]
    fn negative_pcrel_field_sign_extends() {
        let mut data = vec![0u8; 4];
        // Target below the field: stored displacement is negative.
        apply(RelocKind::Pcrel32, &mut data, 0, 0x1000, 0x800, -4).unwrap();
        let val = read_field(RelocKind::Pcrel32, &data, 0).unwrap();
        assert_eq!(
            recover_symbol_value(RelocKind::Pcrel32, val, 0x1000, -4),
            0x800
        );
    }
}
