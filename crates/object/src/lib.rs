//! KELF: an ELF-style relocatable object format for K64 code.
//!
//! Ksplice works on "compiled code (and its metadata)" — sections, symbols
//! and relocations (paper §1–§3). KELF is a faithful structural subset of
//! ELF relocatable files (`ET_REL`): named sections with flags and
//! alignment, a symbol table with local/global binding and undefined
//! symbols, and RELA-style relocations carrying an explicit addend. The
//! paper's techniques are stated in ELF terminology (§2) but "apply to any
//! operating system"; the same is true of the format itself.
//!
//! The crate provides:
//!
//! * the in-memory model ([`Object`], [`Section`], [`Symbol`], [`Reloc`]),
//! * a binary writer/reader ([`Object::to_bytes`], [`Object::parse`]),
//! * relocation arithmetic shared by the module loader and run-pre
//!   matching ([`reloc`]), and
//! * [`ObjectSet`], the archive a full kernel build produces (one
//!   [`Object`] per compilation unit).
//!
//! # Examples
//!
//! ```
//! use ksplice_object::{Object, Section, SectionFlags};
//!
//! let mut obj = Object::new("fs/readdir.kc");
//! obj.add_section(Section::progbits(".text.vfs_readdir", SectionFlags::text(), vec![0x01]));
//! let bytes = obj.to_bytes();
//! let back = Object::parse(&bytes).unwrap();
//! assert_eq!(back.name, "fs/readdir.kc");
//! ```

mod archive;
mod io;
mod model;
pub mod reloc;

pub use archive::ObjectSet;
pub use io::ParseError;
pub use model::{
    Binding, Object, Reloc, RelocKind, Section, SectionFlags, SectionKind, SymKind, Symbol,
    SymbolDef, ValidateError,
};
