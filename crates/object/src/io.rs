//! Binary serialization of KELF objects.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "KELF" magic │ u16 version │ string table │ object body
//! ```
//!
//! The string table is a length-prefixed pool; names elsewhere in the file
//! are `u32` byte offsets into it, exactly like ELF's `.strtab`/`st_name`
//! scheme. The reader validates every offset, count and enum tag, so
//! parsing untrusted bytes can fail but never panic.

use std::collections::HashMap;
use std::fmt;

use crate::model::{
    Binding, Object, Reloc, RelocKind, Section, SectionFlags, SectionKind, SymKind, Symbol,
    SymbolDef,
};

const MAGIC: &[u8; 4] = b"KELF";
const VERSION: u16 = 1;

/// Errors from [`Object::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    Truncated,
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// A name offset points outside the string table.
    BadStringOffset(u32),
    /// The string table holds invalid UTF-8 at this offset.
    BadUtf8(u32),
    /// An enum tag byte is out of range.
    BadTag(&'static str, u8),
    /// Trailing bytes after the object body.
    TrailingBytes(usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "object file truncated"),
            ParseError::BadMagic => write!(f, "not a KELF object (bad magic)"),
            ParseError::BadVersion(v) => write!(f, "unsupported KELF version {v}"),
            ParseError::BadStringOffset(o) => write!(f, "string offset {o} out of range"),
            ParseError::BadUtf8(o) => write!(f, "invalid UTF-8 in string table at {o}"),
            ParseError::BadTag(what, b) => write!(f, "invalid {what} tag {b:#04x}"),
            ParseError::TrailingBytes(n) => write!(f, "{n} trailing bytes after object body"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Write-side string pool with deduplication.
#[derive(Default)]
struct StrTab {
    bytes: Vec<u8>,
    index: HashMap<String, u32>,
}

impl StrTab {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&off) = self.index.get(s) {
            return off;
        }
        let off = self.bytes.len() as u32;
        self.bytes
            .extend_from_slice(&(s.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(s.as_bytes());
        self.index.insert(s.to_string(), off);
        off
    }
}

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.out.extend_from_slice(b);
    }
}

pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        let end = self.pos.checked_add(n).ok_or(ParseError::Truncated)?;
        let s = self.data.get(self.pos..end).ok_or(ParseError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ParseError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ParseError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    pub(crate) fn u32(&mut self) -> Result<u32, ParseError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ParseError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, ParseError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn blob(&mut self) -> Result<&'a [u8], ParseError> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

/// Read-side string table.
struct Strings<'a> {
    pool: &'a [u8],
}

impl<'a> Strings<'a> {
    fn get(&self, off: u32) -> Result<String, ParseError> {
        let at = off as usize;
        let len_bytes = self
            .pool
            .get(at..at + 4)
            .ok_or(ParseError::BadStringOffset(off))?;
        let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        let body = self
            .pool
            .get(at + 4..at + 4 + len)
            .ok_or(ParseError::BadStringOffset(off))?;
        String::from_utf8(body.to_vec()).map_err(|_| ParseError::BadUtf8(off))
    }
}

impl Object {
    /// Serializes this object to its binary file representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Pass 1: intern all strings so the table can be emitted up front.
        let mut strtab = StrTab::default();
        let name_off = strtab.intern(&self.name);
        let sec_names: Vec<u32> = self
            .sections
            .iter()
            .map(|s| strtab.intern(&s.name))
            .collect();
        let sym_names: Vec<u32> = self
            .symbols
            .iter()
            .map(|s| strtab.intern(&s.name))
            .collect();

        let mut w = Writer { out: Vec::new() };
        w.bytes(MAGIC);
        w.u16(VERSION);
        w.u32(strtab.bytes.len() as u32);
        w.bytes(&strtab.bytes);
        w.u32(name_off);
        w.u32(self.sections.len() as u32);
        for (sec, &n) in self.sections.iter().zip(&sec_names) {
            w.u32(n);
            w.u8(match sec.kind {
                SectionKind::Progbits => 0,
                SectionKind::Nobits => 1,
                SectionKind::Note => 2,
            });
            w.u8(sec.flags.to_byte());
            w.u32(sec.align);
            w.u64(sec.size);
            w.u32(sec.data.len() as u32);
            w.bytes(&sec.data);
            w.u32(sec.relocs.len() as u32);
            for r in &sec.relocs {
                w.u64(r.offset);
                w.u8(r.kind.to_byte());
                w.u32(r.symbol as u32);
                w.i64(r.addend);
            }
        }
        w.u32(self.symbols.len() as u32);
        for (sym, &n) in self.symbols.iter().zip(&sym_names) {
            w.u32(n);
            w.u8(match sym.binding {
                Binding::Local => 0,
                Binding::Global => 1,
            });
            w.u8(match sym.kind {
                SymKind::Func => 0,
                SymKind::Object => 1,
                SymKind::Section => 2,
                SymKind::NoType => 3,
            });
            match sym.def {
                None => w.u8(0),
                Some(d) => {
                    w.u8(1);
                    w.u32(d.section as u32);
                    w.u64(d.offset);
                    w.u64(d.size);
                }
            }
        }
        w.out
    }

    /// Parses an object from its binary file representation.
    pub fn parse(bytes: &[u8]) -> Result<Object, ParseError> {
        let mut r = Reader::new(bytes);
        let obj = Object::parse_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(ParseError::TrailingBytes(r.remaining()));
        }
        Ok(obj)
    }

    pub(crate) fn parse_from(r: &mut Reader<'_>) -> Result<Object, ParseError> {
        if r.take(4)? != MAGIC {
            return Err(ParseError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(ParseError::BadVersion(version));
        }
        let pool_len = r.u32()? as usize;
        let strings = Strings {
            pool: r.take(pool_len)?,
        };
        let name = strings.get(r.u32()?)?;
        let nsections = r.u32()?;
        let mut sections = Vec::with_capacity(nsections.min(1 << 16) as usize);
        for _ in 0..nsections {
            let name = strings.get(r.u32()?)?;
            let kind = match r.u8()? {
                0 => SectionKind::Progbits,
                1 => SectionKind::Nobits,
                2 => SectionKind::Note,
                b => return Err(ParseError::BadTag("section kind", b)),
            };
            let flags = SectionFlags::from_byte(r.u8()?);
            let align = r.u32()?;
            let size = r.u64()?;
            let data = r.blob()?.to_vec();
            let nrelocs = r.u32()?;
            let mut relocs = Vec::with_capacity(nrelocs.min(1 << 16) as usize);
            for _ in 0..nrelocs {
                let offset = r.u64()?;
                let kind = RelocKind::from_byte(r.u8()?)
                    .ok_or(ParseError::BadTag("relocation kind", 0xff))?;
                let symbol = r.u32()? as usize;
                let addend = r.i64()?;
                relocs.push(Reloc {
                    offset,
                    kind,
                    symbol,
                    addend,
                });
            }
            sections.push(Section {
                name,
                kind,
                flags,
                align,
                data,
                size,
                relocs,
            });
        }
        let nsymbols = r.u32()?;
        let mut symbols = Vec::with_capacity(nsymbols.min(1 << 16) as usize);
        for _ in 0..nsymbols {
            let name = strings.get(r.u32()?)?;
            let binding = match r.u8()? {
                0 => Binding::Local,
                1 => Binding::Global,
                b => return Err(ParseError::BadTag("binding", b)),
            };
            let kind = match r.u8()? {
                0 => SymKind::Func,
                1 => SymKind::Object,
                2 => SymKind::Section,
                3 => SymKind::NoType,
                b => return Err(ParseError::BadTag("symbol kind", b)),
            };
            let def = match r.u8()? {
                0 => None,
                1 => Some(SymbolDef {
                    section: r.u32()? as usize,
                    offset: r.u64()?,
                    size: r.u64()?,
                }),
                b => return Err(ParseError::BadTag("symbol def", b)),
            };
            symbols.push(Symbol {
                name,
                binding,
                kind,
                def,
            });
        }
        Ok(Object {
            name,
            sections,
            symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Binding, SymKind};

    fn sample() -> Object {
        let mut o = Object::new("net/ipv4/tcp.kc");
        let t = o.add_section(Section::progbits(
            ".text.tcp_input",
            SectionFlags::text(),
            vec![1, 2, 3, 4, 5, 6, 7, 8],
        ));
        o.add_section(Section::nobits(".bss.tcp_hash", 4096));
        let s = o.add_symbol(Symbol::defined(
            "tcp_input",
            Binding::Global,
            SymKind::Func,
            t,
            0,
            8,
        ));
        let e = o.intern_symbol("kmalloc");
        o.sections[t].relocs.push(Reloc {
            offset: 2,
            kind: RelocKind::Pcrel32,
            symbol: e,
            addend: -4,
        });
        let _ = s;
        o
    }

    #[test]
    fn roundtrip() {
        let o = sample();
        let back = Object::parse(&o.to_bytes()).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn bad_magic() {
        assert_eq!(Object::parse(b"NOPE"), Err(ParseError::BadMagic));
    }

    #[test]
    fn truncation_everywhere() {
        let bytes = sample().to_bytes();
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(Object::parse(&bytes[..cut]).is_err(), "prefix {cut} parsed");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(Object::parse(&bytes), Err(ParseError::TrailingBytes(1)));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 0xff;
        assert!(matches!(
            Object::parse(&bytes),
            Err(ParseError::BadVersion(_))
        ));
    }
}
