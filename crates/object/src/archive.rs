//! Object archives: the output of one full kernel build.
//!
//! `ksplice-create` performs two kernel builds — original source (*pre*)
//! and patched source (*post*) — and compares the resulting object files
//! (paper §3.2, Figure 1). An [`ObjectSet`] is what one such build
//! produces: a deterministic, name-keyed collection of relocatable
//! objects, one per compilation unit.

use std::collections::BTreeMap;

use crate::io::{ParseError, Reader};
use crate::model::Object;

const MAGIC: &[u8; 4] = b"KSET";

/// A build's worth of object files, keyed by compilation-unit name.
///
/// Iteration order is the sorted unit name order (a `BTreeMap`), so
/// serialisations and diffs are deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObjectSet {
    objects: BTreeMap<String, Object>,
}

impl ObjectSet {
    /// Creates an empty set.
    pub fn new() -> ObjectSet {
        ObjectSet::default()
    }

    /// Inserts an object under its own compilation-unit name, replacing
    /// any previous object of the same name.
    pub fn insert(&mut self, object: Object) {
        self.objects.insert(object.name.clone(), object);
    }

    /// Looks up a compilation unit by name.
    pub fn get(&self, name: &str) -> Option<&Object> {
        self.objects.get(name)
    }

    /// Removes a compilation unit by name.
    pub fn remove(&mut self, name: &str) -> Option<Object> {
        self.objects.remove(name)
    }

    /// Number of compilation units.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the set holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates compilation units in deterministic (sorted-name) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Object)> {
        self.objects.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Unit names present in `self` but whose object differs from (or is
    /// absent in) `other` — the raw material of pre-post differencing.
    pub fn changed_units<'a>(&'a self, other: &ObjectSet) -> Vec<&'a str> {
        self.objects
            .iter()
            .filter(|(name, obj)| other.get(name) != Some(obj))
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// Serializes the whole archive.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.objects.len() as u32).to_le_bytes());
        for obj in self.objects.values() {
            let body = obj.to_bytes();
            out.extend_from_slice(&(body.len() as u32).to_le_bytes());
            out.extend_from_slice(&body);
        }
        out
    }

    /// Parses an archive produced by [`ObjectSet::to_bytes`].
    pub fn parse(bytes: &[u8]) -> Result<ObjectSet, ParseError> {
        if bytes.len() < 4 {
            return Err(ParseError::Truncated);
        }
        if &bytes[..4] != MAGIC {
            return Err(ParseError::BadMagic);
        }
        let mut r = Reader::new(&bytes[4..]);
        let mut set = ObjectSet::new();
        let count = r.u32()?;
        for _ in 0..count {
            let body = r.blob()?;
            set.insert(Object::parse(body)?);
        }
        if r.remaining() != 0 {
            return Err(ParseError::TrailingBytes(r.remaining()));
        }
        Ok(set)
    }
}

impl FromIterator<Object> for ObjectSet {
    fn from_iter<T: IntoIterator<Item = Object>>(iter: T) -> ObjectSet {
        let mut set = ObjectSet::new();
        for o in iter {
            set.insert(o);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Section, SectionFlags};

    fn obj(name: &str, byte: u8) -> Object {
        let mut o = Object::new(name);
        o.add_section(Section::progbits(
            ".text.f",
            SectionFlags::text(),
            vec![byte],
        ));
        o
    }

    #[test]
    fn roundtrip() {
        let set: ObjectSet = [obj("b.kc", 1), obj("a.kc", 2)].into_iter().collect();
        let back = ObjectSet::parse(&set.to_bytes()).unwrap();
        assert_eq!(back, set);
        // Deterministic order: sorted by name.
        let names: Vec<&str> = back.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.kc", "b.kc"]);
    }

    #[test]
    fn changed_units_detects_differences() {
        let pre: ObjectSet = [obj("a.kc", 1), obj("b.kc", 2)].into_iter().collect();
        let mut post = pre.clone();
        post.insert(obj("b.kc", 3));
        assert_eq!(post.changed_units(&pre), vec!["b.kc"]);
        assert_eq!(pre.changed_units(&pre), Vec::<&str>::new());
    }

    #[test]
    fn changed_units_includes_new_files() {
        let pre: ObjectSet = [obj("a.kc", 1)].into_iter().collect();
        let post: ObjectSet = [obj("a.kc", 1), obj("new.kc", 9)].into_iter().collect();
        assert_eq!(post.changed_units(&pre), vec!["new.kc"]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ObjectSet::parse(b"XXXX").is_err());
        assert!(ObjectSet::parse(b"KS").is_err());
        let set: ObjectSet = [obj("a.kc", 1)].into_iter().collect();
        let bytes = set.to_bytes();
        for cut in 0..bytes.len() {
            assert!(ObjectSet::parse(&bytes[..cut]).is_err());
        }
    }
}
