//! The in-memory KELF object model.

use std::fmt;

/// What a section contains, mirroring ELF `sh_type`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// Bytes present in the file (code, initialised data, read-only data).
    Progbits,
    /// Zero-initialised data occupying no file space (`.bss`-like).
    Nobits,
    /// Out-of-band metadata consumed by tools (e.g. Ksplice's hook
    /// sections), never loaded into the kernel image.
    Note,
}

/// Section attribute flags, mirroring ELF `sh_flags`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SectionFlags {
    /// Occupies memory at run time.
    pub alloc: bool,
    /// Writable at run time.
    pub write: bool,
    /// Contains executable machine code.
    pub exec: bool,
}

impl SectionFlags {
    /// Flags for an executable text section.
    pub fn text() -> SectionFlags {
        SectionFlags {
            alloc: true,
            write: false,
            exec: true,
        }
    }

    /// Flags for a writable data section.
    pub fn data() -> SectionFlags {
        SectionFlags {
            alloc: true,
            write: true,
            exec: false,
        }
    }

    /// Flags for a read-only data section.
    pub fn rodata() -> SectionFlags {
        SectionFlags {
            alloc: true,
            write: false,
            exec: false,
        }
    }

    /// Flags for a non-allocated note section.
    pub fn note() -> SectionFlags {
        SectionFlags::default()
    }

    pub(crate) fn to_byte(self) -> u8 {
        (self.alloc as u8) | (self.write as u8) << 1 | (self.exec as u8) << 2
    }

    pub(crate) fn from_byte(b: u8) -> SectionFlags {
        SectionFlags {
            alloc: b & 1 != 0,
            write: b & 2 != 0,
            exec: b & 4 != 0,
        }
    }
}

/// Relocation types, mirroring the x86-64 ELF relocations Ksplice handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelocKind {
    /// 64-bit absolute: stored value is `S + A`.
    Abs64,
    /// 32-bit absolute (checked for overflow): stored value is `S + A`.
    Abs32,
    /// 32-bit PC-relative: stored value is `S + A − P` where `P` is the
    /// address of the field being patched (`R_X86_64_PC32`-style).
    Pcrel32,
}

impl RelocKind {
    /// The width in bytes of the patched field.
    pub fn width(self) -> usize {
        match self {
            RelocKind::Abs64 => 8,
            RelocKind::Abs32 | RelocKind::Pcrel32 => 4,
        }
    }

    pub(crate) fn to_byte(self) -> u8 {
        match self {
            RelocKind::Abs64 => 0,
            RelocKind::Abs32 => 1,
            RelocKind::Pcrel32 => 2,
        }
    }

    pub(crate) fn from_byte(b: u8) -> Option<RelocKind> {
        match b {
            0 => Some(RelocKind::Abs64),
            1 => Some(RelocKind::Abs32),
            2 => Some(RelocKind::Pcrel32),
            _ => None,
        }
    }
}

/// One RELA-style relocation entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reloc {
    /// Offset of the patched field within the owning section.
    pub offset: u64,
    /// Relocation type.
    pub kind: RelocKind,
    /// Index into the object's symbol table.
    pub symbol: usize,
    /// Constant addend folded into the stored value.
    pub addend: i64,
}

/// One section of an object file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name, e.g. `.text.vfs_readdir` (with `-ffunction-sections`
    /// every function gets its own `.text.<fn>` section; §3.2).
    pub name: String,
    pub kind: SectionKind,
    pub flags: SectionFlags,
    /// Required alignment (power of two).
    pub align: u32,
    /// Section contents; empty for [`SectionKind::Nobits`].
    pub data: Vec<u8>,
    /// Run-time size; equals `data.len()` except for `Nobits`.
    pub size: u64,
    /// Relocations applying to this section's contents.
    pub relocs: Vec<Reloc>,
}

impl Section {
    /// Creates a progbits section whose size is its data length.
    pub fn progbits(name: &str, flags: SectionFlags, data: Vec<u8>) -> Section {
        Section {
            name: name.to_string(),
            kind: SectionKind::Progbits,
            flags,
            align: 16,
            size: data.len() as u64,
            data,
            relocs: Vec::new(),
        }
    }

    /// Creates a nobits (zero-fill) section of the given size.
    pub fn nobits(name: &str, size: u64) -> Section {
        Section {
            name: name.to_string(),
            kind: SectionKind::Nobits,
            flags: SectionFlags::data(),
            align: 16,
            data: Vec::new(),
            size,
            relocs: Vec::new(),
        }
    }

    /// True if this section is loaded into memory at run time.
    pub fn is_alloc(&self) -> bool {
        self.flags.alloc
    }

    /// True for per-function text sections (`.text.<name>`).
    pub fn is_function_text(&self) -> bool {
        self.flags.exec && self.name.starts_with(".text.")
    }
}

/// Symbol binding, mirroring ELF `STB_*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binding {
    /// Visible only within the defining object (C `static`). Local symbol
    /// *names* may collide across compilation units — the ambiguity
    /// run-pre matching exists to resolve (§4.1).
    Local,
    /// Visible across the whole kernel.
    Global,
}

/// Symbol classification, mirroring ELF `STT_*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymKind {
    Func,
    Object,
    /// The anonymous symbol standing for a section's own start address.
    Section,
    NoType,
}

/// Where a defined symbol lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolDef {
    /// Index of the defining section within the object.
    pub section: usize,
    /// Offset of the symbol within that section.
    pub offset: u64,
    /// Size in bytes (0 if unknown).
    pub size: u64,
}

/// One symbol table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    pub name: String,
    pub binding: Binding,
    pub kind: SymKind,
    /// `None` for undefined (external) symbols awaiting resolution.
    pub def: Option<SymbolDef>,
}

impl Symbol {
    /// An undefined global reference to `name`.
    pub fn undefined(name: &str) -> Symbol {
        Symbol {
            name: name.to_string(),
            binding: Binding::Global,
            kind: SymKind::NoType,
            def: None,
        }
    }

    /// A defined symbol at `section`/`offset`.
    pub fn defined(
        name: &str,
        binding: Binding,
        kind: SymKind,
        section: usize,
        offset: u64,
        size: u64,
    ) -> Symbol {
        Symbol {
            name: name.to_string(),
            binding,
            kind,
            def: Some(SymbolDef {
                section,
                offset,
                size,
            }),
        }
    }
}

/// Structural problems detected by [`Object::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A relocation's symbol index is out of range.
    BadSymbolIndex { section: String, index: usize },
    /// A symbol's defining section index is out of range.
    BadSectionIndex { symbol: String, index: usize },
    /// A relocation field extends past the end of its section.
    RelocOutOfRange { section: String, offset: u64 },
    /// A progbits section whose `size` disagrees with its data length.
    SizeMismatch { section: String },
    /// A symbol offset lies outside its defining section.
    SymbolOutOfRange { symbol: String },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadSymbolIndex { section, index } => {
                write!(
                    f,
                    "section {section}: relocation symbol index {index} out of range"
                )
            }
            ValidateError::BadSectionIndex { symbol, index } => {
                write!(f, "symbol {symbol}: section index {index} out of range")
            }
            ValidateError::RelocOutOfRange { section, offset } => {
                write!(f, "section {section}: relocation at {offset:#x} past end")
            }
            ValidateError::SizeMismatch { section } => {
                write!(f, "section {section}: size disagrees with data length")
            }
            ValidateError::SymbolOutOfRange { symbol } => {
                write!(f, "symbol {symbol}: offset outside defining section")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// A relocatable object file: the output of compiling one compilation
/// unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Object {
    /// Compilation unit name, e.g. `fs/exec.kc`.
    pub name: String,
    pub sections: Vec<Section>,
    pub symbols: Vec<Symbol>,
}

impl Object {
    /// Creates an empty object for the named compilation unit.
    pub fn new(name: &str) -> Object {
        Object {
            name: name.to_string(),
            ..Object::default()
        }
    }

    /// Appends a section, returning its index.
    pub fn add_section(&mut self, section: Section) -> usize {
        self.sections.push(section);
        self.sections.len() - 1
    }

    /// Appends a symbol, returning its index.
    pub fn add_symbol(&mut self, symbol: Symbol) -> usize {
        self.symbols.push(symbol);
        self.symbols.len() - 1
    }

    /// Finds a section by exact name.
    pub fn section_by_name(&self, name: &str) -> Option<(usize, &Section)> {
        self.sections
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == name)
    }

    /// Finds the first symbol with the given name.
    pub fn symbol_by_name(&self, name: &str) -> Option<(usize, &Symbol)> {
        self.symbols
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == name)
    }

    /// Returns the index of the symbol named `name`, adding an undefined
    /// global entry if absent.
    pub fn intern_symbol(&mut self, name: &str) -> usize {
        if let Some((i, _)) = self.symbol_by_name(name) {
            return i;
        }
        self.add_symbol(Symbol::undefined(name))
    }

    /// All function symbols defined in this object.
    pub fn defined_functions(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols
            .iter()
            .filter(|s| s.kind == SymKind::Func && s.def.is_some())
    }

    /// Checks internal consistency of indices, offsets and sizes.
    pub fn validate(&self) -> Result<(), ValidateError> {
        for sec in &self.sections {
            if sec.kind == SectionKind::Progbits && sec.size != sec.data.len() as u64 {
                return Err(ValidateError::SizeMismatch {
                    section: sec.name.clone(),
                });
            }
            for r in &sec.relocs {
                if r.symbol >= self.symbols.len() {
                    return Err(ValidateError::BadSymbolIndex {
                        section: sec.name.clone(),
                        index: r.symbol,
                    });
                }
                let end = r.offset + r.kind.width() as u64;
                if end > sec.size {
                    return Err(ValidateError::RelocOutOfRange {
                        section: sec.name.clone(),
                        offset: r.offset,
                    });
                }
            }
        }
        for sym in &self.symbols {
            if let Some(def) = sym.def {
                let sec = self.sections.get(def.section).ok_or_else(|| {
                    ValidateError::BadSectionIndex {
                        symbol: sym.name.clone(),
                        index: def.section,
                    }
                })?;
                if def.offset > sec.size {
                    return Err(ValidateError::SymbolOutOfRange {
                        symbol: sym.name.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Object {
        let mut o = Object::new("kernel/sys.kc");
        let text = o.add_section(Section::progbits(
            ".text.sys_prctl",
            SectionFlags::text(),
            vec![0x90; 16],
        ));
        let sym = o.add_symbol(Symbol::defined(
            "sys_prctl",
            Binding::Global,
            SymKind::Func,
            text,
            0,
            16,
        ));
        let ext = o.intern_symbol("printk");
        o.sections[text].relocs.push(Reloc {
            offset: 4,
            kind: RelocKind::Pcrel32,
            symbol: ext,
            addend: -4,
        });
        assert_ne!(sym, ext);
        o
    }

    #[test]
    fn valid_object_passes() {
        sample().validate().unwrap();
    }

    #[test]
    fn bad_symbol_index_caught() {
        let mut o = sample();
        o.sections[0].relocs[0].symbol = 99;
        assert!(matches!(
            o.validate(),
            Err(ValidateError::BadSymbolIndex { .. })
        ));
    }

    #[test]
    fn reloc_past_end_caught() {
        let mut o = sample();
        o.sections[0].relocs[0].offset = 13; // 13 + 4 > 16
        assert!(matches!(
            o.validate(),
            Err(ValidateError::RelocOutOfRange { .. })
        ));
    }

    #[test]
    fn size_mismatch_caught() {
        let mut o = sample();
        o.sections[0].size = 99;
        assert!(matches!(
            o.validate(),
            Err(ValidateError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn symbol_out_of_range_caught() {
        let mut o = sample();
        o.symbols[0].def.as_mut().unwrap().offset = 17;
        assert!(matches!(
            o.validate(),
            Err(ValidateError::SymbolOutOfRange { .. })
        ));
    }

    #[test]
    fn intern_is_idempotent() {
        let mut o = sample();
        let a = o.intern_symbol("printk");
        let b = o.intern_symbol("printk");
        assert_eq!(a, b);
    }

    #[test]
    fn flags_roundtrip() {
        for b in 0..8u8 {
            assert_eq!(SectionFlags::from_byte(b).to_byte(), b);
        }
    }

    #[test]
    fn function_text_detection() {
        assert!(Section::progbits(".text.foo", SectionFlags::text(), vec![]).is_function_text());
        assert!(!Section::progbits(".data.foo", SectionFlags::data(), vec![]).is_function_text());
        // A data section suspiciously named .text.foo is still not text.
        assert!(!Section::progbits(".text.foo", SectionFlags::data(), vec![]).is_function_text());
    }
}
