//! The simulated kernel substrate Ksplice patches.
//!
//! The paper's system operates on a *live* Linux kernel: it reads the run
//! code out of kernel memory, loads helper/primary modules, captures the
//! CPUs with `stop_machine`, walks thread stacks for the safety check,
//! and writes trampolines into executing text (paper §4–§5). This crate
//! provides the closest equivalent that can run inside a test suite:
//!
//! * a flat kernel [`Memory`] with W^X regions and a privileged
//!   `poke` path (the "briefly make text writable" analogue),
//! * an in-kernel linker for the boot image and for run-time
//!   modules, including *deferred* relocations — the hook Ksplice needs
//!   to fulfil symbol addresses discovered by run-pre matching,
//! * [`Kallsyms`] with honest name ambiguity (all local
//!   symbols included, §4.1),
//! * a K64 interpreter driving real kernel threads with real stacks, so
//!   backtraces, oopses, sleeping in non-quiescent functions, syscalls
//!   (`int 0x80` → the tree's own `do_syscall`) and exploits all behave,
//! * [`Kernel::stop_machine`] and frame-pointer backtraces for the §5.2
//!   safety check, and
//! * the shadow-data-structure natives of §5.3.
//!
//! # Examples
//!
//! ```
//! use ksplice_kernel::Kernel;
//! use ksplice_lang::{Options, SourceTree};
//!
//! let mut tree = SourceTree::new();
//! tree.insert("init.kc", r#"
//!     int add(int a, int b) { return a + b; }
//! "#);
//! let mut k = Kernel::boot(&tree, &Options::distro()).unwrap();
//! assert_eq!(k.call_function("add", &[2, 40]).unwrap(), 42);
//! ```

#![deny(missing_docs)]

mod differential;
mod fault;
mod kallsyms;
mod kernel;
mod loader;
mod mem;
mod native;
mod profiler;
mod smp;
mod vm;

pub use differential::{
    diff_images, diff_traces, is_arena_addr, normalize_call, normalize_diag, traced_call,
    DiffOptions, ImageDiffReport, RegionDelta, TraceEntry,
};
pub use fault::{Fault, FaultPlan, FiredFault};
pub use kallsyms::{KSym, Kallsyms};
pub use kernel::{
    BootError, CallError, Kernel, Oops, RunExit, SpawnError, Thread, ThreadState, QUANTUM,
    STACK_SIZE,
};
pub use loader::{
    apply_reloc_at, load_kernel_image, load_module, LinkError, LoadedModule, PendingReloc,
};
pub use mem::{MemFault, Memory, Perms, Region, KBASE, MEM_SIZE};
pub use profiler::{
    collapsed_stacks, hot_functions, quiescence_risk, samples_per_cpu, FrameSym, HotFunc,
    Profiler, QuiesceRisk, Residency, Sample,
};
pub use native::{native_addr, native_from_addr, Native, NATIVE_BASE, RETURN_SENTINEL};
pub use smp::{Cpu, SmpConfig, StopMachineError, DEFAULT_SCHED_SEED};
pub use vm::VmStats;
