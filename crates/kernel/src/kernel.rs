//! The simulated kernel: boot, threads, scheduling, `stop_machine`.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ksplice_lang::{build_tree, Options, SourceTree};
use ksplice_object::{Object, ObjectSet};

use crate::fault::{Fault, FaultPlan};
use crate::kallsyms::Kallsyms;
use crate::loader::{load_kernel_image, load_module, LinkError, LoadedModule};
use crate::mem::{Memory, Perms};
use crate::native::{native_addr, RETURN_SENTINEL};
use crate::smp::{Cpu, SmpConfig, StopMachineError};

/// Default per-thread kernel stack size (64 KiB).
pub const STACK_SIZE: u64 = 64 * 1024;

/// Scheduler quantum: instructions per slice.
pub const QUANTUM: u64 = 64;

/// A kernel oops: the fatal end of one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Oops {
    /// Thread that died.
    pub tid: u64,
    /// Instruction pointer at the fault.
    pub ip: u64,
    /// Human-readable cause.
    pub reason: String,
    /// Instruction pointer plus frame-pointer-chain return addresses.
    pub backtrace: Vec<u64>,
}

/// Run state of a thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible for the next scheduler slice.
    Runnable,
    /// Asleep until the given tick.
    Sleeping(u64),
    /// Finished with an exit code.
    Exited(u64),
    /// Killed by an oops.
    Oopsed,
}

/// One kernel thread.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Thread id, unique for the kernel's lifetime.
    pub tid: u64,
    /// The vCPU this thread is homed on (0 on a uniprocessor kernel).
    /// Assignment is round-robin by tid at spawn; threads never migrate.
    pub cpu: u32,
    /// Entry-point name, for logs and backtraces.
    pub name: String,
    /// General-purpose registers; r14 is fp, r15 is sp.
    pub regs: [u64; 16],
    /// Instruction pointer.
    pub ip: u64,
    /// Zero flag from the last compare.
    pub zf: bool,
    /// Less-than flag from the last compare.
    pub lf: bool,
    /// Run state.
    pub state: ThreadState,
    /// Stack region bounds (low, high); `sp` starts at `high`.
    pub stack: (u64, u64),
    /// Total instructions executed.
    pub cycles: u64,
}

impl Thread {
    /// The stack pointer.
    pub fn sp(&self) -> u64 {
        self.regs[15]
    }

    /// The frame pointer.
    pub fn fp(&self) -> u64 {
        self.regs[14]
    }
}

/// Why [`Kernel::run`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// The step budget was exhausted.
    Budget,
    /// No runnable or sleeping threads remain.
    AllExited,
}

/// The running kernel.
pub struct Kernel {
    /// The flat physical memory arena.
    pub mem: Memory,
    /// The kernel symbol table.
    pub syms: Kallsyms,
    /// All threads ever spawned (exited ones stay for inspection).
    pub threads: Vec<Thread>,
    next_tid: u64,
    /// The kernel log (`printk` output).
    pub klog: Vec<String>,
    /// Scheduler tick counter.
    pub ticks: u64,
    /// Total instructions executed across all threads — the step clock
    /// that timestamps trace events (`Event::ts_steps`).
    pub steps: u64,
    /// All oopses so far (the kernel limps on, like a real one).
    pub oopses: Vec<Oops>,
    /// Loaded boot-image units and run-time modules.
    pub modules: Vec<LoadedModule>,
    /// kmalloc free list: (addr, size).
    pub(crate) free_list: Vec<(u64, u64)>,
    /// Shadow data structures: (object addr, key) → shadow addr
    /// (paper §5.3 / DynAMOS).
    pub(crate) shadows: HashMap<(u64, u64), u64>,
    /// Deterministic PRNG state for the `random` native.
    pub(crate) rng: u64,
    /// Cached address of the kernel's `do_syscall`, if it exports one.
    pub(crate) syscall_entry: Option<u64>,
    /// Recycled thread stacks: (low, high) pairs ready for reuse (the
    /// arena is a bump allocator, so reaped stacks must be recycled or
    /// workloads that spawn many short-lived threads exhaust it).
    free_stacks: Vec<(u64, u64)>,
    /// Wall-clock duration of the most recent `stop_machine` call.
    pub last_stop_machine: Option<Duration>,
    /// Simulated pause of the most recent `stop_machine`, in VM steps:
    /// the barrier-rendezvous instructions (vCPUs finishing their
    /// current quantum, N ≥ 2 only) plus whatever the stopped-machine
    /// closure itself executed. Deterministic, unlike the wall clock.
    pub last_stop_machine_steps: u64,
    /// Count of `stop_machine` invocations.
    pub stop_machine_count: u64,
    /// The SMP topology: vCPU count, quantum, scheduling seed. The
    /// default (1 vCPU) is bit-exact with the historical sequential
    /// scheduler; see [`Kernel::configure_smp`].
    pub smp: SmpConfig,
    /// The vCPUs, each with its own run queue (`smp.cpus` entries).
    pub cpus: Vec<Cpu>,
    /// Seeded state for the per-round rotation draw (`cpus > 1` only).
    sched_rng: u64,
    /// The physically parked fault thread realizing an armed stack-busy
    /// fault at N ≥ 2 (see [`Kernel::park_fault_vcpu`]).
    fault_parker: Option<u64>,
    /// Armed fault-injection state (inert by default; see [`FaultPlan`]).
    pub faults: FaultPlan,
    /// The PC-sampling profiler, armed by [`Kernel::start_sampling`]
    /// (inert — one branch per step — otherwise).
    pub(crate) profiler: Option<crate::profiler::Profiler>,
    /// Predecoded basic blocks keyed by entry address — the VM's
    /// icache (see `vm.rs`).
    pub(crate) block_cache: crate::vm::AddrMap<crate::vm::CachedBlock>,
    /// `mem.text_generation()` as of the last icache sweep; a
    /// difference means stale blocks may be cached.
    pub(crate) icache_clock: u64,
    /// Counters for the decode-cached dispatcher: hits, decodes,
    /// flush sweeps, evictions.
    pub vm_stats: crate::vm::VmStats,
}

impl Kernel {
    /// Builds a source tree with the given options and boots the result.
    pub fn boot(tree: &SourceTree, opts: &Options) -> Result<Kernel, BootError> {
        let set = build_tree(tree, opts).map_err(BootError::Compile)?;
        Kernel::boot_image(&set)
    }

    /// Boots a prebuilt kernel image with an explicit SMP topology.
    /// `boot_image_smp(set, &SmpConfig::default())` is identical to
    /// [`Kernel::boot_image`].
    pub fn boot_image_smp(set: &ObjectSet, smp: &SmpConfig) -> Result<Kernel, BootError> {
        let mut k = Kernel::boot_image(set)?;
        k.configure_smp(smp.clone());
        Ok(k)
    }

    /// Reconfigures the SMP topology: rebuilds the per-CPU run queues
    /// and re-homes every existing thread round-robin by tid. Typically
    /// called right after boot, before workloads spawn; calling it on a
    /// running kernel re-homes live threads deterministically. `cpus`
    /// and `quantum` clamp to ≥ 1, and the scheduler rotation restarts
    /// from `sched_seed`.
    pub fn configure_smp(&mut self, mut smp: SmpConfig) {
        smp.cpus = smp.cpus.max(1);
        smp.quantum = smp.quantum.max(1);
        self.sched_rng = smp.sched_seed.max(1);
        self.cpus = (0..smp.cpus).map(Cpu::new).collect();
        let n = smp.cpus as u64;
        self.smp = smp;
        for t in &mut self.threads {
            t.cpu = ((t.tid - 1) % n) as u32;
        }
        let homed: Vec<(u64, u32)> = self.threads.iter().map(|t| (t.tid, t.cpu)).collect();
        for (tid, cpu) in homed {
            self.cpus[cpu as usize].runq.push_back(tid);
        }
    }

    /// The number of vCPUs this kernel schedules across.
    pub fn num_cpus(&self) -> u32 {
        self.smp.cpus
    }

    /// Boots a prebuilt kernel image.
    pub fn boot_image(set: &ObjectSet) -> Result<Kernel, BootError> {
        let mut mem = Memory::new();
        let mut syms = Kallsyms::new();
        let modules = load_kernel_image(&mut mem, &mut syms, set, &|n| native_addr(n))
            .map_err(BootError::Link)?;
        // Heap arena for kmalloc.
        let heap_base = mem
            .alloc_region("kheap", 8 * 1024 * 1024, 16, Perms::DATA)
            .ok_or(BootError::NoMemory)?;
        let syscall_entry = syms.lookup_global("do_syscall").map(|s| s.addr);
        // The icache starts clean: in sync with the arena's text clock
        // (image loading bumped it; there are no cached blocks yet).
        let mem_text_gen = mem.text_generation();
        Ok(Kernel {
            mem,
            syms,
            threads: Vec::new(),
            next_tid: 1,
            klog: Vec::new(),
            ticks: 0,
            steps: 0,
            oopses: Vec::new(),
            modules,
            free_list: vec![(heap_base, 8 * 1024 * 1024)],
            shadows: HashMap::new(),
            rng: 0x2545_f491_4f6c_dd1d,
            syscall_entry,
            free_stacks: Vec::new(),
            last_stop_machine: None,
            last_stop_machine_steps: 0,
            stop_machine_count: 0,
            smp: SmpConfig::default(),
            cpus: vec![Cpu::new(0)],
            sched_rng: crate::smp::DEFAULT_SCHED_SEED,
            fault_parker: None,
            faults: FaultPlan::default(),
            profiler: None,
            block_cache: crate::vm::AddrMap::default(),
            icache_clock: mem_text_gen,
            vm_stats: crate::vm::VmStats::default(),
        })
    }

    /// Spawns a kernel thread at the function named `entry` with up to six
    /// arguments, returning its tid.
    pub fn spawn_named(
        &mut self,
        entry: &str,
        args: &[u64],
        name: &str,
    ) -> Result<u64, SpawnError> {
        let sym = self
            .syms
            .lookup_global(entry)
            .ok_or_else(|| SpawnError::NoEntry(entry.to_string()))?;
        let addr = sym.addr;
        self.spawn_at(addr, args, name)
    }

    /// Spawns a kernel thread at an absolute address.
    pub fn spawn_at(&mut self, addr: u64, args: &[u64], name: &str) -> Result<u64, SpawnError> {
        assert!(args.len() <= 6, "at most 6 arguments");
        let tid = self.next_tid;
        self.next_tid += 1;
        let (low, high) = match self.free_stacks.pop() {
            Some(pair) => pair,
            None => {
                let low = self
                    .mem
                    .alloc_region(&format!("stack:{tid}"), STACK_SIZE, 16, Perms::DATA)
                    .ok_or(SpawnError::NoMemory)?;
                (low, low + STACK_SIZE)
            }
        };
        let mut regs = [0u64; 16];
        for (i, &a) in args.iter().enumerate() {
            regs[1 + i] = a;
        }
        // Push the return sentinel so returning from the entry exits.
        let sp = high - 8;
        self.mem
            .store_u64(sp, RETURN_SENTINEL)
            .map_err(|_| SpawnError::NoMemory)?;
        regs[15] = sp;
        regs[14] = high; // fp: sentinel frame
        let cpu = ((tid - 1) % self.cpus.len() as u64) as u32;
        self.cpus[cpu as usize].runq.push_back(tid);
        self.threads.push(Thread {
            tid,
            cpu,
            name: name.to_string(),
            regs,
            ip: addr,
            zf: false,
            lf: false,
            state: ThreadState::Runnable,
            stack: (low, high),
            cycles: 0,
        });
        Ok(tid)
    }

    /// Spawns with a default name.
    pub fn spawn(&mut self, entry: &str, args: &[u64]) -> Result<u64, SpawnError> {
        let name = format!("kthread-{entry}");
        self.spawn_named(entry, args, &name)
    }

    /// Looks up a thread.
    pub fn thread(&self, tid: u64) -> Option<&Thread> {
        self.threads.iter().find(|t| t.tid == tid)
    }

    pub(crate) fn thread_mut(&mut self, tid: u64) -> Option<&mut Thread> {
        self.threads.iter_mut().find(|t| t.tid == tid)
    }

    /// The preemptive scheduler: runs up to `max_steps` instructions in
    /// quantum-sized slices. At one vCPU (the default) this is the
    /// historical sequential round-robin, bit-exact; at `cpus > 1` it
    /// is the interleaved SMP simulation of [`SmpConfig`] — each
    /// scheduling round visits the vCPUs in a seeded rotation and runs
    /// each vCPU's next runnable thread for one quantum.
    pub fn run(&mut self, max_steps: u64) -> RunExit {
        if self.smp.cpus <= 1 {
            self.run_uni(max_steps)
        } else {
            self.run_smp(max_steps)
        }
    }

    /// The historical uniprocessor scheduler (`cpus == 1`): a plain
    /// round-robin over all threads in spawn order. Kept verbatim so
    /// every single-CPU artifact (fuzz digests, trace timestamps)
    /// stays byte-identical.
    fn run_uni(&mut self, max_steps: u64) -> RunExit {
        let mut budget = self.faults.jitter_budget(max_steps);
        loop {
            let mut progressed = false;
            let tids: Vec<u64> = self.threads.iter().map(|t| t.tid).collect();
            for tid in tids {
                // Wake sleepers whose deadline has passed.
                let ticks = self.ticks;
                if let Some(t) = self.thread_mut(tid) {
                    if let ThreadState::Sleeping(until) = t.state {
                        if ticks >= until {
                            t.state = ThreadState::Runnable;
                        }
                    }
                }
                let runnable = matches!(
                    self.thread(tid).map(|t| &t.state),
                    Some(ThreadState::Runnable)
                );
                if !runnable {
                    continue;
                }
                progressed = true;
                let slice = self.smp.quantum.min(budget);
                let used = self.run_slice(tid, slice);
                budget -= used;
                if budget == 0 {
                    return RunExit::Budget;
                }
            }
            self.ticks += 1;
            let any_alive = self
                .threads
                .iter()
                .any(|t| matches!(t.state, ThreadState::Runnable | ThreadState::Sleeping(_)));
            if !any_alive {
                return RunExit::AllExited;
            }
            if !progressed {
                // Only sleepers remain; advance time — unless none of
                // them can ever wake (a parked vCPU sleeps until
                // `u64::MAX`), in which case ticking forever would
                // never consume the budget.
                if !self.any_finite_sleeper() {
                    return RunExit::Budget;
                }
                continue;
            }
        }
    }

    /// Whether any live thread has a wake-up deadline that can
    /// actually arrive. Threads parked by [`Kernel::park_fault_vcpu`]
    /// sleep until `u64::MAX` and must not keep the tick loop alive.
    fn any_finite_sleeper(&self) -> bool {
        self.threads.iter().any(|t| {
            matches!(t.state, ThreadState::Sleeping(until) if until < u64::MAX)
        })
    }

    /// The interleaved SMP scheduler (`cpus > 1`). One host thread
    /// plays every vCPU: each round starts from a seeded lead CPU and
    /// gives each vCPU's next runnable thread one quantum, so the
    /// global instruction interleaving is deterministic in
    /// ([`SmpConfig::sched_seed`], workload) while still exhibiting the
    /// cross-CPU overlap `stop_machine` has to fight.
    fn run_smp(&mut self, max_steps: u64) -> RunExit {
        let mut budget = self.faults.jitter_budget(max_steps);
        let ncpus = self.cpus.len();
        loop {
            let mut progressed = false;
            let lead = (self.sched_next() % ncpus as u64) as usize;
            for i in 0..ncpus {
                let cpu = (lead + i) % ncpus;
                let Some(tid) = self.pick_next(cpu) else {
                    continue;
                };
                progressed = true;
                let slice = self.smp.quantum.min(budget);
                let used = self.run_slice(tid, slice);
                self.cpus[cpu].cycles += used;
                budget = budget.saturating_sub(used);
                if budget == 0 {
                    return RunExit::Budget;
                }
            }
            self.ticks += 1;
            let any_alive = self
                .threads
                .iter()
                .any(|t| matches!(t.state, ThreadState::Runnable | ThreadState::Sleeping(_)));
            if !any_alive {
                return RunExit::AllExited;
            }
            if !progressed {
                // Only sleepers remain; advance time (see run_uni for
                // the forever-sleeper guard).
                if !self.any_finite_sleeper() {
                    return RunExit::Budget;
                }
                continue;
            }
        }
    }

    /// Rotates vCPU `cpu`'s run queue to its next runnable thread:
    /// wakes due sleepers on the way, skips (but keeps) sleeping and
    /// dead entries, drops tids whose thread no longer exists. The
    /// chosen thread moves to the back of the queue — round-robin —
    /// and becomes the vCPU's `current`.
    fn pick_next(&mut self, cpu: usize) -> Option<u64> {
        let len = self.cpus[cpu].runq.len();
        for _ in 0..len {
            let Some(tid) = self.cpus[cpu].runq.pop_front() else {
                break;
            };
            let ticks = self.ticks;
            let Some(t) = self.thread_mut(tid) else {
                continue; // reaped elsewhere; drop the stale entry
            };
            if let ThreadState::Sleeping(until) = t.state {
                if ticks >= until {
                    t.state = ThreadState::Runnable;
                }
            }
            let runnable = matches!(t.state, ThreadState::Runnable);
            self.cpus[cpu].runq.push_back(tid);
            if runnable {
                self.cpus[cpu].current = Some(tid);
                return Some(tid);
            }
        }
        self.cpus[cpu].current = None;
        None
    }

    /// xorshift64* draw for the scheduler rotation.
    fn sched_next(&mut self) -> u64 {
        let mut x = self.sched_rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.sched_rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Runs a single thread synchronously until it exits, oopses, or the
    /// step limit is hit. Returns its exit code.
    ///
    /// This is how Ksplice invokes custom hook code (paper §5.3) and how
    /// tests call kernel functions directly.
    pub fn call_function(&mut self, entry: &str, args: &[u64]) -> Result<u64, CallError> {
        let addr = self
            .syms
            .lookup_global(entry)
            .map(|s| s.addr)
            .ok_or_else(|| CallError::NoEntry(entry.to_string()))?;
        self.call_at(addr, args)
    }

    /// Like [`Kernel::call_function`] but with an explicit step budget —
    /// the fuzzer's differential runner uses a tight budget so a mutant
    /// that loops forever costs milliseconds, not seconds.
    pub fn call_function_limited(
        &mut self,
        entry: &str,
        args: &[u64],
        limit: u64,
    ) -> Result<u64, CallError> {
        let addr = self
            .syms
            .lookup_global(entry)
            .map(|s| s.addr)
            .ok_or_else(|| CallError::NoEntry(entry.to_string()))?;
        self.call_at_limited(addr, args, limit)
    }

    /// Like [`Kernel::call_function`] but with an absolute entry address.
    pub fn call_at(&mut self, addr: u64, args: &[u64]) -> Result<u64, CallError> {
        self.call_at_limited(addr, args, 50_000_000)
    }

    /// [`Kernel::call_at`] with an explicit step budget.
    pub fn call_at_limited(
        &mut self,
        addr: u64,
        args: &[u64],
        limit: u64,
    ) -> Result<u64, CallError> {
        let tid = self
            .spawn_at(addr, args, "call")
            .map_err(CallError::Spawn)?;
        let mut steps = 0u64;
        loop {
            let used = self.run_slice(tid, 4096);
            steps += used;
            match &self.thread(tid).expect("thread exists").state {
                ThreadState::Exited(code) => {
                    let code = *code;
                    self.reap(tid);
                    return Ok(code);
                }
                ThreadState::Oopsed => {
                    let oops = self.oopses.last().cloned();
                    self.reap(tid);
                    return Err(CallError::Oops(Box::new(oops.expect("oops recorded"))));
                }
                ThreadState::Sleeping(_) => {
                    // A synchronous call may sleep; advance time.
                    self.ticks += 1;
                    let now = self.ticks;
                    if let Some(t) = self.thread_mut(tid) {
                        if let ThreadState::Sleeping(until) = t.state {
                            if now >= until {
                                t.state = ThreadState::Runnable;
                            }
                        }
                    }
                }
                ThreadState::Runnable => {}
            }
            if steps >= limit {
                self.reap(tid);
                return Err(CallError::StepLimit);
            }
        }
    }

    fn reap(&mut self, tid: u64) {
        if let Some(t) = self.thread(tid) {
            self.free_stacks.push(t.stack);
        }
        self.threads.retain(|t| t.tid != tid);
        for c in &mut self.cpus {
            c.runq.retain(|&t| t != tid);
            if c.current == Some(tid) {
                c.current = None;
            }
        }
        if self.fault_parker == Some(tid) {
            self.fault_parker = None;
        }
    }

    /// Removes exited/oopsed threads and recycles their stacks.
    pub fn reap_dead(&mut self) -> usize {
        let dead: Vec<u64> = self
            .threads
            .iter()
            .filter(|t| matches!(t.state, ThreadState::Exited(_) | ThreadState::Oopsed))
            .map(|t| t.tid)
            .collect();
        for tid in &dead {
            self.reap(*tid);
        }
        dead.len()
    }

    /// `stop_machine`: captures all CPUs and runs `f` with the machine
    /// stopped (paper §5.2). Returns `f`'s result and records the pause
    /// duration, which [`Kernel::last_stop_machine`] exposes for the
    /// evaluation's "about 0.7 ms" measurement.
    ///
    /// This infallible form never consults the `barrier-stall` fault —
    /// callers that need the failure path (the update pipeline) use
    /// [`Kernel::try_stop_machine`].
    pub fn stop_machine<R>(&mut self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        match self.stop_machine_inner(f, false) {
            Ok(r) => r,
            Err(_) => unreachable!("no fault consulted ⇒ infallible"),
        }
    }

    /// Fallible `stop_machine`: performs the barrier rendezvous at
    /// N ≥ 2 (every vCPU's current thread runs up to one more quantum —
    /// "finish what you're doing and park in the stop handler") before
    /// running `f` on the captured machine. Fails with
    /// [`StopMachineError::BarrierTimeout`] when an armed
    /// `barrier-stall` fault makes a vCPU miss the rendezvous; the
    /// machine is released untouched (`f` never runs, no text written).
    pub fn try_stop_machine<R>(
        &mut self,
        f: impl FnOnce(&mut Kernel) -> R,
    ) -> Result<R, StopMachineError> {
        self.stop_machine_inner(f, true)
            .map_err(|cpu| StopMachineError::BarrierTimeout { cpu })
    }

    /// Shared capture path. The error is the stalled cpu id; it can
    /// only occur when `consult_faults` is true.
    fn stop_machine_inner<R>(
        &mut self,
        f: impl FnOnce(&mut Kernel) -> R,
        consult_faults: bool,
    ) -> Result<R, u32> {
        let start = Instant::now();
        let steps_before = self.steps;
        // Capture. On a uniprocessor (or for the historical infallible
        // callers) no other thread can run while `f` executes; we model
        // the per-CPU check-in cost by spinning briefly per vCPU, as
        // the real stop_machine busy-waits for every CPU.
        for _ in 0..self.smp.cpus {
            std::hint::black_box(0u64);
        }
        // Rendezvous (N ≥ 2): every vCPU finishes its current quantum
        // before parking in the stop handler. These instructions are
        // the simulated capture latency — and they genuinely move
        // threads in and out of patch targets between retry attempts.
        if self.smp.cpus > 1 {
            let ncpus = self.cpus.len();
            let lead = (self.sched_next() % ncpus as u64) as usize;
            for i in 0..ncpus {
                let cpu = (lead + i) % ncpus;
                if let Some(tid) = self.pick_next(cpu) {
                    let used = self.run_slice(tid, self.smp.quantum);
                    self.cpus[cpu].cycles += used;
                }
            }
        }
        if consult_faults {
            if let Some(cpu) = self.faults.barrier_stall(self.smp.cpus) {
                // The stalled vCPU never checked in: release the
                // machine without running `f`. The pause still counted.
                self.last_stop_machine = Some(start.elapsed());
                self.last_stop_machine_steps = self.steps - steps_before;
                return Err(cpu);
            }
        }
        let r = f(self);
        self.last_stop_machine = Some(start.elapsed());
        self.last_stop_machine_steps = self.steps - steps_before;
        self.stop_machine_count += 1;
        Ok(r)
    }

    /// Physically realizes an armed stack-busy fault at N ≥ 2: parks a
    /// real vCPU thread at `addr` (the entry of the patch target), so
    /// the §5.2 stack check finds a genuine instruction pointer inside
    /// the function — no synthetic verdict involved. The parked thread
    /// sleeps forever and is reaped when the fault's windows are
    /// exhausted. Returns the parked tid while the fault is live.
    pub fn park_fault_vcpu(&mut self, addr: u64) -> Option<u64> {
        if self.faults.stack_busy_pending() == 0 {
            // Windows exhausted: release the parked vCPU so the next
            // capture attempt finds the machine quiescent.
            if let Some(tid) = self.fault_parker.take() {
                self.reap(tid);
            }
            return None;
        }
        if let Some(tid) = self.fault_parker {
            return Some(tid);
        }
        let tid = self.spawn_at(addr, &[], "vcpu-parked").ok()?;
        if let Some(t) = self.thread_mut(tid) {
            // Parked: ip stays at the function entry, never scheduled.
            t.state = ThreadState::Sleeping(u64::MAX);
        }
        self.fault_parker = Some(tid);
        Some(tid)
    }

    /// The frame-pointer backtrace of a thread: current `ip`, then every
    /// return address on its kernel stack. This is the information the
    /// paper's safety check consumes (§5.2): no thread may have its
    /// instruction pointer *or any return address* inside a function being
    /// replaced.
    pub fn thread_backtrace(&self, t: &Thread) -> Vec<u64> {
        let mut out = vec![t.ip];
        let (low, high) = t.stack;
        let mut fp = t.fp();
        let mut hops = 0;
        while fp >= low && fp + 16 <= high && hops < 128 {
            // Frame layout: [fp] = saved fp, [fp+8] = return address.
            let Ok(ret) = self.mem.load_u64(fp + 8) else {
                break;
            };
            if ret == RETURN_SENTINEL || ret == 0 {
                break;
            }
            out.push(ret);
            let Ok(next) = self.mem.load_u64(fp) else {
                break;
            };
            if next <= fp {
                break;
            }
            fp = next;
            hops += 1;
        }
        out
    }

    /// Backtraces of every live (runnable or sleeping) thread.
    pub fn all_backtraces(&self) -> Vec<(u64, Vec<u64>)> {
        self.threads
            .iter()
            .filter(|t| matches!(t.state, ThreadState::Runnable | ThreadState::Sleeping(_)))
            .map(|t| (t.tid, self.thread_backtrace(t)))
            .collect()
    }

    /// Loads a module object at run time. Its symbols are added to
    /// kallsyms with *local* visibility — modules do not export symbols
    /// unless explicitly (Linux `EXPORT_SYMBOL` semantics).
    pub fn insmod(
        &mut self,
        obj: &Object,
        defer_unresolved: bool,
    ) -> Result<LoadedModule, LinkError> {
        self.insmod_with(obj, defer_unresolved, true)
    }

    /// Like [`Kernel::insmod`], optionally skipping kallsyms registration
    /// entirely (Ksplice helper modules stay invisible so their pre code
    /// is never mistaken for run code during matching).
    pub fn insmod_with(
        &mut self,
        obj: &Object,
        defer_unresolved: bool,
        register_symbols: bool,
    ) -> Result<LoadedModule, LinkError> {
        if self.faults.module_load_fails(&obj.name) {
            // Simulated vmalloc exhaustion mid-load (fault injection).
            return Err(LinkError::OutOfMemory {
                section: format!("{}:fault-injected", obj.name),
            });
        }
        let m = load_module(
            &mut self.mem,
            &self.syms,
            obj,
            &|n| native_addr(n),
            defer_unresolved,
        )?;
        if register_symbols {
            for (name, addr, _global, is_func, size) in &m.symbols {
                self.syms.insert(crate::kallsyms::KSym {
                    name: name.clone(),
                    addr: *addr,
                    size: *size,
                    global: false,
                    is_func: *is_func,
                    unit: m.name.clone(),
                });
            }
        }
        self.modules.push(m.clone());
        Ok(m)
    }

    /// Unloads a module: unmaps its regions, drops its kallsyms entries,
    /// and forgets it. Returns false if no such module is loaded.
    pub fn rmmod(&mut self, name: &str) -> bool {
        let had = self.modules.iter().any(|m| m.name == name);
        if !had {
            return false;
        }
        self.mem.unmap_prefix(&format!("{name}:"));
        self.syms.remove_unit(name);
        self.modules.retain(|m| m.name != name);
        true
    }

    /// Arms one fault (see [`Fault`] for the sites). Countable faults
    /// (stack-busy windows, module-load failures) accumulate; text
    /// corruption happens immediately — one byte of mapped kernel text
    /// is inverted (at `addr` if given, else a seeded pick) and the
    /// flipped address is recorded in [`FaultPlan::fired`]. Returns the
    /// corrupted address for `CorruptText`, `None` otherwise; `Err` only
    /// when a text corruption finds no byte to flip.
    pub fn arm_fault(&mut self, fault: Fault) -> Result<Option<u64>, String> {
        match fault {
            Fault::StackBusy { windows } => {
                self.faults.arm_stack_busy(windows);
                Ok(None)
            }
            Fault::ModuleLoad { count } => {
                self.faults.arm_module_load(count);
                Ok(None)
            }
            Fault::StepJitter { max_steps } => {
                self.faults.arm_step_jitter(max_steps);
                Ok(None)
            }
            Fault::ProbeFail { count } => {
                self.faults.arm_probe_fail(count);
                Ok(None)
            }
            Fault::BarrierStall { count } => {
                self.faults.arm_barrier_stall(count);
                Ok(None)
            }
            Fault::CorruptText { addr } => {
                let addr = match addr {
                    Some(a) => a,
                    None => {
                        let exec: Vec<(u64, u64)> = self
                            .mem
                            .regions()
                            .iter()
                            .filter(|r| r.perms.exec)
                            .map(|r| (r.start, r.size))
                            .collect();
                        self.faults
                            .pick_text_byte(&exec)
                            .ok_or_else(|| "no executable text to corrupt".to_string())?
                    }
                };
                let byte = self
                    .mem
                    .peek(addr, 1)
                    .map_err(|e| format!("corrupt-text at {addr:#x}: {e}"))?[0];
                self.mem
                    .poke(addr, &[!byte])
                    .map_err(|e| format!("corrupt-text at {addr:#x}: {e}"))?;
                self.faults.record("corrupt-text", format!("{addr:#x}"));
                Ok(Some(addr))
            }
        }
    }

    /// kmalloc: first-fit from the free list.
    pub(crate) fn kmalloc(&mut self, size: u64) -> u64 {
        let size = size.max(8).div_ceil(16) * 16;
        for i in 0..self.free_list.len() {
            let (addr, avail) = self.free_list[i];
            if avail >= size {
                if avail == size {
                    self.free_list.remove(i);
                } else {
                    self.free_list[i] = (addr + size, avail - size);
                }
                // Zero the block (kzalloc semantics keep tests simple).
                let zeros = vec![0u8; size as usize];
                let _ = self.mem.poke(addr, &zeros);
                return addr;
            }
        }
        0 // allocation failure, like kmalloc returning NULL
    }

    /// kfree: returns a block to the free list (no coalescing).
    pub(crate) fn kfree(&mut self, addr: u64, size: u64) {
        if addr != 0 {
            let size = size.max(8).div_ceil(16) * 16;
            self.free_list.push((addr, size));
        }
    }
}

/// Errors from booting.
#[derive(Debug)]
pub enum BootError {
    /// A source unit failed to compile.
    Compile(ksplice_lang::CompileError),
    /// Linking the boot image failed.
    Link(LinkError),
    /// The arena could not hold the image.
    NoMemory,
}

impl std::fmt::Display for BootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootError::Compile(e) => write!(f, "compile: {e}"),
            BootError::Link(e) => write!(f, "link: {e}"),
            BootError::NoMemory => write!(f, "out of memory during boot"),
        }
    }
}

impl std::error::Error for BootError {}

/// Errors from spawning a thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnError {
    /// No unique exported symbol with the given name.
    NoEntry(String),
    /// No room for a thread stack.
    NoMemory,
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::NoEntry(n) => write!(f, "no unique exported symbol `{n}`"),
            SpawnError::NoMemory => write!(f, "out of memory for thread stack"),
        }
    }
}

impl std::error::Error for SpawnError {}

/// Errors from a synchronous call.
#[derive(Debug)]
pub enum CallError {
    /// No unique exported symbol with the given name.
    NoEntry(String),
    /// The call's thread could not be spawned.
    Spawn(SpawnError),
    /// The call oopsed.
    Oops(Box<Oops>),
    /// The call ran past its step budget.
    StepLimit,
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::NoEntry(n) => write!(f, "no unique exported symbol `{n}`"),
            CallError::Spawn(e) => write!(f, "spawn failed: {e}"),
            CallError::Oops(o) => write!(f, "kernel oops at {:#x}: {}", o.ip, o.reason),
            CallError::StepLimit => write!(f, "call exceeded step limit"),
        }
    }
}

impl std::error::Error for CallError {}
