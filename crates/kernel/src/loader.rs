//! The in-kernel linker: boot-time image linking and run-time module
//! loading.
//!
//! Two entry points:
//!
//! * [`load_kernel_image`] links a whole build ([`ObjectSet`]) into
//!   memory at boot — the moral equivalent of `vmlinux` plus early boot
//!   relocation. All symbols (including file-scope statics) land in
//!   kallsyms, as in Linux.
//! * [`load_module`] loads one relocatable object at run time, the
//!   `insmod` path Ksplice uses for its helper and primary modules
//!   (paper §5.1). Undefined references resolve against *exported*
//!   (unique global) symbols only; with `defer_unresolved`, unresolvable
//!   relocations are returned as [`PendingReloc`]s for Ksplice to fulfil
//!   after run-pre matching discovers the right addresses (§4.3).

use std::collections::BTreeMap;
use std::fmt;

use ksplice_object::{reloc, Object, ObjectSet, RelocKind, SectionKind, SymKind};

use crate::kallsyms::{KSym, Kallsyms};
use crate::mem::{MemFault, Memory, Perms};

/// A relocation the loader could not resolve, awaiting an address from
/// run-pre matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingReloc {
    /// Section the field lives in.
    pub section: String,
    /// Absolute address of the to-be-patched field.
    pub addr: u64,
    /// Relocation kind (absolute or ip-relative).
    pub kind: RelocKind,
    /// Symbol name awaiting resolution.
    pub symbol: String,
    /// Constant added to the resolved address.
    pub addend: i64,
}

/// A module (or one compilation unit of the boot image) resident in
/// memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedModule {
    /// Module name (or compilation-unit name for boot-image units).
    pub name: String,
    /// Section name → (load address, size). Non-alloc sections absent.
    pub sections: BTreeMap<String, (u64, u64)>,
    /// Defined symbols: (name, addr, global, is_func, size).
    pub symbols: Vec<(String, u64, bool, bool, u64)>,
    /// Unresolved relocations (empty unless loaded with
    /// `defer_unresolved`).
    pub pending: Vec<PendingReloc>,
}

impl LoadedModule {
    /// Address of a defined symbol by name (first match).
    pub fn symbol_addr(&self, name: &str) -> Option<u64> {
        self.symbols
            .iter()
            .find(|(n, ..)| n == name)
            .map(|&(_, a, ..)| a)
    }

    /// Address and size of a section by name.
    pub fn section(&self, name: &str) -> Option<(u64, u64)> {
        self.sections.get(name).copied()
    }
}

/// Linking errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// An undefined symbol had no unique exported definition.
    Unresolved {
        /// Module being linked.
        module: String,
        /// The symbol that failed to resolve.
        symbol: String,
    },
    /// Two units exported the same global symbol.
    DuplicateGlobal {
        /// The doubly-defined symbol.
        symbol: String,
    },
    /// The arena is out of space.
    OutOfMemory {
        /// Section that failed to fit.
        section: String,
    },
    /// A relocation overflowed or landed out of bounds.
    Reloc(String),
    /// A raw memory fault while copying section data.
    Mem(MemFault),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Unresolved { module, symbol } => {
                write!(f, "{module}: unresolved symbol `{symbol}`")
            }
            LinkError::DuplicateGlobal { symbol } => {
                write!(f, "duplicate exported symbol `{symbol}`")
            }
            LinkError::OutOfMemory { section } => {
                write!(f, "out of memory loading section {section}")
            }
            LinkError::Reloc(m) => write!(f, "relocation failed: {m}"),
            LinkError::Mem(e) => write!(f, "memory fault while loading: {e}"),
        }
    }
}

impl std::error::Error for LinkError {}

impl From<MemFault> for LinkError {
    fn from(e: MemFault) -> LinkError {
        LinkError::Mem(e)
    }
}

/// Section permissions from its flags.
fn perms_for(sec: &ksplice_object::Section) -> Perms {
    if sec.flags.exec {
        Perms::TEXT
    } else if sec.flags.write {
        Perms::DATA
    } else {
        Perms::RO
    }
}

/// Allocates and copies one object's alloc sections; defines its symbols.
/// Relocations are **not** applied here.
/// Placed sections: name → (address, size).
type PlacedSections = BTreeMap<String, (u64, u64)>;
/// Defined symbols: (name, address, is_global, is_func, size).
type PlacedSymbols = Vec<(String, u64, bool, bool, u64)>;

fn place_object(
    mem: &mut Memory,
    obj: &Object,
) -> Result<(PlacedSections, PlacedSymbols), LinkError> {
    let mut sections = BTreeMap::new();
    // One batched arena reservation for the whole object: same
    // addresses as allocating section by section (the batch API runs
    // the same bump cursor), but the region table grows once and an
    // object that cannot fit is rejected before any region lands.
    let alloc: Vec<&ksplice_object::Section> = obj
        .sections
        .iter()
        .filter(|sec| sec.is_alloc() && sec.kind != SectionKind::Note)
        .collect();
    let names: Vec<String> = alloc
        .iter()
        .map(|sec| format!("{}:{}", obj.name, sec.name))
        .collect();
    let specs: Vec<(&str, u64, u64, Perms)> = alloc
        .iter()
        .zip(&names)
        .map(|(sec, name)| {
            (
                name.as_str(),
                sec.size.max(1),
                sec.align.max(1) as u64,
                perms_for(sec),
            )
        })
        .collect();
    let starts = mem.alloc_regions(&specs).ok_or_else(|| {
        // Replay the cursor one section at a time to name the one that
        // overflowed (and to leave the arena exactly as the historical
        // per-section allocator would have).
        for (sec, name) in alloc.iter().zip(&names) {
            if mem
                .alloc_region(name, sec.size.max(1), sec.align.max(1) as u64, perms_for(sec))
                .is_none()
            {
                return LinkError::OutOfMemory {
                    section: name.clone(),
                };
            }
        }
        unreachable!("batched allocation failed but sections fit individually")
    })?;
    for (sec, &addr) in alloc.iter().zip(&starts) {
        if sec.kind == SectionKind::Progbits && !sec.data.is_empty() {
            mem.poke(addr, &sec.data)?;
        }
        sections.insert(sec.name.clone(), (addr, sec.size));
    }
    let mut symbols = Vec::new();
    for sym in &obj.symbols {
        let Some(def) = sym.def else { continue };
        if sym.kind == SymKind::Section || sym.name.is_empty() {
            continue;
        }
        let Some(sec) = obj.sections.get(def.section) else {
            continue;
        };
        let Some(&(base, _)) = sections.get(&sec.name) else {
            continue; // symbol in a non-alloc section
        };
        symbols.push((
            sym.name.clone(),
            base + def.offset,
            sym.binding == ksplice_object::Binding::Global,
            sym.kind == SymKind::Func,
            def.size,
        ));
    }
    Ok((sections, symbols))
}

/// Applies one object's relocations given its placement. `resolve` maps an
/// undefined symbol name to an address; unresolvable relocations either
/// error or are deferred.
fn relocate_object(
    mem: &mut Memory,
    obj: &Object,
    sections: &BTreeMap<String, (u64, u64)>,
    resolve: &dyn Fn(&str) -> Option<u64>,
    defer_unresolved: bool,
) -> Result<Vec<PendingReloc>, LinkError> {
    let mut pending = Vec::new();
    // Local symbol addresses by index.
    let sym_addr = |idx: usize| -> Option<u64> {
        let sym = obj.symbols.get(idx)?;
        let def = sym.def?;
        let sec = obj.sections.get(def.section)?;
        let &(base, _) = sections.get(&sec.name)?;
        Some(base + def.offset)
    };
    for sec in &obj.sections {
        let Some(&(base, _)) = sections.get(&sec.name) else {
            continue;
        };
        for r in &sec.relocs {
            let sym = obj
                .symbols
                .get(r.symbol)
                .ok_or_else(|| LinkError::Reloc(format!("bad symbol index in {}", sec.name)))?;
            let target = match sym_addr(r.symbol) {
                Some(a) => Some(a),
                None => resolve(&sym.name),
            };
            match target {
                Some(s) => {
                    apply_reloc_at(mem, r.kind, base + r.offset, s, r.addend)?;
                }
                None if defer_unresolved => pending.push(PendingReloc {
                    section: sec.name.clone(),
                    addr: base + r.offset,
                    kind: r.kind,
                    symbol: sym.name.clone(),
                    addend: r.addend,
                }),
                None => {
                    return Err(LinkError::Unresolved {
                        module: obj.name.clone(),
                        symbol: sym.name.clone(),
                    })
                }
            }
        }
    }
    Ok(pending)
}

/// Patches a relocation field in kernel memory (also used by Ksplice to
/// fulfil deferred relocations after run-pre matching).
pub fn apply_reloc_at(
    mem: &mut Memory,
    kind: RelocKind,
    field_addr: u64,
    s: u64,
    addend: i64,
) -> Result<(), LinkError> {
    let value = reloc::stored_value(kind, s, addend, field_addr)
        .map_err(|e| LinkError::Reloc(e.to_string()))?;
    let w = kind.width();
    mem.poke(field_addr, &value.to_le_bytes()[..w])?;
    Ok(())
}

/// Links a whole build into memory at boot; returns one [`LoadedModule`]
/// per compilation unit, in deterministic order.
pub fn load_kernel_image(
    mem: &mut Memory,
    syms: &mut Kallsyms,
    set: &ObjectSet,
    natives: &dyn Fn(&str) -> Option<u64>,
) -> Result<Vec<LoadedModule>, LinkError> {
    // Pass 1: place everything and collect exported symbols.
    let mut placed = Vec::new();
    let mut globals: BTreeMap<String, u64> = BTreeMap::new();
    for (_, obj) in set.iter() {
        let (sections, symbols) = place_object(mem, obj)?;
        for (name, addr, global, ..) in &symbols {
            if *global && globals.insert(name.clone(), *addr).is_some() {
                return Err(LinkError::DuplicateGlobal {
                    symbol: name.clone(),
                });
            }
        }
        placed.push((obj, sections, symbols));
    }
    // Pass 2: relocate, resolving cross-unit references against exported
    // symbols and the native (built-in) API.
    let mut out = Vec::new();
    for (obj, sections, symbols) in placed {
        let resolve = |name: &str| globals.get(name).copied().or_else(|| natives(name));
        relocate_object(mem, obj, &sections, &resolve, false)?;
        for (name, addr, global, is_func, size) in &symbols {
            syms.insert(KSym {
                name: name.clone(),
                addr: *addr,
                size: *size,
                global: *global,
                is_func: *is_func,
                unit: obj.name.clone(),
            });
        }
        out.push(LoadedModule {
            name: obj.name.clone(),
            sections,
            symbols,
            pending: Vec::new(),
        });
    }
    Ok(out)
}

/// Loads one module at run time. Undefined references resolve against
/// unique exported kallsyms entries and the native API; with
/// `defer_unresolved` anything else becomes a [`PendingReloc`].
pub fn load_module(
    mem: &mut Memory,
    syms: &Kallsyms,
    obj: &Object,
    natives: &dyn Fn(&str) -> Option<u64>,
    defer_unresolved: bool,
) -> Result<LoadedModule, LinkError> {
    let (sections, symbols) = place_object(mem, obj)?;
    let resolve = |name: &str| {
        syms.lookup_global(name)
            .map(|s| s.addr)
            .or_else(|| natives(name))
    };
    let pending = relocate_object(mem, obj, &sections, &resolve, defer_unresolved)?;
    Ok(LoadedModule {
        name: obj.name.clone(),
        sections,
        symbols,
        pending,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksplice_lang::{build_tree, Options, SourceTree};

    fn tree(files: &[(&str, &str)]) -> ObjectSet {
        let t: SourceTree = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        build_tree(&t, &Options::distro()).unwrap()
    }

    #[test]
    fn links_cross_unit_calls() {
        let set = tree(&[
            ("a.kc", "int shared() { return 7; }"),
            ("b.kc", "int caller() { return shared() + 1; }"),
        ]);
        let mut mem = Memory::new();
        let mut syms = Kallsyms::new();
        let mods = load_kernel_image(&mut mem, &mut syms, &set, &|_| None).unwrap();
        assert_eq!(mods.len(), 2);
        assert!(syms.lookup_global("shared").is_some());
        assert!(syms.lookup_global("caller").is_some());
    }

    #[test]
    fn unresolved_symbol_fails_strict() {
        let set = tree(&[("a.kc", "int f() { return missing_fn(); }")]);
        let mut mem = Memory::new();
        let mut syms = Kallsyms::new();
        let err = load_kernel_image(&mut mem, &mut syms, &set, &|_| None).unwrap_err();
        assert!(matches!(err, LinkError::Unresolved { .. }));
    }

    #[test]
    fn natives_satisfy_undefined_symbols() {
        let set = tree(&[("a.kc", "int f() { return kmalloc(64); }")]);
        let mut mem = Memory::new();
        let mut syms = Kallsyms::new();
        load_kernel_image(&mut mem, &mut syms, &set, &|n| {
            (n == "kmalloc").then_some(0xffff_0000)
        })
        .unwrap();
    }

    #[test]
    fn duplicate_export_rejected() {
        let set = tree(&[
            ("a.kc", "int dup() { return 1; }"),
            ("b.kc", "int dup() { return 2; }"),
        ]);
        let mut mem = Memory::new();
        let mut syms = Kallsyms::new();
        let err = load_kernel_image(&mut mem, &mut syms, &set, &|_| None).unwrap_err();
        assert!(matches!(err, LinkError::DuplicateGlobal { .. }));
    }

    #[test]
    fn local_statics_do_not_collide() {
        let set = tree(&[
            ("a.kc", "static int debug; int fa() { return debug; }"),
            ("b.kc", "static int debug; int fb() { return debug; }"),
        ]);
        let mut mem = Memory::new();
        let mut syms = Kallsyms::new();
        load_kernel_image(&mut mem, &mut syms, &set, &|_| None).unwrap();
        // Both statics are in kallsyms under the same name.
        assert_eq!(syms.lookup_name("debug").len(), 2);
        assert!(syms.lookup_global("debug").is_none());
    }

    #[test]
    fn module_defers_unresolved_when_asked() {
        let set = tree(&[("mod.kc", "int probe() { return hidden_static() + 1; }")]);
        let obj = set.get("mod.kc").unwrap();
        let mut mem = Memory::new();
        let syms = Kallsyms::new();
        let m = load_module(&mut mem, &syms, obj, &|_| None, true).unwrap();
        assert_eq!(m.pending.len(), 1);
        assert_eq!(m.pending[0].symbol, "hidden_static");
        assert_eq!(m.pending[0].kind, RelocKind::Pcrel32);
        // Fulfil it later, as Ksplice does after run-pre matching.
        apply_reloc_at(
            &mut mem,
            m.pending[0].kind,
            m.pending[0].addr,
            m.section(".text").unwrap().0, // any in-range target
            m.pending[0].addend,
        )
        .unwrap();
    }

    #[test]
    fn strict_module_load_fails_on_unresolved() {
        let set = tree(&[("mod.kc", "int probe() { return hidden_static(); }")]);
        let obj = set.get("mod.kc").unwrap();
        let mut mem = Memory::new();
        let syms = Kallsyms::new();
        assert!(matches!(
            load_module(&mut mem, &syms, obj, &|_| None, false),
            Err(LinkError::Unresolved { .. })
        ));
    }

    #[test]
    fn data_initialisers_with_relocations_load() {
        let set = tree(&[(
            "ops.kc",
            "int open_impl(int f) { return f; }\
             int fops = &open_impl;\
             int call_open(int f) { return fops(f); }",
        )]);
        let mut mem = Memory::new();
        let mut syms = Kallsyms::new();
        let mods = load_kernel_image(&mut mem, &mut syms, &set, &|_| None).unwrap();
        let fops_addr = mods[0].symbol_addr("fops").unwrap();
        let open_addr = mods[0].symbol_addr("open_impl").unwrap();
        assert_eq!(mem.peek(fops_addr, 8).unwrap(), &open_addr.to_le_bytes());
    }
}
