//! Built-in ("native") kernel API.
//!
//! A handful of primitives every kernel provides — allocation, logging,
//! sleeping, the shadow-data-structure helpers of paper §5.3 — are
//! implemented natively rather than in `kc`. They live at reserved
//! addresses outside mapped memory; a call that lands in the native range
//! is dispatched by the VM and behaves like a normal function returning
//! through the saved return address.

use crate::kernel::Kernel;
use crate::mem::MemFault;

/// Base of the native-call address range: above the memory arena but
/// within `rel32` reach of kernel text, like fixmap/vsyscall pages.
pub const NATIVE_BASE: u64 = 0xff00_0000;

/// Magic return address marking the bottom of a thread's call stack;
/// returning to it exits the thread with `r0` as the code.
pub const RETURN_SENTINEL: u64 = NATIVE_BASE - 8;

/// The native functions, in address order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Native {
    /// `printk(msg)` — append a NUL-terminated string to the kernel log.
    Printk,
    /// `printk_int(msg, v)` — log `msg: v` (poor man's format string).
    PrintkInt,
    /// `kmalloc(size)` — allocate zeroed kernel memory; 0 on failure.
    Kmalloc,
    /// `kfree(ptr, size)` — free a kmalloc block.
    Kfree,
    /// `memset(p, byte, n)`.
    Memset,
    /// `memcpy(dst, src, n)`.
    Memcpy,
    /// `strcmp_k(a, b)` — C string compare.
    Strcmp,
    /// `msleep(ticks)` — sleep the calling thread.
    Msleep,
    /// `yield_cpu()` — end the thread's slice.
    YieldCpu,
    /// `panic_k(msg)` — oops the calling thread.
    Panic,
    /// `ksplice_shadow_attach(obj, key, size)` — attach (or fetch) a
    /// shadow block for a data structure instance (paper §5.3).
    ShadowAttach,
    /// `ksplice_shadow_get(obj, key)` — fetch a shadow block or 0.
    ShadowGet,
    /// `ksplice_shadow_free(obj, key)` — detach and free a shadow block.
    ShadowFree,
    /// `krandom()` — deterministic pseudo-random u63.
    Krandom,
    /// `current_tid()` — the calling thread's id.
    CurrentTid,
    /// `jiffies_now()` — the scheduler tick counter.
    Jiffies,
}

const TABLE: [(&str, Native); 16] = [
    ("printk", Native::Printk),
    ("printk_int", Native::PrintkInt),
    ("kmalloc", Native::Kmalloc),
    ("kfree", Native::Kfree),
    ("memset", Native::Memset),
    ("memcpy", Native::Memcpy),
    ("strcmp_k", Native::Strcmp),
    ("msleep", Native::Msleep),
    ("yield_cpu", Native::YieldCpu),
    ("panic_k", Native::Panic),
    ("ksplice_shadow_attach", Native::ShadowAttach),
    ("ksplice_shadow_get", Native::ShadowGet),
    ("ksplice_shadow_free", Native::ShadowFree),
    ("krandom", Native::Krandom),
    ("current_tid", Native::CurrentTid),
    ("jiffies_now", Native::Jiffies),
];

/// The address a native symbol name resolves to, if it is one.
pub fn native_addr(name: &str) -> Option<u64> {
    TABLE
        .iter()
        .position(|(n, _)| *n == name)
        .map(|i| NATIVE_BASE + (i as u64) * 16)
}

/// The native function at an address in the native range.
pub fn native_from_addr(addr: u64) -> Option<Native> {
    if addr < NATIVE_BASE {
        return None;
    }
    let idx = (addr - NATIVE_BASE) / 16;
    if !(addr - NATIVE_BASE).is_multiple_of(16) {
        return None;
    }
    TABLE.get(idx as usize).map(|(_, f)| *f)
}

/// Outcome of a native call.
pub(crate) enum NativeOutcome {
    /// Return `r0` to the caller.
    Return(u64),
    /// The thread goes to sleep until the given tick (still returns 0).
    Sleep(u64),
    /// End the thread's scheduling slice (returns 0).
    Yield,
    /// The call oopses the thread.
    Fault(String),
}

impl Kernel {
    /// Executes a native function for the thread whose argument registers
    /// are `args` (`r1..=r6`).
    pub(crate) fn dispatch_native(&mut self, tid: u64, f: Native, args: [u64; 6]) -> NativeOutcome {
        match f {
            Native::Printk => match self.mem.read_cstr(args[0]) {
                Ok(s) => {
                    self.klog.push(s);
                    NativeOutcome::Return(0)
                }
                Err(e) => NativeOutcome::Fault(format!("printk: {e}")),
            },
            Native::PrintkInt => match self.mem.read_cstr(args[0]) {
                Ok(s) => {
                    self.klog.push(format!("{s}: {}", args[1] as i64));
                    NativeOutcome::Return(0)
                }
                Err(e) => NativeOutcome::Fault(format!("printk_int: {e}")),
            },
            Native::Kmalloc => NativeOutcome::Return(self.kmalloc(args[0])),
            Native::Kfree => {
                self.kfree(args[0], args[1]);
                NativeOutcome::Return(0)
            }
            Native::Memset => {
                let (p, v, n) = (args[0], args[1] as u8, args[2]);
                let buf = vec![v; n as usize];
                match self.mem.store(p, &buf) {
                    Ok(()) => NativeOutcome::Return(p),
                    Err(e) => NativeOutcome::Fault(format!("memset: {e}")),
                }
            }
            Native::Memcpy => {
                let (d, s, n) = (args[0], args[1], args[2]);
                let data: Result<Vec<u8>, MemFault> = self.mem.load(s, n).map(|b| b.to_vec());
                match data.and_then(|b| self.mem.store(d, &b)) {
                    Ok(()) => NativeOutcome::Return(d),
                    Err(e) => NativeOutcome::Fault(format!("memcpy: {e}")),
                }
            }
            Native::Strcmp => {
                let a = self.mem.read_cstr(args[0]);
                let b = self.mem.read_cstr(args[1]);
                match (a, b) {
                    (Ok(a), Ok(b)) => NativeOutcome::Return(match a.cmp(&b) {
                        std::cmp::Ordering::Less => -1i64 as u64,
                        std::cmp::Ordering::Equal => 0,
                        std::cmp::Ordering::Greater => 1,
                    }),
                    _ => NativeOutcome::Fault("strcmp: bad pointer".to_string()),
                }
            }
            Native::Msleep => NativeOutcome::Sleep(self.ticks + args[0].max(1)),
            Native::YieldCpu => NativeOutcome::Yield,
            Native::Panic => {
                let msg = self
                    .mem
                    .read_cstr(args[0])
                    .unwrap_or_else(|_| "panic".to_string());
                NativeOutcome::Fault(format!("kernel panic: {msg}"))
            }
            Native::ShadowAttach => {
                let key = (args[0], args[1]);
                if let Some(&addr) = self.shadows.get(&key) {
                    return NativeOutcome::Return(addr);
                }
                let addr = self.kmalloc(args[2]);
                if addr != 0 {
                    self.shadows.insert(key, addr);
                }
                NativeOutcome::Return(addr)
            }
            Native::ShadowGet => {
                NativeOutcome::Return(self.shadows.get(&(args[0], args[1])).copied().unwrap_or(0))
            }
            Native::ShadowFree => {
                if let Some(addr) = self.shadows.remove(&(args[0], args[1])) {
                    self.kfree(addr, 16);
                }
                NativeOutcome::Return(0)
            }
            Native::Krandom => {
                // xorshift64*.
                let mut x = self.rng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng = x;
                NativeOutcome::Return(x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 1)
            }
            Native::CurrentTid => NativeOutcome::Return(tid),
            Native::Jiffies => NativeOutcome::Return(self.ticks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_roundtrip() {
        for (name, f) in TABLE {
            let addr = native_addr(name).unwrap();
            assert_eq!(native_from_addr(addr), Some(f));
        }
        assert_eq!(native_addr("not_a_native"), None);
        assert_eq!(native_from_addr(NATIVE_BASE + 8), None); // misaligned
        assert_eq!(native_from_addr(0x1000), None);
    }

    #[test]
    fn sentinel_is_not_a_native() {
        assert_eq!(native_from_addr(RETURN_SENTINEL), None);
    }
}
