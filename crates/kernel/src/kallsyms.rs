//! The kernel symbol table (`kallsyms`).
//!
//! Like Linux's, it contains **every** symbol — exported globals and
//! file-scope statics alike — and, like Linux's, a bare name lookup may be
//! ambiguous: the paper measures 6,164 duplicate-named symbols (7.9 % of
//! the total) in Linux 2.6.27 (§6.3). [`Kallsyms::lookup_name`] therefore
//! returns *all* candidates; resolving which one a relocation meant is
//! exactly what run-pre matching exists for (§4.1). The `unit` field
//! records the defining compilation unit for diagnostics and evaluation
//! statistics only — Ksplice itself never consults it, since real
//! kallsyms has no such column.

use std::collections::BTreeMap;

/// One symbol table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KSym {
    /// Symbol name (not necessarily unique).
    pub name: String,
    /// Load address.
    pub addr: u64,
    /// Size in bytes (0 when unknown).
    pub size: u64,
    /// Exported (global binding) vs file-local (static).
    pub global: bool,
    /// True for function symbols, false for data.
    pub is_func: bool,
    /// Defining compilation unit — diagnostics/statistics only.
    pub unit: String,
}

/// The kernel's symbol table.
#[derive(Debug, Clone, Default)]
pub struct Kallsyms {
    syms: Vec<KSym>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl Kallsyms {
    /// An empty table.
    pub fn new() -> Kallsyms {
        Kallsyms::default()
    }

    /// Adds a symbol.
    pub fn insert(&mut self, sym: KSym) {
        let idx = self.syms.len();
        self.by_name.entry(sym.name.clone()).or_default().push(idx);
        self.syms.push(sym);
    }

    /// All symbols with the given name (possibly several — local symbols
    /// collide across units).
    pub fn lookup_name(&self, name: &str) -> Vec<&KSym> {
        self.by_name
            .get(name)
            .map(|v| v.iter().map(|&i| &self.syms[i]).collect())
            .unwrap_or_default()
    }

    /// The unique *global* symbol with this name, if exactly one exists —
    /// the analogue of `kallsyms_lookup_name` for exported symbols, used
    /// by the ordinary module loader.
    pub fn lookup_global(&self, name: &str) -> Option<&KSym> {
        let mut globals = self.lookup_name(name).into_iter().filter(|s| s.global);
        let first = globals.next()?;
        if globals.next().is_some() {
            return None;
        }
        Some(first)
    }

    /// The symbol covering `addr`, if any (ties broken by closest start).
    pub fn lookup_addr(&self, addr: u64) -> Option<&KSym> {
        self.syms
            .iter()
            .filter(|s| addr >= s.addr && (s.size == 0 || addr < s.addr + s.size))
            .max_by_key(|s| s.addr)
    }

    /// Removes every symbol belonging to `unit` (module unload).
    pub fn remove_unit(&mut self, unit: &str) {
        self.syms.retain(|s| s.unit != unit);
        self.by_name.clear();
        let mut by_name = BTreeMap::new();
        for (i, s) in self.syms.iter().enumerate() {
            by_name
                .entry(s.name.clone())
                .or_insert_with(Vec::new)
                .push(i);
        }
        self.by_name = by_name;
    }

    /// Iterates all symbols.
    pub fn iter(&self) -> impl Iterator<Item = &KSym> {
        self.syms.iter()
    }

    /// Total number of symbols.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Evaluation statistic: how many symbols share their name with at
    /// least one other symbol (the paper's "6,164 symbols … 7.9 %").
    pub fn ambiguous_symbol_count(&self) -> usize {
        self.by_name
            .values()
            .filter(|v| v.len() > 1)
            .map(|v| v.len())
            .sum()
    }

    /// Evaluation statistic: units containing at least one symbol whose
    /// name is shared (the paper's "21.1 % of the compilation units").
    pub fn units_with_ambiguous_symbols(&self) -> Vec<&str> {
        let mut units: Vec<&str> = self
            .by_name
            .values()
            .filter(|v| v.len() > 1)
            .flat_map(|v| v.iter().map(|&i| self.syms[i].unit.as_str()))
            .collect();
        units.sort_unstable();
        units.dedup();
        units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(name: &str, addr: u64, global: bool, unit: &str) -> KSym {
        KSym {
            name: name.to_string(),
            addr,
            size: 16,
            global,
            is_func: true,
            unit: unit.to_string(),
        }
    }

    #[test]
    fn ambiguous_names_return_all_candidates() {
        let mut k = Kallsyms::new();
        k.insert(sym("debug", 0x1000, false, "drivers/dst.kc"));
        k.insert(sym("debug", 0x2000, false, "drivers/dst_ca.kc"));
        k.insert(sym("printk", 0x3000, true, "kernel/printk.kc"));
        assert_eq!(k.lookup_name("debug").len(), 2);
        assert_eq!(k.lookup_name("printk").len(), 1);
        assert!(k.lookup_name("missing").is_empty());
    }

    #[test]
    fn global_lookup_requires_uniqueness() {
        let mut k = Kallsyms::new();
        k.insert(sym("a", 0x1000, true, "x.kc"));
        k.insert(sym("a", 0x2000, true, "y.kc")); // duplicate export
        k.insert(sym("b", 0x3000, true, "x.kc"));
        k.insert(sym("c", 0x4000, false, "x.kc"));
        assert!(k.lookup_global("a").is_none());
        assert_eq!(k.lookup_global("b").unwrap().addr, 0x3000);
        assert!(k.lookup_global("c").is_none()); // local only
    }

    #[test]
    fn addr_lookup() {
        let mut k = Kallsyms::new();
        k.insert(sym("f", 0x1000, true, "x.kc"));
        k.insert(sym("g", 0x1010, true, "x.kc"));
        assert_eq!(k.lookup_addr(0x1008).unwrap().name, "f");
        assert_eq!(k.lookup_addr(0x1010).unwrap().name, "g");
        assert!(k.lookup_addr(0x900).is_none());
    }

    #[test]
    fn ambiguity_statistics() {
        let mut k = Kallsyms::new();
        k.insert(sym("debug", 0x1000, false, "a.kc"));
        k.insert(sym("debug", 0x2000, false, "b.kc"));
        k.insert(sym("x", 0x3000, true, "a.kc"));
        k.insert(sym("y", 0x4000, true, "c.kc"));
        assert_eq!(k.ambiguous_symbol_count(), 2);
        assert_eq!(k.units_with_ambiguous_symbols(), vec!["a.kc", "b.kc"]);
    }
}
