//! The K64 virtual machine: instruction execution for kernel threads.

use ksplice_asm::{decode, BinOp, Instr, Reg};

use crate::kernel::{Kernel, Oops, ThreadState};
use crate::native::{native_from_addr, NativeOutcome, NATIVE_BASE, RETURN_SENTINEL};

/// Result of a single instruction step.
enum Step {
    /// Keep running.
    Continue,
    /// The thread gave up its slice voluntarily.
    Yielded,
    /// The thread went to sleep or exited or died.
    Stopped,
}

impl Kernel {
    /// Runs thread `tid` for at most `max_steps` instructions; returns the
    /// number executed.
    pub(crate) fn run_slice(&mut self, tid: u64, max_steps: u64) -> u64 {
        let mut used = 0;
        while used < max_steps {
            let outcome = self.step(tid);
            used += 1;
            // PC sampler: one branch when disarmed; on the Nth step it
            // records the running thread's stack (see `profiler`).
            if self.profiler.is_some() {
                let fire = self.profiler.as_mut().is_some_and(|p| p.tick());
                if fire {
                    self.record_sample(tid, self.steps + used);
                }
            }
            match outcome {
                Step::Continue => {}
                Step::Yielded | Step::Stopped => break,
            }
        }
        self.steps += used;
        used
    }

    fn oops(&mut self, tid: u64, reason: String) -> Step {
        let (ip, backtrace) = {
            let t = self.thread(tid).expect("stepping a live thread");
            (t.ip, self.thread_backtrace(t))
        };
        let sym = self
            .syms
            .lookup_addr(ip)
            .map(|s| format!(" in {}", s.name))
            .unwrap_or_default();
        self.klog.push(format!("Oops: {reason}{sym} [tid {tid}]"));
        self.oopses.push(Oops {
            tid,
            ip,
            reason,
            backtrace,
        });
        if let Some(t) = self.thread_mut(tid) {
            t.state = ThreadState::Oopsed;
        }
        Step::Stopped
    }

    /// Executes one instruction (or native call) for `tid`.
    fn step(&mut self, tid: u64) -> Step {
        let (ip, regs) = {
            let Some(t) = self.thread(tid) else {
                return Step::Stopped;
            };
            if !matches!(t.state, ThreadState::Runnable) {
                return Step::Stopped;
            }
            (t.ip, t.regs)
        };

        // Returning to the sentinel ends the thread.
        if ip == RETURN_SENTINEL {
            let code = regs[0];
            let t = self.thread_mut(tid).expect("live thread");
            t.state = ThreadState::Exited(code);
            return Step::Stopped;
        }

        // Native-range dispatch.
        if ip >= NATIVE_BASE {
            let Some(f) = native_from_addr(ip) else {
                return self.oops(tid, format!("jump to bad native address {ip:#x}"));
            };
            let args = [regs[1], regs[2], regs[3], regs[4], regs[5], regs[6]];
            let outcome = self.dispatch_native(tid, f, args);
            // Simulate `ret`: pop the return address.
            let sp = regs[15];
            let ret = match self.mem.load_u64(sp) {
                Ok(v) => v,
                Err(e) => return self.oops(tid, format!("native return: {e}")),
            };
            let t = self.thread_mut(tid).expect("live thread");
            t.regs[15] = sp + 8;
            t.ip = ret;
            t.cycles += 1;
            match outcome {
                NativeOutcome::Return(v) => {
                    t.regs[0] = v;
                    return Step::Continue;
                }
                NativeOutcome::Sleep(until) => {
                    t.regs[0] = 0;
                    t.state = ThreadState::Sleeping(until);
                    return Step::Stopped;
                }
                NativeOutcome::Yield => {
                    t.regs[0] = 0;
                    return Step::Yielded;
                }
                NativeOutcome::Fault(msg) => return self.oops(tid, msg),
            }
        }

        // Ordinary instruction fetch + decode.
        let instr = {
            let bytes = match self.mem.fetch(ip, 10) {
                Ok(b) => b,
                Err(e) => return self.oops(tid, e.to_string()),
            };
            match decode(bytes) {
                Ok((i, _)) => i,
                Err(e) => return self.oops(tid, format!("invalid opcode: {e}")),
            }
        };
        let len = instr.len() as u64;
        let next = ip + len;

        // Helper macros over the thread's registers.
        macro_rules! reg {
            ($r:expr) => {
                regs[$r.num() as usize]
            };
        }

        let mut new_regs = regs;
        let mut new_ip = next;
        let mut new_flags: Option<(bool, bool)> = None;
        // Stores are staged in a fixed buffer — no heap allocation on
        // the per-instruction path.
        enum Mem {
            None,
            Store(u64, [u8; 8], usize),
        }
        let mut mem_op = Mem::None;
        macro_rules! store8 {
            ($addr:expr, $v:expr) => {
                mem_op = Mem::Store($addr, $v.to_le_bytes(), 8)
            };
        }
        let mut result: Result<(), String> = Ok(());

        match instr {
            Instr::Hlt => {
                let t = self.thread_mut(tid).expect("live thread");
                t.state = ThreadState::Exited(regs[0]);
                return Step::Stopped;
            }
            Instr::Nop1 | Instr::NopN(_) => {}
            Instr::MovRR(d, s) => new_regs[d.num() as usize] = reg!(s),
            Instr::MovRI32(d, v) => new_regs[d.num() as usize] = v as i64 as u64,
            Instr::MovRI64(d, v) => new_regs[d.num() as usize] = v,
            Instr::Ld(d, b, disp) => {
                let addr = reg!(b).wrapping_add(disp as i64 as u64);
                match self.mem.load_u64(addr) {
                    Ok(v) => new_regs[d.num() as usize] = v,
                    Err(e) => result = Err(e.to_string()),
                }
            }
            Instr::St(b, s, disp) => {
                let addr = reg!(b).wrapping_add(disp as i64 as u64);
                store8!(addr, reg!(s));
            }
            Instr::Ld8(d, b, disp) => {
                let addr = reg!(b).wrapping_add(disp as i64 as u64);
                match self.mem.load(addr, 1) {
                    Ok(v) => new_regs[d.num() as usize] = v[0] as u64,
                    Err(e) => result = Err(e.to_string()),
                }
            }
            Instr::St8(b, s, disp) => {
                let addr = reg!(b).wrapping_add(disp as i64 as u64);
                mem_op = Mem::Store(addr, [reg!(s) as u8, 0, 0, 0, 0, 0, 0, 0], 1);
            }
            Instr::Lea(d, b, disp) => {
                new_regs[d.num() as usize] = reg!(b).wrapping_add(disp as i64 as u64)
            }
            Instr::Bin(op, d, s) => {
                let a = reg!(d) as i64;
                let b = reg!(s) as i64;
                let v = match op {
                    BinOp::Add => Some(a.wrapping_add(b)),
                    BinOp::Sub => Some(a.wrapping_sub(b)),
                    BinOp::Mul => Some(a.wrapping_mul(b)),
                    BinOp::Div => {
                        if b == 0 {
                            None
                        } else {
                            Some(a.wrapping_div(b))
                        }
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            None
                        } else {
                            Some(a.wrapping_rem(b))
                        }
                    }
                    BinOp::And => Some(a & b),
                    BinOp::Or => Some(a | b),
                    BinOp::Xor => Some(a ^ b),
                    BinOp::Shl => Some(a.wrapping_shl(b as u32 & 63)),
                    BinOp::Shr => Some(((a as u64).wrapping_shr(b as u32 & 63)) as i64),
                };
                match v {
                    Some(v) => new_regs[d.num() as usize] = v as u64,
                    None => result = Err("divide error".to_string()),
                }
            }
            Instr::AddI(d, imm) => {
                new_regs[d.num() as usize] = reg!(d).wrapping_add(imm as i64 as u64)
            }
            Instr::Neg(d) => new_regs[d.num() as usize] = (reg!(d) as i64).wrapping_neg() as u64,
            Instr::Not(d) => new_regs[d.num() as usize] = !reg!(d),
            Instr::Cmp(a, b) => {
                let (x, y) = (reg!(a) as i64, reg!(b) as i64);
                new_flags = Some((x == y, x < y));
            }
            Instr::CmpI(a, imm) => {
                let (x, y) = (reg!(a) as i64, imm as i64);
                new_flags = Some((x == y, x < y));
            }
            Instr::Jmp8(rel) => new_ip = next.wrapping_add(rel as i64 as u64),
            Instr::Jmp32(rel) => new_ip = next.wrapping_add(rel as i64 as u64),
            Instr::Jcc8(c, rel) => {
                let t = self.thread(tid).expect("live thread");
                if c.eval(t.zf, t.lf) {
                    new_ip = next.wrapping_add(rel as i64 as u64);
                }
            }
            // (Jcc32 handled below with identical semantics.)
            Instr::Jcc32(c, rel) => {
                let t = self.thread(tid).expect("live thread");
                if c.eval(t.zf, t.lf) {
                    new_ip = next.wrapping_add(rel as i64 as u64);
                }
            }
            Instr::Call32(rel) => {
                let sp = regs[15].wrapping_sub(8);
                store8!(sp, next);
                new_regs[15] = sp;
                new_ip = next.wrapping_add(rel as i64 as u64);
            }
            Instr::CallR(r) => {
                let sp = regs[15].wrapping_sub(8);
                store8!(sp, next);
                new_regs[15] = sp;
                new_ip = reg!(r);
            }
            Instr::Ret => {
                let sp = regs[15];
                match self.mem.load_u64(sp) {
                    Ok(v) => {
                        new_regs[15] = sp + 8;
                        new_ip = v;
                    }
                    Err(e) => result = Err(format!("ret: {e}")),
                }
            }
            Instr::Push(r) => {
                let sp = regs[15].wrapping_sub(8);
                store8!(sp, reg!(r));
                new_regs[15] = sp;
            }
            Instr::Pop(r) => {
                let sp = regs[15];
                match self.mem.load_u64(sp) {
                    Ok(v) => {
                        new_regs[r.num() as usize] = v;
                        new_regs[15] = sp + 8;
                    }
                    Err(e) => result = Err(format!("pop: {e}")),
                }
            }
            Instr::Int(0x80) => {
                // System call: an in-kernel call to `do_syscall`.
                match self.syscall_entry {
                    Some(entry) => {
                        let sp = regs[15].wrapping_sub(8);
                        store8!(sp, next);
                        new_regs[15] = sp;
                        new_ip = entry;
                    }
                    None => result = Err("int 0x80 with no do_syscall".to_string()),
                }
            }
            Instr::Int(v) => result = Err(format!("unexpected interrupt {v:#04x}")),
        }

        if let Err(msg) = result {
            return self.oops(tid, msg);
        }
        if let Mem::Store(addr, bytes, len) = mem_op {
            if let Err(e) = self.mem.store(addr, &bytes[..len]) {
                return self.oops(tid, e.to_string());
            }
        }
        let t = self.thread_mut(tid).expect("live thread");
        t.regs = new_regs;
        t.ip = new_ip;
        if let Some((zf, lf)) = new_flags {
            t.zf = zf;
            t.lf = lf;
        }
        t.cycles += 1;
        // A sanity backstop: the VM never lets a thread run off into
        // unmapped space silently; the next fetch will oops instead.
        let _ = Reg::R0;
        Step::Continue
    }
}
