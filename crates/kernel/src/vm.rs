//! The K64 virtual machine: instruction execution for kernel threads.
//!
//! Dispatch is *decode-cached*: executable text is predecoded into
//! basic blocks (ending at any control transfer) held in a side table
//! keyed by entry address — the VM's icache. Within a block, execution
//! is sequential by construction, so the hot loop runs decoded
//! instructions straight out of the cache and only consults memory
//! again at block boundaries. Any write into an executable region
//! advances that region's generation counter ([`crate::mem::Memory`]),
//! and the dispatcher sweeps stale blocks before the next dispatch —
//! the moral equivalent of `flush_icache_range` after a kernel text
//! patch. Step accounting and the PC sampler remain per-instruction
//! exact: every architectural effect, oops message, profiler tick and
//! step count is byte-identical to the historical decode-per-step
//! interpreter.

use std::sync::Arc;

use ksplice_asm::{decode, predecode_block, BinOp, Instr};

use crate::kernel::{Kernel, Oops, ThreadState};
use crate::native::{native_from_addr, NativeOutcome, NATIVE_BASE, RETURN_SENTINEL};

/// Result of a single instruction step.
enum Step {
    /// Keep running.
    Continue,
    /// The thread gave up its slice voluntarily.
    Yielded,
    /// The thread went to sleep or exited or died.
    Stopped,
}

/// Longest straight-line run predecoded into one block. Purely a
/// memory bound — a longer run simply continues in the next block.
const MAX_BLOCK_INSTRS: usize = 1024;

/// One predecoded basic block in the VM's icache.
pub(crate) struct CachedBlock {
    /// Decoded instructions with their encoded lengths. Shared so the
    /// dispatcher can hold a block across steps while the cache and
    /// the kernel stay mutable.
    pub(crate) code: Arc<[(Instr, u8)]>,
    /// Start address of the executable region the block decodes from.
    pub(crate) region_start: u64,
    /// That region's write generation when the block was decoded.
    pub(crate) gen: u64,
}

/// Counters for the decode-cached block dispatcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Block dispatches served from the cache without decoding.
    pub block_hits: u64,
    /// Basic blocks decoded and inserted into the cache.
    pub blocks_decoded: u64,
    /// Icache flush sweeps (lazy after a text write, or explicit from
    /// the patching machinery inside a stop_machine window).
    pub icache_flushes: u64,
    /// Cached blocks evicted by those sweeps.
    pub blocks_evicted: u64,
}

/// The dispatcher's position inside a cached block: the block and the
/// index of the next instruction to execute.
type Cursor = Option<(Arc<[(Instr, u8)]>, usize)>;

/// Multiply-mix hasher for address-keyed maps. Block-cache keys are
/// instruction addresses — already well spread — and the lookup sits on
/// the dispatch fast path, where SipHash's setup cost dominates.
#[derive(Default)]
pub(crate) struct AddrHasher(u64);

impl std::hash::Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        let h = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 32);
    }
}

/// A `HashMap` keyed by address, using [`AddrHasher`].
pub(crate) type AddrMap<V> =
    std::collections::HashMap<u64, V, std::hash::BuildHasherDefault<AddrHasher>>;

impl Kernel {
    /// Sweeps the decoded-block cache, evicting every block whose
    /// region's write generation moved (or whose region vanished)
    /// since the block was decoded — the `flush_icache_range`
    /// analogue. The patching machinery calls this right after
    /// writing trampolines inside the stop_machine window; the VM
    /// also sweeps lazily before dispatching after any text write.
    /// Returns the number of blocks evicted.
    pub fn flush_icache(&mut self) -> usize {
        let before = self.block_cache.len();
        let mem = &self.mem;
        self.block_cache
            .retain(|_, b| mem.region_generation(b.region_start) == Some(b.gen));
        let evicted = before - self.block_cache.len();
        self.icache_clock = self.mem.text_generation();
        self.vm_stats.icache_flushes += 1;
        self.vm_stats.blocks_evicted += evicted as u64;
        evicted
    }

    /// Runs thread `tid` for at most `max_steps` instructions; returns the
    /// number executed.
    pub(crate) fn run_slice(&mut self, tid: u64, max_steps: u64) -> u64 {
        if self.mem.text_generation() != self.icache_clock {
            self.flush_icache();
        }
        // Threads are only ever appended, so the index stays valid for
        // the whole slice even if the thread spawns others.
        let ti = self.threads.iter().position(|t| t.tid == tid);
        let mut cursor: Cursor = None;
        let mut used = 0;
        while used < max_steps {
            let outcome = match ti {
                // No such thread: the historical interpreter burned one
                // step discovering that, and so do we.
                None => Step::Stopped,
                Some(ti) => self.step_cached(ti, tid, &mut cursor),
            };
            used += 1;
            // PC sampler: one branch when disarmed; on the Nth step it
            // records the running thread's stack (see `profiler`).
            if self.profiler.as_mut().is_some_and(|p| p.tick()) {
                self.record_sample(tid, self.steps + used);
            }
            match outcome {
                Step::Continue => {}
                Step::Yielded | Step::Stopped => break,
            }
            // A store into writable+executable memory (or a native that
            // poked text) invalidates decoded blocks immediately —
            // including the one currently executing.
            if self.mem.text_generation() != self.icache_clock {
                self.flush_icache();
                cursor = None;
            }
        }
        self.steps += used;
        used
    }

    /// Executes one instruction through the block cache. Falls back to
    /// the legacy [`Kernel::step`] for everything that is not ordinary
    /// mapped text (dead threads, the return sentinel, native calls,
    /// unfetchable or undecodable addresses) so every fault message
    /// and exit path stays byte-identical.
    fn step_cached(&mut self, ti: usize, tid: u64, cursor: &mut Cursor) -> Step {
        if let Some((code, idx)) = cursor {
            let (instr, _) = code[*idx];
            let last = *idx + 1 == code.len();
            let out = self.exec_instr(ti, tid, instr);
            if last || !matches!(out, Step::Continue) {
                *cursor = None;
            } else {
                *idx += 1;
            }
            return out;
        }
        let t = &self.threads[ti];
        if !matches!(t.state, ThreadState::Runnable)
            || t.ip == RETURN_SENTINEL
            || t.ip >= NATIVE_BASE
        {
            return self.step(tid);
        }
        let ip = t.ip;
        match self.block_at(ip) {
            Some(code) => {
                let (instr, _) = code[0];
                let out = self.exec_instr(ti, tid, instr);
                if code.len() > 1 && matches!(out, Step::Continue) {
                    *cursor = Some((code, 1));
                }
                out
            }
            None => self.step(tid),
        }
    }

    /// The cached block starting at `ip`, decoding (and caching) it on
    /// a miss. `None` when `ip` is not fetchable/decodable text — the
    /// caller falls back to the legacy path for the exact oops.
    fn block_at(&mut self, ip: u64) -> Option<Arc<[(Instr, u8)]>> {
        if let Some(b) = self.block_cache.get(&ip) {
            self.vm_stats.block_hits += 1;
            return Some(Arc::clone(&b.code));
        }
        let (region_start, region_end) = {
            let r = self.mem.region_at(ip, 1)?;
            if !r.perms.exec {
                return None;
            }
            (r.start, r.start + r.size)
        };
        let gen = self.mem.region_generation(region_start)?;
        let bytes = self.mem.fetch(ip, region_end - ip).ok()?;
        let (decoded, _) = predecode_block(bytes, MAX_BLOCK_INSTRS);
        if decoded.is_empty() {
            return None;
        }
        let code: Arc<[(Instr, u8)]> = decoded.into();
        self.vm_stats.blocks_decoded += 1;
        self.block_cache.insert(
            ip,
            CachedBlock {
                code: Arc::clone(&code),
                region_start,
                gen,
            },
        );
        Some(code)
    }

    fn oops(&mut self, tid: u64, reason: String) -> Step {
        let (ip, backtrace) = {
            let t = self.thread(tid).expect("stepping a live thread");
            (t.ip, self.thread_backtrace(t))
        };
        let sym = self
            .syms
            .lookup_addr(ip)
            .map(|s| format!(" in {}", s.name))
            .unwrap_or_default();
        self.klog.push(format!("Oops: {reason}{sym} [tid {tid}]"));
        self.oopses.push(Oops {
            tid,
            ip,
            reason,
            backtrace,
        });
        if let Some(t) = self.thread_mut(tid) {
            t.state = ThreadState::Oopsed;
        }
        Step::Stopped
    }

    /// Executes one instruction (or native call) for `tid`, fetching
    /// and decoding it from memory — the legacy slow path, kept for
    /// everything the block cache does not cover.
    fn step(&mut self, tid: u64) -> Step {
        let Some(ti) = self.threads.iter().position(|t| t.tid == tid) else {
            return Step::Stopped;
        };
        let (ip, regs) = {
            let t = &self.threads[ti];
            if !matches!(t.state, ThreadState::Runnable) {
                return Step::Stopped;
            }
            (t.ip, t.regs)
        };

        // Returning to the sentinel ends the thread.
        if ip == RETURN_SENTINEL {
            let code = regs[0];
            let t = &mut self.threads[ti];
            t.state = ThreadState::Exited(code);
            return Step::Stopped;
        }

        // Native-range dispatch.
        if ip >= NATIVE_BASE {
            let Some(f) = native_from_addr(ip) else {
                return self.oops(tid, format!("jump to bad native address {ip:#x}"));
            };
            let args = [regs[1], regs[2], regs[3], regs[4], regs[5], regs[6]];
            let outcome = self.dispatch_native(tid, f, args);
            // Simulate `ret`: pop the return address.
            let sp = regs[15];
            let ret = match self.mem.load_u64(sp) {
                Ok(v) => v,
                Err(e) => return self.oops(tid, format!("native return: {e}")),
            };
            let t = self.thread_mut(tid).expect("live thread");
            t.regs[15] = sp + 8;
            t.ip = ret;
            t.cycles += 1;
            match outcome {
                NativeOutcome::Return(v) => {
                    t.regs[0] = v;
                    return Step::Continue;
                }
                NativeOutcome::Sleep(until) => {
                    t.regs[0] = 0;
                    t.state = ThreadState::Sleeping(until);
                    return Step::Stopped;
                }
                NativeOutcome::Yield => {
                    t.regs[0] = 0;
                    return Step::Yielded;
                }
                NativeOutcome::Fault(msg) => return self.oops(tid, msg),
            }
        }

        // Ordinary instruction fetch + decode.
        let instr = {
            let bytes = match self.mem.fetch(ip, 10) {
                Ok(b) => b,
                Err(e) => return self.oops(tid, e.to_string()),
            };
            match decode(bytes) {
                Ok((i, _)) => i,
                Err(e) => return self.oops(tid, format!("invalid opcode: {e}")),
            }
        };
        self.exec_instr(ti, tid, instr)
    }

    /// Executes one already-decoded ordinary instruction for the
    /// runnable thread at index `ti` (tid `tid`). The architectural
    /// core shared by the cached dispatcher and the legacy path.
    ///
    /// Effects are applied *fault-first*: every instruction has at most
    /// one faulting operation (a load, a store, or a divide check), and
    /// it runs before any register or flag is written. An oops
    /// therefore leaves the thread exactly as the fetch found it — the
    /// same guarantee the historical interpreter bought by staging a
    /// full register-file copy, without copying 128 bytes twice per
    /// instruction.
    fn exec_instr(&mut self, ti: usize, tid: u64, instr: Instr) -> Step {
        let t = &mut self.threads[ti];
        let next = t.ip + instr.len() as u64;

        // Helper over the thread's registers (borrowed through `t`, so
        // `self.mem` stays independently borrowable).
        macro_rules! reg {
            ($r:expr) => {
                t.regs[$r.num() as usize]
            };
        }
        // Commits the instruction: ip (fall-through or explicit) and
        // the cycle count, then returns Continue.
        macro_rules! retire {
            () => {{
                t.ip = next;
                t.cycles += 1;
                return Step::Continue;
            }};
            ($ip:expr) => {{
                t.ip = $ip;
                t.cycles += 1;
                return Step::Continue;
            }};
        }

        let msg: String = match instr {
            Instr::Hlt => {
                t.state = ThreadState::Exited(t.regs[0]);
                return Step::Stopped;
            }
            Instr::Nop1 | Instr::NopN(_) => retire!(),
            Instr::MovRR(d, s) => {
                reg!(d) = reg!(s);
                retire!()
            }
            Instr::MovRI32(d, v) => {
                reg!(d) = v as i64 as u64;
                retire!()
            }
            Instr::MovRI64(d, v) => {
                reg!(d) = v;
                retire!()
            }
            Instr::Ld(d, b, disp) => {
                let addr = reg!(b).wrapping_add(disp as i64 as u64);
                match self.mem.load_u64(addr) {
                    Ok(v) => {
                        reg!(d) = v;
                        retire!()
                    }
                    Err(e) => e.to_string(),
                }
            }
            Instr::St(b, s, disp) => {
                let addr = reg!(b).wrapping_add(disp as i64 as u64);
                match self.mem.store(addr, &reg!(s).to_le_bytes()) {
                    Ok(()) => retire!(),
                    Err(e) => e.to_string(),
                }
            }
            Instr::Ld8(d, b, disp) => {
                let addr = reg!(b).wrapping_add(disp as i64 as u64);
                match self.mem.load(addr, 1) {
                    Ok(v) => {
                        let v = v[0] as u64;
                        reg!(d) = v;
                        retire!()
                    }
                    Err(e) => e.to_string(),
                }
            }
            Instr::St8(b, s, disp) => {
                let addr = reg!(b).wrapping_add(disp as i64 as u64);
                match self.mem.store(addr, &[reg!(s) as u8]) {
                    Ok(()) => retire!(),
                    Err(e) => e.to_string(),
                }
            }
            Instr::Lea(d, b, disp) => {
                reg!(d) = reg!(b).wrapping_add(disp as i64 as u64);
                retire!()
            }
            Instr::Bin(op, d, s) => {
                let a = reg!(d) as i64;
                let b = reg!(s) as i64;
                let v = match op {
                    BinOp::Add => Some(a.wrapping_add(b)),
                    BinOp::Sub => Some(a.wrapping_sub(b)),
                    BinOp::Mul => Some(a.wrapping_mul(b)),
                    BinOp::Div => {
                        if b == 0 {
                            None
                        } else {
                            Some(a.wrapping_div(b))
                        }
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            None
                        } else {
                            Some(a.wrapping_rem(b))
                        }
                    }
                    BinOp::And => Some(a & b),
                    BinOp::Or => Some(a | b),
                    BinOp::Xor => Some(a ^ b),
                    BinOp::Shl => Some(a.wrapping_shl(b as u32 & 63)),
                    BinOp::Shr => Some(((a as u64).wrapping_shr(b as u32 & 63)) as i64),
                };
                match v {
                    Some(v) => {
                        reg!(d) = v as u64;
                        retire!()
                    }
                    None => "divide error".to_string(),
                }
            }
            Instr::AddI(d, imm) => {
                reg!(d) = reg!(d).wrapping_add(imm as i64 as u64);
                retire!()
            }
            Instr::Neg(d) => {
                reg!(d) = (reg!(d) as i64).wrapping_neg() as u64;
                retire!()
            }
            Instr::Not(d) => {
                reg!(d) = !reg!(d);
                retire!()
            }
            Instr::Cmp(a, b) => {
                let (x, y) = (reg!(a) as i64, reg!(b) as i64);
                t.zf = x == y;
                t.lf = x < y;
                retire!()
            }
            Instr::CmpI(a, imm) => {
                let (x, y) = (reg!(a) as i64, imm as i64);
                t.zf = x == y;
                t.lf = x < y;
                retire!()
            }
            Instr::Jmp8(rel) => retire!(next.wrapping_add(rel as i64 as u64)),
            Instr::Jmp32(rel) => retire!(next.wrapping_add(rel as i64 as u64)),
            Instr::Jcc8(c, rel) => {
                if c.eval(t.zf, t.lf) {
                    retire!(next.wrapping_add(rel as i64 as u64))
                }
                retire!()
            }
            Instr::Jcc32(c, rel) => {
                if c.eval(t.zf, t.lf) {
                    retire!(next.wrapping_add(rel as i64 as u64))
                }
                retire!()
            }
            Instr::Call32(rel) => {
                let sp = t.regs[15].wrapping_sub(8);
                match self.mem.store(sp, &next.to_le_bytes()) {
                    Ok(()) => {
                        t.regs[15] = sp;
                        retire!(next.wrapping_add(rel as i64 as u64))
                    }
                    Err(e) => e.to_string(),
                }
            }
            Instr::CallR(r) => {
                let sp = t.regs[15].wrapping_sub(8);
                match self.mem.store(sp, &next.to_le_bytes()) {
                    Ok(()) => {
                        let target = reg!(r);
                        t.regs[15] = sp;
                        retire!(target)
                    }
                    Err(e) => e.to_string(),
                }
            }
            Instr::Ret => {
                let sp = t.regs[15];
                match self.mem.load_u64(sp) {
                    Ok(v) => {
                        t.regs[15] = sp + 8;
                        retire!(v)
                    }
                    Err(e) => format!("ret: {e}"),
                }
            }
            Instr::Push(r) => {
                let sp = t.regs[15].wrapping_sub(8);
                match self.mem.store(sp, &reg!(r).to_le_bytes()) {
                    Ok(()) => {
                        t.regs[15] = sp;
                        retire!()
                    }
                    Err(e) => e.to_string(),
                }
            }
            Instr::Pop(r) => {
                let sp = t.regs[15];
                match self.mem.load_u64(sp) {
                    Ok(v) => {
                        reg!(r) = v;
                        t.regs[15] = sp + 8;
                        retire!()
                    }
                    Err(e) => format!("pop: {e}"),
                }
            }
            Instr::Int(0x80) => {
                // System call: an in-kernel call to `do_syscall`.
                match self.syscall_entry {
                    Some(entry) => {
                        let sp = t.regs[15].wrapping_sub(8);
                        match self.mem.store(sp, &next.to_le_bytes()) {
                            Ok(()) => {
                                t.regs[15] = sp;
                                retire!(entry)
                            }
                            Err(e) => e.to_string(),
                        }
                    }
                    None => "int 0x80 with no do_syscall".to_string(),
                }
            }
            Instr::Int(v) => format!("unexpected interrupt {v:#04x}"),
        };
        self.oops(tid, msg)
    }
}
