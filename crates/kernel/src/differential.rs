//! Dual-kernel differential primitives for `ksplice-fuzz`.
//!
//! The fuzz oracle boots a *reference* kernel cold from post-patch
//! source and a *subject* kernel from pre-patch source plus the hot
//! update, then demands they behave identically. This module supplies
//! the two comparisons that definition needs:
//!
//! * **Lockstep call traces** ([`traced_call`] / [`diff_traces`]): both
//!   kernels run the same workload call sequence; each outcome is
//!   normalized (arena addresses masked — the two images legitimately
//!   lay memory out differently — and oops reasons stripped of hex) and
//!   compared entry by entry.
//! * **Image diff** ([`diff_images`]): after the workload, all
//!   same-named, same-sized, non-executable regions must agree
//!   word-for-word outside of masked pointer words. Executable regions
//!   are excluded by construction — the subject's patched text contains
//!   trampolines and the two images' code layouts differ legitimately —
//!   as are stacks (scratch), the heap (the apply machinery allocates
//!   from it on the subject side only), and regions present on only one
//!   side (update modules, workload modules loaded asymmetrically).

use crate::kernel::{CallError, Kernel};
use crate::mem::{KBASE, MEM_SIZE};

/// True for values that look like arena addresses: the two kernels'
/// images legitimately differ in layout, so raw pointers never compare.
pub fn is_arena_addr(v: u64) -> bool {
    (KBASE..KBASE + MEM_SIZE).contains(&v)
}

/// Replaces hex digit runs (addresses, checksums) in a diagnostic
/// string so oops reasons from differently-laid-out kernels compare.
pub fn normalize_diag(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut run = String::new();
    for c in s.chars().chain(std::iter::once('\u{0}')) {
        if c.is_ascii_hexdigit() {
            run.push(c);
            continue;
        }
        if !run.is_empty() {
            // Only numeric-looking runs are masked; hex-alphabet words
            // like "bad" or "face" stay readable.
            if run.chars().any(|r| r.is_ascii_digit()) {
                out.push('#');
            } else {
                out.push_str(&run);
            }
            run.clear();
        }
        if c != '\u{0}' {
            out.push(c);
        }
    }
    out
}

/// One normalized workload-call outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEntry {
    /// Clean return with a non-pointer value.
    Ret(u64),
    /// Clean return of an arena address (masked: layouts differ).
    Arena,
    /// The call oopsed; the reason with hex runs masked.
    Oops(String),
    /// The call exceeded its step budget.
    StepLimit,
    /// The entry symbol does not exist in this kernel.
    NoEntry,
    /// The call could not even spawn.
    SpawnFail,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEntry::Ret(v) => write!(f, "ret:{v}"),
            TraceEntry::Arena => write!(f, "ret:<arena>"),
            TraceEntry::Oops(r) => write!(f, "oops:{r}"),
            TraceEntry::StepLimit => write!(f, "step-limit"),
            TraceEntry::NoEntry => write!(f, "no-entry"),
            TraceEntry::SpawnFail => write!(f, "spawn-fail"),
        }
    }
}

/// Normalizes a raw call result into a comparable trace entry.
pub fn normalize_call(result: Result<u64, CallError>) -> TraceEntry {
    match result {
        Ok(v) if is_arena_addr(v) => TraceEntry::Arena,
        Ok(v) => TraceEntry::Ret(v),
        Err(CallError::Oops(o)) => TraceEntry::Oops(normalize_diag(&o.reason)),
        Err(CallError::StepLimit) => TraceEntry::StepLimit,
        Err(CallError::NoEntry(_)) => TraceEntry::NoEntry,
        Err(CallError::Spawn(_)) => TraceEntry::SpawnFail,
    }
}

/// Calls `entry(args)` under a step budget and normalizes the outcome.
pub fn traced_call(kernel: &mut Kernel, entry: &str, args: &[u64], limit: u64) -> TraceEntry {
    normalize_call(kernel.call_function_limited(entry, args, limit))
}

/// First trace mismatch, as `(index, reference entry, subject entry)`.
pub fn diff_traces(
    reference: &[TraceEntry],
    subject: &[TraceEntry],
) -> Option<(usize, String, String)> {
    let n = reference.len().max(subject.len());
    for i in 0..n {
        let a = reference.get(i);
        let b = subject.get(i);
        if a != b {
            return Some((
                i,
                a.map(|e| e.to_string()).unwrap_or_else(|| "<missing>".into()),
                b.map(|e| e.to_string()).unwrap_or_else(|| "<missing>".into()),
            ));
        }
    }
    None
}

/// Image-diff policy.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Region names skipped outright (default: `kheap` — the subject's
    /// apply machinery allocates from it, shifting later allocations).
    pub skip_regions: Vec<String>,
    /// Mask 8-byte words whose value on either side is an arena address.
    pub mask_arena_words: bool,
    /// Cap on reported deltas per region (the first mismatches matter;
    /// thousands of follow-on words do not).
    pub max_deltas: usize,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            skip_regions: vec!["kheap".to_string()],
            mask_arena_words: true,
            max_deltas: 8,
        }
    }
}

/// One differing word in a compared region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionDelta {
    /// Region name (same in both kernels).
    pub region: String,
    /// Byte offset of the differing word from the region start.
    pub offset: u64,
    /// The reference kernel's word.
    pub reference: u64,
    /// The subject kernel's word.
    pub subject: u64,
}

impl std::fmt::Display for RegionDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}+{:#x}: ref {:#018x} vs subj {:#018x}",
            self.region, self.offset, self.reference, self.subject
        )
    }
}

/// The outcome of an image comparison.
#[derive(Debug, Clone, Default)]
pub struct ImageDiffReport {
    /// Differing words (empty means the images agree).
    pub deltas: Vec<RegionDelta>,
    /// Number of regions actually compared.
    pub regions_compared: usize,
    /// Words skipped by arena-pointer masking.
    pub words_masked: u64,
}

impl ImageDiffReport {
    /// True when no divergence was found.
    pub fn clean(&self) -> bool {
        self.deltas.is_empty()
    }
}

/// Compares the writable memory images of two kernels under `opts`.
///
/// Regions are matched by name; only pairs that exist on both sides
/// with equal sizes and no-exec permissions are compared (stacks are
/// always skipped — they are scratch space).
pub fn diff_images(reference: &Kernel, subject: &Kernel, opts: &DiffOptions) -> ImageDiffReport {
    let mut report = ImageDiffReport::default();
    for r_ref in reference.mem.regions() {
        if r_ref.perms.exec
            || r_ref.name.starts_with("stack:")
            || opts.skip_regions.contains(&r_ref.name)
        {
            continue;
        }
        let Some(r_sub) = subject
            .mem
            .regions()
            .iter()
            .find(|r| r.name == r_ref.name && !r.perms.exec)
        else {
            continue;
        };
        if r_sub.size != r_ref.size {
            continue;
        }
        let (Ok(a), Ok(b)) = (
            reference.mem.peek(r_ref.start, r_ref.size),
            subject.mem.peek(r_sub.start, r_sub.size),
        ) else {
            continue;
        };
        report.regions_compared += 1;
        if a == b {
            continue;
        }
        let mut region_deltas = 0usize;
        for (i, (ca, cb)) in a.chunks(8).zip(b.chunks(8)).enumerate() {
            if ca == cb {
                continue;
            }
            let mut wa = [0u8; 8];
            let mut wb = [0u8; 8];
            wa[..ca.len()].copy_from_slice(ca);
            wb[..cb.len()].copy_from_slice(cb);
            let va = u64::from_le_bytes(wa);
            let vb = u64::from_le_bytes(wb);
            if opts.mask_arena_words && (is_arena_addr(va) || is_arena_addr(vb)) {
                report.words_masked += 1;
                continue;
            }
            if region_deltas < opts.max_deltas {
                report.deltas.push(RegionDelta {
                    region: r_ref.name.clone(),
                    offset: (i * 8) as u64,
                    reference: va,
                    subject: vb,
                });
            }
            region_deltas += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_normalization_masks_hex() {
        assert_eq!(
            normalize_diag("bad store at f0001234 (len 8)"),
            "bad store at # (len #)"
        );
        // Non-hex text is untouched.
        assert_eq!(normalize_diag("stack busy"), "stack busy");
    }

    #[test]
    fn arena_values_mask_in_traces() {
        assert_eq!(normalize_call(Ok(7)), TraceEntry::Ret(7));
        assert_eq!(normalize_call(Ok(KBASE + 64)), TraceEntry::Arena);
        assert_eq!(normalize_call(Err(CallError::StepLimit)), TraceEntry::StepLimit);
    }

    #[test]
    fn trace_diff_reports_first_mismatch() {
        let a = vec![TraceEntry::Ret(1), TraceEntry::Ret(2)];
        let b = vec![TraceEntry::Ret(1), TraceEntry::Ret(3)];
        let (i, ra, rb) = diff_traces(&a, &b).unwrap();
        assert_eq!((i, ra.as_str(), rb.as_str()), (1, "ret:2", "ret:3"));
        assert!(diff_traces(&a, &a).is_none());
        // Length mismatches diverge too.
        assert!(diff_traces(&a, &a[..1]).is_some());
    }
}
