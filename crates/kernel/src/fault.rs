//! Deterministic, seeded fault injection for the hot-update pipeline.
//!
//! The paper's safety story (§5) is about what happens when things go
//! *wrong*: a function that never becomes quiescent, run bytes that do
//! not match the pre build, a module load that fails mid-sequence. This
//! module lets a test (or the `ksplice demo --fault ...` dev flag) arm
//! perturbations at named pipeline sites and then watch the pipeline
//! either succeed cleanly or abort cleanly — never half-apply.
//!
//! Everything is deterministic: faults fire a caller-chosen number of
//! times, and any randomness (byte picks, step jitter) comes from a
//! seeded xorshift64* generator owned by the plan, so a failing chaos
//! schedule replays exactly from its seed.
//!
//! Sites and what they force:
//!
//! * [`Fault::StackBusy`] — the §5.2 stack safety check reports a
//!   synthetic busy thread for the next *n* stop_machine windows, as if
//!   a sleeping thread kept the target function on its stack. Forces
//!   `NotQuiescent` retries (and abandonment when *n* reaches the retry
//!   policy's attempt budget).
//! * [`Fault::ModuleLoad`] — the next *n* module loads fail with an
//!   out-of-memory link error, as if `vmalloc` failed mid-apply. Forces
//!   the load-helpers / load-primaries rollback paths.
//! * [`Fault::CorruptText`] — flips one byte of mapped kernel text
//!   (seed-chosen when no address is given), the "wrong kernel / wrong
//!   compiler / unexpected modification" scenario §4 exists to catch.
//!   Forces a run-pre `Mismatch` abort when the flipped byte lies in a
//!   matched function.
//! * [`Fault::StepJitter`] — perturbs every `Kernel::run` budget by a
//!   seeded amount up to ±`max_steps`, so retry delays never land on
//!   the exact schedule the caller asked for. Stresses the retry loop's
//!   timing assumptions without changing its outcome invariants.
//! * [`Fault::ProbeFail`] — the next *n* watch-window health probes
//!   report failure regardless of what the probed kernel actually
//!   returns, as if a canary regressed after apply. Forces the update
//!   lifecycle manager's automatic-rollback path.
//! * [`Fault::BarrierStall`] — the next *n* `try_stop_machine` barrier
//!   rendezvous fail: a seed-chosen vCPU never checks in, as if an
//!   interrupt-disabled spin kept it from the stop handler. Forces the
//!   barrier-timeout abort path (retryable, like `NotQuiescent`).

use std::fmt;

/// One armed perturbation (see the module docs for the forced outcomes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Report a synthetic busy thread from the next `windows`
    /// stop_machine stack checks.
    StackBusy {
        /// How many consecutive stop_machine windows fail the check.
        windows: u32,
    },
    /// Fail the next `count` module loads with an out-of-memory error.
    ModuleLoad {
        /// How many consecutive loads fail.
        count: u32,
    },
    /// Flip one byte of mapped kernel text. `addr` pins the byte;
    /// `None` lets the plan's seeded generator pick an executable
    /// region byte.
    CorruptText {
        /// Address of the byte to flip, or `None` for a seeded pick.
        addr: Option<u64>,
    },
    /// Perturb every `Kernel::run` step budget by up to `max_steps`
    /// in either direction (budgets never drop below 1).
    StepJitter {
        /// Maximum absolute perturbation per `run` call.
        max_steps: u64,
    },
    /// Fail the next `count` watch-window health probes.
    ProbeFail {
        /// How many consecutive probes report failure.
        count: u32,
    },
    /// Fail the next `count` `try_stop_machine` barrier rendezvous: a
    /// seed-chosen vCPU never checks in.
    BarrierStall {
        /// How many consecutive rendezvous time out.
        count: u32,
    },
}

impl Fault {
    /// Parses the CLI / chaos-schedule spelling of a fault:
    ///
    /// * `stack-busy:N` — fail the next N stack checks
    /// * `module-load:N` — fail the next N module loads
    /// * `corrupt-text` / `corrupt-text:0xADDR` — flip a text byte
    /// * `step-jitter:N` — jitter run budgets by up to ±N steps
    /// * `probe-fail:N` — fail the next N watch-window health probes
    /// * `barrier-stall:N` — time out the next N stop_machine barriers
    pub fn parse(spec: &str) -> Result<Fault, String> {
        let (site, arg) = match spec.split_once(':') {
            Some((s, a)) => (s, Some(a)),
            None => (spec, None),
        };
        let num = |what: &str| -> Result<u64, String> {
            let a = arg.ok_or_else(|| format!("fault `{site}` needs `{site}:<{what}>`"))?;
            let (digits, radix) = match a.strip_prefix("0x") {
                Some(hex) => (hex, 16),
                None => (a, 10),
            };
            u64::from_str_radix(digits, radix).map_err(|_| format!("bad {what} `{a}` in `{spec}`"))
        };
        match site {
            "stack-busy" => Ok(Fault::StackBusy {
                windows: num("windows")? as u32,
            }),
            "module-load" => Ok(Fault::ModuleLoad {
                count: num("count")? as u32,
            }),
            "corrupt-text" => Ok(Fault::CorruptText {
                addr: arg.map(|_| num("addr")).transpose()?,
            }),
            "step-jitter" => Ok(Fault::StepJitter {
                max_steps: num("steps")?,
            }),
            "probe-fail" => Ok(Fault::ProbeFail {
                count: num("count")? as u32,
            }),
            "barrier-stall" => Ok(Fault::BarrierStall {
                count: num("count")? as u32,
            }),
            other => Err(format!(
                "unknown fault site `{other}` (expected stack-busy, module-load, corrupt-text, step-jitter, probe-fail or barrier-stall)"
            )),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::StackBusy { windows } => write!(f, "stack-busy:{windows}"),
            Fault::ModuleLoad { count } => write!(f, "module-load:{count}"),
            Fault::CorruptText { addr: Some(a) } => write!(f, "corrupt-text:{a:#x}"),
            Fault::CorruptText { addr: None } => write!(f, "corrupt-text"),
            Fault::StepJitter { max_steps } => write!(f, "step-jitter:{max_steps}"),
            Fault::ProbeFail { count } => write!(f, "probe-fail:{count}"),
            Fault::BarrierStall { count } => write!(f, "barrier-stall:{count}"),
        }
    }
}

/// A record of one fault that actually fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// The site that fired, in [`Fault::parse`] spelling.
    pub site: &'static str,
    /// Site-specific detail: the busy window index, the failed module
    /// name, the flipped address, or the jittered budget.
    pub detail: String,
}

/// The armed fault state of one [`crate::Kernel`].
///
/// A fresh plan is inert: every `should_*` probe answers "no fault" at
/// zero cost on the hot path. Arming is additive; [`FaultPlan::disarm`]
/// clears everything armed but keeps the fired log.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: u64,
    stack_busy_windows: u32,
    module_load_failures: u32,
    step_jitter_max: u64,
    probe_failures: u32,
    barrier_stalls: u32,
    fired: Vec<FiredFault>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::new(0x9e37_79b9_7f4a_7c15)
    }
}

impl FaultPlan {
    /// An inert plan whose seeded generator starts from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            rng: seed.max(1),
            stack_busy_windows: 0,
            module_load_failures: 0,
            step_jitter_max: 0,
            probe_failures: 0,
            barrier_stalls: 0,
            fired: Vec::new(),
        }
    }

    /// Re-seeds the plan's generator (chaos schedules do this so every
    /// schedule replays from its own seed regardless of arming order).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = seed.max(1);
    }

    /// True when nothing is armed.
    pub fn is_inert(&self) -> bool {
        self.stack_busy_windows == 0
            && self.module_load_failures == 0
            && self.step_jitter_max == 0
            && self.probe_failures == 0
            && self.barrier_stalls == 0
    }

    /// Clears everything armed; the fired log survives.
    pub fn disarm(&mut self) {
        self.stack_busy_windows = 0;
        self.module_load_failures = 0;
        self.step_jitter_max = 0;
        self.probe_failures = 0;
        self.barrier_stalls = 0;
    }

    /// Every fault that fired so far, in firing order.
    pub fn fired(&self) -> &[FiredFault] {
        &self.fired
    }

    /// xorshift64* step — the same generator the rest of the repo's
    /// deterministic tests use.
    fn next(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub(crate) fn arm_stack_busy(&mut self, windows: u32) {
        self.stack_busy_windows += windows;
    }

    pub(crate) fn arm_module_load(&mut self, count: u32) {
        self.module_load_failures += count;
    }

    pub(crate) fn arm_step_jitter(&mut self, max_steps: u64) {
        self.step_jitter_max = self.step_jitter_max.max(max_steps);
    }

    pub(crate) fn arm_probe_fail(&mut self, count: u32) {
        self.probe_failures += count;
    }

    pub(crate) fn arm_barrier_stall(&mut self, count: u32) {
        self.barrier_stalls += count;
    }

    /// How many stack-busy windows remain armed. The kernel's physical
    /// fault realization (`park_fault_vcpu`) uses this to decide when
    /// to release its parked vCPU without burning a window.
    pub fn stack_busy_pending(&self) -> u32 {
        self.stack_busy_windows
    }

    /// Consulted by `Kernel::try_stop_machine` after the rendezvous.
    /// Returns the seed-chosen vCPU (`0..ncpus`) that failed to check
    /// in, burning one armed stall; `None` when nothing is armed.
    pub fn barrier_stall(&mut self, ncpus: u32) -> Option<u32> {
        if self.barrier_stalls == 0 {
            return None;
        }
        self.barrier_stalls -= 1;
        let cpu = (self.next() % ncpus.max(1) as u64) as u32;
        self.fired.push(FiredFault {
            site: "barrier-stall",
            detail: format!("cpu{cpu}"),
        });
        Some(cpu)
    }

    /// Consulted by the update lifecycle manager before each health
    /// probe. Returns true (and burns one armed failure) when the probe
    /// named `probe` must report failure.
    pub fn probe_fails(&mut self, probe: &str) -> bool {
        if self.probe_failures == 0 {
            return false;
        }
        self.probe_failures -= 1;
        self.fired.push(FiredFault {
            site: "probe-fail",
            detail: probe.to_string(),
        });
        true
    }

    /// Consulted by the §5.2 stack safety check. Returns the synthetic
    /// busy report `(tid 0, fn_name)` and burns one armed window, or
    /// `None` when no stack-busy fault is armed.
    pub fn stack_check_busy(&mut self, ranges: &[(u64, u64, String)]) -> Option<(u64, String)> {
        if self.stack_busy_windows == 0 {
            return None;
        }
        self.stack_busy_windows -= 1;
        let name = ranges
            .first()
            .map(|(_, _, n)| n.clone())
            .unwrap_or_else(|| "<fault-injected>".to_string());
        self.fired.push(FiredFault {
            site: "stack-busy",
            detail: name.clone(),
        });
        Some((0, name))
    }

    /// Consulted by the module loader. Returns true (and burns one
    /// armed failure) when the load of `module` must fail.
    pub fn module_load_fails(&mut self, module: &str) -> bool {
        if self.module_load_failures == 0 {
            return false;
        }
        self.module_load_failures -= 1;
        self.fired.push(FiredFault {
            site: "module-load",
            detail: module.to_string(),
        });
        true
    }

    /// Consulted by `Kernel::run`. Returns the (possibly perturbed)
    /// step budget; inert plans return `budget` unchanged.
    pub fn jitter_budget(&mut self, budget: u64) -> u64 {
        if self.step_jitter_max == 0 || budget == 0 {
            return budget;
        }
        let span = 2 * self.step_jitter_max + 1;
        let offset = (self.next() % span) as i64 - self.step_jitter_max as i64;
        let jittered = (budget as i64 + offset).max(1) as u64;
        self.fired.push(FiredFault {
            site: "step-jitter",
            detail: format!("{budget}->{jittered}"),
        });
        jittered
    }

    /// Picks the text byte a seeded [`Fault::CorruptText`] flips:
    /// a seeded choice among the bytes of `exec_ranges`.
    pub(crate) fn pick_text_byte(&mut self, exec_ranges: &[(u64, u64)]) -> Option<u64> {
        let total: u64 = exec_ranges.iter().map(|(_, len)| len).sum();
        if total == 0 {
            return None;
        }
        let mut at = self.next() % total;
        for (start, len) in exec_ranges {
            if at < *len {
                return Some(start + at);
            }
            at -= len;
        }
        None
    }

    pub(crate) fn record(&mut self, site: &'static str, detail: String) {
        self.fired.push(FiredFault { site, detail });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for spec in [
            "stack-busy:3",
            "module-load:1",
            "corrupt-text",
            "step-jitter:500",
            "probe-fail:2",
            "barrier-stall:1",
        ] {
            let f = Fault::parse(spec).unwrap();
            assert_eq!(f.to_string(), spec);
        }
        assert_eq!(
            Fault::parse("corrupt-text:0xf0001000").unwrap(),
            Fault::CorruptText {
                addr: Some(0xf000_1000)
            }
        );
        assert!(Fault::parse("stack-busy").is_err());
        assert!(Fault::parse("stack-busy:x").is_err());
        assert!(Fault::parse("quantum-bitflip:1").is_err());
    }

    #[test]
    fn stack_busy_burns_armed_windows() {
        let mut plan = FaultPlan::new(7);
        plan.arm_stack_busy(2);
        let ranges = vec![(0x1000u64, 16u64, "target_fn".to_string())];
        assert_eq!(
            plan.stack_check_busy(&ranges),
            Some((0, "target_fn".to_string()))
        );
        assert!(plan.stack_check_busy(&ranges).is_some());
        assert_eq!(plan.stack_check_busy(&ranges), None);
        assert_eq!(plan.fired().len(), 2);
        assert!(plan.is_inert());
    }

    #[test]
    fn module_load_failures_are_counted() {
        let mut plan = FaultPlan::new(7);
        plan.arm_module_load(1);
        assert!(plan.module_load_fails("m1"));
        assert!(!plan.module_load_fails("m2"));
        assert_eq!(plan.fired()[0].detail, "m1");
    }

    #[test]
    fn probe_failures_burn_one_per_probe() {
        let mut plan = FaultPlan::new(7);
        plan.arm_probe_fail(2);
        assert!(!plan.is_inert());
        assert!(plan.probe_fails("canary:sys_getuid"));
        assert!(plan.probe_fails("exploit"));
        assert!(!plan.probe_fails("canary:sys_getuid"));
        assert_eq!(plan.fired().len(), 2);
        assert_eq!(plan.fired()[0].site, "probe-fail");
        assert_eq!(plan.fired()[0].detail, "canary:sys_getuid");
        assert!(plan.is_inert());
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut a = FaultPlan::new(42);
        a.arm_step_jitter(100);
        let mut b = FaultPlan::new(42);
        b.arm_step_jitter(100);
        for _ in 0..50 {
            let x = a.jitter_budget(1_000);
            assert_eq!(x, b.jitter_budget(1_000));
            assert!((900..=1_100).contains(&x));
        }
        // A different seed produces a different schedule.
        let mut c = FaultPlan::new(43);
        c.arm_step_jitter(100);
        let a_seq: Vec<u64> = (0..8).map(|_| a.jitter_budget(1_000)).collect();
        let c_seq: Vec<u64> = (0..8).map(|_| c.jitter_budget(1_000)).collect();
        assert_ne!(a_seq, c_seq);
    }

    #[test]
    fn barrier_stalls_burn_and_pick_a_cpu() {
        let mut plan = FaultPlan::new(7);
        plan.arm_barrier_stall(2);
        assert!(!plan.is_inert());
        let a = plan.barrier_stall(4).unwrap();
        let b = plan.barrier_stall(4).unwrap();
        assert!(a < 4 && b < 4);
        assert_eq!(plan.barrier_stall(4), None);
        assert!(plan.is_inert());
        assert_eq!(plan.fired().len(), 2);
        assert_eq!(plan.fired()[0].site, "barrier-stall");
        // Deterministic: same seed, same picks.
        let mut again = FaultPlan::new(7);
        again.arm_barrier_stall(2);
        assert_eq!(again.barrier_stall(4), Some(a));
        assert_eq!(again.barrier_stall(4), Some(b));
    }

    #[test]
    fn seeded_text_pick_lands_inside_a_range() {
        let mut plan = FaultPlan::new(9);
        let ranges = vec![(0x100u64, 8u64), (0x200u64, 4u64)];
        for _ in 0..32 {
            let addr = plan.pick_text_byte(&ranges).unwrap();
            assert!(
                (0x100..0x108).contains(&addr) || (0x200..0x204).contains(&addr),
                "{addr:#x}"
            );
        }
        assert!(plan.pick_text_byte(&[]).is_none());
    }
}
