//! The SMP substrate: virtual CPUs, per-CPU run queues, seeded
//! interleaved scheduling.
//!
//! The paper's hardest problem (§5) is capturing a *multiprocessor*
//! machine quiescent: `stop_machine` must rendezvous every CPU before a
//! trampoline byte may be written, and the §5.2 stack check races
//! against threads genuinely executing on other CPUs. A uniprocessor
//! simulation never exercises that race — every abort it produces is
//! synthetic.
//!
//! This module models N virtual CPUs the way `stop_machine` sees them,
//! while keeping the whole kernel deterministic:
//!
//! * Each vCPU owns a FIFO **run queue** of thread ids. Threads are
//!   homed on a vCPU at spawn time (round-robin by tid) and never
//!   migrate.
//! * The scheduler is an **interleaved deterministic simulation**: one
//!   host thread plays all vCPUs, visiting them in a seeded
//!   round-robin order each scheduling round and running the chosen
//!   thread for one quantum. The interleaving is a pure function of
//!   ([`SmpConfig::sched_seed`], the workload), so a failing schedule
//!   replays exactly.
//! * [`crate::Kernel::try_stop_machine`] performs a **barrier
//!   rendezvous** at N ≥ 2: every vCPU's current thread runs up to one
//!   more quantum (the model of "finish what you're doing and park in
//!   the stop handler") before the machine is considered captured.
//!   Those instructions are the real, measurable capture cost — and
//!   they genuinely move threads in and out of patch-target functions
//!   between retry attempts.
//!
//! `cpus = 1` (the default) is **bit-exact** with the historical
//! uniprocessor scheduler: same step counts, same fault-PRNG draws,
//! same trace timestamps. Everything multi-CPU is opt-in via
//! [`SmpConfig`].
//!
//! See `docs/CONCURRENCY.md` for the full model, the barrier protocol
//! state diagram, and the determinism guarantees.

use std::collections::VecDeque;

use crate::kernel::QUANTUM;

/// Configuration of the simulated SMP substrate.
///
/// The default — one vCPU, the historical [`QUANTUM`], a fixed seed —
/// reproduces the uniprocessor kernel exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmpConfig {
    /// Number of virtual CPUs (clamped to ≥ 1). 1 selects the
    /// historical sequential scheduler unchanged.
    pub cpus: u32,
    /// Scheduler quantum: instructions per slice before preemption.
    pub quantum: u64,
    /// Seed for the round-rotation draw that picks which vCPU leads
    /// each scheduling round (only consulted at `cpus > 1`).
    pub sched_seed: u64,
}

impl Default for SmpConfig {
    fn default() -> SmpConfig {
        SmpConfig {
            cpus: 1,
            quantum: QUANTUM,
            sched_seed: DEFAULT_SCHED_SEED,
        }
    }
}

/// The default scheduler seed: an arbitrary fixed constant, so default
/// SMP runs replay without the caller picking a seed.
pub const DEFAULT_SCHED_SEED: u64 = 0x5eed_c0de_ca11_ab1e;

impl SmpConfig {
    /// A config with `n` vCPUs and default quantum/seed.
    pub fn with_cpus(n: u32) -> SmpConfig {
        SmpConfig {
            cpus: n.max(1),
            ..SmpConfig::default()
        }
    }

    /// The same topology with a different scheduling seed.
    pub fn with_seed(mut self, seed: u64) -> SmpConfig {
        self.sched_seed = seed;
        self
    }

    /// The same topology with a different quantum (clamped to ≥ 1).
    pub fn with_quantum(mut self, quantum: u64) -> SmpConfig {
        self.quantum = quantum.max(1);
        self
    }
}

/// One virtual CPU.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    /// CPU id, `0..cpus`.
    pub id: u32,
    /// Run queue of tids homed here, in rotation order: the front is
    /// next to be considered, a thread that just ran sits at the back.
    pub runq: VecDeque<u64>,
    /// Instructions this vCPU has executed.
    pub cycles: u64,
    /// The tid most recently scheduled on this vCPU, if any.
    pub current: Option<u64>,
}

impl Cpu {
    /// A fresh idle CPU.
    pub fn new(id: u32) -> Cpu {
        Cpu {
            id,
            ..Cpu::default()
        }
    }
}

/// Why a [`crate::Kernel::try_stop_machine`] capture failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopMachineError {
    /// vCPU `cpu` never checked in at the rendezvous barrier within the
    /// timeout. In the simulation an honest rendezvous always succeeds
    /// within one quantum per CPU, so this only fires through an armed
    /// `barrier-stall` fault (see [`crate::Fault::BarrierStall`]).
    BarrierTimeout {
        /// The vCPU that failed to check in.
        cpu: u32,
    },
}

impl std::fmt::Display for StopMachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopMachineError::BarrierTimeout { cpu } => {
                write!(f, "stop_machine barrier timeout: cpu {cpu} never checked in")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_uniprocessor() {
        let cfg = SmpConfig::default();
        assert_eq!(cfg.cpus, 1);
        assert_eq!(cfg.quantum, QUANTUM);
    }

    #[test]
    fn cpus_clamp_to_one() {
        assert_eq!(SmpConfig::with_cpus(0).cpus, 1);
        assert_eq!(SmpConfig::with_cpus(4).cpus, 4);
        assert_eq!(SmpConfig::default().with_quantum(0).quantum, 1);
    }
}
