//! The PC-sampling profiler wired into the VM step loop.
//!
//! Every `interval` executed instructions the kernel records the running
//! thread's program counter plus its frame-pointer call stack. Samples
//! are symbolized through kallsyms and the region table into
//! `(unit, function, offset)`, and every frame is classified by
//! **residency** — original kernel text, a written trampoline, the
//! Ksplice patch arena (primary/helper module text), or native helpers —
//! so a pre/post-apply profile shows the hot path physically migrating
//! out of the replaced function and into the patched code.
//!
//! The same samples feed the quiescence-risk report: a function's
//! on-stack frequency under a workload predicts how often a
//! `stop_machine` safety check (§5.2) will find it busy and abort.
//!
//! Sampling is deterministic: the VM is, so the same seed + workload +
//! interval produce byte-identical sample streams.

use crate::kernel::Kernel;
use crate::native::NATIVE_BASE;

/// One stack sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Step-clock reading when the sample fired.
    pub steps: u64,
    /// The thread that was running.
    pub tid: u64,
    /// The vCPU the thread is homed on (0 on a uniprocessor kernel).
    pub cpu: u32,
    /// Leaf-first stack: `stack[0]` is the instruction pointer, the rest
    /// are frame-pointer-chain return addresses.
    pub stack: Vec<u64>,
}

/// Where a sampled address physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Residency {
    /// Boot-image kernel text (or an ordinary module).
    Original,
    /// Inside the jump instruction Ksplice wrote over a patched
    /// function's entry.
    Trampoline,
    /// Ksplice primary/helper module text — the replacement code.
    PatchArena,
    /// The native-helper dispatch range.
    Native,
    /// Unmapped or unclassifiable.
    Unknown,
}

impl Residency {
    /// Short human label (`orig`, `tramp`, `arena`, …).
    pub fn label(self) -> &'static str {
        match self {
            Residency::Original => "orig",
            Residency::Trampoline => "tramp",
            Residency::PatchArena => "arena",
            Residency::Native => "native",
            Residency::Unknown => "?",
        }
    }
}

/// A symbolized stack frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSym {
    /// The raw address.
    pub addr: u64,
    /// Defining compilation unit (or module name), `?` when unknown.
    pub unit: String,
    /// Function name, `?` when no symbol covers the address.
    pub function: String,
    /// Byte offset from the function start.
    pub offset: u64,
    /// Physical residency of the address.
    pub residency: Residency,
}

/// One row of the hot-function table: samples aggregated by
/// `(function, unit, residency)`, so a function that migrated into the
/// patch arena shows up as two rows whose counts trade places across a
/// pre/post profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotFunc {
    /// Function name.
    pub function: String,
    /// Defining unit or module.
    pub unit: String,
    /// Residency of the sampled addresses.
    pub residency: Residency,
    /// Samples whose instruction pointer was inside the function.
    pub self_samples: u64,
    /// Samples with the function anywhere on the stack (≥ self).
    pub on_stack_samples: u64,
}

/// One row of the quiescence-risk report: how often a candidate
/// function was on some stack when a sample fired — the §5.2 abort
/// probability, measured instead of guessed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuiesceRisk {
    /// Candidate function name.
    pub function: String,
    /// Samples that found it on the stack.
    pub on_stack: u64,
    /// Total samples taken.
    pub samples: u64,
}

impl QuiesceRisk {
    /// On-stack frequency in [0, 1].
    pub fn frequency(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.on_stack as f64 / self.samples as f64
        }
    }
}

/// The sampler state hung off the kernel. Inert (and costing one branch
/// per step) unless [`Kernel::start_sampling`] armed it.
#[derive(Debug, Clone)]
pub struct Profiler {
    interval: u64,
    countdown: u64,
    max_samples: usize,
    samples: Vec<Sample>,
    dropped: u64,
}

impl Profiler {
    /// A sampler firing every `interval` steps, keeping at most
    /// `max_samples` samples (further fires count as dropped).
    pub fn new(interval: u64, max_samples: usize) -> Profiler {
        let interval = interval.max(1);
        Profiler {
            interval,
            countdown: interval,
            max_samples: max_samples.max(1),
            samples: Vec::new(),
            dropped: 0,
        }
    }

    /// Advances one step; true when a sample should fire.
    pub(crate) fn tick(&mut self) -> bool {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.interval;
            true
        } else {
            false
        }
    }

    pub(crate) fn push(&mut self, sample: Sample) {
        if self.samples.len() < self.max_samples {
            self.samples.push(sample);
        } else {
            self.dropped += 1;
        }
    }

    /// The configured sampling interval in steps.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Fires lost to the `max_samples` cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Kernel {
    /// Arms the PC sampler: every `interval` executed instructions the
    /// running thread's stack is recorded, up to `max_samples` samples.
    /// Replaces any previous sampler (and discards its samples).
    pub fn start_sampling(&mut self, interval: u64, max_samples: usize) {
        self.profiler = Some(Profiler::new(interval, max_samples));
    }

    /// Disarms the sampler and returns the collected samples.
    pub fn stop_sampling(&mut self) -> Vec<Sample> {
        self.profiler
            .take()
            .map(|p| p.samples)
            .unwrap_or_default()
    }

    /// True while the sampler is armed.
    pub fn is_sampling(&self) -> bool {
        self.profiler.is_some()
    }

    /// Records one sample for `tid` (called from the step loop).
    pub(crate) fn record_sample(&mut self, tid: u64, steps: u64) {
        let Some(t) = self.thread(tid) else { return };
        let cpu = t.cpu;
        let stack = self.thread_backtrace(t);
        if let Some(p) = self.profiler.as_mut() {
            p.push(Sample {
                steps,
                tid,
                cpu,
                stack,
            });
        }
    }

    /// Classifies where an address physically lives. `trampolines` is
    /// the caller's list of written trampoline ranges `(addr, len)` —
    /// the kernel itself does not know which entry points Ksplice
    /// overwrote.
    pub fn residency_of(&self, addr: u64, trampolines: &[(u64, u64)]) -> Residency {
        if addr >= NATIVE_BASE {
            return Residency::Native;
        }
        if trampolines
            .iter()
            .any(|&(start, len)| addr >= start && addr < start + len)
        {
            return Residency::Trampoline;
        }
        match self.mem.region_at(addr, 1) {
            Some(r) => {
                let module = r.name.split(':').next().unwrap_or("");
                if module.starts_with("ksplice")
                    && (module.contains("_primary_") || module.contains("_helper_"))
                {
                    Residency::PatchArena
                } else {
                    Residency::Original
                }
            }
            None => Residency::Unknown,
        }
    }

    /// Symbolizes one address into `(unit, function, offset)` plus its
    /// residency.
    pub fn symbolize(&self, addr: u64, trampolines: &[(u64, u64)]) -> FrameSym {
        let residency = self.residency_of(addr, trampolines);
        match self.syms.lookup_addr(addr) {
            Some(s) if s.is_func => FrameSym {
                addr,
                unit: s.unit.clone(),
                function: s.name.clone(),
                offset: addr - s.addr,
                residency,
            },
            _ => FrameSym {
                addr,
                unit: "?".to_string(),
                function: if residency == Residency::Native {
                    "<native>".to_string()
                } else {
                    "?".to_string()
                },
                offset: 0,
                residency,
            },
        }
    }
}

/// Aggregates samples into the hot-function table, sorted by self
/// samples (then on-stack samples, then name) descending.
pub fn hot_functions(
    kernel: &Kernel,
    samples: &[Sample],
    trampolines: &[(u64, u64)],
) -> Vec<HotFunc> {
    use std::collections::BTreeMap;
    // Key: (function, unit, residency) → (self, on_stack).
    let mut table: BTreeMap<(String, String, Residency), (u64, u64)> = BTreeMap::new();
    for sample in samples {
        let mut seen_in_sample: Vec<(String, String, Residency)> = Vec::new();
        for (depth, &addr) in sample.stack.iter().enumerate() {
            let f = kernel.symbolize(addr, trampolines);
            let key = (f.function, f.unit, f.residency);
            let entry = table.entry(key.clone()).or_insert((0, 0));
            if depth == 0 {
                entry.0 += 1;
            }
            if !seen_in_sample.contains(&key) {
                entry.1 += 1;
                seen_in_sample.push(key);
            }
        }
    }
    let mut out: Vec<HotFunc> = table
        .into_iter()
        .map(|((function, unit, residency), (s, o))| HotFunc {
            function,
            unit,
            residency,
            self_samples: s,
            on_stack_samples: o,
        })
        .collect();
    out.sort_by(|a, b| {
        b.self_samples
            .cmp(&a.self_samples)
            .then(b.on_stack_samples.cmp(&a.on_stack_samples))
            .then(a.function.cmp(&b.function))
            .then(a.residency.cmp(&b.residency))
    });
    out
}

/// Per-vCPU sample attribution: `counts[cpu]` is how many samples fired
/// while a thread homed on that vCPU was running. The vector spans
/// `0..=max cpu seen` (a uniprocessor profile yields one entry), so an
/// idle vCPU in the middle of the range still gets its zero row.
pub fn samples_per_cpu(samples: &[Sample]) -> Vec<u64> {
    let Some(max_cpu) = samples.iter().map(|s| s.cpu).max() else {
        return Vec::new();
    };
    let mut counts = vec![0u64; max_cpu as usize + 1];
    for s in samples {
        counts[s.cpu as usize] += 1;
    }
    counts
}

/// Renders samples as collapsed stacks (`root;...;leaf count` lines,
/// one per distinct stack) — the flamegraph input format. Frames are
/// annotated `name` or `name@arena`/`name@tramp` when not in original
/// text, so a flamegraph visually separates migrated code.
pub fn collapsed_stacks(
    kernel: &Kernel,
    samples: &[Sample],
    trampolines: &[(u64, u64)],
) -> String {
    use std::collections::BTreeMap;
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for sample in samples {
        let frames: Vec<String> = sample
            .stack
            .iter()
            .rev() // collapsed format is root-first
            .map(|&addr| {
                let f = kernel.symbolize(addr, trampolines);
                match f.residency {
                    Residency::Original | Residency::Native => f.function,
                    other => format!("{}@{}", f.function, other.label()),
                }
            })
            .collect();
        *stacks.entry(frames.join(";")).or_insert(0) += 1;
    }
    let mut out = String::new();
    for (stack, count) in stacks {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

/// The quiescence-risk report over candidate address ranges
/// `(function, start, len)` — typically the functions an update intends
/// to replace. A candidate is "on stack" for a sample when any frame
/// (instruction pointer or return address) lands inside its range,
/// which is exactly the §5.2 stop_machine abort condition. Sorted by
/// on-stack count descending (ties by name).
pub fn quiescence_risk(samples: &[Sample], targets: &[(String, u64, u64)]) -> Vec<QuiesceRisk> {
    let total = samples.len() as u64;
    let mut out: Vec<QuiesceRisk> = targets
        .iter()
        .map(|(name, start, len)| {
            let on_stack = samples
                .iter()
                .filter(|s| {
                    s.stack
                        .iter()
                        .any(|&a| a >= *start && a < *start + *len)
                })
                .count() as u64;
            QuiesceRisk {
                function: name.clone(),
                on_stack,
                samples: total,
            }
        })
        .collect();
    out.sort_by(|a, b| b.on_stack.cmp(&a.on_stack).then(a.function.cmp(&b.function)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksplice_lang::{Options, SourceTree};

    fn spin_tree() -> SourceTree {
        let mut tree = SourceTree::new();
        tree.insert(
            "spin.kc",
            r#"
            int leaf(int n) {
                int acc = 0;
                int i = 0;
                while (i < n) { acc = acc + i; i = i + 1; }
                return acc;
            }
            int middle(int n) { return leaf(n) + 1; }
            int spin_main(int rounds) {
                int i = 0;
                int acc = 0;
                while (i < rounds) { acc = acc + middle(40); i = i + 1; }
                return acc;
            }
        "#,
        );
        tree
    }

    #[test]
    fn sampling_is_deterministic_and_symbolizes() {
        let run = || {
            let mut k = Kernel::boot(&spin_tree(), &Options::distro()).unwrap();
            k.start_sampling(97, 10_000);
            k.call_function("spin_main", &[50]).unwrap();
            k.stop_sampling()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same workload, same samples");
        assert!(a.len() > 20, "got {} samples", a.len());
        let k = Kernel::boot(&spin_tree(), &Options::distro()).unwrap();
        let hot = hot_functions(&k, &a, &[]);
        assert!(!hot.is_empty());
        // The spin loop dominates: leaf or spin_main leads the table,
        // and everything here is original text.
        assert!(hot[0].self_samples >= hot.last().unwrap().self_samples);
        assert!(hot.iter().any(|h| h.function == "leaf"));
        let main_row = hot.iter().find(|h| h.function == "spin_main").unwrap();
        assert_eq!(main_row.residency, Residency::Original);
        // spin_main is on the stack for essentially every sample.
        assert!(main_row.on_stack_samples * 10 >= a.len() as u64 * 9);
    }

    #[test]
    fn sampler_respects_cap_and_interval() {
        let mut k = Kernel::boot(&spin_tree(), &Options::distro()).unwrap();
        k.start_sampling(10, 5);
        k.call_function("spin_main", &[50]).unwrap();
        let p = k.profiler.as_ref().unwrap();
        assert_eq!(p.samples().len(), 5);
        assert!(p.dropped() > 0);
        assert_eq!(p.interval(), 10);
        let samples = k.stop_sampling();
        assert!(!k.is_sampling());
        assert_eq!(samples.len(), 5);
        // Sample timestamps advance with the step clock.
        assert!(samples.windows(2).all(|w| w[0].steps < w[1].steps));
    }

    #[test]
    fn quiescence_risk_ranks_by_on_stack_frequency() {
        let mut k = Kernel::boot(&spin_tree(), &Options::distro()).unwrap();
        k.start_sampling(31, 100_000);
        k.call_function("spin_main", &[80]).unwrap();
        let samples = k.stop_sampling();
        let range = |name: &str| {
            let s = k.syms.lookup_global(name).unwrap();
            (name.to_string(), s.addr, s.size.max(1))
        };
        let report = quiescence_risk(&samples, &[range("leaf"), range("spin_main")]);
        assert_eq!(report.len(), 2);
        // spin_main encloses every leaf call, so it is on-stack at least
        // as often as leaf, and both were observed.
        assert_eq!(report[0].function, "spin_main");
        assert!(report[0].on_stack >= report[1].on_stack);
        assert!(report[1].on_stack > 0);
        assert!(report[0].frequency() > 0.9);
    }

    #[test]
    fn residency_classifies_native_and_unknown() {
        let k = Kernel::boot(&spin_tree(), &Options::distro()).unwrap();
        assert_eq!(k.residency_of(NATIVE_BASE + 8, &[]), Residency::Native);
        assert_eq!(k.residency_of(0x10, &[]), Residency::Unknown);
        let leaf = k.syms.lookup_global("leaf").unwrap().addr;
        assert_eq!(k.residency_of(leaf, &[]), Residency::Original);
        assert_eq!(k.residency_of(leaf, &[(leaf, 5)]), Residency::Trampoline);
        let f = k.symbolize(leaf + 2, &[]);
        assert_eq!((f.function.as_str(), f.offset), ("leaf", 2));
    }

    #[test]
    fn collapsed_stacks_are_root_first() {
        let mut k = Kernel::boot(&spin_tree(), &Options::distro()).unwrap();
        k.start_sampling(53, 10_000);
        k.call_function("spin_main", &[30]).unwrap();
        let samples = k.stop_sampling();
        let folded = collapsed_stacks(&k, &samples, &[]);
        // `middle` is inlined in distro mode, so the dominant stack is
        // spin_main calling (inlined middle →) leaf, root-first.
        assert!(
            folded.lines().any(|l| l.starts_with("spin_main;leaf ")),
            "{folded}"
        );
        // Every line ends in a count.
        for line in folded.lines() {
            let (_, count) = line.rsplit_once(' ').unwrap();
            count.parse::<u64>().unwrap();
        }
    }
}
