//! The simulated physical memory of the kernel.
//!
//! A single flat arena starting at [`KBASE`], carved into named regions
//! with page-less but honest W^X accounting: ordinary stores through the
//! VM fault on read-only or executable regions, and instruction fetch
//! faults outside executable ones. Ksplice's trampoline writes go through
//! the privileged [`Memory::poke`] interface, the analogue of the kernel
//! briefly lifting write protection on its own text.

use std::fmt;

/// Base virtual address of kernel memory. Chosen to echo the paper's
/// worked example addresses (`0xf0000000`, §4.3 Figure 2).
pub const KBASE: u64 = 0xf000_0000;

/// Total size of the simulated arena (64 MiB).
pub const MEM_SIZE: u64 = 64 * 1024 * 1024;

/// Memory access permissions of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perms {
    /// Loads allowed.
    pub read: bool,
    /// Stores allowed.
    pub write: bool,
    /// Instruction fetch allowed.
    pub exec: bool,
}

impl Perms {
    /// Read + execute (kernel text).
    pub const TEXT: Perms = Perms {
        read: true,
        write: false,
        exec: true,
    };
    /// Read + write (data, stacks, heap).
    pub const DATA: Perms = Perms {
        read: true,
        write: true,
        exec: false,
    };
    /// Read only (rodata).
    pub const RO: Perms = Perms {
        read: true,
        write: false,
        exec: false,
    };
}

/// A named allocated region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region name, `module:section` for loaded code.
    pub name: String,
    /// First address.
    pub start: u64,
    /// Length in bytes.
    pub size: u64,
    /// Access permissions.
    pub perms: Perms,
}

impl Region {
    /// True if `addr..addr+len` lies wholly inside the region.
    pub fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.start
            && len <= self.size
            && addr
                .checked_add(len)
                .is_some_and(|end| end <= self.start + self.size)
    }
}

/// A memory fault (the raw material of a kernel oops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemFault {
    /// Access to an address outside any region.
    Unmapped {
        /// Faulting address.
        addr: u64,
        /// Access length.
        len: u64,
    },
    /// Write to a region without write permission.
    ReadOnly {
        /// Faulting address.
        addr: u64,
    },
    /// Instruction fetch from a non-executable region.
    NotExecutable {
        /// Faulting address.
        addr: u64,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Unmapped { addr, len } => {
                write!(
                    f,
                    "unable to handle kernel paging request at {addr:#x} (len {len})"
                )
            }
            MemFault::ReadOnly { addr } => write!(f, "write to read-only memory at {addr:#x}"),
            MemFault::NotExecutable { addr } => {
                write!(
                    f,
                    "instruction fetch from non-executable memory at {addr:#x}"
                )
            }
        }
    }
}

impl std::error::Error for MemFault {}

/// The kernel's memory arena.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    regions: Vec<Region>,
    /// Bump cursor for region allocation.
    cursor: u64,
    /// Global text-write clock: advances whenever the bytes (or the
    /// mapping) of any executable region change. The VM compares this
    /// against its own icache clock to learn that a flush sweep is due.
    text_gen: u64,
    /// Per-executable-region write generations, keyed by region start
    /// (the bump cursor never reuses addresses, so starts are unique
    /// for the arena's lifetime). An entry disappears when its region
    /// is unmapped, which evicts every cached block decoded from it.
    gens: std::collections::HashMap<u64, u64>,
    /// Index of the region the last lookup landed in. Accesses cluster
    /// heavily (a thread's loads and stores hit its own stack), so this
    /// single-entry cache short-circuits the binary search most of the
    /// time. Correctness does not depend on it: a stale index either
    /// still contains the address (regions never overlap, so it is THE
    /// answer) or fails the containment check and we fall through.
    last_hit: std::cell::Cell<usize>,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

impl Memory {
    /// A fresh arena with no regions.
    pub fn new() -> Memory {
        Memory {
            bytes: vec![0u8; MEM_SIZE as usize],
            regions: Vec::new(),
            cursor: KBASE,
            text_gen: 0,
            gens: std::collections::HashMap::new(),
            last_hit: std::cell::Cell::new(usize::MAX),
        }
    }

    /// The global text-write clock. Any difference from a previously
    /// observed value means some executable region's bytes, or the set
    /// of executable regions itself, changed in between.
    pub fn text_generation(&self) -> u64 {
        self.text_gen
    }

    /// The write generation of the executable region starting at
    /// `start`, or `None` if no such region is mapped (any more).
    pub fn region_generation(&self, start: u64) -> Option<u64> {
        self.gens.get(&start).copied()
    }

    /// Records a write into the executable region starting at `start`.
    fn bump_text(&mut self, start: u64) {
        self.text_gen += 1;
        *self.gens.entry(start).or_insert(0) += 1;
    }

    /// Allocates a fresh region, returning its start address.
    ///
    /// Returns `None` when the arena is exhausted.
    pub fn alloc_region(&mut self, name: &str, size: u64, align: u64, perms: Perms) -> Option<u64> {
        let align = align.max(1);
        debug_assert!(align.is_power_of_two());
        let start = self.cursor.div_ceil(align) * align;
        let end = start.checked_add(size)?;
        if end > KBASE + MEM_SIZE {
            return None;
        }
        self.cursor = end;
        if perms.exec {
            self.gens.insert(start, 0);
        }
        self.regions.push(Region {
            name: name.to_string(),
            start,
            size,
            perms,
        });
        Some(start)
    }

    /// Allocates several regions in one call, exactly as the same
    /// sequence of [`Memory::alloc_region`] calls would (identical
    /// addresses, order and names) but all-or-nothing: when any region
    /// would not fit, nothing is allocated. The region table grows
    /// once instead of per section, which is what the loader wants
    /// when placing a multi-section object.
    pub fn alloc_regions(&mut self, specs: &[(&str, u64, u64, Perms)]) -> Option<Vec<u64>> {
        // Dry-run the bump cursor to prove everything fits.
        let mut cursor = self.cursor;
        for &(_, size, align, _) in specs {
            let align = align.max(1);
            debug_assert!(align.is_power_of_two());
            let start = cursor.div_ceil(align) * align;
            let end = start.checked_add(size)?;
            if end > KBASE + MEM_SIZE {
                return None;
            }
            cursor = end;
        }
        self.regions.reserve(specs.len());
        let mut starts = Vec::with_capacity(specs.len());
        for &(name, size, align, perms) in specs {
            starts.push(self.alloc_region(name, size, align, perms).expect("dry run fit"));
        }
        Some(starts)
    }

    /// The region containing `addr..addr+len`, if any.
    ///
    /// `regions` is always sorted by start address — the bump cursor only
    /// grows and `unmap_prefix` preserves order — so the candidate is the
    /// last region starting at or below `addr`, found by binary search.
    /// This is the single hottest lookup in the simulator (every VM
    /// fetch, load and store lands here).
    pub fn region_at(&self, addr: u64, len: u64) -> Option<&Region> {
        if let Some(r) = self.regions.get(self.last_hit.get()) {
            if r.contains(addr, len) {
                return Some(r);
            }
        }
        let i = self.regions.partition_point(|r| r.start <= addr);
        let r = self.regions[..i].last()?;
        if r.contains(addr, len) {
            self.last_hit.set(i - 1);
            Some(r)
        } else {
            None
        }
    }

    /// All regions, in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Unmaps every region whose name starts with `prefix`, returning how
    /// many were removed. The backing bytes are not reclaimed (the arena
    /// is a bump allocator) but all further access faults — module
    /// unloading semantics.
    pub fn unmap_prefix(&mut self, prefix: &str) -> usize {
        let dead_text: Vec<u64> = self
            .regions
            .iter()
            .filter(|r| r.perms.exec && r.name.starts_with(prefix))
            .map(|r| r.start)
            .collect();
        let before = self.regions.len();
        self.regions.retain(|r| !r.name.starts_with(prefix));
        // Unloading module text retires its generation entry, so any
        // decoded block from it can never validate again.
        if !dead_text.is_empty() {
            for start in &dead_text {
                self.gens.remove(start);
            }
            self.text_gen += 1;
        }
        before - self.regions.len()
    }

    /// Changes the permissions of the region starting exactly at `start`.
    pub fn set_region_perms(&mut self, start: u64, perms: Perms) -> bool {
        let mut toggled_exec = false;
        let mut found = false;
        for r in &mut self.regions {
            if r.start == start {
                toggled_exec = r.perms.exec || perms.exec;
                r.perms = perms;
                found = true;
                break;
            }
        }
        if found && toggled_exec {
            // Entering or leaving executability invalidates any cached
            // decoding of the region either way.
            self.bump_text(start);
        }
        found
    }

    fn index(&self, addr: u64, len: u64) -> Result<usize, MemFault> {
        if addr < KBASE || addr + len > KBASE + MEM_SIZE {
            return Err(MemFault::Unmapped { addr, len });
        }
        Ok((addr - KBASE) as usize)
    }

    /// Checked load for the VM: requires a readable region.
    pub fn load(&self, addr: u64, len: u64) -> Result<&[u8], MemFault> {
        let region = self
            .region_at(addr, len)
            .ok_or(MemFault::Unmapped { addr, len })?;
        if !region.perms.read {
            return Err(MemFault::Unmapped { addr, len });
        }
        let i = self.index(addr, len)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Checked store for the VM: requires a writable region.
    pub fn store(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        let len = data.len() as u64;
        let (exec, start) = {
            let region = self
                .region_at(addr, len)
                .ok_or(MemFault::Unmapped { addr, len })?;
            if !region.perms.write {
                return Err(MemFault::ReadOnly { addr });
            }
            (region.perms.exec, region.start)
        };
        let i = self.index(addr, len)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        if exec {
            // Self-modifying code through a writable+executable region:
            // the icache analogue must notice.
            self.bump_text(start);
        }
        Ok(())
    }

    /// Instruction fetch: up to `len` bytes from an executable region.
    pub fn fetch(&self, addr: u64, len: u64) -> Result<&[u8], MemFault> {
        let region = self
            .region_at(addr, 1)
            .ok_or(MemFault::Unmapped { addr, len: 1 })?;
        if !region.perms.exec {
            return Err(MemFault::NotExecutable { addr });
        }
        // Clamp to the region end so partial fetches at region tails work.
        let avail = (region.start + region.size - addr).min(len);
        let i = self.index(addr, avail)?;
        Ok(&self.bytes[i..i + avail as usize])
    }

    /// Privileged read used by tooling (run-pre matching reads run text
    /// irrespective of permissions).
    pub fn peek(&self, addr: u64, len: u64) -> Result<&[u8], MemFault> {
        let i = self.index(addr, len)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Privileged write used by the loader and by Ksplice's trampoline
    /// insertion; ignores write protection but still requires the range to
    /// be mapped.
    pub fn poke(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        let len = data.len() as u64;
        let (exec, start) = {
            let region = self
                .region_at(addr, len)
                .ok_or(MemFault::Unmapped { addr, len })?;
            (region.perms.exec, region.start)
        };
        let i = self.index(addr, len)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        if exec {
            // A trampoline (or fault-injected corruption) just landed
            // in text: advance the write generation so cached decoded
            // blocks covering this region are evicted.
            self.bump_text(start);
        }
        Ok(())
    }

    /// Convenience: load a little-endian u64 (VM-checked).
    pub fn load_u64(&self, addr: u64) -> Result<u64, MemFault> {
        Ok(u64::from_le_bytes(self.load(addr, 8)?.try_into().unwrap()))
    }

    /// Convenience: store a little-endian u64 (VM-checked).
    pub fn store_u64(&mut self, addr: u64, v: u64) -> Result<(), MemFault> {
        self.store(addr, &v.to_le_bytes())
    }

    /// FNV-1a checksum over every *mapped* region: name, bounds, perms
    /// and backing bytes. Two arenas with the same region table and the
    /// same bytes under it hash identically; bytes left behind by
    /// unmapped regions (the arena is a bump allocator) do not count.
    ///
    /// This is the "kernel memory image" the abandon path of
    /// `ksplice-apply` must restore exactly: a clean abort unloads every
    /// module it loaded and rolls back every byte it poked, so the
    /// checksum before the apply equals the checksum after the abort
    /// (provided no kernel thread ran in between and dirtied its own
    /// stack or data).
    pub fn image_checksum(&self) -> u64 {
        self.checksum_where(|_| true)
    }

    /// [`Memory::image_checksum`] restricted to executable regions — the
    /// kernel's *text*. Threads running between stop_machine attempts
    /// legitimately dirty data and stacks, but a clean abort must leave
    /// every byte of mapped text untouched: no half-written trampolines,
    /// no leftover module code. This is the checksum the apply/undo
    /// abort paths verify.
    pub fn text_checksum(&self) -> u64 {
        self.checksum_where(|r| r.perms.exec)
    }

    fn checksum_where(&self, keep: impl Fn(&Region) -> bool) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut byte = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        };
        for r in self.regions.iter().filter(|r| keep(r)) {
            for b in r.name.as_bytes() {
                byte(*b);
            }
            for word in [r.start, r.size] {
                for b in word.to_le_bytes() {
                    byte(b);
                }
            }
            byte(u8::from(r.perms.read) | u8::from(r.perms.write) << 1 | u8::from(r.perms.exec) << 2);
            let lo = (r.start - KBASE) as usize;
            for b in &self.bytes[lo..lo + r.size as usize] {
                byte(*b);
            }
        }
        h
    }

    /// Reads a NUL-terminated string (privileged; capped at 4096 bytes).
    pub fn read_cstr(&self, addr: u64) -> Result<String, MemFault> {
        let mut out = Vec::new();
        for i in 0..4096u64 {
            let b = self.peek(addr + i, 1)?[0];
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw() {
        let mut m = Memory::new();
        let a = m.alloc_region("data", 64, 16, Perms::DATA).unwrap();
        assert_eq!(a % 16, 0);
        m.store_u64(a, 0xdead_beef).unwrap();
        assert_eq!(m.load_u64(a).unwrap(), 0xdead_beef);
    }

    #[test]
    fn text_is_write_protected() {
        let mut m = Memory::new();
        let t = m.alloc_region("text", 64, 16, Perms::TEXT).unwrap();
        assert_eq!(m.store(t, &[0x90]), Err(MemFault::ReadOnly { addr: t }));
        // But poke (privileged) succeeds, like set_kernel_text_rw.
        m.poke(t, &[0x90]).unwrap();
        assert_eq!(m.peek(t, 1).unwrap(), &[0x90]);
    }

    #[test]
    fn fetch_requires_exec() {
        let mut m = Memory::new();
        let d = m.alloc_region("data", 64, 16, Perms::DATA).unwrap();
        assert_eq!(m.fetch(d, 4), Err(MemFault::NotExecutable { addr: d }));
        let t = m.alloc_region("text", 64, 16, Perms::TEXT).unwrap();
        assert!(m.fetch(t, 10).is_ok());
    }

    #[test]
    fn fetch_clamps_at_region_end() {
        let mut m = Memory::new();
        let t = m.alloc_region("text", 8, 8, Perms::TEXT).unwrap();
        assert_eq!(m.fetch(t + 6, 10).unwrap().len(), 2);
    }

    #[test]
    fn unmapped_access_faults() {
        let m = Memory::new();
        assert!(matches!(m.load(KBASE, 8), Err(MemFault::Unmapped { .. })));
        assert!(matches!(m.load(0x1000, 8), Err(MemFault::Unmapped { .. })));
        // Gap between regions is unmapped even though backed by the arena.
        let mut m = Memory::new();
        m.alloc_region("a", 16, 16, Perms::DATA).unwrap();
        assert!(matches!(
            m.load(KBASE + 1024, 8),
            Err(MemFault::Unmapped { .. })
        ));
    }

    #[test]
    fn cross_region_access_faults() {
        let mut m = Memory::new();
        let a = m.alloc_region("a", 16, 16, Perms::DATA).unwrap();
        m.alloc_region("b", 16, 16, Perms::DATA).unwrap();
        // A straddling access is not contained in a single region.
        assert!(m.load(a + 12, 8).is_err());
    }

    #[test]
    fn arena_exhaustion() {
        let mut m = Memory::new();
        assert!(m
            .alloc_region("big", MEM_SIZE + 1, 8, Perms::DATA)
            .is_none());
        assert!(m.alloc_region("all", MEM_SIZE, 8, Perms::DATA).is_some());
        assert!(m.alloc_region("more", 8, 8, Perms::DATA).is_none());
    }

    #[test]
    fn checksums_track_mapped_bytes_only() {
        let mut m = Memory::new();
        let t = m.alloc_region("text", 64, 16, Perms::TEXT).unwrap();
        let d = m.alloc_region("data", 64, 16, Perms::DATA).unwrap();
        let image = m.image_checksum();
        let text = m.text_checksum();
        // Data writes move the image checksum but not the text checksum.
        m.store_u64(d, 42).unwrap();
        assert_ne!(m.image_checksum(), image);
        assert_eq!(m.text_checksum(), text);
        // A trampoline-style poke moves both; restoring the byte restores
        // both.
        let saved = m.peek(t, 1).unwrap()[0];
        m.poke(t, &[0xe9]).unwrap();
        assert_ne!(m.text_checksum(), text);
        m.poke(t, &[saved]).unwrap();
        assert_eq!(m.text_checksum(), text);
        // Mapping a module region changes the checksums; unmapping it
        // restores them even though the arena bytes remain.
        let image = m.image_checksum();
        let text = m.text_checksum();
        let mo = m.alloc_region("mod:a", 32, 16, Perms::TEXT).unwrap();
        m.poke(mo, &[1, 2, 3]).unwrap();
        assert_ne!(m.text_checksum(), text);
        m.unmap_prefix("mod:");
        assert_eq!(m.image_checksum(), image);
        assert_eq!(m.text_checksum(), text);
    }

    #[test]
    fn cstr_reading() {
        let mut m = Memory::new();
        let a = m.alloc_region("s", 16, 8, Perms::DATA).unwrap();
        m.store(a, b"panic!\0junk").unwrap();
        assert_eq!(m.read_cstr(a).unwrap(), "panic!");
    }
}
