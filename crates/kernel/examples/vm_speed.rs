//! Raw dispatch speed: how many instructions/second the VM retires on
//! a register-and-memory-bound hot loop. Runs on any interpreter
//! generation (public API only), so it doubles as the harness for
//! old-vs-new dispatcher comparisons.
//!
//! Run with `cargo run --release -p ksplice-kernel --example vm_speed`.

use std::time::Instant;

use ksplice_kernel::Kernel;
use ksplice_lang::{Options, SourceTree};

const SRC: &str = "int hot(int n) {\
       int i; int s; s = 1;\
       for (i = 0; i < n; i = i + 1) { s = s * 31 + (i ^ s) - s / 7; }\
       return s;\
     }";

const STEP_LIMIT: u64 = 20_000_000;

fn main() {
    let tree: SourceTree = [("m.kc".to_string(), SRC.to_string())].into_iter().collect();
    let mut k = Kernel::boot(&tree, &Options::distro()).expect("boot");
    // Warm pass so decode caches (if any) are populated before timing.
    k.call_function_limited("hot", &[10_000], STEP_LIMIT).expect("warm");
    let steps0 = k.steps;
    let t = Instant::now();
    let _ = k.call_function_limited("hot", &[u64::MAX / 2], STEP_LIMIT);
    let dt = t.elapsed();
    let steps = k.steps - steps0;
    println!(
        "{} steps in {:?} — {:.1} M steps/s",
        steps,
        dt,
        steps as f64 / dt.as_secs_f64() / 1e6
    );
}
