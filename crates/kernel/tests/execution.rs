//! End-to-end execution tests: `kc` source → compiled kernel → VM.
//!
//! These pin down the language/VM semantics that everything above (the
//! Ksplice evaluation, the exploits, the stress test) relies on.

use ksplice_kernel::{Kernel, RunExit, ThreadState};
use ksplice_lang::{Options, SourceTree};

fn boot(files: &[(&str, &str)]) -> Kernel {
    boot_with(files, &Options::distro())
}

fn boot_with(files: &[(&str, &str)], opts: &Options) -> Kernel {
    let tree: SourceTree = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    Kernel::boot(&tree, opts).expect("boot")
}

fn call(k: &mut Kernel, f: &str, args: &[u64]) -> i64 {
    k.call_function(f, args).expect("call") as i64
}

#[test]
fn arithmetic_and_comparisons() {
    let mut k = boot(&[(
        "m.kc",
        "int f(int a, int b) { return (a + b) * 3 - a / b + a % b; }\
         int cmp(int a, int b) { return (a < b) + 2 * (a == b) + 4 * (a >= b); }\
         int bits(int a, int b) { return (a & b) | (a ^ 255) | (a << 2) | (b >> 1); }\
         int logic(int a, int b) { return (a && b) + 2 * (a || b) + 4 * !a; }",
    )]);
    assert_eq!(call(&mut k, "f", &[10, 3]), 37); // 13*3 - 3 + 1
    assert_eq!(call(&mut k, "cmp", &[1, 2]), 1);
    assert_eq!(call(&mut k, "cmp", &[2, 2]), 6);
    assert_eq!(call(&mut k, "cmp", &[3, 2]), 4);
    assert_eq!(call(&mut k, "logic", &[0, 5]), 6);
    assert_eq!(call(&mut k, "logic", &[7, 0]), 2);
    assert_eq!(
        call(&mut k, "bits", &[12, 10]),
        (12 & 10) | (12 ^ 255) | (12 << 2) | (10 >> 1)
    );
}

#[test]
fn negative_numbers_and_unary() {
    let mut k = boot(&[("m.kc", "int f(int a) { return -a + ~a + !a; }")]);
    assert_eq!(call(&mut k, "f", &[5]), -5 + !5i64);
    assert_eq!(call(&mut k, "f", &[0]), !0i64 + 1);
}

#[test]
fn control_flow() {
    let mut k = boot(&[(
        "m.kc",
        "int collatz(int n) {\
           int steps;\
           steps = 0;\
           while (n != 1) {\
             if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }\
             steps = steps + 1;\
           }\
           return steps;\
         }\
         int sum_for(int n) {\
           int i; int s; s = 0;\
           for (i = 1; i <= n; i = i + 1) { if (i == 4) continue; if (i > 8) break; s = s + i; }\
           return s;\
         }",
    )]);
    assert_eq!(call(&mut k, "collatz", &[27]), 111);
    assert_eq!(call(&mut k, "sum_for", &[100]), 1 + 2 + 3 + 5 + 6 + 7 + 8);
}

#[test]
fn recursion() {
    let mut k = boot(&[(
        "m.kc",
        "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }",
    )]);
    assert_eq!(call(&mut k, "fib", &[15]), 610);
}

#[test]
fn pointers_arrays_and_strings() {
    let mut k = boot(&[(
        "m.kc",
        "int buf[16];\
         byte msg[12] = \"hello\";\
         int fill(int n) {\
           int i;\
           for (i = 0; i < n; i = i + 1) { buf[i] = i * i; }\
           return buf[n - 1];\
         }\
         int via_ptr(int i) { int *p; p = buf; return *(p + i); }\
         int first_byte() { byte *s; s = msg; return *s; }\
         int nth_byte(int i) { return msg[i]; }",
    )]);
    assert_eq!(call(&mut k, "fill", &[10]), 81);
    assert_eq!(call(&mut k, "via_ptr", &[5]), 25);
    assert_eq!(call(&mut k, "first_byte", &[]), b'h' as i64);
    assert_eq!(call(&mut k, "nth_byte", &[4]), b'o' as i64);
    assert_eq!(call(&mut k, "nth_byte", &[5]), 0); // NUL terminator
}

#[test]
fn structs_and_field_access() {
    let mut k = boot(&[(
        "m.kc",
        "struct inode { int ino; int mode; byte tag; int uid; };\
         struct inode itab[8];\
         int setup(int i, int mode) {\
           struct inode *p;\
           p = itab;\
           (p + i)->ino = i;\
           (p + i)->mode = mode;\
           (p + i)->uid = 1000 + i;\
           return itab[i].mode;\
         }\
         int get_uid(int i) { return itab[i].uid; }",
    )]);
    assert_eq!(call(&mut k, "setup", &[3, 0x1ff]), 0x1ff);
    assert_eq!(call(&mut k, "get_uid", &[3]), 1003);
    assert_eq!(call(&mut k, "get_uid", &[2]), 0);
}

#[test]
fn linked_list_walk() {
    let mut k = boot(&[(
        "m.kc",
        "struct node { int v; struct node *next; };\
         int sum_list(int n) {\
           struct node *head; struct node *p; int i; int total;\
           head = 0;\
           for (i = 0; i < n; i = i + 1) {\
             p = kmalloc(sizeof(struct node));\
             p->v = i + 1;\
             p->next = head;\
             head = p;\
           }\
           total = 0;\
           p = head;\
           while (p) { total = total + p->v; p = p->next; }\
           return total;\
         }",
    )]);
    assert_eq!(call(&mut k, "sum_list", &[10]), 55);
}

#[test]
fn static_locals_persist_across_calls() {
    let mut k = boot(&[(
        "m.kc",
        "int counter() { static int calls; calls = calls + 1; return calls; }",
    )]);
    assert_eq!(call(&mut k, "counter", &[]), 1);
    assert_eq!(call(&mut k, "counter", &[]), 2);
    assert_eq!(call(&mut k, "counter", &[]), 3);
}

#[test]
fn file_statics_are_independent_per_unit() {
    let mut k = boot(&[
        (
            "a.kc",
            "static int debug; int bump_a() { debug = debug + 10; return debug; }",
        ),
        (
            "b.kc",
            "static int debug; int bump_b() { debug = debug + 1; return debug; }",
        ),
    ]);
    assert_eq!(call(&mut k, "bump_a", &[]), 10);
    assert_eq!(call(&mut k, "bump_b", &[]), 1);
    assert_eq!(call(&mut k, "bump_a", &[]), 20);
    assert_eq!(call(&mut k, "bump_b", &[]), 2);
}

#[test]
fn function_pointers_and_ops_tables() {
    let mut k = boot(&[(
        "m.kc",
        "int op_add(int a, int b) { return a + b; }\
         int op_mul(int a, int b) { return a * b; }\
         int ops[2] = { op_add, op_mul };\
         int dispatch(int which, int a, int b) {\
           int f;\
           f = ops[which];\
           return f(a, b);\
         }",
    )]);
    assert_eq!(call(&mut k, "dispatch", &[0, 6, 7]), 13);
    assert_eq!(call(&mut k, "dispatch", &[1, 6, 7]), 42);
}

#[test]
fn cross_unit_calls_and_globals() {
    let mut k = boot(&[
        (
            "lib.kc",
            "int base = 100; int helper(int x) { return base + x; }",
        ),
        ("use.kc", "int f(int x) { return helper(x) * 2; }"),
    ]);
    assert_eq!(call(&mut k, "f", &[5]), 210);
}

#[test]
fn header_shared_structs() {
    let mut k = boot(&[
        (
            "include/fs.kh",
            "struct file { int mode; int pos; }; struct file *cur_file;",
        ),
        (
            "fs/file.kc",
            "struct file table[4];\
             struct file *cur_file;\
             int open_file(int mode) { cur_file = table; cur_file->mode = mode; return 0; }",
        ),
        (
            "fs/read.kc",
            "int file_mode() { if (cur_file) { return cur_file->mode; } return -1; }",
        ),
    ]);
    assert_eq!(call(&mut k, "file_mode", &[]), -1);
    assert_eq!(call(&mut k, "open_file", &[0o644]), 0);
    assert_eq!(call(&mut k, "file_mode", &[]), 0o644);
}

#[test]
fn division_by_zero_oopses() {
    let mut k = boot(&[("m.kc", "int f(int a) { return 10 / a; }")]);
    assert_eq!(call(&mut k, "f", &[2]), 5);
    let err = k.call_function("f", &[0]).unwrap_err();
    assert!(err.to_string().contains("divide error"), "{err}");
    assert_eq!(k.oopses.len(), 1);
    // The kernel limps on: other calls still work.
    assert_eq!(call(&mut k, "f", &[5]), 2);
}

#[test]
fn null_dereference_oopses_with_backtrace() {
    let mut k = boot(&[(
        "m.kc",
        "int inner(int *p) { int i; int s; s = 0;\
           for (i = 0; i < 3; i = i + 1) { s = s + i; }\
           return *p + s; }\
         int outer() { int *p; p = 0; return inner(p); }",
    )]);
    let err = k.call_function("outer", &[]).unwrap_err();
    assert!(err.to_string().contains("paging request"), "{err}");
    let oops = k.oopses.last().unwrap();
    // Backtrace: faulting ip (in inner) plus a return address in outer.
    assert!(oops.backtrace.len() >= 2, "backtrace: {:?}", oops.backtrace);
    let f = k.syms.lookup_addr(oops.backtrace[0]).unwrap();
    assert_eq!(f.name, "inner");
    let caller = k.syms.lookup_addr(oops.backtrace[1]).unwrap();
    assert_eq!(caller.name, "outer");
}

#[test]
fn syscall_dispatch_via_int() {
    // `do_syscall` is ordinary kernel code; `int 0x80` jumps to it. An
    // assembly unit issues the trap.
    let mut k = boot(&[
        (
            "kernel/sys.kc",
            "int sys_getpid() { return current_tid(); }\
             int sys_double(int x) { return x + x; }\
             int do_syscall(int nr, int a) {\
               if (nr == 1) { return sys_getpid(); }\
               if (nr == 2) { return sys_double(a); }\
               return -38;\
             }",
        ),
        (
            "arch/entry.ks",
            ".global trap_double\n\
             trap_double:\n\
                 mov r2, r1\n\
                 mov r1, 2\n\
                 int 0x80\n\
                 ret\n",
        ),
    ]);
    assert_eq!(call(&mut k, "trap_double", &[21]), 42);
    assert_eq!(call(&mut k, "do_syscall", &[99, 0]), -38);
}

#[test]
fn printk_reaches_the_log() {
    let mut k = boot(&[(
        "m.kc",
        "int f() { printk(\"device ready\"); printk_int(\"count\", 42); return 0; }",
    )]);
    call(&mut k, "f", &[]);
    assert_eq!(
        k.klog,
        vec!["device ready".to_string(), "count: 42".to_string()]
    );
}

#[test]
fn scheduler_interleaves_threads() {
    let mut k = boot(&[(
        "m.kc",
        "int done_a; int done_b;\
         int spin_a() { int i; for (i = 0; i < 2000; i = i + 1) { } done_a = 1; return 0; }\
         int spin_b() { int i; for (i = 0; i < 2000; i = i + 1) { } done_b = 1; return 0; }\
         int check() { return done_a + 2 * done_b; }",
    )]);
    k.spawn("spin_a", &[]).unwrap();
    k.spawn("spin_b", &[]).unwrap();
    assert_eq!(k.run(10_000_000), RunExit::AllExited);
    assert_eq!(call(&mut k, "check", &[]), 3);
}

#[test]
fn sleeping_thread_wakes() {
    let mut k = boot(&[(
        "m.kc",
        "int woke;\
         int sleeper() { msleep(3); woke = 1; return 0; }\
         int get_woke() { return woke; }",
    )]);
    let tid = k.spawn("sleeper", &[]).unwrap();
    // Step in tiny increments until the thread blocks in msleep.
    let mut observed_sleep = false;
    for _ in 0..100 {
        k.run(1);
        if matches!(k.thread(tid).unwrap().state, ThreadState::Sleeping(_)) {
            observed_sleep = true;
            break;
        }
    }
    assert!(observed_sleep, "thread never entered msleep");
    assert_eq!(k.run(100_000), RunExit::AllExited);
    assert_eq!(call(&mut k, "get_woke", &[]), 1);
}

#[test]
fn exit_codes_propagate() {
    let mut k = boot(&[("m.kc", "int f() { return 7; }")]);
    let tid = k.spawn("f", &[]).unwrap();
    k.run(10_000);
    assert_eq!(k.thread(tid).unwrap().state, ThreadState::Exited(7));
}

#[test]
fn semantics_identical_across_optimisation_levels() {
    // The same program must behave identically at -O0 and -O2 (inlining
    // and folding are semantics-preserving) — this is what licences
    // Ksplice to replace a function with a different binary
    // representation of the same source (paper §3.2).
    let src = "static int clamp(int v, int lo, int hi) {\
                 if (v < lo) return lo;\
                 if (v > hi) return hi;\
                 return v;\
               }\
               int grade(int score) {\
                 int g;\
                 g = clamp(score, 0, 100);\
                 if (g >= 90) return 4;\
                 if (g >= 80) return 3;\
                 if (g >= 60) return 2;\
                 return 0 - 1 + 1;\
               }";
    for opt_level in [0u8, 1, 2] {
        let mut k = boot_with(
            &[("m.kc", src)],
            &Options {
                opt_level,
                ..Options::distro()
            },
        );
        for (input, want) in [(-50i64, 0), (59, 0), (60, 2), (85, 3), (95, 4), (1000, 4)] {
            assert_eq!(
                call(&mut k, "grade", &[input as u64]),
                want,
                "grade({input}) at -O{opt_level}"
            );
        }
    }
}

#[test]
fn shadow_data_structures() {
    let mut k = boot(&[(
        "m.kc",
        "struct sock { int port; };\
         struct sock s1; struct sock s2;\
         int tag(int which, int val) {\
           struct sock *p; int *sh;\
           if (which) { p = &s1; } else { p = &s2; }\
           sh = ksplice_shadow_attach(p, 1, 8);\
           *sh = val;\
           return 0;\
         }\
         int get_tag(int which) {\
           struct sock *p; int *sh;\
           if (which) { p = &s1; } else { p = &s2; }\
           sh = ksplice_shadow_get(p, 1);\
           if (sh == 0) { return -1; }\
           return *sh;\
         }",
    )]);
    assert_eq!(call(&mut k, "get_tag", &[1]), -1);
    call(&mut k, "tag", &[1, 111]);
    call(&mut k, "tag", &[0, 222]);
    assert_eq!(call(&mut k, "get_tag", &[1]), 111);
    assert_eq!(call(&mut k, "get_tag", &[0]), 222);
}

#[test]
fn memset_memcpy_strcmp() {
    let mut k = boot(&[(
        "m.kc",
        "byte a[16]; byte b[16] = \"abc\";\
         int f() {\
           memset(a, 0, 16);\
           memcpy(a, b, 4);\
           return strcmp_k(a, b);\
         }",
    )]);
    assert_eq!(call(&mut k, "f", &[]), 0);
}

#[test]
fn deep_recursion_overflows_stack_and_oopses() {
    let mut k = boot(&[(
        "m.kc",
        "int deep(int n) { int pad[64]; pad[0] = n; return deep(n + 1) + pad[0]; }",
    )]);
    let err = k.call_function("deep", &[0]).unwrap_err();
    // The stack runs off its region: a paging oops, not a Rust panic.
    assert!(
        err.to_string().contains("Oops") || err.to_string().contains("oops"),
        "{err}"
    );
}
