//! The SMP substrate: per-CPU run queues, seeded interleaved
//! scheduling, and the `stop_machine` barrier rendezvous (paper §5).
//!
//! These tests pin the scheduler model documented in
//! `docs/CONCURRENCY.md`: threads home on a vCPU at spawn and never
//! migrate, the interleaving is a pure function of the scheduling seed,
//! the rendezvous really runs every vCPU before the machine counts as
//! captured, and a barrier timeout releases the machine untouched.

use ksplice_kernel::{Fault, Kernel, RunExit, SmpConfig, StopMachineError, ThreadState};
use ksplice_lang::{Options, SourceTree};

const SPIN: &str = "int go = 1;\n\
int spin() {\n\
    int i;\n\
    i = 0;\n\
    while (go) {\n\
        i = i + 1;\n\
    }\n\
    return i;\n\
}\n\
int napper() {\n\
    msleep(1);\n\
    msleep(1);\n\
    return 7;\n\
}\n";

fn boot_smp(cpus: u32) -> Kernel {
    boot_cfg(SmpConfig::with_cpus(cpus))
}

fn boot_cfg(cfg: SmpConfig) -> Kernel {
    let mut tree = SourceTree::new();
    tree.insert("kernel/spin.kc", SPIN);
    let mut k = Kernel::boot(&tree, &Options::distro()).expect("boot");
    k.configure_smp(cfg);
    k
}

#[test]
fn threads_home_round_robin_and_never_migrate() {
    let mut k = boot_smp(2);
    let tids: Vec<u64> = (0..4).map(|_| k.spawn("spin", &[]).unwrap()).collect();
    for &tid in &tids {
        let t = k.thread(tid).unwrap();
        assert_eq!(u64::from(t.cpu), (tid - 1) % 2, "homed by tid");
    }
    k.run(2_000);
    for &tid in &tids {
        let t = k.thread(tid).unwrap();
        assert_eq!(u64::from(t.cpu), (tid - 1) % 2, "never migrates");
        assert!(t.cycles > 0, "every thread got scheduled");
    }
    // Both vCPUs executed instructions and track a current thread.
    for c in &k.cpus {
        assert!(c.cycles > 0, "cpu {} idle", c.id);
        assert!(c.current.is_some());
        assert_eq!(c.runq.len(), 2);
    }
}

#[test]
fn interleaving_is_deterministic_in_the_seed() {
    let run_once = |seed: u64| -> Vec<u64> {
        let mut k = boot_cfg(SmpConfig::with_cpus(2).with_seed(seed));
        let tids: Vec<u64> = (0..2).map(|_| k.spawn("spin", &[]).unwrap()).collect();
        // An uneven budget: whichever vCPU the seeded rotation lets
        // lead gets a full quantum, the other the remainder.
        assert!(matches!(k.run(100), RunExit::Budget));
        tids.iter()
            .map(|&t| k.thread(t).unwrap().cycles)
            .collect()
    };
    // Same seed → the exact same per-thread instruction counts.
    assert_eq!(run_once(42), run_once(42));
    // The seed genuinely steers the interleaving: across a handful of
    // seeds both lead orders must appear.
    let mut shapes: Vec<Vec<u64>> = (1..=16).map(run_once).collect();
    shapes.dedup();
    assert!(
        shapes.len() > 1,
        "seed never changed the schedule: {shapes:?}"
    );
}

#[test]
fn sleepers_wake_and_exit_under_smp() {
    let mut k = boot_smp(4);
    let tid = k.spawn("napper", &[]).unwrap();
    assert!(matches!(k.run(200_000), RunExit::AllExited));
    assert!(matches!(
        k.thread(tid).unwrap().state,
        ThreadState::Exited(7)
    ));
}

#[test]
fn rendezvous_runs_each_busy_vcpu_one_quantum() {
    let mut k = boot_smp(2);
    for _ in 0..2 {
        k.spawn("spin", &[]).unwrap();
    }
    k.run(1_000);
    let quantum = k.smp.quantum;
    let r = k.try_stop_machine(|_| 99).expect("honest rendezvous");
    assert_eq!(r, 99);
    // Both vCPUs ran their busy thread for exactly one quantum before
    // parking — that is the whole simulated capture cost.
    assert_eq!(k.last_stop_machine_steps, 2 * quantum);
    assert_eq!(k.stop_machine_count, 1);
}

#[test]
fn uniprocessor_capture_is_instant() {
    let mut k = boot_smp(1);
    k.spawn("spin", &[]).unwrap();
    k.run(1_000);
    k.try_stop_machine(|_| ()).expect("capture");
    assert_eq!(k.last_stop_machine_steps, 0, "N=1 needs no rendezvous");
}

#[test]
fn barrier_stall_times_out_without_running_the_closure() {
    let mut k = boot_smp(4);
    for _ in 0..2 {
        k.spawn("spin", &[]).unwrap();
    }
    k.run(1_000);
    k.arm_fault(Fault::parse("barrier-stall:1").unwrap())
        .unwrap();
    let text_before = k.mem.text_checksum();
    let mut ran = false;
    let err = k.try_stop_machine(|_| ran = true).unwrap_err();
    let StopMachineError::BarrierTimeout { cpu } = err;
    assert!(cpu < 4, "stalled cpu is one of ours: {cpu}");
    assert!(!ran, "the machine was never captured");
    assert_eq!(k.mem.text_checksum(), text_before, "no text written");
    assert_eq!(k.stop_machine_count, 0, "a timed-out capture doesn't count");
    // The fault had one window; the next capture succeeds.
    k.try_stop_machine(|_| ()).expect("window exhausted");
    assert_eq!(k.stop_machine_count, 1);
}

#[test]
fn plain_stop_machine_never_consults_the_barrier_fault() {
    let mut k = boot_smp(2);
    k.arm_fault(Fault::parse("barrier-stall:1").unwrap())
        .unwrap();
    // The infallible form (module loads, undo bookkeeping) ignores the
    // armed stall entirely — and leaves its window for try_stop_machine.
    assert_eq!(k.stop_machine(|_| 7), 7);
    let err = k.try_stop_machine(|_| ()).unwrap_err();
    assert!(matches!(err, StopMachineError::BarrierTimeout { .. }));
}

#[test]
fn parked_vcpu_is_a_real_thread_and_is_released_with_the_fault() {
    let mut k = boot_smp(2);
    k.arm_fault(Fault::parse("stack-busy:1").unwrap()).unwrap();
    let addr = 0x4000_1234;
    let tid = k.park_fault_vcpu(addr).expect("parked while windows remain");
    let t = k.thread(tid).unwrap();
    assert_eq!(t.ip, addr, "parked at the patch target's entry");
    assert!(matches!(t.state, ThreadState::Sleeping(_)));
    // Same fault, same parker — no second thread.
    assert_eq!(k.park_fault_vcpu(addr), Some(tid));
    // Burn the fault's only window, as the stack check does.
    assert!(k
        .faults
        .stack_check_busy(&[(addr, addr + 64, "target".into())])
        .is_some());
    // Windows exhausted: the parker is reaped and the machine is clean.
    assert_eq!(k.park_fault_vcpu(addr), None);
    assert!(k.thread(tid).is_none(), "parker reaped");
}

#[test]
fn configure_smp_rehomes_existing_threads() {
    let mut k = boot_smp(1);
    let tids: Vec<u64> = (0..4).map(|_| k.spawn("spin", &[]).unwrap()).collect();
    assert!(tids.iter().all(|&t| k.thread(t).unwrap().cpu == 0));
    k.configure_smp(SmpConfig::with_cpus(4));
    for &tid in &tids {
        assert_eq!(u64::from(k.thread(tid).unwrap().cpu), (tid - 1) % 4);
    }
    assert_eq!(k.cpus.len(), 4);
    assert!(k.cpus.iter().all(|c| c.runq.len() == 1));
}
