//! VM and kernel robustness: arithmetic edges, control-flow abuse, W^X.

use ksplice_kernel::{Kernel, Perms};
use ksplice_lang::{Options, SourceTree};

fn boot(src: &str) -> Kernel {
    let mut tree = SourceTree::new();
    tree.insert("m.kc", src);
    Kernel::boot(&tree, &Options::distro()).unwrap()
}

#[test]
fn shift_counts_mask_like_hardware() {
    let mut k =
        boot("int f(int a, int n) { return a << n; }\nint g(int a, int n) { return a >> n; }");
    // Shift counts are masked to 6 bits, like x86-64.
    assert_eq!(k.call_function("f", &[1, 64]).unwrap(), 1);
    assert_eq!(k.call_function("f", &[1, 65]).unwrap(), 2);
    assert_eq!(k.call_function("g", &[8, 3]).unwrap(), 1);
}

#[test]
fn negative_division_truncates_toward_zero() {
    let mut k =
        boot("int d(int a, int b) { return a / b; }\nint m(int a, int b) { return a % b; }");
    assert_eq!(
        k.call_function("d", &[(-7i64) as u64, 2]).unwrap() as i64,
        -3
    );
    assert_eq!(
        k.call_function("m", &[(-7i64) as u64, 2]).unwrap() as i64,
        -1
    );
}

#[test]
fn indirect_call_to_garbage_oopses_not_panics() {
    let mut k = boot("int f(int p) { int g; g = p; return g(1); }");
    let err = k.call_function("f", &[0x1234]).unwrap_err();
    assert!(err.to_string().contains("oops"), "{err}");
    // Indirect call into a data region is a W^X violation.
    let data = k.mem.alloc_region("trap", 64, 16, Perms::DATA).unwrap();
    let err = k.call_function("f", &[data]).unwrap_err();
    assert!(err.to_string().contains("non-executable"), "{err}");
}

#[test]
fn jump_into_unmapped_space_oopses() {
    let mut k = boot("int f(int p) { int g; g = p; return g(); }");
    assert!(k.call_function("f", &[0xdead_0000]).is_err());
    assert!(k.oopses.len() == 1);
}

#[test]
fn stack_recycling_supports_many_short_calls() {
    let mut k = boot("int f(int x) { return x * 2; }");
    // Far more calls than the arena could hold un-recycled stacks for.
    for i in 0..5_000u64 {
        assert_eq!(k.call_function("f", &[i]).unwrap(), i * 2);
    }
}

#[test]
fn reap_dead_collects_finished_threads() {
    let mut k = boot("int f() { return 0; }");
    for _ in 0..5 {
        k.spawn("f", &[]).unwrap();
    }
    k.run(100_000);
    assert_eq!(k.threads.len(), 5);
    assert_eq!(k.reap_dead(), 5);
    assert!(k.threads.is_empty());
}

#[test]
fn rmmod_unmaps_module_memory() {
    let mut k = boot("int f() { return 1; }");
    let obj = ksplice_lang::compile_unit(
        "mod.kc",
        "int mod_entry() { return 42; }",
        &Options::pre_post(),
    )
    .unwrap();
    let m = k.insmod(&obj, false).unwrap();
    let entry = m.symbol_addr("mod_entry").unwrap();
    assert_eq!(k.call_at(entry, &[]).unwrap(), 42);
    assert!(k.rmmod(&m.name));
    // Calling into the unloaded module now faults.
    assert!(k.call_at(entry, &[]).is_err());
    assert!(!k.rmmod(&m.name), "double rmmod reports failure");
    // Its kallsyms entries are gone.
    assert!(k.syms.lookup_name("mod_entry").is_empty());
}
