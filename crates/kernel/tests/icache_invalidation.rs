//! Property test for the decode-cached dispatcher's invalidation rule:
//! randomized `poke`/`store` writes into executable regions, then a
//! call through the (now stale) icache, must behave exactly like a
//! freshly booted kernel that never cached the old bytes — same
//! result, same instruction count, same register file, same oopses.
//!
//! The writes splice real code fragments (and occasional garbage) over
//! live text, so many rounds decode to nonsense and oops; parity must
//! hold for those too, which is precisely what the block cache could
//! get wrong if eviction missed a write.

use ksplice_kernel::{Kernel, Perms, ThreadState};
use ksplice_lang::{Options, SourceTree};

const SRC: &str = "int mix(int a, int b) { return a * 31 + (b ^ a) - b / 3; }\
     int work(int n) {\
       int i; int s; s = 0;\
       for (i = 0; i < n; i = i + 1) { s = s + mix(i, s & 1023); }\
       return s;\
     }";

const CALL_LIMIT: u64 = 200_000;

fn boot() -> Kernel {
    let tree: SourceTree = [("m.kc".to_string(), SRC.to_string())].into_iter().collect();
    Kernel::boot(&tree, &Options::distro()).expect("boot")
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// One write into executable text: `store` rounds first flip the
/// region writable (text is write-protected, like a real kernel's),
/// `poke` rounds go through the privileged patching path.
struct TextWrite {
    addr: u64,
    bytes: Vec<u8>,
    via_store: bool,
    region_start: u64,
}

/// Everything observable about one call, with thread ids normalized
/// out (the warm kernel is on its second thread, the fresh one on its
/// first; stacks are recycled so the register file is still comparable).
#[derive(Debug, PartialEq, Eq)]
struct CallRecord {
    result: Result<u64, String>,
    steps: u64,
    thread: Option<ThreadSnap>,
    oopses: Vec<(u64, String, Vec<u64>)>,
    klog: Vec<String>,
}

/// Register-file-level snapshot of the thread a call ran on.
#[derive(Debug, PartialEq, Eq)]
struct ThreadSnap {
    regs: [u64; 16],
    ip: u64,
    flags: (bool, bool),
    state: ThreadState,
    cycles: u64,
    stack: (u64, u64),
}

fn apply_writes(k: &mut Kernel, writes: &[TextWrite]) {
    for w in writes {
        if w.via_store {
            let writable = Perms {
                read: true,
                write: true,
                exec: true,
            };
            assert!(k.mem.set_region_perms(w.region_start, writable));
            k.mem.store(w.addr, &w.bytes).expect("store into text");
            assert!(k.mem.set_region_perms(w.region_start, Perms::TEXT));
        } else {
            k.mem.poke(w.addr, &w.bytes).expect("poke into text");
        }
    }
}

fn strip_tid(line: &str) -> String {
    match line.find(" [tid ") {
        Some(i) => line[..i].to_string(),
        None => line.to_string(),
    }
}

fn record_call(k: &mut Kernel, writes: &[TextWrite]) -> CallRecord {
    let steps0 = k.steps;
    let oops0 = k.oopses.len();
    let klog0 = k.klog.len();
    let threads0 = k.threads.len();
    apply_writes(k, writes);
    let result = k
        .call_function_limited("work", &[9], CALL_LIMIT)
        .map_err(|e| {
            // Error payloads may carry the tid; keep only the shape.
            let mut s = format!("{e:?}");
            s.truncate(s.find(['(', '{']).unwrap_or(s.len()));
            s
        });
    let thread = k.threads[threads0..].last().map(|t| ThreadSnap {
        regs: t.regs,
        ip: t.ip,
        flags: (t.zf, t.lf),
        state: t.state.clone(),
        cycles: t.cycles,
        stack: t.stack,
    });
    CallRecord {
        result,
        steps: k.steps - steps0,
        thread,
        oopses: k.oopses[oops0..]
            .iter()
            .map(|o| (o.ip, o.reason.clone(), o.backtrace.clone()))
            .collect(),
        klog: k.klog[klog0..].iter().map(|l| strip_tid(l)).collect(),
    }
}

#[test]
fn random_text_writes_match_fresh_kernel() {
    let mut rng = 0x9e3779b97f4a7c15u64;
    let mut saw_oops = false;
    let mut saw_clean = false;
    for round in 0..24 {
        // Pick this round's writes against a throwaway boot (all boots
        // of the same tree lay text out identically).
        let probe = boot();
        let text: Vec<(u64, u64)> = probe
            .mem
            .regions()
            .iter()
            .filter(|r| r.perms.exec && r.size >= 16)
            .map(|r| (r.start, r.size))
            .collect();
        assert!(!text.is_empty(), "no executable regions to write into");
        let n_writes = 1 + (xorshift(&mut rng) % 3) as usize;
        let mut writes = Vec::new();
        for _ in 0..n_writes {
            let (start, size) = text[(xorshift(&mut rng) as usize) % text.len()];
            let off = xorshift(&mut rng) % (size - 8);
            let bytes = if xorshift(&mut rng).is_multiple_of(2) {
                // Splice a real code fragment from another text offset.
                let (s2, z2) = text[(xorshift(&mut rng) as usize) % text.len()];
                let o2 = xorshift(&mut rng) % (z2 - 8);
                probe.mem.peek(s2 + o2, 8).unwrap().to_vec()
            } else {
                xorshift(&mut rng).to_le_bytes().to_vec()
            };
            writes.push(TextWrite {
                addr: start + off,
                bytes,
                via_store: xorshift(&mut rng).is_multiple_of(2),
                region_start: start,
            });
        }

        // Warm kernel: populate the block cache on the original bytes,
        // then write over live text and call again through the icache.
        let mut warm = boot();
        warm.call_function_limited("work", &[9], CALL_LIMIT)
            .expect("warm call on pristine text");
        assert!(warm.vm_stats.block_hits > 0, "warm call populated cache");
        let flushes_before = warm.vm_stats.icache_flushes;
        let got = record_call(&mut warm, &writes);
        assert!(
            warm.vm_stats.icache_flushes > flushes_before,
            "round {round}: text write did not trigger an icache flush"
        );

        // Fresh kernel: same writes land before anything is cached, so
        // its cold decode sees exactly the final bytes.
        let mut fresh = boot();
        let want = record_call(&mut fresh, &writes);

        assert_eq!(got, want, "round {round}: warm/fresh divergence");
        match got.result {
            Ok(_) => saw_clean = true,
            Err(_) => saw_oops = true,
        }
        if !got.oopses.is_empty() {
            saw_oops = true;
        }
    }
    // The campaign must have exercised both the clean-splice and the
    // garbage-decode paths, or the property is vacuous.
    assert!(saw_oops, "no round oopsed — writes too tame to test parity");
    assert!(saw_clean || saw_oops, "no rounds ran");
}
