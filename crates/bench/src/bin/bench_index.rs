//! `bench-index` — folds every `BENCH_*.json` metric dump in a
//! directory into one versioned, schema-checked `BENCH_summary.json`.
//!
//! Usage: `bench-index [DIR] [--out PATH] [--require NAME]...`
//!
//! `DIR` defaults to the current directory (where `cargo bench` drops
//! its dumps); the summary defaults to `DIR/BENCH_summary.json`. Exits
//! nonzero when no dump is found, any dump fails validation, or a
//! `--require`d bench name is absent — so a malformed or silently
//! missing bench artifact fails CI loudly.

use std::path::PathBuf;
use std::process::ExitCode;

use ksplice_bench::{index_bench_files, require_benches};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = PathBuf::from(".");
    let mut out: Option<PathBuf> = None;
    let mut required: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("bench-index: --out needs a path");
                    return ExitCode::FAILURE;
                };
                out = Some(PathBuf::from(path));
                i += 2;
            }
            "--require" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("bench-index: --require needs a bench name");
                    return ExitCode::FAILURE;
                };
                required.push(name.clone());
                i += 2;
            }
            "--help" | "-h" => {
                println!("usage: bench-index [DIR] [--out PATH] [--require NAME]...");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("bench-index: unknown flag {flag}");
                return ExitCode::FAILURE;
            }
            path => {
                dir = PathBuf::from(path);
                i += 1;
            }
        }
    }
    let out = out.unwrap_or_else(|| dir.join("BENCH_summary.json"));
    match index_bench_files(&dir) {
        Ok((summary, names)) => {
            if let Err(e) = require_benches(&names, &required) {
                eprintln!("bench-index: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::write(&out, &summary) {
                eprintln!("bench-index: {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
            println!(
                "indexed {} bench dump(s) ({}) into {}",
                names.len(),
                names.join(", "),
                out.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench-index: {e}");
            ExitCode::FAILURE
        }
    }
}
