//! Shared helpers for the benchmark harness.
//!
//! Every bench doubles as an experiment regenerator: it prints the
//! paper-comparable rows (Figure 3, Table 1, the §6.3 statistics, the
//! ~0.7 ms pause) before handing the hot loops to Criterion.

use ksplice_core::{create_update, CreateOptions, UpdatePack};
use ksplice_eval::{base_tree, corpus, Cve};
use ksplice_kernel::Kernel;
use ksplice_lang::{Options, SourceTree};

/// Boots the evaluation kernel the way a distributor ships it.
pub fn boot_eval_kernel() -> Kernel {
    Kernel::boot(&base_tree(), &Options::distro()).expect("base tree boots")
}

/// A small, representative CVE used by the timing benches (single
/// function, no custom code).
pub fn small_cve() -> Cve {
    corpus()
        .into_iter()
        .find(|c| c.id == "CVE-2005-4639")
        .expect("corpus entry")
}

/// Builds the update pack for a CVE against the base tree.
pub fn pack_for(case: &Cve) -> (UpdatePack, SourceTree) {
    let opts = CreateOptions {
        accept_data_changes: case.needs_custom_code(),
        ..CreateOptions::default()
    };
    let patch = if case.needs_custom_code() {
        case.full_patch_text()
    } else {
        case.patch_text()
    };
    create_update(case.id, &base_tree(), &patch, &opts).expect("create")
}
