//! Shared helpers for the benchmark harness.
//!
//! Every bench doubles as an experiment regenerator: it prints the
//! paper-comparable rows (Figure 3, Table 1, the §6.3 statistics, the
//! ~0.7 ms pause) before handing the hot loops to Criterion.

use std::path::Path;

use ksplice_core::trace::{parse_json_object, JsonValue};
use ksplice_core::{create_update, CreateOptions, UpdatePack};
use ksplice_eval::{base_tree, corpus, Cve};
use ksplice_kernel::Kernel;
use ksplice_lang::{Options, SourceTree};

/// Schema version of `BENCH_summary.json`. Bump when the layout of the
/// summary (not of the per-bench dumps) changes.
pub const BENCH_SUMMARY_VERSION: u64 = 1;

/// Schema identifier stamped into `BENCH_summary.json`.
pub const BENCH_SUMMARY_SCHEMA: &str = "ksplice-bench-summary";

/// Validates one `BENCH_*.json` metric dump: a single JSON object whose
/// top-level keys are exactly the three metric kinds, each an object.
/// Counter and gauge values must be non-negative integers.
fn check_bench_dump(name: &str, text: &str) -> Result<(), String> {
    let value = parse_json_object(text).map_err(|e| format!("{name}: {e}"))?;
    let JsonValue::Object(entries) = &value else {
        return Err(format!("{name}: top level is not an object"));
    };
    let mut keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
    keys.sort_unstable();
    if keys != ["counters", "gauges", "histograms"] {
        return Err(format!(
            "{name}: expected keys counters/gauges/histograms, got {keys:?}"
        ));
    }
    for kind in ["counters", "gauges"] {
        let Some(JsonValue::Object(table)) = value.get(kind) else {
            return Err(format!("{name}: `{kind}` is not an object"));
        };
        for (metric, v) in table {
            if v.as_u64().is_none() {
                return Err(format!("{name}: {kind} `{metric}` is not a u64"));
            }
        }
    }
    let Some(JsonValue::Object(hists)) = value.get("histograms") else {
        return Err(format!("{name}: `histograms` is not an object"));
    };
    for (metric, h) in hists {
        for field in ["count", "sum", "min", "max"] {
            if h.get(field).and_then(JsonValue::as_u64).is_none() {
                return Err(format!("{name}: histogram `{metric}` lacks u64 `{field}`"));
            }
        }
    }
    Ok(())
}

/// Collects every `BENCH_*.json` metric dump in `dir` into one
/// versioned summary document. Each dump is schema-checked (a single
/// object with counters/gauges/histograms tables of the right shapes)
/// and embedded verbatim under its bench name
/// (`BENCH_corpus_create.json` → `corpus_create`). Returns the summary
/// JSON and the list of bench names indexed, in name order. Errors when
/// no dump is found or any dump fails validation — a malformed dump
/// must fail the CI step, not vanish from the summary.
pub fn index_bench_files(dir: &Path) -> Result<(String, Vec<String>), String> {
    let mut dumps: Vec<(String, String)> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let file = entry.file_name().to_string_lossy().into_owned();
        let Some(stem) = file
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        if stem == "summary" {
            continue; // never index a previous summary into itself
        }
        let text = std::fs::read_to_string(entry.path()).map_err(|e| format!("{file}: {e}"))?;
        check_bench_dump(&file, &text)?;
        dumps.push((stem.to_string(), text.trim().to_string()));
    }
    if dumps.is_empty() {
        return Err(format!("no BENCH_*.json dumps under {}", dir.display()));
    }
    dumps.sort();
    let names: Vec<String> = dumps.iter().map(|(n, _)| n.clone()).collect();
    let mut s = format!(
        "{{\"v\":{BENCH_SUMMARY_VERSION},\"schema\":\"{BENCH_SUMMARY_SCHEMA}\",\"benches\":{{"
    );
    for (i, (name, text)) in dumps.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{}:{text}", ksplice_core::trace::json_escape(name)));
    }
    s.push_str("}}");
    // The summary must satisfy its own schema before it ships.
    check_summary(&s)?;
    Ok((s, names))
}

/// Checks that every required bench name is present among the indexed
/// ones — `bench-index --require fleet` fails CI when a bench silently
/// stopped producing its dump instead of shipping a summary without it.
pub fn require_benches(names: &[String], required: &[String]) -> Result<(), String> {
    let missing: Vec<&str> = required
        .iter()
        .filter(|r| !names.iter().any(|n| n == *r))
        .map(String::as_str)
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "required bench dump(s) missing: {} (have: {})",
            missing.join(", "),
            names.join(", ")
        ))
    }
}

/// Validates a `BENCH_summary.json` document: version, schema tag, and
/// a non-empty `benches` table whose entries each pass the per-dump
/// schema check.
pub fn check_summary(text: &str) -> Result<(), String> {
    let value = parse_json_object(text).map_err(|e| format!("summary: {e}"))?;
    if value.get("v").and_then(JsonValue::as_u64) != Some(BENCH_SUMMARY_VERSION) {
        return Err(format!("summary: `v` is not {BENCH_SUMMARY_VERSION}"));
    }
    if value.get("schema").and_then(JsonValue::as_str) != Some(BENCH_SUMMARY_SCHEMA) {
        return Err(format!("summary: `schema` is not {BENCH_SUMMARY_SCHEMA:?}"));
    }
    let Some(JsonValue::Object(benches)) = value.get("benches") else {
        return Err("summary: `benches` is not an object".to_string());
    };
    if benches.is_empty() {
        return Err("summary: `benches` is empty".to_string());
    }
    for (name, dump) in benches {
        // Re-render the embedded dump through the same per-dump check by
        // validating its shape in place.
        let JsonValue::Object(entries) = dump else {
            return Err(format!("summary: bench `{name}` is not an object"));
        };
        let mut keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        keys.sort_unstable();
        if keys != ["counters", "gauges", "histograms"] {
            return Err(format!("summary: bench `{name}` has keys {keys:?}"));
        }
    }
    Ok(())
}

/// Boots the evaluation kernel the way a distributor ships it.
pub fn boot_eval_kernel() -> Kernel {
    Kernel::boot(&base_tree(), &Options::distro()).expect("base tree boots")
}

/// A small, representative CVE used by the timing benches (single
/// function, no custom code).
pub fn small_cve() -> Cve {
    corpus()
        .into_iter()
        .find(|c| c.id == "CVE-2005-4639")
        .expect("corpus entry")
}

/// Builds the update pack for a CVE against the base tree.
pub fn pack_for(case: &Cve) -> (UpdatePack, SourceTree) {
    let opts = CreateOptions {
        accept_data_changes: case.needs_custom_code(),
        ..CreateOptions::default()
    };
    let patch = if case.needs_custom_code() {
        case.full_patch_text()
    } else {
        case.patch_text()
    };
    create_update(case.id, &base_tree(), &patch, &opts).expect("create")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ksplice-bench-index-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn index_collects_and_versions_bench_dumps() {
        let dir = scratch_dir("ok");
        let mut tracer = ksplice_core::Tracer::new();
        tracer.count("bench.profile_ms", 41);
        std::fs::write(dir.join("BENCH_profile.json"), tracer.metrics_json()).unwrap();
        let mut other = ksplice_core::Tracer::new();
        other.count("bench.create_warm_ms", 7);
        std::fs::write(dir.join("BENCH_corpus_create.json"), other.metrics_json()).unwrap();
        // A stale summary and an unrelated file are both skipped.
        std::fs::write(dir.join("BENCH_summary.json"), "{}").unwrap();
        std::fs::write(dir.join("notes.txt"), "not a dump").unwrap();

        let (summary, names) = index_bench_files(&dir).unwrap();
        assert_eq!(names, ["corpus_create", "profile"]);
        check_summary(&summary).unwrap();
        let value = parse_json_object(&summary).unwrap();
        assert_eq!(value.get("v").and_then(JsonValue::as_u64), Some(BENCH_SUMMARY_VERSION));
        let profile = value.get("benches").and_then(|b| b.get("profile")).unwrap();
        let ms = profile
            .get("counters")
            .and_then(|c| c.get("bench.profile_ms"))
            .and_then(JsonValue::as_u64);
        assert_eq!(ms, Some(41));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn required_benches_are_enforced() {
        let names = vec!["fleet".to_string(), "smp".to_string()];
        require_benches(&names, &["fleet".to_string()]).unwrap();
        require_benches(&names, &[]).unwrap();
        let err = require_benches(&names, &["vm".to_string()]).unwrap_err();
        assert!(err.contains("vm") && err.contains("fleet, smp"), "{err}");
    }

    #[test]
    fn index_rejects_malformed_dumps() {
        let dir = scratch_dir("bad");
        std::fs::write(dir.join("BENCH_broken.json"), "{\"counters\":{}}").unwrap();
        let err = index_bench_files(&dir).unwrap_err();
        assert!(err.contains("BENCH_broken.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();

        let empty = scratch_dir("empty");
        assert!(index_bench_files(&empty).unwrap_err().contains("no BENCH_"));
        std::fs::remove_dir_all(&empty).ok();
    }
}
