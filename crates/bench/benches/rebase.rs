//! The drift-rebase matrix — the paper's 56/64 table taken one axis
//! deeper (64 CVEs × drift levels D1–D4).
//!
//! The headline sweep runs the full matrix and BENCH_rebase.json
//! records:
//!
//! * `bench.rebase_cells` / `bench.rebase_auto_ported` — matrix size
//!   and auto-port successes,
//! * `bench.rebase_auto_pct_d1` .. `_d4` — per-level auto-port rate
//!   (percent, integer-truncated),
//! * `bench.rebase_reused` — cells where the *original* pack still
//!   run-pre-matched the drifted kernel and needed no source work,
//! * `bench.rebase_misports` — ground-truth violations (must be 0),
//! * `bench.rebase_sweep_ms` — wall time for the whole matrix,
//! * every `rebase.*` pipeline counter absorbed from the workers
//!   (reuse attempts, hunks ported per strategy ladder, learned
//!   renames/moves, verdict counts).
//!
//! Criterion then times a single-CVE single-level rebase end to end.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_core::RebaseStatus;
use ksplice_eval::{run_rebase_matrix, RebaseMatrixConfig};
use ksplice_lang::DriftLevel;
use ksplice_trace::Tracer;

fn bench(c: &mut Criterion) {
    let mut tracer = Tracer::new();

    let cfg = RebaseMatrixConfig::default();
    let t = Instant::now();
    let matrix = run_rebase_matrix(&cfg, &mut tracer).expect("matrix runs");
    let secs = t.elapsed().as_secs_f64();

    let auto_ported = matrix
        .cells
        .iter()
        .filter(|cell| cell.status == RebaseStatus::AutoPorted)
        .count() as u64;
    let reused = matrix.cells.iter().filter(|cell| cell.reused).count() as u64;
    assert!(matrix.misports().is_empty(), "{}", matrix.render());
    assert!(matrix.unclassified().is_empty(), "{}", matrix.render());

    tracer.count("bench.rebase_cells", matrix.cells.len() as u64);
    tracer.count("bench.rebase_auto_ported", auto_ported);
    tracer.count("bench.rebase_reused", reused);
    tracer.count("bench.rebase_misports", matrix.misports().len() as u64);
    for &level in &matrix.levels {
        let key = format!("bench.rebase_auto_pct_{}", level.name().to_lowercase());
        tracer.count(&key, matrix.auto_port_rate(level) as u64);
    }
    tracer.count("bench.rebase_sweep_ms", (secs * 1e3) as u64);
    println!(
        "== rebase: {auto_ported}/{} cells auto-ported in {secs:.2}s (D1 {:.1}%, D4 {:.1}%) ==",
        matrix.cells.len(),
        matrix.auto_port_rate(DriftLevel::D1),
        matrix.auto_port_rate(DriftLevel::D4),
    );

    std::fs::write("BENCH_rebase.json", tracer.metrics_json()).expect("write BENCH_rebase.json");

    c.bench_function("rebase/one_cve_d2", |b| {
        b.iter(|| {
            let cfg = RebaseMatrixConfig {
                cve_limit: 1,
                levels: vec![DriftLevel::D2],
                jobs: 1,
                ..RebaseMatrixConfig::default()
            };
            run_rebase_matrix(&cfg, &mut Tracer::disabled()).expect("cell runs")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
