//! Fuzz-campaign throughput — how fast the differential oracle chews
//! through mutants.
//!
//! Headline numbers, written to BENCH_fuzz.json:
//!
//! * `fuzz_serial_ms` / `fuzz_parallel_ms` — wall-clock of a fixed-seed
//!   200-mutant campaign with jobs=1 and jobs=available_parallelism.
//! * `fuzz_mutants_per_sec` — parallel throughput (each mutant is a full
//!   create → dual cold boot → hot apply → workload → diff round trip).
//!
//! Criterion then times a tiny sequential campaign for a stable
//! per-mutant latency figure.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_core::Tracer;
use ksplice_eval::{default_eval_jobs, run_campaign, FuzzConfig, Workload};

const MUTANTS: usize = 200;

fn campaign_wall_ms(jobs: usize, tracer: &mut Tracer) -> u128 {
    let cfg = FuzzConfig {
        seed: 1,
        mutants: MUTANTS,
        jobs,
        workload: Workload::Syscalls,
        ..FuzzConfig::default()
    };
    let t = Instant::now();
    let report = run_campaign(&cfg, tracer).expect("campaign failed");
    assert!(report.clean(), "bench campaign found oracle failures");
    t.elapsed().as_millis()
}

fn bench(c: &mut Criterion) {
    let jobs = default_eval_jobs();
    let mut tracer = Tracer::new();
    let fuzz_serial_ms = campaign_wall_ms(1, &mut Tracer::disabled());
    let fuzz_parallel_ms = campaign_wall_ms(jobs, &mut tracer);
    let per_sec = MUTANTS as u128 * 1_000 / fuzz_parallel_ms.max(1);
    tracer.count("bench.fuzz_serial_ms", fuzz_serial_ms as u64);
    tracer.count("bench.fuzz_parallel_ms", fuzz_parallel_ms as u64);
    tracer.count("bench.fuzz_jobs", jobs as u64);
    tracer.count("bench.fuzz_mutants", MUTANTS as u64);
    tracer.count("bench.fuzz_mutants_per_sec", per_sec as u64);
    println!(
        "\n== fuzz campaign ({MUTANTS} mutants): {fuzz_serial_ms} ms serial, \
         {fuzz_parallel_ms} ms with {jobs} job(s) — {per_sec} mutants/s ==\n"
    );
    std::fs::write("BENCH_fuzz.json", tracer.metrics_json()).expect("write BENCH_fuzz.json");

    // Per-mutant latency: a small fixed-seed sequential campaign, so the
    // figure tracks the full oracle round trip rather than thread-pool
    // scheduling.
    let mut group = c.benchmark_group("fuzz");
    group.bench_function("campaign_10_mutants_serial", |b| {
        b.iter(|| {
            let cfg = FuzzConfig {
                seed: 1,
                mutants: 10,
                jobs: 1,
                ..FuzzConfig::default()
            };
            run_campaign(&cfg, &mut Tracer::disabled()).expect("campaign failed")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
