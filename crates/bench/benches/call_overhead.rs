//! §2 — "calls to the replaced functions will take a few cycles longer
//! because of the inserted jump instructions."
//!
//! To isolate the trampoline's cost from the patch's own code changes,
//! the patch here alters only an untaken branch's comparison constant:
//! the executed instruction sequence is identical before and after,
//! except for the one redirecting `jmp` — whose cost is exactly what the
//! cycle counters show.

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_core::{create_update, ApplyOptions, CreateOptions, Ksplice};
use ksplice_kernel::Kernel;
use ksplice_lang::{Options, SourceTree};
use ksplice_patch::make_diff;

const V1: &str =
    "int hot(int x) {\n    if (x == 12345) {\n        return 0 - 1;\n    }\n    return x + 1;\n}\n";
const V2: &str =
    "int hot(int x) {\n    if (x == 12346) {\n        return 0 - 1;\n    }\n    return x + 1;\n}\n";

fn boot() -> Kernel {
    let mut tree = SourceTree::new();
    tree.insert("hot.kc", V1);
    Kernel::boot(&tree, &Options::distro()).expect("boot")
}

fn cycles_for_call(kernel: &mut Kernel, args: &[u64]) -> u64 {
    let addr = kernel.syms.lookup_name("hot")[0].addr;
    let tid = kernel.spawn_at(addr, args, "probe").unwrap();
    kernel.run(1_000_000);
    let t = kernel.thread(tid).unwrap();
    assert!(matches!(t.state, ksplice_kernel::ThreadState::Exited(_)));
    t.cycles
}

fn bench(c: &mut Criterion) {
    let mut tree = SourceTree::new();
    tree.insert("hot.kc", V1);
    let patch = make_diff("hot.kc", V1, V2).unwrap();
    let (pack, _) = create_update("overhead", &tree, &patch, &CreateOptions::default()).unwrap();

    let mut kernel = boot();
    let before = cycles_for_call(&mut kernel, &[5]);
    let mut ks = Ksplice::new();
    ks.apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap();
    let after = cycles_for_call(&mut kernel, &[5]);
    println!(
        "\n== call cycles before/after trampoline: {before} -> {after} (+{} cycles; paper: \"a few cycles\") ==\n",
        after.saturating_sub(before)
    );
    assert!(
        after > before,
        "the trampoline adds at least one instruction"
    );
    assert!(
        after - before <= 3,
        "one jump instruction costs a few cycles"
    );

    c.bench_function("call_overhead/original", |b| {
        let mut k = boot();
        b.iter(|| k.call_function("hot", &[5]).unwrap())
    });
    c.bench_function("call_overhead/through_trampoline", |b| {
        let mut k = boot();
        let mut ks = Ksplice::new();
        ks.apply(&mut k, &pack, &ApplyOptions::default()).unwrap();
        b.iter(|| k.call_function("hot", &[5]).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
