//! Figure 3 — "Number of patches by patch length" — and Table 1.
//!
//! Regenerates the paper's histogram from the 64-CVE corpus and times
//! the patch-analysis path (unified-diff parse + line accounting).

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_eval::{corpus, figure3_buckets};
use ksplice_patch::Patch;

fn print_figure3_and_table1() {
    let cases = corpus();
    let locs: Vec<usize> = cases
        .iter()
        .map(|c| {
            Patch::parse(&c.patch_text())
                .expect("corpus patch parses")
                .changed_line_count()
        })
        .collect();
    println!("\n== Figure 3: number of patches by patch length (paper: 35 within 5 lines, 53 within 15) ==");
    for (bucket, n) in figure3_buckets(&locs) {
        if n > 0 {
            println!("{bucket:>6} lines | {:<35} {n}", "#".repeat(n));
        }
    }
    println!("\n== Table 1: patches that cannot be applied without new code ==");
    println!(
        "{:<16} {:<22} {:>9}",
        "CVE ID", "Reason for failure", "New code"
    );
    let mut rows: Vec<_> = cases.iter().filter(|c| c.needs_custom_code()).collect();
    rows.sort_by(|a, b| b.id.cmp(a.id));
    for c in rows {
        let cc = c.custom.as_ref().unwrap();
        let reason = match cc.reason {
            ksplice_eval::CustomReason::AddsFieldToStruct => "adds field to struct",
            ksplice_eval::CustomReason::ChangesDataInit => "changes data init",
        };
        println!("{:<16} {:<22} {:>4} lines", c.id, reason, cc.lines);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_figure3_and_table1();
    let cases = corpus();
    c.bench_function("figure3/corpus_patch_analysis", |b| {
        b.iter(|| {
            let locs: Vec<usize> = cases
                .iter()
                .map(|c| Patch::parse(&c.patch_text()).unwrap().changed_line_count())
                .collect();
            figure3_buckets(&locs)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
