//! §5 — end-to-end `ksplice-create` and `ksplice-apply` cost.
//!
//! create performs two full kernel builds plus the object diff; apply
//! loads modules, run-pre matches, safety-checks and writes trampolines.

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_bench::{boot_eval_kernel, pack_for, small_cve};
use ksplice_core::{ApplyOptions, Ksplice};

fn bench(c: &mut Criterion) {
    let case = small_cve();
    c.bench_function("create/two_builds_plus_diff", |b| {
        b.iter(|| pack_for(&case))
    });

    let (pack, _) = pack_for(&case);
    c.bench_function("apply/load_match_check_patch", |b| {
        b.iter_batched(
            || (boot_eval_kernel(), Ksplice::new()),
            |(mut kernel, mut ks)| {
                ks.apply(&mut kernel, &pack, &ApplyOptions::default())
                    .unwrap()
            },
            criterion::BatchSize::PerIteration,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
