//! Tentpole perf numbers — the incremental build cache and the parallel
//! evaluation driver.
//!
//! Three headline measurements, all written to BENCH_corpus_create.json
//! alongside the build-cache counters:
//!
//! 1. `eval_serial_ms` / `eval_parallel_ms` — wall-clock of the full
//!    64-CVE evaluation (the tests/full_corpus.rs path) with jobs=1 and
//!    jobs=available_parallelism.
//! 2. `create_cold_ms` / `create_warm_ms` — sweeping `create_update`
//!    over the whole corpus with a cold cache per CVE vs one shared
//!    cache (the base tree compiles once, only patched units recompile).
//!
//! Criterion then times a single warm-cache create for the per-update
//! latency figure.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_core::{create_update_cached_traced, BuildCache, CreateOptions, Tracer};
use ksplice_eval::{base_tree, corpus, default_eval_jobs, run_full_evaluation_jobs};

const STRESS_ROUNDS: u64 = 2;

fn eval_wall_ms(jobs: usize) -> u128 {
    let t = Instant::now();
    run_full_evaluation_jobs(STRESS_ROUNDS, jobs).expect("evaluation failed");
    t.elapsed().as_millis()
}

fn create_sweep_ms(shared_cache: bool, tracer: &mut Tracer) -> u128 {
    let base = base_tree();
    let shared = BuildCache::new();
    let t = Instant::now();
    for case in corpus() {
        let fresh;
        let cache = if shared_cache {
            &shared
        } else {
            fresh = BuildCache::new();
            &fresh
        };
        let opts = CreateOptions {
            accept_data_changes: case.needs_custom_code(),
            ..CreateOptions::default()
        };
        let patch = if case.needs_custom_code() {
            case.full_patch_text()
        } else {
            case.patch_text()
        };
        create_update_cached_traced(case.id, &base, &patch, &opts, cache, tracer)
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
    }
    t.elapsed().as_millis()
}

fn bench(c: &mut Criterion) {
    let jobs = default_eval_jobs();
    let eval_serial_ms = eval_wall_ms(1);
    let eval_parallel_ms = eval_wall_ms(jobs);

    let mut tracer = Tracer::new();
    let create_cold_ms = create_sweep_ms(false, &mut Tracer::disabled());
    let create_warm_ms = create_sweep_ms(true, &mut tracer);
    tracer.count("bench.eval_serial_ms", eval_serial_ms as u64);
    tracer.count("bench.eval_parallel_ms", eval_parallel_ms as u64);
    tracer.count("bench.eval_jobs", jobs as u64);
    tracer.count("bench.create_cold_ms", create_cold_ms as u64);
    tracer.count("bench.create_warm_ms", create_warm_ms as u64);
    println!(
        "\n== full evaluation: {eval_serial_ms} ms serial, {eval_parallel_ms} ms with {jobs} job(s) ==\n\
         == corpus create sweep: {create_cold_ms} ms cold cache, {create_warm_ms} ms shared cache ==\n"
    );
    std::fs::write("BENCH_corpus_create.json", tracer.metrics_json())
        .expect("write BENCH_corpus_create.json");

    // Per-update latency with a hot cache: only the patched units and the
    // pack assembly are on the measured path.
    let base = base_tree();
    let case = corpus().into_iter().next().unwrap();
    let patch = case.patch_text();
    let opts = CreateOptions::default();
    let cache = BuildCache::new();
    create_update_cached_traced(case.id, &base, &patch, &opts, &cache, &mut Tracer::disabled())
        .unwrap();
    c.bench_function("corpus_create/warm_cache_single", |b| {
        b.iter(|| {
            create_update_cached_traced(
                case.id,
                &base,
                &patch,
                &opts,
                &cache,
                &mut Tracer::disabled(),
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
