//! §2/§5.2 — the stop_machine interruption ("about 0.7 milliseconds").
//!
//! Applies a hot update to a kernel running busy threads and reports the
//! measured pause, then times the full apply/undo cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_bench::{boot_eval_kernel, pack_for, small_cve};
use ksplice_core::{ApplyOptions, Ksplice, Tracer};

fn bench(c: &mut Criterion) {
    let case = small_cve();
    let (pack, _) = pack_for(&case);

    // One instrumented run with live load for the headline number. The
    // tracer's metrics (stop_machine attempts, pause histogram in µs,
    // trampolines written) go to BENCH_apply_pause.json.
    {
        let mut kernel = boot_eval_kernel();
        let entry = ksplice_eval::load_stress(&mut kernel).unwrap();
        ksplice_eval::spawn_stress(&mut kernel, entry, 1_000).unwrap();
        kernel.run(5_000);
        let mut ks = Ksplice::new();
        let mut tracer = Tracer::new();
        ks.apply_traced(&mut kernel, &pack, &ApplyOptions::default(), &mut tracer)
            .unwrap();
        println!(
            "\n== stop_machine pause while applying {} under load: {:?} (paper: ~0.7 ms) ==\n",
            case.id,
            kernel.last_stop_machine.unwrap()
        );
        std::fs::write("BENCH_apply_pause.json", tracer.metrics_json())
            .expect("write BENCH_apply_pause.json");
    }

    c.bench_function("apply_pause/stop_machine_section", |b| {
        // Fresh kernel per batch; measure apply+undo (the pause is the
        // dominated inner section; Criterion reports the full redirect
        // cost including the safety check).
        b.iter_batched(
            || (boot_eval_kernel(), Ksplice::new()),
            |(mut kernel, mut ks)| {
                ks.apply(&mut kernel, &pack, &ApplyOptions::default())
                    .unwrap();
                ks.undo(&mut kernel, case.id, &ApplyOptions::default())
                    .unwrap();
            },
            criterion::BatchSize::PerIteration,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
