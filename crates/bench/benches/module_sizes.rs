//! §5.1 — "the helper module … can be much larger than the primary
//! module."
//!
//! Prints helper vs primary sizes across the corpus and times update
//! packaging.

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_bench::{pack_for, small_cve};
use ksplice_eval::corpus;

fn bench(c: &mut Criterion) {
    // A representative sample across patch sizes.
    let sample = [
        "CVE-2005-4639",
        "CVE-2006-2451",
        "CVE-2007-3843",
        "CVE-2008-0600",
    ];
    let mut ratios = Vec::new();
    println!("\n== helper vs primary module sizes (paper §5.1) ==");
    println!(
        "{:<16} {:>9} {:>9} {:>7}",
        "CVE", "helper", "primary", "ratio"
    );
    for id in sample {
        let case = corpus().into_iter().find(|c| c.id == id).unwrap();
        let (pack, _) = pack_for(&case);
        let (h, p) = (pack.helper_size(), pack.primary_size());
        ratios.push(h as f64 / p as f64);
        println!(
            "{:<16} {:>8}B {:>8}B {:>6.1}x",
            id,
            h,
            p,
            h as f64 / p as f64
        );
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("average helper/primary ratio: {avg:.1}x (paper: \"much larger\")\n");
    assert!(avg > 1.0);

    let case = small_cve();
    c.bench_function("module_sizes/package_update", |b| {
        b.iter(|| pack_for(&case))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
