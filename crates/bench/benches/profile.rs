//! Profiler overhead and migration evidence — the `ksplice-perf` bench.
//!
//! One headline run writes BENCH_profile.json: a full pre/post sampling
//! profile of CVE-2005-1263 under the stress workload, recording
//! `bench.profile_ms` wall-clock alongside the profiler's own counters
//! (`profile.samples_recorded`, `profile.functions_migrated`). The
//! migration count is the paper-facing claim: after apply, the hot path
//! runs out of the patch arena, and the profile proves it.
//!
//! Criterion then times a short two-round profile for the per-run cost.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_core::Tracer;
use ksplice_eval::{run_profile, ProfileConfig};

fn bench(c: &mut Criterion) {
    let cfg = ProfileConfig {
        rounds: 12,
        ..ProfileConfig::default()
    };
    let mut tracer = Tracer::new();
    let t = Instant::now();
    let report = run_profile("CVE-2005-1263", &cfg, &mut tracer).expect("profile run");
    let profile_ms = t.elapsed().as_millis();
    tracer.count("bench.profile_ms", profile_ms as u64);
    assert!(
        !report.migrated.is_empty(),
        "profile shows no function migrating into the patch arena"
    );
    println!(
        "\n== profile: {} pre / {} post samples, {} fn(s) migrated into the arena, {profile_ms} ms ==\n",
        report.pre.samples,
        report.post.samples,
        report.migrated.len()
    );
    std::fs::write("BENCH_profile.json", tracer.metrics_json())
        .expect("write BENCH_profile.json");

    c.bench_function("profile/two_rounds", |b| {
        b.iter(|| {
            run_profile(
                "CVE-2005-1263",
                &ProfileConfig {
                    rounds: 2,
                    ..ProfileConfig::default()
                },
                &mut Tracer::disabled(),
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
