//! Quiescence under load — the SMP substrate's headline measurement.
//!
//! One headline sweep writes BENCH_smp.json: single-attempt applies of
//! CVE-2005-1263 (`sys_open`) against a 4-vCPU kernel at increasing
//! background stress load, recording the real `NotQuiescent` abort rate
//! per level (`bench.smp_aborts` / `bench.smp_probes`, labeled by load)
//! and the successful-window pause distribution in deterministic VM
//! steps (`bench.smp_pause_steps` histogram, labeled by load). Every
//! abort is drained to success by the retry policy, so the sweep also
//! asserts the §5.2 retry story end to end.
//!
//! Criterion then times a short two-level sweep for the per-run cost.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_core::Tracer;
use ksplice_eval::{run_quiescence_load, SmpLoadConfig};

fn bench(c: &mut Criterion) {
    let cfg = SmpLoadConfig::default();
    let mut tracer = Tracer::new();
    let t = Instant::now();
    let report = run_quiescence_load(&cfg, &mut tracer).expect("quiescence sweep");
    let sweep_ms = t.elapsed().as_millis();
    tracer.count("bench.smp_sweep_ms", sweep_ms as u64);
    assert!(
        report.total_aborts() > 0,
        "the loaded levels should produce real NotQuiescent aborts"
    );
    assert_eq!(
        report.rows.first().map(|r| r.aborts),
        Some(0),
        "the unloaded level should capture first try"
    );
    println!(
        "\n== quiescence under load ({} vCPUs, {} probes/level, {sweep_ms} ms) ==\n{}",
        report.cpus,
        cfg.probes,
        report.render()
    );
    std::fs::write("BENCH_smp.json", tracer.metrics_json()).expect("write BENCH_smp.json");

    c.bench_function("smp/two_levels", |b| {
        b.iter(|| {
            run_quiescence_load(
                &SmpLoadConfig {
                    load_levels: vec![0, 4],
                    probes: 4,
                    ..SmpLoadConfig::default()
                },
                &mut Tracer::disabled(),
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
