//! DESIGN §10 — the lifecycle manager's costs: the read-only pre-flight
//! gate, the per-round overhead of the quarantine watch window, and the
//! stop_machine pause of non-LIFO (re-pointing) vs LIFO undo.
//!
//! The instrumented section prints the headline numbers and dumps them
//! to BENCH_lifecycle.json before handing the hot loops to Criterion.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_bench::{boot_eval_kernel, pack_for, small_cve};
use ksplice_core::{
    preflight, ApplyOptions, HealthProbe, Ksplice, Tracer, UpdateManager, UpdatePack, WatchPolicy,
};
use ksplice_eval::{corpus, DISJOINT_STACK};

/// Steps per watch round used throughout (the `WatchPolicy` default).
const STEPS_PER_ROUND: u64 = 2_000;

/// Applies `pack` under a watch window of `rounds` rounds and returns
/// the wall-clock of the whole `apply_watched` call.
fn watched_apply(pack: &UpdatePack, rounds: u32) -> Duration {
    let mut kernel = boot_eval_kernel();
    let mut mgr = UpdateManager::with_watch(WatchPolicy {
        rounds,
        steps_per_round: STEPS_PER_ROUND,
    });
    let mut probes = vec![HealthProbe::canary("sys_getuid", &[], 0)];
    let t = Instant::now();
    mgr.apply_watched(
        &mut kernel,
        pack,
        &mut probes,
        &ApplyOptions::default(),
        &mut Tracer::disabled(),
    )
    .expect("watched apply");
    t.elapsed()
}

/// Boots a kernel and stacks the three disjoint corpus updates on it.
fn stacked() -> (ksplice_kernel::Kernel, Ksplice, Vec<&'static str>) {
    let cases = corpus();
    let mut kernel = boot_eval_kernel();
    let mut ks = Ksplice::new();
    for id in DISJOINT_STACK {
        let case = cases.iter().find(|c| c.id == id).expect("corpus entry");
        let (pack, _) = pack_for(case);
        ks.apply(&mut kernel, &pack, &ApplyOptions::default())
            .expect("stack apply");
    }
    (kernel, ks, DISJOINT_STACK.to_vec())
}

fn bench(c: &mut Criterion) {
    let case = small_cve();
    let (pack, _) = pack_for(&case);

    // 1. Pre-flight gate: read-only, so one kernel serves every pass.
    let kernel = boot_eval_kernel();
    let ks = Ksplice::new();
    let iters = 200u32;
    let t = Instant::now();
    for _ in 0..iters {
        preflight(&ks, &kernel, &pack, &mut Tracer::disabled()).expect("preflight");
    }
    let preflight_ns = t.elapsed().as_nanos() as u64 / u64::from(iters);

    // 2. Watch window: the marginal cost of one probe round is the slope
    // between a 1-round and a 41-round window (same apply amortised
    // out). Min-of-3 on each end keeps scheduler noise, which is larger
    // than a single round, out of the subtraction.
    let t1 = (0..3).map(|_| watched_apply(&pack, 1)).min().unwrap();
    let t41 = (0..3).map(|_| watched_apply(&pack, 41)).min().unwrap();
    let per_round_ns = (t41.saturating_sub(t1)).as_nanos() as u64 / 40;

    // 3. Undo pause: the newest update reverses the ordinary LIFO way;
    // a mid-stack update goes through the re-pointing path. Both pauses
    // are the successful stop_machine window, straight off the report.
    let (mut kernel, mut ks_lifo, ids) = stacked();
    let lifo = ks_lifo
        .undo_any_traced(
            &mut kernel,
            ids[2],
            &ApplyOptions::default(),
            &mut Tracer::disabled(),
        )
        .expect("LIFO undo");
    let (mut kernel, mut ks_mid, ids) = stacked();
    let non_lifo = ks_mid
        .undo_any_traced(
            &mut kernel,
            ids[1],
            &ApplyOptions::default(),
            &mut Tracer::disabled(),
        )
        .expect("non-LIFO undo");

    println!(
        "\n== lifecycle: preflight {preflight_ns} ns, watch round ({STEPS_PER_ROUND} steps + 1 canary) {per_round_ns} ns, \
undo pause LIFO {:?} vs non-LIFO {:?} ==\n",
        lifo.pause, non_lifo.pause
    );
    std::fs::write(
        "BENCH_lifecycle.json",
        format!(
            "{{\n  \"preflight_ns\": {preflight_ns},\n  \"watch_round_ns\": {per_round_ns},\n  \
\"watch_steps_per_round\": {STEPS_PER_ROUND},\n  \
\"watch_rounds_measured\": [1, 41],\n  \
\"undo_pause_lifo_ns\": {},\n  \"undo_pause_non_lifo_ns\": {},\n  \
\"undo_lifo_id\": \"{}\",\n  \"undo_non_lifo_id\": \"{}\"\n}}\n",
            lifo.pause.as_nanos(),
            non_lifo.pause.as_nanos(),
            ids[2],
            ids[1],
        ),
    )
    .expect("write BENCH_lifecycle.json");

    c.bench_function("lifecycle/preflight", |b| {
        b.iter(|| preflight(&ks, &kernel, &pack, &mut Tracer::disabled()).unwrap())
    });

    c.bench_function("lifecycle/watch_window_1_round", |b| {
        b.iter_batched(
            boot_eval_kernel,
            |mut kernel| {
                let mut mgr = UpdateManager::with_watch(WatchPolicy {
                    rounds: 1,
                    steps_per_round: STEPS_PER_ROUND,
                });
                let mut probes = vec![HealthProbe::canary("sys_getuid", &[], 0)];
                mgr.apply_watched(
                    &mut kernel,
                    &pack,
                    &mut probes,
                    &ApplyOptions::default(),
                    &mut Tracer::disabled(),
                )
                .unwrap();
            },
            criterion::BatchSize::PerIteration,
        )
    });

    c.bench_function("lifecycle/undo_any_mid_stack", |b| {
        b.iter_batched(
            stacked,
            |(mut kernel, mut ks, ids)| {
                ks.undo_any_traced(
                    &mut kernel,
                    ids[1],
                    &ApplyOptions::default(),
                    &mut Tracer::disabled(),
                )
                .unwrap();
            },
            criterion::BatchSize::PerIteration,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
