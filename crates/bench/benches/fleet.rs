//! Fleet rollout throughput — updates/sec sustained across 10k+
//! simulated kernels.
//!
//! The headline sweep drives one staged rollout (canary → geometric
//! waves → fleet-wide commit) of the CVE-2006-2451 fix across a
//! 10 000-node heterogeneous fleet (three base versions, per-version
//! packs) over a lightly faulty transport, sharded across the worker
//! pool. BENCH_fleet.json records:
//!
//! * `bench.fleet_nodes` / `bench.fleet_updates_committed` — fleet size
//!   and commits (must match),
//! * `bench.fleet_updates_per_sec` — sustained commit throughput,
//! * `bench.fleet_ticks` / `bench.fleet_sweep_ms` — rollout length in
//!   transport ticks and wall time,
//! * a secondary loaded sweep (`bench.fleet_loaded_*`) with 2-vCPU
//!   nodes running live workload threads, the satellite evidence that
//!   waves run against loaded multi-CPU kernels,
//! * every `fleet.*` rollout counter absorbed from the orchestrator.
//!
//! Criterion then times a small rollout end to end for the per-run cost.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_fleet::{
    build_packset, Fleet, FleetConfig, NetFaults, Outcome, RolloutOrchestrator, RolloutPolicy,
    SimTransport, VERSION_NAMES,
};
use ksplice_trace::Tracer;

fn jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(4)
}

/// One full rollout; returns (committed, ticks, wall seconds).
fn rollout(cfg: FleetConfig, policy: RolloutPolicy, tracer: &mut Tracer) -> (u64, u64, f64) {
    let mut fleet = Fleet::new(cfg).expect("fleet boots");
    let packset = build_packset(
        "cve-2006-2451",
        VERSION_NAMES.len(),
        &[],
        fleet.context().cache(),
    )
    .expect("packset builds");
    let faults = NetFaults::parse("drop:20,dup:10,delay:1..2").unwrap();
    let mut transport = SimTransport::with_faults(0xbe9c_4001, faults);
    let nodes = fleet.len() as u64;
    let t = Instant::now();
    let orch = RolloutOrchestrator::new(policy, packset, &fleet);
    let report = orch.run(&mut fleet, &mut transport, tracer);
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(report.outcome, Outcome::Committed, "{}", report.render());
    let committed: u64 = report.waves.iter().map(|w| w.committed as u64).sum();
    assert_eq!(committed, nodes, "every node must commit\n{}", report.render());
    (committed, report.ticks, secs)
}

fn bench(c: &mut Criterion) {
    let mut tracer = Tracer::new();

    // Headline: 10k heterogeneous kernels, staged waves, light faults.
    let (committed, ticks, secs) = rollout(
        FleetConfig {
            nodes: 10_000,
            ..FleetConfig::default()
        },
        RolloutPolicy {
            canary: 8,
            growth: 8,
            jobs: jobs(),
            max_ticks: 100_000,
            ..RolloutPolicy::default()
        },
        &mut tracer,
    );
    let ups = (committed as f64 / secs) as u64;
    tracer.count("bench.fleet_nodes", committed);
    tracer.count("bench.fleet_updates_committed", committed);
    tracer.count("bench.fleet_updates_per_sec", ups);
    tracer.count("bench.fleet_ticks", ticks);
    tracer.count("bench.fleet_sweep_ms", (secs * 1e3) as u64);
    println!("== fleet: {committed} kernels updated in {secs:.2}s ({ups} updates/sec) ==");

    // Secondary: loaded multi-vCPU nodes — waves against kernels with
    // live workload threads contending the quiescence checks.
    let (loaded, loaded_ticks, loaded_secs) = rollout(
        FleetConfig {
            nodes: 192,
            cpus: 2,
            load_threads: 2,
            ..FleetConfig::default()
        },
        RolloutPolicy {
            jobs: jobs(),
            ..RolloutPolicy::default()
        },
        &mut tracer,
    );
    let loaded_ups = (loaded as f64 / loaded_secs) as u64;
    tracer.count("bench.fleet_loaded_nodes", loaded);
    tracer.count("bench.fleet_loaded_updates_per_sec", loaded_ups);
    tracer.count("bench.fleet_loaded_ticks", loaded_ticks);
    tracer.count("bench.fleet_loaded_sweep_ms", (loaded_secs * 1e3) as u64);
    println!(
        "== fleet/loaded: {loaded} 2-vCPU kernels under load in {loaded_secs:.2}s ({loaded_ups} updates/sec) =="
    );

    std::fs::write("BENCH_fleet.json", tracer.metrics_json()).expect("write BENCH_fleet.json");

    c.bench_function("fleet/rollout_48", |b| {
        b.iter(|| {
            rollout(
                FleetConfig {
                    nodes: 48,
                    ..FleetConfig::default()
                },
                RolloutPolicy {
                    jobs: jobs(),
                    ..RolloutPolicy::default()
                },
                &mut Tracer::disabled(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
