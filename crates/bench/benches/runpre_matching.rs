//! §4.3 — run-pre matching throughput and robustness.
//!
//! Times matching a whole optimisation unit against the running kernel
//! (the per-byte walk with relocation recovery), and demonstrates the
//! abort behaviours: wrong source mismatches, wrong compiler version
//! mismatches, and the function-sections/no-function-sections divergence
//! matching succeeds through.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_bench::boot_eval_kernel;
use ksplice_core::{match_unit, match_unit_traced, Tracer};
use ksplice_eval::base_tree;
use ksplice_lang::{build_tree, Options};

fn bench(c: &mut Criterion) {
    let kernel = boot_eval_kernel();
    let pre = build_tree(&base_tree(), &Options::pre_post()).unwrap();
    let unit = pre.get("net/socket.kc").unwrap().clone();
    let empty = BTreeMap::new();

    // Robustness demo (E9), instrumented: the tracer's counters (bytes
    // matched, relocations recovered, nops skipped, pc-rel checks) go to
    // BENCH_runpre_matching.json for machine consumption.
    let mut tracer = Tracer::new();
    let ok = match_unit_traced(&kernel, &unit, &empty, &mut tracer).expect("same source matches");
    println!(
        "\n== run-pre matched net/socket.kc: {} functions, {} symbol bindings recovered ==",
        ok.fn_addrs.len(),
        ok.bindings.len()
    );
    std::fs::write("BENCH_runpre_matching.json", tracer.metrics_json())
        .expect("write BENCH_runpre_matching.json");
    let v2 = build_tree(
        &base_tree(),
        &Options {
            cc_version: 2,
            ..Options::pre_post()
        },
    )
    .unwrap();
    let err = match_unit(&kernel, v2.get("net/socket.kc").unwrap(), &empty).unwrap_err();
    println!("== wrong compiler version aborts: {err} ==\n");

    let total_bytes: u64 = unit
        .sections
        .iter()
        .filter(|s| s.is_function_text())
        .map(|s| s.size)
        .sum();
    let mut g = c.benchmark_group("runpre");
    g.throughput(criterion::Throughput::Bytes(total_bytes));
    g.bench_function("match_unit/net_socket", |b| {
        b.iter(|| match_unit(&kernel, &unit, &empty).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
