//! VM dispatch throughput — how fast the decode-cached block
//! dispatcher retires instructions, and what the icache does under a
//! live hot-patch.
//!
//! Headline numbers, written to BENCH_vm.json:
//!
//! * `vm_steps_per_sec` — instructions/second running the §6.2 stress
//!   workload on a distro-built kernel.
//! * `vm_block_hit_permille` — share of block dispatches served from
//!   the decode cache (‰) over that run.
//! * `vm_icache_flushes` / `vm_blocks_evicted` — flush sweeps observed
//!   across a create → apply → undo round trip, proving trampoline
//!   writes invalidate cached text like `flush_icache_range` would.
//!
//! Criterion then times one stress round for a stable latency figure.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_bench::{pack_for, small_cve};
use ksplice_core::{ApplyOptions, Ksplice, Tracer};
use ksplice_eval::{base_tree, load_stress};
use ksplice_kernel::Kernel;
use ksplice_lang::Options;

/// Stress rounds for the throughput measurement — enough to retire
/// tens of millions of instructions so the figure is steady.
const ROUNDS: u64 = 2_000;

fn bench(c: &mut Criterion) {
    let mut tracer = Tracer::new();
    let base = base_tree();

    // Throughput: the stress workload on a fresh distro kernel.
    let mut kernel = Kernel::boot(&base, &Options::distro()).expect("boot");
    let entry = load_stress(&mut kernel).expect("stress loads");
    let steps0 = kernel.steps;
    let t = Instant::now();
    kernel
        .call_at_limited(entry, &[ROUNDS], u64::MAX)
        .expect("stress runs");
    let wall = t.elapsed();
    let steps = kernel.steps - steps0;
    let per_sec = (steps as u128 * 1_000_000 / wall.as_micros().max(1)) as u64;
    let stats = kernel.vm_stats;
    let dispatches = stats.block_hits + stats.blocks_decoded;
    let hit_permille = (stats.block_hits * 1000).checked_div(dispatches).unwrap_or(0);

    // Icache behavior under a real hot patch: apply + undo a corpus CVE
    // on the same (warm) kernel and watch the flush counters move. Run
    // the function about to be patched once so its entry block is hot
    // in the cache — the trampoline write must evict exactly such
    // blocks.
    let cve = small_cve();
    let (pack, _) = pack_for(&cve);
    for unit in pack.diff.affected() {
        for f in &unit.changed_fns {
            let name = f.strip_prefix(".text.").unwrap_or(f);
            let _ = kernel.call_function_limited(name, &[1, 1, 1], 100_000);
        }
    }
    let flushes0 = kernel.vm_stats.icache_flushes;
    let evicted0 = kernel.vm_stats.blocks_evicted;
    let mut ks = Ksplice::new();
    ks.apply_traced(&mut kernel, &pack, &ApplyOptions::default(), &mut tracer)
        .expect("apply");
    kernel.call_at_limited(entry, &[1], u64::MAX).expect("post-apply stress");
    ks.undo_traced(&mut kernel, cve.id, &ApplyOptions::default(), &mut tracer)
        .expect("undo");
    kernel.call_at_limited(entry, &[1], u64::MAX).expect("post-undo stress");
    let flushes = kernel.vm_stats.icache_flushes - flushes0;
    let evicted = kernel.vm_stats.blocks_evicted - evicted0;
    assert!(flushes >= 2, "apply and undo must each flush the icache");
    assert!(evicted > 0, "trampoline writes must evict cached blocks");

    tracer.count("bench.vm_steps_measured", steps);
    tracer.count("bench.vm_steps_per_sec", per_sec);
    tracer.count("bench.vm_block_hit_permille", hit_permille);
    tracer.count("bench.vm_blocks_decoded", stats.blocks_decoded);
    tracer.count("bench.vm_icache_flushes", flushes);
    tracer.count("bench.vm_blocks_evicted", evicted);
    println!(
        "\n== vm dispatch: {per_sec} steps/s over {steps} steps \
         ({hit_permille}‰ block-cache hits, {} blocks decoded); \
         apply+undo round trip: {flushes} icache flushes, {evicted} blocks evicted ==\n",
        stats.blocks_decoded
    );
    std::fs::write("BENCH_vm.json", tracer.metrics_json()).expect("write BENCH_vm.json");

    let mut group = c.benchmark_group("vm");
    group.bench_function("stress_round", |b| {
        b.iter(|| kernel.call_at_limited(entry, &[1], u64::MAX).expect("round"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
