//! §6.3 — symbol ambiguity and inlining statistics.
//!
//! Prints the reproduction's analogues of the paper's numbers (7.9 % of
//! symbols ambiguous; 21.1 % of units affected; 20 of 64 patches touch an
//! inlined function, only 4 declared inline; 5 of 64 touch an ambiguous
//! symbol) and times the kallsyms statistics pass.

use criterion::{criterion_group, criterion_main, Criterion};
use ksplice_bench::boot_eval_kernel;
use ksplice_eval::{base_tree, corpus, corpus_stats, symbol_stats};

fn bench(c: &mut Criterion) {
    let kernel = boot_eval_kernel();
    let units = base_tree()
        .iter()
        .filter(|(p, _)| p.ends_with(".kc"))
        .count();
    let s = symbol_stats(&kernel, units);
    println!(
        "\n== kallsyms ambiguity: {}/{} symbols ({:.1}%, paper 7.9%); {}/{} units ({:.1}%, paper 21.1%) ==",
        s.ambiguous_symbols,
        s.total_symbols,
        s.ambiguous_fraction * 100.0,
        s.units_with_ambiguous,
        s.total_units,
        s.unit_fraction * 100.0
    );
    let cases = corpus();
    let cs = corpus_stats(&cases, &kernel);
    println!(
        "== corpus: {} of 64 patches touch inlined fns (paper 20); {} declare inline (paper 4); {} touch ambiguous symbols (paper 5) ==\n",
        cs.touching_inlined.len(),
        cs.touching_inline_keyword.len(),
        cs.touching_ambiguous.len()
    );

    c.bench_function("symbol_stats/kallsyms_scan", |b| {
        b.iter(|| symbol_stats(&kernel, units))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
