//! Fleet edges at the intersection of transport partitions and
//! kernel-version drift:
//!
//! 1. **Whole-rollout partition** — a node cut off before the first
//!    delivery and healed only long after every contact attempt in its
//!    schedule has lapsed still converges: the orchestrator degrades it
//!    to the straggler drip instead of reading silence as health, and
//!    the parked traffic re-enters on heal.
//! 2. **Drifted stratum needs a rebased pack** — a packset built only
//!    for 2.6.16 run-pre-mismatches on the 2.6.17 stratum (same-unit
//!    drift) and the rollout contains; substituting that stratum's slot
//!    with a pack ported by `ksplice_core::rebase_update` converges the
//!    whole fleet, version 2 included.

use ksplice_core::{rebase_update, RebaseOptions, RebaseStatus};
use ksplice_eval::diff_trees;
use ksplice_fleet::{
    build_packset, default_canaries, patched_tree, version_tree, Fleet, FleetConfig, Outcome,
    PackSet, Partition, RolloutOrchestrator, RolloutPolicy, SimTransport, VERSION_NAMES,
};
use ksplice_trace::Tracer;

fn resident_fleet(nodes: u32, seed: u64) -> Fleet {
    Fleet::new(FleetConfig {
        nodes,
        seed,
        resident: true,
        ..FleetConfig::default()
    })
    .expect("fleet boots")
}

#[test]
fn node_partitioned_across_the_whole_rollout_converges_after_heal() {
    let run = || {
        let mut fleet = resident_fleet(12, 0xdead_beef);
        let packset = build_packset(
            "cve-2006-2451",
            VERSION_NAMES.len(),
            &[],
            fleet.context().cache(),
        )
        .expect("packset builds");
        let mut transport = SimTransport::new(41);
        // Node 5 is unreachable from tick 0 until well past the point
        // where every other node has committed and node 5's contact
        // schedule has exhausted into the straggler drip.
        transport.add_partition(Partition::parse("5..5@0..400").unwrap());
        let mut tracer = Tracer::new();
        let orch = RolloutOrchestrator::new(RolloutPolicy::default(), packset, &fleet);
        let report = orch.run(&mut fleet, &mut transport, &mut tracer);

        assert_eq!(report.outcome, Outcome::Committed, "{}", report.render());
        assert_eq!(report.uncontacted, 0, "{}", report.render());
        let committed: usize = report.waves.iter().map(|w| w.committed).sum();
        assert_eq!(committed, 12, "{}", report.render());
        assert!(
            report.stragglers_converged >= 1,
            "the partitioned node must re-converge via the drip\n{}",
            report.render()
        );
        assert!(
            report.transport.parked > 0 && report.transport.healed > 0,
            "the partition must actually bite: {:?}",
            report.transport
        );
        // The partitioned node itself holds the update — convergence was
        // not satisfied by the other eleven.
        let node = fleet.node(5);
        assert!(
            node.committed.iter().any(|u| u == "cve-2006-2451"),
            "node 5 (version {}) missing the update after heal",
            node.version
        );
        assert_eq!(
            tracer.counter("fleet.stragglers_converged"),
            u64::from(report.stragglers_converged)
        );
        report.render()
    };
    assert_eq!(run(), run(), "partition replay must be deterministic");
}

#[test]
fn drifted_stratum_converges_only_via_a_rebased_pack() {
    // --- Phase A: the stale packset (2.6.16 build only) contains. ---
    let mut fleet = resident_fleet(24, 0x2617);
    let stale =
        build_packset("cve-2006-2451", 1, &[], fleet.context().cache()).expect("stale packset");
    let mut transport = SimTransport::new(7);
    let mut tracer = Tracer::new();
    let policy = RolloutPolicy {
        canary: 6,
        ..RolloutPolicy::default()
    };
    let orch = RolloutOrchestrator::new(policy.clone(), stale, &fleet);
    let report = orch.run(&mut fleet, &mut transport, &mut tracer);
    assert_eq!(
        report.outcome,
        Outcome::Contained,
        "a 2.6.16-only pack must mismatch the 2.6.17 stratum\n{}",
        report.render()
    );

    // --- Phase B: rebase the same update onto the 2.6.17 tree. ---
    let cache = fleet.context().cache();
    let pre0 = version_tree(0);
    let patch_text = diff_trees(&pre0, &patched_tree(&pre0, false));
    let drifted = version_tree(2);
    let mut rebase_tracer = Tracer::new();
    let (rebase_report, pack) = rebase_update(
        "cve-2006-2451",
        &pre0,
        &patch_text,
        &drifted,
        &RebaseOptions::default(),
        cache,
        &mut rebase_tracer,
    )
    .expect("rebase pipeline runs");
    assert_eq!(
        rebase_report.status,
        RebaseStatus::AutoPorted,
        "{}",
        rebase_report.render()
    );
    assert!(rebase_report.verified, "{}", rebase_report.render());
    // The drift lives in do_syscall, not the patched function: the port
    // must land in sys_prctl and nowhere else.
    assert_eq!(rebase_report.ported_fns, vec!["sys_prctl".to_string()]);
    let rebased = pack.expect("auto-ported rebase yields a pack").to_bytes();

    // --- Phase C: per-version packset with the rebased 2.6.17 slot. ---
    let native = build_packset("cve-2006-2451", 2, &[], cache).expect("native packset");
    let packset = PackSet::from_packs(
        "cve-2006-2451",
        default_canaries(),
        vec![
            native.for_version(0).0.to_vec(),
            native.for_version(1).0.to_vec(),
            rebased,
        ],
    );
    let mut fleet = resident_fleet(24, 0x2617);
    let mut transport = SimTransport::new(7);
    let mut tracer = Tracer::new();
    let orch = RolloutOrchestrator::new(policy, packset, &fleet);
    let report = orch.run(&mut fleet, &mut transport, &mut tracer);

    assert_eq!(report.outcome, Outcome::Committed, "{}", report.render());
    let committed: usize = report.waves.iter().map(|w| w.committed).sum();
    assert_eq!(committed, 24, "{}", report.render());
    // The 2.6.17 stratum — the one the stale packset could not reach —
    // is exactly where the rebased pack had to land.
    let mut v2 = 0;
    for id in 0..fleet.len() as u32 {
        let node = fleet.node(id);
        assert!(
            node.committed.iter().any(|u| u == "cve-2006-2451"),
            "node {id} (version {}) missing the update",
            node.version
        );
        if node.version == 2 {
            v2 += 1;
        }
    }
    assert!(v2 > 0, "fleet must actually contain a 2.6.17 stratum");
}
