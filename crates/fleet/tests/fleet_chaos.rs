//! Deterministic fleet chaos: a poisoned pack under an injected
//! transport partition is confined to its canary cohort, and every
//! affected kernel is restored byte-identical.
//!
//! Two containment shapes are pinned:
//!
//! 1. **Canary containment** — the poison trips the quarantine canary on
//!    every version, so wave 0 absorbs the whole blast radius even while
//!    half the canary cohort is partitioned away mid-rollout.
//! 2. **Mass rollback** — with stratification off and the poison only in
//!    the 2.6.17 build, a canary cohort that happens to sample no 2.6.17
//!    node gates clean, the next wave trips the threshold, and every
//!    node that committed in the meantime is rolled back checksum-clean.

use ksplice_fleet::{
    build_packset, Fleet, FleetConfig, NetFaults, Outcome, Partition, RolloutOrchestrator,
    RolloutPolicy, SimTransport, VERSION_NAMES,
};
use ksplice_trace::Tracer;

/// Loaded multi-vCPU fleet (satellite: waves run against kernels with
/// live workload threads on several CPUs), resident so the tests can
/// checksum node text afterwards.
fn loaded_fleet(nodes: u32, seed: u64) -> Fleet {
    Fleet::new(FleetConfig {
        nodes,
        cpus: 2,
        load_threads: 2,
        seed,
        resident: true,
        ..FleetConfig::default()
    })
    .expect("fleet boots")
}

#[test]
fn poisoned_pack_is_confined_to_the_canary_cohort() {
    let run = || {
        let mut fleet = loaded_fleet(24, 0xf1ee_7001);
        // Poison every version's build: the pack applies cleanly but
        // breaks PR_SET_DUMPABLE, which the shipped canary probes catch.
        let poisoned: Vec<usize> = (0..VERSION_NAMES.len()).collect();
        let packset = build_packset(
            "bad-update",
            VERSION_NAMES.len(),
            &poisoned,
            fleet.context().cache(),
        )
        .expect("packset builds");
        let faults = NetFaults::parse("drop:100,dup:80,delay:1..3").unwrap();
        let mut transport = SimTransport::with_faults(91, faults);
        // Partition part of the fleet (canaries included) mid-rollout;
        // parked messages re-enter on heal.
        transport.add_partition(Partition::parse("0..11@2..90").unwrap());
        let mut tracer = Tracer::new();
        let policy = RolloutPolicy {
            canary: 6,
            ..RolloutPolicy::default()
        };
        let orch = RolloutOrchestrator::new(policy, packset, &fleet);
        let canary = orch.planned_waves()[0].clone();
        let report = orch.run(&mut fleet, &mut transport, &mut tracer);

        assert_eq!(report.outcome, Outcome::Contained, "{}", report.render());
        assert_eq!(report.halted_wave, Some(0), "{}", report.render());
        assert_eq!(
            report.waves[0].quarantined, 6,
            "every canary must quarantine\n{}",
            report.render()
        );
        assert_eq!(
            report.uncontacted, 18,
            "the blast radius must stop at the canary\n{}",
            report.render()
        );
        // Every canary kernel self-rolled-back and is byte-identical to
        // its settled baseline; nothing is left committed anywhere.
        let mut contacted = 0;
        for id in 0..fleet.len() as u32 {
            let node = fleet.node(id);
            assert!(node.committed.is_empty(), "node {id} kept the poison");
            if let Some(text) = node.resident_text_checksum() {
                contacted += 1;
                assert_eq!(
                    text, node.baseline_text,
                    "node {id} text differs from baseline after containment"
                );
            }
        }
        assert_eq!(
            contacted,
            canary.len(),
            "only canary nodes should ever have materialized"
        );
        assert_eq!(tracer.counter("fleet.nodes_quarantined"), 6);
        assert_eq!(tracer.counter("fleet.waves_halted"), 1);
        assert!(
            report.transport.parked > 0 && report.transport.healed > 0,
            "the partition must actually bite: {:?}",
            report.transport
        );
        report.render()
    };
    // The whole chaotic run — faults, partition, quarantines — replays
    // byte-for-byte from its seeds.
    assert_eq!(run(), run(), "chaos must be deterministic");
}

#[test]
fn missed_canary_triggers_checksum_verified_mass_rollback() {
    // Version-specific poison (2.6.17 only) with stratification off.
    // Find a seed whose shuffled canary samples no 2.6.17 node but whose
    // second wave does — the rollout then commits real nodes before the
    // threshold trips, and the halt must reverse them all.
    let policy = RolloutPolicy {
        canary: 4,
        stratify: false,
        ..RolloutPolicy::default()
    };
    let mut chosen = None;
    for seed in 0..64u64 {
        let fleet = loaded_fleet(24, seed);
        let packset = build_packset("bad-on-2617", 3, &[2], fleet.context().cache()).unwrap();
        let orch = RolloutOrchestrator::new(policy.clone(), packset, &fleet);
        let waves = orch.planned_waves();
        let has_v2 = |ids: &[u32]| ids.iter().any(|&id| fleet.node(id).version == 2);
        if !has_v2(&waves[0]) && waves.len() > 1 && has_v2(&waves[1]) {
            chosen = Some(seed);
            break;
        }
    }
    let seed = chosen.expect("some seed slips a canary past version 2");

    let mut fleet = loaded_fleet(24, seed);
    let packset = build_packset("bad-on-2617", 3, &[2], fleet.context().cache()).unwrap();
    let mut transport = SimTransport::new(17);
    let mut tracer = Tracer::new();
    let orch = RolloutOrchestrator::new(policy, packset, &fleet);
    let report = orch.run(&mut fleet, &mut transport, &mut tracer);

    assert_eq!(report.outcome, Outcome::Contained, "{}", report.render());
    assert_eq!(report.halted_wave, Some(1), "{}", report.render());
    assert_eq!(
        report.waves[0].committed, 4,
        "the canary wave commits clean\n{}",
        report.render()
    );
    assert!(
        report.rolled_back >= 4,
        "halt must reverse the already-committed nodes\n{}",
        report.render()
    );
    assert_eq!(
        report.rollback_clean, report.rolled_back,
        "every rollback must verify checksum-clean\n{}",
        report.render()
    );
    for id in 0..fleet.len() as u32 {
        let node = fleet.node(id);
        assert!(node.committed.is_empty(), "node {id} kept the update");
        if let Some(text) = node.resident_text_checksum() {
            assert_eq!(text, node.baseline_text, "node {id} not restored");
        }
    }
    assert!(tracer.counter("fleet.rollbacks_verified") > 0);
}
