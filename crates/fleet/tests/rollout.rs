//! End-to-end staged rollouts over the simulated fleet: clean commit,
//! convergence under transport faults, cross-version containment, and
//! report determinism.

use ksplice_fleet::{
    build_packset, Fleet, FleetConfig, NetFaults, Outcome, RolloutOrchestrator, RolloutPolicy,
    SimTransport, VERSION_NAMES,
};
use ksplice_trace::Tracer;

fn small_fleet(nodes: u32, resident: bool) -> Fleet {
    Fleet::new(FleetConfig {
        nodes,
        resident,
        ..FleetConfig::default()
    })
    .expect("fleet boots")
}

#[test]
fn clean_rollout_commits_the_whole_fleet() {
    let mut fleet = small_fleet(24, true);
    let packset = build_packset(
        "cve-2006-2451",
        VERSION_NAMES.len(),
        &[],
        fleet.context().cache(),
    )
    .expect("packset builds");
    let mut transport = SimTransport::new(11);
    let mut tracer = Tracer::new();
    let orch = RolloutOrchestrator::new(RolloutPolicy::default(), packset, &fleet);
    let report = orch.run(&mut fleet, &mut transport, &mut tracer);

    assert_eq!(report.outcome, Outcome::Committed, "{}", report.render());
    assert_eq!(report.uncontacted, 0);
    assert_eq!(report.halted_wave, None);
    let committed: usize = report.waves.iter().map(|w| w.committed).sum();
    assert_eq!(committed, 24);
    // Wave sizes grow geometrically from the canary.
    let sizes: Vec<usize> = report.waves.iter().map(|w| w.members).collect();
    assert_eq!(sizes, vec![4, 16, 4]);
    // Every node (all three base versions) holds the update.
    for id in 0..24 {
        let node = fleet.node(id);
        assert!(
            node.committed.iter().any(|u| u == "cve-2006-2451"),
            "node {id} (version {}) missing the update",
            node.version
        );
    }
    assert_eq!(tracer.counter("fleet.nodes_committed"), 24);
    assert_eq!(tracer.counter("fleet.waves_launched"), 3);
    assert_eq!(tracer.counter("fleet.waves_halted"), 0);
}

#[test]
fn rollout_converges_under_transport_faults() {
    let mut fleet = small_fleet(18, false);
    let packset = build_packset(
        "cve-2006-2451",
        VERSION_NAMES.len(),
        &[],
        fleet.context().cache(),
    )
    .expect("packset builds");
    let faults = NetFaults::parse("drop:150,dup:100,corrupt:40,delay:1..3").unwrap();
    let mut transport = SimTransport::with_faults(23, faults);
    let mut tracer = Tracer::new();
    let orch = RolloutOrchestrator::new(RolloutPolicy::default(), packset, &fleet);
    let report = orch.run(&mut fleet, &mut transport, &mut tracer);

    assert_eq!(report.outcome, Outcome::Committed, "{}", report.render());
    let committed: usize = report.waves.iter().map(|w| w.committed).sum();
    assert_eq!(committed, 18);
    assert!(
        report.transport.dropped > 0,
        "fault plan should have dropped something: {:?}",
        report.transport
    );
    let resends: u64 = report.waves.iter().map(|w| w.resends).sum();
    assert!(resends > 0, "drops must force resends\n{}", report.render());
}

#[test]
fn corrupted_packs_are_rejected_and_redelivered() {
    let mut fleet = small_fleet(8, false);
    let packset = build_packset(
        "cve-2006-2451",
        VERSION_NAMES.len(),
        &[],
        fleet.context().cache(),
    )
    .expect("packset builds");
    // Corrupt every other pack: every node still converges because the
    // checksum check downgrades corruption to a retryable rejection.
    let faults = NetFaults::parse("corrupt:500,delay:1..2").unwrap();
    let mut transport = SimTransport::with_faults(5, faults);
    let mut tracer = Tracer::new();
    let policy = RolloutPolicy {
        canary: 2,
        ..RolloutPolicy::default()
    };
    let orch = RolloutOrchestrator::new(policy, packset, &fleet);
    let report = orch.run(&mut fleet, &mut transport, &mut tracer);

    assert_eq!(report.outcome, Outcome::Committed, "{}", report.render());
    assert!(report.transport.corrupted > 0);
    assert!(tracer.counter("fleet.packs_rejected") > 0);
    // No corrupted pack was ever applied: rejects outnumber nothing —
    // every node committed exactly once.
    assert_eq!(tracer.counter("fleet.nodes_committed"), 8);
}

#[test]
fn version_specific_pack_halts_at_a_stratified_canary() {
    // A packset built only for 2.6.16: its run-pre matching mismatches
    // on drifted 2.6.17 kernels (the paper's same-unit drift). The
    // stratified canary samples every version, so the rollout halts in
    // wave 0 instead of spraying a third of the fleet with failures.
    let mut fleet = small_fleet(24, true);
    let packset =
        build_packset("cve-2006-2451", 1, &[], fleet.context().cache()).expect("packset builds");
    let mut transport = SimTransport::new(31);
    let mut tracer = Tracer::new();
    let policy = RolloutPolicy {
        canary: 6,
        ..RolloutPolicy::default()
    };
    let orch = RolloutOrchestrator::new(policy, packset, &fleet);
    let canary = orch.planned_waves()[0].clone();
    let canary_versions: Vec<usize> = canary
        .iter()
        .map(|&id| fleet.node(id).version)
        .collect();
    assert!(
        canary_versions.contains(&2),
        "stratified canary must sample version 2.6.17: {canary_versions:?}"
    );
    let report = orch.run(&mut fleet, &mut transport, &mut tracer);

    assert_eq!(report.outcome, Outcome::Contained, "{}", report.render());
    assert_eq!(report.halted_wave, Some(0));
    assert!(report.waves[0].failed > 0, "{}", report.render());
    assert_eq!(report.uncontacted, 18, "only the canary was contacted");
    // Canaries that committed (2.6.16 / 2.6.16-hw) were mass-rolled-back
    // checksum-clean; mismatched ones never changed.
    assert_eq!(report.rollback_clean, report.rolled_back);
    for &id in &canary {
        let node = fleet.node(id);
        assert!(node.committed.is_empty(), "node {id} still patched");
        assert_eq!(
            node.resident_text_checksum(),
            Some(node.baseline_text),
            "node {id} text drifted from its baseline"
        );
    }
}

#[test]
fn same_seed_rollouts_render_byte_identical_reports() {
    let run = |transport_seed: u64| {
        let mut fleet = small_fleet(16, false);
        let packset = build_packset(
            "cve-2006-2451",
            VERSION_NAMES.len(),
            &[],
            fleet.context().cache(),
        )
        .expect("packset builds");
        let faults = NetFaults::parse("drop:120,dup:90,delay:1..3").unwrap();
        let mut transport = SimTransport::with_faults(transport_seed, faults);
        let mut tracer = Tracer::new();
        let orch = RolloutOrchestrator::new(RolloutPolicy::default(), packset, &fleet);
        let report = orch.run(&mut fleet, &mut transport, &mut tracer);
        report.render()
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a, b, "same seeds must replay byte-for-byte");
    assert_ne!(a, run(78), "different transport seed, different run");
}

#[test]
fn worker_count_does_not_change_the_outcome() {
    let run = |jobs: usize| {
        let mut fleet = small_fleet(12, false);
        let packset = build_packset(
            "cve-2006-2451",
            VERSION_NAMES.len(),
            &[],
            fleet.context().cache(),
        )
        .expect("packset builds");
        let mut transport = SimTransport::new(3);
        let mut tracer = Tracer::new();
        let policy = RolloutPolicy {
            jobs,
            ..RolloutPolicy::default()
        };
        let orch = RolloutOrchestrator::new(policy, packset, &fleet);
        orch.run(&mut fleet, &mut transport, &mut tracer).render()
    };
    assert_eq!(run(1), run(8), "sharding is an implementation detail");
}
