//! Pack distribution over a pluggable, fault-injectable transport.
//!
//! Production Ksplice (Uptrack) ships update tarballs to millions of
//! machines over networks that drop, delay, duplicate and partition.
//! The orchestrator therefore talks to its fleet only through the
//! [`Transport`] trait — an addressed, tick-clocked message fabric — and
//! the in-process [`SimTransport`] implementation injects exactly those
//! network faults from a seed, in the style of
//! `crates/kernel/src/fault.rs`: every fault decision is a pure function
//! of the seed, so a chaotic rollout replays byte-for-byte.

use std::collections::BTreeMap;
use std::fmt;

/// A fleet node id. Node ids are dense: node `i` is `nodes[i]`.
pub type NodeId = u32;

/// Message endpoints: the single orchestrator, or one fleet node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// The rollout orchestrator.
    Orchestrator,
    /// One simulated kernel node.
    Node(NodeId),
}

/// A node's terminal answer for one delivered update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Applied, survived its quarantine watch window, committed.
    Committed {
        /// stop_machine attempts the apply took.
        attempts: u32,
        /// Pause of the successful capture window, in VM steps.
        pause_steps: u64,
    },
    /// The update was already live on this node (a duplicate delivery).
    AlreadyApplied,
    /// A watch-window canary failed; the node auto-rolled-back.
    Quarantined {
        /// The canary that failed.
        probe: String,
        /// Whether the node's text checksum matches its pre-apply image.
        restored: bool,
    },
    /// The apply itself failed (run-pre mismatch, quiescence abandon…).
    ApplyFailed {
        /// Why, for the report.
        reason: String,
        /// Whether the node's text is byte-identical to pre-apply.
        restored: bool,
    },
    /// A rollback order completed.
    RolledBack {
        /// Whether the node's text checksum matches the recorded
        /// pre-apply image — the mass-rollback verification bit.
        restored: bool,
    },
    /// The node refused the message (bad checksum, unparsable pack).
    /// The orchestrator treats this as a delivery failure and resends.
    Rejected {
        /// Why, for the report.
        reason: String,
    },
}

impl Verdict {
    /// Short wire/report name.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Committed { .. } => "committed",
            Verdict::AlreadyApplied => "already-applied",
            Verdict::Quarantined { .. } => "quarantined",
            Verdict::ApplyFailed { .. } => "apply-failed",
            Verdict::RolledBack { .. } => "rolled-back",
            Verdict::Rejected { .. } => "rejected",
        }
    }
}

/// What a message carries.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Orchestrator → node: apply this pack.
    Deliver {
        /// Update id.
        update: String,
        /// The serialized [`ksplice_core::UpdatePack`] built for the
        /// node's base version.
        pack: Vec<u8>,
        /// FNV-1a checksum of `pack`; the node verifies before parsing,
        /// so transport corruption is detected, not applied.
        checksum: u64,
        /// Canary probe specs (`fn(args)=expected`) the node runs
        /// during its quarantine watch window.
        canaries: Vec<String>,
    },
    /// Orchestrator → node: reverse this update, checksum-verified.
    Rollback {
        /// Update id to reverse.
        update: String,
    },
    /// Node → orchestrator: the outcome of a Deliver or Rollback.
    Report {
        /// Update id the verdict is about.
        update: String,
        /// What happened.
        verdict: Verdict,
    },
}

/// An addressed message in flight.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender.
    pub from: Endpoint,
    /// Receiver.
    pub to: Endpoint,
    /// Content.
    pub payload: Payload,
}

/// FNV-1a over a byte string — the pack-integrity checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seeded network-fault plan for [`SimTransport`], the `NetFaults`
/// counterpart of the kernel's `FaultPlan`. Rates are per-mille per
/// message; delays are uniform in `[delay_min, delay_max]` ticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFaults {
    /// Per-mille of messages silently dropped.
    pub drop_pm: u32,
    /// Per-mille of messages delivered twice (at independent delays).
    pub dup_pm: u32,
    /// Per-mille of pack-carrying messages with one payload byte
    /// flipped (caught by the node's checksum verification).
    pub corrupt_pm: u32,
    /// Minimum delivery delay, in ticks (≥ 1).
    pub delay_min: u64,
    /// Maximum delivery delay, in ticks.
    pub delay_max: u64,
}

impl Default for NetFaults {
    fn default() -> NetFaults {
        NetFaults {
            drop_pm: 0,
            dup_pm: 0,
            corrupt_pm: 0,
            delay_min: 1,
            delay_max: 1,
        }
    }
}

impl NetFaults {
    /// Parses a comma-separated spec: `drop:PM`, `dup:PM`,
    /// `corrupt:PM`, `delay:MIN..MAX` (e.g.
    /// `drop:50,dup:20,corrupt:10,delay:1..4`).
    pub fn parse(spec: &str) -> Result<NetFaults, String> {
        let mut f = NetFaults::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, val) = part
                .split_once(':')
                .ok_or_else(|| format!("bad fault `{part}` (expected key:value)"))?;
            match key {
                "drop" => f.drop_pm = parse_pm(val)?,
                "dup" => f.dup_pm = parse_pm(val)?,
                "corrupt" => f.corrupt_pm = parse_pm(val)?,
                "delay" => {
                    let (lo, hi) = val
                        .split_once("..")
                        .ok_or_else(|| format!("bad delay `{val}` (expected MIN..MAX)"))?;
                    f.delay_min = lo
                        .parse::<u64>()
                        .map_err(|_| format!("bad delay min `{lo}`"))?
                        .max(1);
                    f.delay_max = hi
                        .parse::<u64>()
                        .map_err(|_| format!("bad delay max `{hi}`"))?
                        .max(f.delay_min);
                }
                other => return Err(format!("unknown net fault `{other}`")),
            }
        }
        Ok(f)
    }
}

impl fmt::Display for NetFaults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drop:{},dup:{},corrupt:{},delay:{}..{}",
            self.drop_pm, self.dup_pm, self.corrupt_pm, self.delay_min, self.delay_max
        )
    }
}

fn parse_pm(val: &str) -> Result<u32, String> {
    let pm: u32 = val
        .parse()
        .map_err(|_| format!("bad per-mille `{val}`"))?;
    if pm > 1000 {
        return Err(format!("per-mille `{val}` exceeds 1000"));
    }
    Ok(pm)
}

/// A scripted network partition: node ids in `[first, last]` are
/// unreachable (both directions) while `from_tick <= now < heal_tick`.
/// Messages to or from partitioned nodes are *parked*, not dropped, and
/// re-enter the fabric when the partition heals — partitioned nodes
/// catch up instead of silently diverging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// First partitioned node id (inclusive).
    pub first: NodeId,
    /// Last partitioned node id (inclusive).
    pub last: NodeId,
    /// Tick the partition starts.
    pub from_tick: u64,
    /// Tick the partition heals.
    pub heal_tick: u64,
}

impl Partition {
    /// Parses `FIRST..LAST@FROM..HEAL`, e.g. `0..3@5..400`.
    pub fn parse(spec: &str) -> Result<Partition, String> {
        let (nodes, ticks) = spec
            .split_once('@')
            .ok_or_else(|| format!("bad partition `{spec}` (expected A..B@FROM..HEAL)"))?;
        let (a, b) = nodes
            .split_once("..")
            .ok_or_else(|| format!("bad partition nodes `{nodes}`"))?;
        let (from, heal) = ticks
            .split_once("..")
            .ok_or_else(|| format!("bad partition ticks `{ticks}`"))?;
        let p = Partition {
            first: a.parse().map_err(|_| format!("bad node id `{a}`"))?,
            last: b.parse().map_err(|_| format!("bad node id `{b}`"))?,
            from_tick: from.parse().map_err(|_| format!("bad tick `{from}`"))?,
            heal_tick: heal.parse().map_err(|_| format!("bad tick `{heal}`"))?,
        };
        if p.first > p.last || p.from_tick >= p.heal_tick {
            return Err(format!("empty partition `{spec}`"));
        }
        Ok(p)
    }

    fn blocks(&self, endpoint: Endpoint, now: u64) -> bool {
        match endpoint {
            Endpoint::Orchestrator => false,
            Endpoint::Node(id) => {
                id >= self.first && id <= self.last && now >= self.from_tick && now < self.heal_tick
            }
        }
    }
}

/// Delivery statistics, folded into the rollout report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages handed to [`Transport::send`].
    pub sent: u64,
    /// Messages delivered to their endpoint.
    pub delivered: u64,
    /// Messages silently dropped by fault injection.
    pub dropped: u64,
    /// Extra copies injected by duplication faults.
    pub duplicated: u64,
    /// Pack payloads corrupted in flight.
    pub corrupted: u64,
    /// Messages parked at a partition boundary.
    pub parked: u64,
    /// Parked messages released by a partition heal.
    pub healed: u64,
}

/// The pack-distribution fabric the orchestrator speaks to. Delivery is
/// clocked: the orchestrator calls [`Transport::poll`] once per tick and
/// receives everything due.
pub trait Transport {
    /// Queues a message for delivery.
    fn send(&mut self, env: Envelope);
    /// Delivers every message due at `now` (monotone across calls).
    fn poll(&mut self, now: u64) -> Vec<Envelope>;
    /// Messages still queued or parked.
    fn in_flight(&self) -> usize;
    /// Delivery statistics so far.
    fn stats(&self) -> TransportStats;
}

/// The in-process transport: deterministic delivery order, seeded fault
/// injection, scripted partitions with parked-message heal.
#[derive(Debug)]
pub struct SimTransport {
    rng: u64,
    faults: NetFaults,
    partitions: Vec<Partition>,
    /// In-flight messages keyed `(due_tick, seq)` — FIFO per tick.
    queue: BTreeMap<(u64, u64), Envelope>,
    /// Messages held at a partition boundary, in arrival order.
    parked: Vec<Envelope>,
    seq: u64,
    now: u64,
    stats: TransportStats,
}

impl SimTransport {
    /// A fault-free transport (1-tick delivery) from a seed.
    pub fn new(seed: u64) -> SimTransport {
        SimTransport::with_faults(seed, NetFaults::default())
    }

    /// A transport with the given fault plan.
    pub fn with_faults(seed: u64, faults: NetFaults) -> SimTransport {
        SimTransport {
            // Splash the seed so adjacent seeds (which `| 1` alone would
            // alias) produce unrelated fault streams.
            rng: (seed ^ 0x9e37_79b9_7f4a_7c15).wrapping_mul(0x2545_f491_4f6c_dd1d) | 1,
            faults,
            partitions: Vec::new(),
            queue: BTreeMap::new(),
            parked: Vec::new(),
            seq: 0,
            now: 0,
            stats: TransportStats::default(),
        }
    }

    /// Scripts a partition window.
    pub fn add_partition(&mut self, p: Partition) {
        self.partitions.push(p);
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn roll_pm(&mut self, pm: u32) -> bool {
        pm > 0 && self.next_rand() % 1000 < pm as u64
    }

    fn delay(&mut self) -> u64 {
        let span = self.faults.delay_max - self.faults.delay_min + 1;
        self.faults.delay_min + self.next_rand() % span
    }

    fn blocked(&self, endpoint: Endpoint, now: u64) -> bool {
        self.partitions.iter().any(|p| p.blocks(endpoint, now))
    }

    fn enqueue(&mut self, env: Envelope) {
        let due = self.now + self.delay();
        self.queue.insert((due, self.seq), env);
        self.seq += 1;
    }
}

impl Transport for SimTransport {
    fn send(&mut self, env: Envelope) {
        self.stats.sent += 1;
        if self.roll_pm(self.faults.drop_pm) {
            self.stats.dropped += 1;
            return;
        }
        let mut env = env;
        if let Payload::Deliver { pack, .. } = &mut env.payload {
            if !pack.is_empty() && self.roll_pm(self.faults.corrupt_pm) {
                let at = (self.next_rand() % pack.len() as u64) as usize;
                pack[at] ^= 0x5a;
                self.stats.corrupted += 1;
            }
        }
        if self.roll_pm(self.faults.dup_pm) {
            self.stats.duplicated += 1;
            self.enqueue(env.clone());
        }
        self.enqueue(env);
    }

    fn poll(&mut self, now: u64) -> Vec<Envelope> {
        self.now = self.now.max(now);
        // Heal first: parked messages whose endpoints are reachable
        // again re-enter the fabric with a fresh delivery delay.
        let parked = std::mem::take(&mut self.parked);
        for env in parked {
            if self.blocked(env.from, now) || self.blocked(env.to, now) {
                self.parked.push(env);
            } else {
                self.stats.healed += 1;
                self.enqueue(env);
            }
        }
        let due: Vec<(u64, u64)> = self
            .queue
            .range(..=(now, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        let mut out = Vec::new();
        for key in due {
            let env = self.queue.remove(&key).expect("queued");
            // Partition check happens at delivery time, both directions:
            // a reply from a freshly partitioned node parks too.
            if self.blocked(env.from, now) || self.blocked(env.to, now) {
                self.stats.parked += 1;
                self.parked.push(env);
            } else {
                self.stats.delivered += 1;
                out.push(env);
            }
        }
        out
    }

    fn in_flight(&self) -> usize {
        self.queue.len() + self.parked.len()
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(to: NodeId, tag: &str) -> Envelope {
        Envelope {
            from: Endpoint::Orchestrator,
            to: Endpoint::Node(to),
            payload: Payload::Rollback {
                update: tag.to_string(),
            },
        }
    }

    #[test]
    fn faults_parse_round_trip() {
        let f = NetFaults::parse("drop:50,dup:20,corrupt:10,delay:1..4").unwrap();
        assert_eq!(NetFaults::parse(&f.to_string()).unwrap(), f);
        assert!(NetFaults::parse("drop:1001").is_err());
        assert!(NetFaults::parse("warp:1").is_err());
        let p = Partition::parse("0..3@5..400").unwrap();
        assert_eq!((p.first, p.last, p.from_tick, p.heal_tick), (0, 3, 5, 400));
        assert!(Partition::parse("3..0@5..400").is_err());
    }

    #[test]
    fn fault_free_delivery_is_fifo_next_tick() {
        let mut t = SimTransport::new(7);
        t.send(env(0, "a"));
        t.send(env(1, "b"));
        assert!(t.poll(0).is_empty());
        let got = t.poll(1);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].to, Endpoint::Node(0));
        assert_eq!(got[1].to, Endpoint::Node(1));
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn partition_parks_and_heals() {
        let mut t = SimTransport::new(7);
        t.add_partition(Partition {
            first: 0,
            last: 0,
            from_tick: 0,
            heal_tick: 10,
        });
        t.send(env(0, "a"));
        assert!(t.poll(1).is_empty());
        assert_eq!(t.stats().parked, 1);
        assert_eq!(t.in_flight(), 1);
        // Still parked mid-partition.
        assert!(t.poll(5).is_empty());
        // On heal the message re-enters with a fresh delay.
        assert!(t.poll(10).is_empty());
        let got = t.poll(11);
        assert_eq!(got.len(), 1);
        assert_eq!(t.stats().healed, 1);
    }

    #[test]
    fn same_seed_same_fates() {
        let f = NetFaults::parse("drop:300,dup:200,delay:1..5").unwrap();
        let run = |seed: u64| {
            let mut t = SimTransport::with_faults(seed, f.clone());
            for i in 0..200 {
                t.send(env(i % 8, "x"));
            }
            let mut order = Vec::new();
            for tick in 0..16 {
                for e in t.poll(tick) {
                    order.push((tick, e.to));
                }
            }
            (order, t.stats())
        };
        assert_eq!(run(42), run(42));
        let (_, stats) = run(42);
        assert!(stats.dropped > 0 && stats.duplicated > 0);
        assert_ne!(run(42).0, run(43).0);
    }
}
