//! Fleet-scale rollout: thousands of simulated kernels, staged canary
//! waves, and a fault-injectable pack transport.
//!
//! The paper's production deployment (Uptrack) pushes rebootless updates
//! to whole fleets of heterogeneous kernels. This crate closes that gap
//! for the simulation: [`Fleet`] materializes kernels on demand from
//! per-version cached images (optionally multi-vCPU and under sustained
//! syscall load), [`SimTransport`] carries packs across a network that
//! drops, delays, duplicates, corrupts and partitions — all seeded — and
//! [`RolloutOrchestrator`] drives the staged rollout: canary cohort →
//! health-gated expansion → fleet-wide commit, with automatic wave halt
//! and checksum-verified mass rollback when the quarantine failure rate
//! crosses the policy threshold.
//!
//! Everything is deterministic from `(fleet seed, transport seed,
//! policy)`: two same-seed rollouts render byte-identical
//! [`RolloutReport`]s, which is what the chaos CI diffs.

#![deny(missing_docs)]

pub mod node;
pub mod orchestrator;
pub mod transport;

pub use node::{
    build_packset, default_canaries, patched_tree, version_tree, Fleet, FleetConfig, FleetContext,
    FleetNode, PackSet, VERSION_NAMES,
};
pub use orchestrator::{Outcome, RolloutOrchestrator, RolloutPolicy, RolloutReport, WaveRow};
pub use transport::{
    fnv1a, Endpoint, Envelope, NetFaults, NodeId, Partition, Payload, SimTransport, Transport,
    TransportStats, Verdict,
};
