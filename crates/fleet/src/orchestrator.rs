//! Staged-wave rollout with canary containment and mass rollback.
//!
//! The wave state machine (documented in `docs/FLEET.md`):
//!
//! ```text
//!   Waves(0)  --all members terminal, failure ≤ threshold-->  Waves(1) …
//!      |                                                         |
//!      | failure rate > halt threshold                           | last wave clean
//!      v                                                         v
//!   RollingBack  --every committed node verified restored-->  Done(Contained)
//!                                                 Done(Committed)
//! ```
//!
//! Wave membership is a seeded shuffle, optionally stratified so the
//! canary cohort samples every base version — a pack that is safe on one
//! version and poisonous on another (the *Beyond Crash-to-Patch* shape)
//! is then caught before it leaves the canary. A wave gates only when
//! **every** member holds a terminal verdict: a partitioned canary blocks
//! expansion until the partition heals and its report arrives, so silence
//! is never read as health.
//!
//! Delivery runs over the fault-injectable [`Transport`]: unacknowledged
//! sends are re-sent on a [`RetryPolicy`] schedule (delays read as
//! ticks); nodes that exhaust the schedule become *stragglers* and keep
//! receiving slow periodic resends so they re-converge when the network
//! heals rather than diverging forever. A halt orders rollback not just
//! to nodes that reported `Committed` but to every member still in
//! flight — a node whose commit report was dropped is reversed anyway
//! (rollback is idempotent and sticky node-side).

use std::collections::BTreeMap;

use ksplice_core::RetryPolicy;
use ksplice_trace::{Severity, Stage, Tracer, Value};

use crate::node::{Fleet, PackSet};
use crate::transport::{
    Endpoint, Envelope, NodeId, Payload, Transport, TransportStats, Verdict,
};

/// Knobs of one staged rollout.
#[derive(Debug, Clone)]
pub struct RolloutPolicy {
    /// Canary cohort size (wave 0).
    pub canary: u32,
    /// Wave growth factor: wave *k* holds `canary · growth^k` nodes.
    pub growth: u32,
    /// Halt threshold, per mille: a wave whose
    /// `(quarantined + failed) / members` exceeds this triggers fleet
    /// rollback instead of expansion.
    pub halt_per_mille: u32,
    /// Resend schedule for unacknowledged messages, delays read as
    /// transport ticks.
    pub resend: RetryPolicy,
    /// Slow resend cadence (ticks) once a node exhausts the schedule —
    /// the straggler drip that lets partitioned nodes re-converge.
    pub straggler_ticks: u64,
    /// Stratify cohorts round-robin across base versions so the canary
    /// wave samples every version. Off = plain shuffled cohorts.
    pub stratify: bool,
    /// Give up (outcome `Exhausted`) after this many ticks.
    pub max_ticks: u64,
    /// Worker threads sharding node message handling.
    pub jobs: usize,
}

impl Default for RolloutPolicy {
    fn default() -> RolloutPolicy {
        RolloutPolicy {
            canary: 4,
            growth: 4,
            halt_per_mille: 200,
            resend: RetryPolicy::fixed(5, 8),
            straggler_ticks: 32,
            stratify: true,
            max_ticks: 10_000,
            jobs: 4,
        }
    }
}

/// How a rollout ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every wave gated clean; the whole fleet committed the update.
    Committed,
    /// A wave crossed the halt threshold; every node that had (or may
    /// have) committed was rolled back and the rest of the fleet was
    /// never contacted.
    Contained,
    /// `max_ticks` elapsed before the rollout or rollback converged.
    Exhausted,
}

impl Outcome {
    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Committed => "committed",
            Outcome::Contained => "contained",
            Outcome::Exhausted => "exhausted",
        }
    }
}

/// Per-wave accounting in the final report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveRow {
    /// Wave index (0 = canary).
    pub wave: usize,
    /// Member count.
    pub members: usize,
    /// Members that committed (incl. duplicate-ack `AlreadyApplied`).
    pub committed: usize,
    /// Members quarantined by a canary probe (auto-rolled-back locally).
    pub quarantined: usize,
    /// Members whose apply failed outright.
    pub failed: usize,
    /// Deliver resends this wave's members needed.
    pub resends: u64,
    /// Tick the wave launched.
    pub launched_tick: u64,
    /// Tick the wave gated (all members terminal), if it did.
    pub gated_tick: Option<u64>,
}

/// The deterministic outcome of [`RolloutOrchestrator::run`]. Contains
/// no wall-clock quantities, so two same-seed rollouts render
/// byte-identically — CI diffs exactly that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolloutReport {
    /// Update id rolled out.
    pub update: String,
    /// Terminal state.
    pub outcome: Outcome,
    /// Fleet size.
    pub nodes: u32,
    /// Per-wave rows, launch order.
    pub waves: Vec<WaveRow>,
    /// The wave that crossed the halt threshold, if any.
    pub halted_wave: Option<usize>,
    /// Nodes ordered to roll back after a halt.
    pub rolled_back: u32,
    /// Rollback acks whose text checksum matched the node's recorded
    /// pre-apply image — must equal `rolled_back` for a clean halt.
    pub rollback_clean: u32,
    /// Nodes that exhausted the resend schedule but still reached a
    /// terminal verdict via the straggler drip.
    pub stragglers_converged: u32,
    /// Nodes never contacted at all (waves beyond the halt) — the
    /// containment headcount.
    pub uncontacted: u32,
    /// Ticks the rollout ran.
    pub ticks: u64,
    /// Transport-level delivery statistics.
    pub transport: TransportStats,
}

impl RolloutReport {
    /// Multi-line human rendering; wall-clock-free and deterministic.
    pub fn render(&self) -> String {
        let mut out = format!(
            "rollout {}: {} across {} node(s) in {} tick(s)\n",
            self.update,
            self.outcome.name(),
            self.nodes,
            self.ticks
        );
        for w in &self.waves {
            let gated = match w.gated_tick {
                Some(t) => format!("gated @{t}"),
                None => "never gated".to_string(),
            };
            out.push_str(&format!(
                "  wave {:>2}: {:>5} member(s)  {:>5} committed  {:>4} quarantined  {:>4} failed  {:>4} resend(s)  launched @{} {}\n",
                w.wave, w.members, w.committed, w.quarantined, w.failed, w.resends,
                w.launched_tick, gated
            ));
        }
        if let Some(wave) = self.halted_wave {
            out.push_str(&format!(
                "  HALT at wave {wave}: {} node(s) ordered to roll back, {} verified byte-identical, {} never contacted\n",
                self.rolled_back, self.rollback_clean, self.uncontacted
            ));
        }
        let t = &self.transport;
        out.push_str(&format!(
            "  transport: {} sent, {} delivered, {} dropped, {} duplicated, {} corrupted, {} parked, {} healed\n",
            t.sent, t.delivered, t.dropped, t.duplicated, t.corrupted, t.parked, t.healed
        ));
        if self.stragglers_converged > 0 {
            out.push_str(&format!(
                "  stragglers re-converged: {}\n",
                self.stragglers_converged
            ));
        }
        out
    }
}

/// One node's contact state within a campaign (deliver or rollback).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Contact {
    /// Not yet sent to.
    Pending,
    /// Sent; awaiting a terminal report.
    InFlight {
        /// Sends so far.
        attempt: u32,
        /// Tick to resend at if still unacknowledged.
        next_send: u64,
        /// Whether the resend schedule is exhausted (slow drip mode).
        straggler: bool,
    },
    /// Terminal verdict received.
    Done(Verdict),
}

impl Contact {
    fn is_done(&self) -> bool {
        matches!(self, Contact::Done(_))
    }

    fn committed(&self) -> bool {
        matches!(
            self,
            Contact::Done(Verdict::Committed { .. }) | Contact::Done(Verdict::AlreadyApplied)
        )
    }
}

/// Orchestrator-side record for one node.
#[derive(Debug, Clone)]
struct Member {
    wave: usize,
    deliver: Contact,
    rollback: Option<Contact>,
    resends: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RolloutPhase {
    Waves(usize),
    RollingBack,
    Done(Outcome),
}

/// Drives one update across a [`Fleet`] in staged waves over a
/// [`Transport`]. See the module docs for the state machine.
pub struct RolloutOrchestrator {
    policy: RolloutPolicy,
    packset: PackSet,
    node_versions: Vec<usize>,
    waves: Vec<Vec<NodeId>>,
    members: Vec<Member>,
    rows: Vec<WaveRow>,
    phase: RolloutPhase,
    halted_wave: Option<usize>,
    stragglers_converged: u32,
    now: u64,
}

impl RolloutOrchestrator {
    /// Plans the waves for `fleet` (seeded shuffle + optional version
    /// stratification) without sending anything yet.
    pub fn new(policy: RolloutPolicy, packset: PackSet, fleet: &Fleet) -> RolloutOrchestrator {
        let node_versions = fleet.versions();
        let waves = plan_waves(&policy, &node_versions, fleet.cfg.seed);
        let mut members: Vec<Member> = node_versions
            .iter()
            .map(|_| Member {
                wave: usize::MAX,
                deliver: Contact::Pending,
                rollback: None,
                resends: 0,
            })
            .collect();
        for (w, wave) in waves.iter().enumerate() {
            for &id in wave {
                members[id as usize].wave = w;
            }
        }
        RolloutOrchestrator {
            policy,
            packset,
            node_versions,
            waves,
            members,
            rows: Vec::new(),
            phase: RolloutPhase::Waves(0),
            halted_wave: None,
            stragglers_converged: 0,
            now: 0,
        }
    }

    /// The planned cohorts, wave order (useful to tests and dry runs).
    pub fn planned_waves(&self) -> &[Vec<NodeId>] {
        &self.waves
    }

    /// Runs the rollout to a terminal state (or tick exhaustion),
    /// returning the deterministic report. Counters and events land in
    /// `tracer` under the `fleet` stage.
    pub fn run(
        mut self,
        fleet: &mut Fleet,
        transport: &mut dyn Transport,
        tracer: &mut Tracer,
    ) -> RolloutReport {
        self.launch_wave(0, transport, tracer);
        for tick in 0..self.policy.max_ticks {
            self.now = tick;
            tracer.set_now(tick);
            let inbox = transport.poll(tick);
            let mut node_batch: BTreeMap<NodeId, Vec<Payload>> = BTreeMap::new();
            for env in inbox {
                match env.to {
                    Endpoint::Orchestrator => {
                        if let (Endpoint::Node(id), Payload::Report { update, verdict }) =
                            (env.from, env.payload)
                        {
                            if update == self.packset.update_id {
                                self.on_report(id, verdict, transport, tracer);
                            }
                        }
                    }
                    Endpoint::Node(id) => {
                        node_batch.entry(id).or_default().push(env.payload);
                    }
                }
            }
            if !node_batch.is_empty() {
                let replies =
                    fleet.handle_batch(node_batch.into_iter().collect(), self.policy.jobs);
                for (id, payloads) in replies {
                    for payload in payloads {
                        transport.send(Envelope {
                            from: Endpoint::Node(id),
                            to: Endpoint::Orchestrator,
                            payload,
                        });
                    }
                }
            }
            self.drive(transport, tracer);
            self.gate(transport, tracer);
            if let RolloutPhase::Done(outcome) = self.phase {
                return self.report(fleet, transport, outcome, tracer);
            }
        }
        self.report(fleet, transport, Outcome::Exhausted, tracer)
    }

    /// Marks wave `w` live and queues its first deliveries.
    fn launch_wave(&mut self, w: usize, transport: &mut dyn Transport, tracer: &mut Tracer) {
        tracer.count("fleet.waves_launched", 1);
        tracer.emit(
            Stage::Fleet,
            Severity::Info,
            "wave_launch",
            vec![
                ("wave", Value::U64(w as u64)),
                ("members", Value::U64(self.waves[w].len() as u64)),
            ],
        );
        self.rows.push(WaveRow {
            wave: w,
            members: self.waves[w].len(),
            committed: 0,
            quarantined: 0,
            failed: 0,
            resends: 0,
            launched_tick: self.now,
            gated_tick: None,
        });
        let ids = self.waves[w].clone();
        for id in ids {
            self.send_deliver(id, transport, tracer);
        }
    }

    fn send_deliver(&mut self, id: NodeId, transport: &mut dyn Transport, tracer: &mut Tracer) {
        let version = self.node_versions[id as usize].min(self.packset.versions() - 1);
        let (pack, checksum) = self.packset.for_version(version);
        transport.send(Envelope {
            from: Endpoint::Orchestrator,
            to: Endpoint::Node(id),
            payload: Payload::Deliver {
                update: self.packset.update_id.clone(),
                pack: pack.to_vec(),
                checksum,
                canaries: self.packset.canaries.clone(),
            },
        });
        tracer.count("fleet.packs_sent", 1);
        self.bump_contact(id, false);
    }

    fn send_rollback(&mut self, id: NodeId, transport: &mut dyn Transport, tracer: &mut Tracer) {
        transport.send(Envelope {
            from: Endpoint::Orchestrator,
            to: Endpoint::Node(id),
            payload: Payload::Rollback {
                update: self.packset.update_id.clone(),
            },
        });
        tracer.count("fleet.rollbacks_sent", 1);
        self.bump_contact(id, true);
    }

    /// Advances a node's contact state after a send: Pending becomes
    /// in-flight, a resend schedules the next attempt, an exhausted
    /// schedule degrades to the straggler drip.
    fn bump_contact(&mut self, id: NodeId, rollback: bool) {
        let max_attempts = self.policy.resend.max_attempts.max(1);
        let drip = self.policy.straggler_ticks.max(1);
        let now = self.now;
        let resend = self.policy.resend.clone();
        let member = &mut self.members[id as usize];
        let contact = if rollback {
            member.rollback.get_or_insert(Contact::Pending)
        } else {
            &mut member.deliver
        };
        let (attempt, is_resend) = match *contact {
            Contact::Pending => (1, false),
            Contact::InFlight { attempt, .. } => (attempt + 1, true),
            Contact::Done(_) => return,
        };
        let straggler = attempt >= max_attempts;
        let next_send = if straggler {
            now + drip
        } else {
            now + resend.delay_steps(attempt).max(1)
        };
        *contact = Contact::InFlight {
            attempt,
            next_send,
            straggler,
        };
        if is_resend {
            member.resends += 1;
        }
    }

    /// A report arrived. Terminal verdicts settle the node's campaign;
    /// `Rejected` re-arms the resend clock; a late `Committed` during
    /// rollback triggers an immediate rollback order.
    fn on_report(
        &mut self,
        id: NodeId,
        verdict: Verdict,
        transport: &mut dyn Transport,
        tracer: &mut Tracer,
    ) {
        tracer.count("fleet.reports_received", 1);
        if (id as usize) >= self.members.len() || self.members[id as usize].wave == usize::MAX {
            return; // stray report from a node outside the plan
        }
        let rolling_back = self.phase == RolloutPhase::RollingBack;
        let is_rollback_report = matches!(verdict, Verdict::RolledBack { .. });
        let member = &mut self.members[id as usize];
        let contact = if is_rollback_report {
            member.rollback.get_or_insert(Contact::Pending)
        } else {
            &mut member.deliver
        };
        if contact.is_done() {
            return; // duplicate terminal report
        }
        let was_straggler = matches!(contact, Contact::InFlight { straggler: true, .. });
        match &verdict {
            Verdict::Rejected { reason } => {
                // Delivery-level failure (corrupt pack): re-arm to resend
                // promptly rather than waiting out the current backoff.
                tracer.count("fleet.packs_rejected", 1);
                tracer.emit(
                    Stage::Fleet,
                    Severity::Warn,
                    "pack_rejected",
                    vec![
                        ("node", Value::U64(id as u64)),
                        ("reason", Value::Str(reason.clone())),
                    ],
                );
                if let Contact::InFlight { next_send, .. } = contact {
                    *next_send = self.now + 1;
                }
                return;
            }
            Verdict::Committed { .. } | Verdict::AlreadyApplied => {
                *contact = Contact::Done(verdict.clone());
                tracer.count("fleet.nodes_committed", 1);
            }
            Verdict::Quarantined { probe, restored } => {
                *contact = Contact::Done(verdict.clone());
                tracer.count("fleet.nodes_quarantined", 1);
                tracer.emit(
                    Stage::Fleet,
                    Severity::Warn,
                    "node_quarantined",
                    vec![
                        ("node", Value::U64(id as u64)),
                        ("probe", Value::Str(probe.clone())),
                        ("restored", Value::Bool(*restored)),
                    ],
                );
            }
            Verdict::ApplyFailed { reason, .. } => {
                *contact = Contact::Done(verdict.clone());
                tracer.count("fleet.nodes_failed", 1);
                tracer.emit(
                    Stage::Fleet,
                    Severity::Warn,
                    "node_apply_failed",
                    vec![
                        ("node", Value::U64(id as u64)),
                        ("reason", Value::Str(reason.clone())),
                    ],
                );
            }
            Verdict::RolledBack { restored } => {
                *contact = Contact::Done(verdict.clone());
                tracer.count("fleet.nodes_rolled_back", 1);
                if *restored {
                    tracer.count("fleet.rollbacks_verified", 1);
                }
            }
        }
        if was_straggler {
            self.stragglers_converged += 1;
            tracer.count("fleet.stragglers_converged", 1);
        }
        // A node that committed after the halt decision still gets
        // reversed: order rollback the moment its late report lands.
        if rolling_back
            && !is_rollback_report
            && self.members[id as usize].deliver.committed()
            && self.members[id as usize].rollback.is_none()
        {
            self.send_rollback(id, transport, tracer);
        }
    }

    /// Resend pass: every in-flight contact past its resend tick goes
    /// again. During rollback, Deliver resends stop (the wave is halted)
    /// and only Rollback contacts are driven.
    fn drive(&mut self, transport: &mut dyn Transport, tracer: &mut Tracer) {
        let rolling_back = self.phase == RolloutPhase::RollingBack;
        for id in 0..self.members.len() as NodeId {
            let member = &self.members[id as usize];
            if member.wave == usize::MAX {
                continue;
            }
            let due = |c: &Contact| match c {
                Contact::InFlight { next_send, .. } => self.now >= *next_send,
                _ => false,
            };
            if rolling_back {
                if member.rollback.as_ref().is_some_and(due) {
                    tracer.count("fleet.resends_sent", 1);
                    self.send_rollback(id, transport, tracer);
                }
            } else if due(&member.deliver) {
                tracer.count("fleet.resends_sent", 1);
                self.send_deliver(id, transport, tracer);
            }
        }
    }

    /// Wave gate / rollback-completion check.
    fn gate(&mut self, transport: &mut dyn Transport, tracer: &mut Tracer) {
        match self.phase {
            RolloutPhase::Waves(w) => {
                let members = self.waves[w].clone();
                if !members
                    .iter()
                    .all(|&id| self.members[id as usize].deliver.is_done())
                {
                    return;
                }
                let (mut committed, mut quarantined, mut failed) = (0usize, 0usize, 0usize);
                for &id in &members {
                    match &self.members[id as usize].deliver {
                        c if c.committed() => committed += 1,
                        Contact::Done(Verdict::Quarantined { .. }) => quarantined += 1,
                        Contact::Done(_) => failed += 1,
                        _ => unreachable!("gate requires terminal members"),
                    }
                }
                self.rows[w].gated_tick = Some(self.now);
                let per_mille = ((quarantined + failed) * 1000 / members.len()) as u32;
                tracer.emit(
                    Stage::Fleet,
                    Severity::Info,
                    "wave_gate",
                    vec![
                        ("wave", Value::U64(w as u64)),
                        ("committed", Value::U64(committed as u64)),
                        ("quarantined", Value::U64(quarantined as u64)),
                        ("failed", Value::U64(failed as u64)),
                        ("failure_per_mille", Value::U64(per_mille as u64)),
                    ],
                );
                if per_mille > self.policy.halt_per_mille {
                    tracer.count("fleet.waves_halted", 1);
                    tracer.emit(
                        Stage::Fleet,
                        Severity::Error,
                        "wave_halt",
                        vec![
                            ("wave", Value::U64(w as u64)),
                            ("failure_per_mille", Value::U64(per_mille as u64)),
                            ("threshold", Value::U64(self.policy.halt_per_mille as u64)),
                        ],
                    );
                    self.halted_wave = Some(w);
                    self.phase = RolloutPhase::RollingBack;
                    // Order rollback for every contacted node that
                    // committed — or may yet commit (in flight): a node
                    // whose commit report was dropped is reversed anyway,
                    // since rollback is idempotent and sticky node-side.
                    for id in 0..self.members.len() as NodeId {
                        let m = &self.members[id as usize];
                        if m.wave == usize::MAX {
                            continue;
                        }
                        if m.deliver.committed()
                            || matches!(m.deliver, Contact::InFlight { .. })
                        {
                            self.send_rollback(id, transport, tracer);
                        }
                    }
                    self.check_rollback_done(transport, tracer);
                } else if w + 1 < self.waves.len() {
                    self.phase = RolloutPhase::Waves(w + 1);
                    self.launch_wave(w + 1, transport, tracer);
                } else {
                    self.finish(Outcome::Committed, tracer);
                }
            }
            RolloutPhase::RollingBack => self.check_rollback_done(transport, tracer),
            RolloutPhase::Done(_) => {}
        }
    }

    fn check_rollback_done(&mut self, transport: &dyn Transport, tracer: &mut Tracer) {
        // Every ordered rollback must be terminal, and no in-flight
        // message may still turn into a late commit.
        let all_acked = self
            .members
            .iter()
            .all(|m| m.rollback.as_ref().is_none_or(Contact::is_done));
        if all_acked && transport.in_flight() == 0 {
            self.finish(Outcome::Contained, tracer);
        }
    }

    fn finish(&mut self, outcome: Outcome, tracer: &mut Tracer) {
        self.phase = RolloutPhase::Done(outcome);
        tracer.emit(
            Stage::Fleet,
            Severity::Info,
            "rollout_done",
            vec![("outcome", Value::Str(outcome.name().to_string()))],
        );
    }

    /// Final tally. Rows are recomputed from member state so a wave that
    /// never gated (exhaustion) still reports its partial progress.
    fn report(
        mut self,
        fleet: &Fleet,
        transport: &dyn Transport,
        outcome: Outcome,
        tracer: &mut Tracer,
    ) -> RolloutReport {
        for row in &mut self.rows {
            let (mut committed, mut quarantined, mut failed, mut resends) = (0, 0, 0, 0u64);
            for &id in &self.waves[row.wave] {
                let m = &self.members[id as usize];
                resends += m.resends;
                match &m.deliver {
                    c if c.committed() => committed += 1,
                    Contact::Done(Verdict::Quarantined { .. }) => quarantined += 1,
                    Contact::Done(Verdict::RolledBack { .. }) => {}
                    Contact::Done(_) => failed += 1,
                    _ => {}
                }
            }
            row.committed = committed;
            row.quarantined = quarantined;
            row.failed = failed;
            row.resends = resends;
        }
        let uncontacted = self
            .members
            .iter()
            .filter(|m| m.deliver == Contact::Pending)
            .count() as u32;
        let rolled_back = self.members.iter().filter(|m| m.rollback.is_some()).count() as u32;
        let rollback_clean = self
            .members
            .iter()
            .filter(|m| {
                matches!(
                    m.rollback,
                    Some(Contact::Done(Verdict::RolledBack { restored: true }))
                )
            })
            .count() as u32;
        let stats = transport.stats();
        for (name, n) in [
            ("fleet.msgs_sent", stats.sent),
            ("fleet.msgs_delivered", stats.delivered),
            ("fleet.msgs_dropped", stats.dropped),
            ("fleet.msgs_duplicated", stats.duplicated),
            ("fleet.msgs_corrupted", stats.corrupted),
            ("fleet.msgs_parked", stats.parked),
            ("fleet.msgs_healed", stats.healed),
        ] {
            tracer.count(name, n);
        }
        RolloutReport {
            update: self.packset.update_id.clone(),
            outcome,
            nodes: fleet.len() as u32,
            waves: self.rows,
            halted_wave: self.halted_wave,
            rolled_back,
            rollback_clean,
            stragglers_converged: self.stragglers_converged,
            uncontacted,
            ticks: self.now + 1,
            transport: stats,
        }
    }
}

/// Seeded Fisher-Yates shuffle of `0..n`, optional version
/// stratification, then geometric cohort slicing.
fn plan_waves(policy: &RolloutPolicy, versions: &[usize], seed: u64) -> Vec<Vec<NodeId>> {
    let n = versions.len();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    let mut rng = (seed ^ 0x77a9_5e1f_0c3d_2b47) | 1;
    for i in (1..n).rev() {
        let mut x = rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        rng = x;
        let j = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    if policy.stratify && n > 0 {
        // Regroup round-robin across versions, preserving shuffled order
        // within each version, so every cohort prefix samples all
        // versions (the canary especially).
        let nv = versions.iter().copied().max().unwrap_or(0) + 1;
        let mut by_version: Vec<Vec<NodeId>> = vec![Vec::new(); nv];
        for &id in &order {
            by_version[versions[id as usize]].push(id);
        }
        let mut interleaved = Vec::with_capacity(n);
        let mut cursors = vec![0usize; nv];
        while interleaved.len() < n {
            for (v, cursor) in cursors.iter_mut().enumerate() {
                if *cursor < by_version[v].len() {
                    interleaved.push(by_version[v][*cursor]);
                    *cursor += 1;
                }
            }
        }
        order = interleaved;
    }
    let mut waves = Vec::new();
    let mut start = 0usize;
    let mut size = policy.canary.max(1) as usize;
    while start < n {
        let end = (start + size).min(n);
        waves.push(order[start..end].to_vec());
        start = end;
        size = size.saturating_mul(policy.growth.max(2) as usize);
    }
    waves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(canary: u32, stratify: bool) -> RolloutPolicy {
        RolloutPolicy {
            canary,
            stratify,
            ..RolloutPolicy::default()
        }
    }

    #[test]
    fn waves_grow_geometrically_and_cover_everyone() {
        let versions: Vec<usize> = (0..100).map(|i| i % 3).collect();
        let waves = plan_waves(&policy(4, false), &versions, 7);
        let sizes: Vec<usize> = waves.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![4, 16, 64, 16]);
        let mut all: Vec<NodeId> = waves.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn stratified_canary_samples_every_version() {
        let versions: Vec<usize> = (0..90).map(|i| i % 3).collect();
        let waves = plan_waves(&policy(6, true), &versions, 99);
        let canary_versions: Vec<usize> =
            waves[0].iter().map(|&id| versions[id as usize]).collect();
        for v in 0..3 {
            assert!(
                canary_versions.contains(&v),
                "canary {canary_versions:?} misses version {v}"
            );
        }
    }

    #[test]
    fn plan_is_seeded() {
        let versions: Vec<usize> = (0..64).map(|i| i % 3).collect();
        assert_eq!(
            plan_waves(&policy(4, true), &versions, 1),
            plan_waves(&policy(4, true), &versions, 1)
        );
        assert_ne!(
            plan_waves(&policy(4, true), &versions, 1),
            plan_waves(&policy(4, true), &versions, 2)
        );
    }
}
