//! The simulated fleet: heterogeneous base versions, per-version update
//! packs, and the node state machine that answers the orchestrator.
//!
//! Production Ksplice builds one update per (patch, kernel build): the
//! paper's run-pre matching is byte-exact, so a pack built against base
//! version A aborts with `Mismatch` on a kernel whose drift touched the
//! same compilation unit. The fleet mirrors that: each node runs one of
//! [`VERSION_NAMES`], and [`build_packset`] builds the same logical
//! update once per version through the shared build cache.
//!
//! Nodes are cheap when idle: a [`FleetNode`] holds only compact state
//! (version, committed ids, checksums, its pack cache) and *materializes*
//! a kernel runtime on contact — boot from the per-version cached image,
//! optional multi-vCPU workload threads, seeded settle — then drops it
//! again unless the fleet is configured resident. Rollback of a
//! non-resident node rehydrates deterministically (same seeds, same op
//! order), re-applies its committed updates from the pack cache, and
//! reverses the target checksum-verified.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ksplice_core::{
    create_update_cached_traced, ApplyOptions, CreateOptions, HealthProbe, LifecycleError,
    RetryPolicy, SmpConfig, UpdateManager, UpdatePack, WatchPolicy,
};
use ksplice_eval::smp::SMP_LOAD_SRC;
use ksplice_eval::{base_tree, diff_trees};
use ksplice_kernel::Kernel;
use ksplice_lang::{
    build_tree_image_cached, compile_unit, options_fingerprint, BuildCache, Fingerprint, Options,
    SourceTree,
};
use ksplice_object::ObjectSet;
use ksplice_trace::Tracer;

use crate::transport::{fnv1a, NodeId, Payload, Verdict};

/// The base versions the fleet is heterogeneous across, oldest first.
///
/// * `2.6.16` — the evaluation base tree.
/// * `2.6.16-hw` — a vendor build: an extra helper in `lib/string.kc`
///   (a different unit than the fleet update patches, so the drift is
///   benign for this update — but the pack is still built per version).
/// * `2.6.17` — drift *inside* `kernel/sys.kc` itself (`do_syscall`'s
///   unknown-syscall errno), the unit the update patches: a `2.6.16`
///   pack run-pre-mismatches here, which is why the packset exists.
pub const VERSION_NAMES: [&str; 3] = ["2.6.16", "2.6.16-hw", "2.6.17"];

/// Builds the source tree of one base version.
pub fn version_tree(version: usize) -> SourceTree {
    let mut tree = base_tree();
    match version {
        0 => {}
        1 => {
            let src = tree.get("lib/string.kc").expect("lib/string.kc");
            let drifted = format!(
                "{src}\nint hw_vendor_quirk(int x) {{\n    return x + 1;\n}}\n"
            );
            tree.set("lib/string.kc", drifted);
        }
        2 => {
            let src = tree.get("kernel/sys.kc").expect("kernel/sys.kc");
            let drifted = src.replace("return 0 - 38;", "return 0 - 39;");
            assert_ne!(drifted, src, "2.6.17 drift anchor moved");
            tree.set("kernel/sys.kc", drifted);
        }
        other => panic!("unknown base version index {other}"),
    }
    tree
}

/// The debug-hook block CVE-2006-2451's fix removes from `sys_prctl`.
const PRCTL_HOOK: &str = "    if (option == 99) {\n        \
     // Leftover debug hook: grants full capabilities to the caller.\n        \
     grant_caps(current_tid());\n        return 0;\n    }\n";

/// The canary probe specs shipped with the fleet update. Both are plain
/// `HealthProbe::parse` specs evaluated node-side during quarantine:
///
/// * `sys_prctl(99,0)=-22` — the patch took: the debug hook is gone.
/// * `sys_prctl(3,1)=0` — `PR_SET_DUMPABLE` still accepts valid values;
///   the poisoned build breaks exactly this.
pub fn default_canaries() -> Vec<String> {
    vec![
        "sys_prctl(99,0)=-22".to_string(),
        "sys_prctl(3,1)=0".to_string(),
    ]
}

/// Applies the fleet update's source edit to one version's tree: remove
/// the `sys_prctl` debug hook (the CVE-2006-2451 fix). A poisoned build
/// additionally breaks `PR_SET_DUMPABLE`'s range check so valid calls
/// return `-EINVAL` — safe-looking, canary-fatal.
///
/// Public so drift-rebase tests can recover the update's patch text
/// (`diff_trees(&pre, &patched_tree(&pre, false))`) and re-port it onto
/// a drifted stratum with `ksplice_core::rebase_update`.
pub fn patched_tree(pre: &SourceTree, poison: bool) -> SourceTree {
    let src = pre.get("kernel/sys.kc").expect("kernel/sys.kc");
    let mut post = src.replace(PRCTL_HOOK, "");
    assert_ne!(post, src, "prctl hook anchor moved");
    if poison {
        let broken = post.replace("if (arg < 0 || arg > 2)", "if (arg < 0 || arg > 0)");
        assert_ne!(broken, post, "dumpable range anchor moved");
        post = broken;
    }
    let mut tree = pre.clone();
    tree.set("kernel/sys.kc", post);
    tree
}

/// One logical update, built once per base version (the Uptrack model).
#[derive(Debug, Clone)]
pub struct PackSet {
    /// Update id, identical across versions.
    pub update_id: String,
    /// Canary probe specs shipped with every delivery.
    pub canaries: Vec<String>,
    /// Serialized pack per version index.
    packs: Vec<Vec<u8>>,
    /// FNV-1a of each serialized pack.
    checksums: Vec<u64>,
}

impl PackSet {
    /// Assembles a packset from pre-serialized per-version packs — the
    /// Uptrack build-server path where some strata get packs produced by
    /// `ksplice_core::rebase_update` against their drifted trees instead
    /// of a fresh same-tree build. Checksums are computed here.
    pub fn from_packs(update_id: &str, canaries: Vec<String>, packs: Vec<Vec<u8>>) -> Self {
        assert!(!packs.is_empty(), "a packset needs at least one pack");
        let checksums = packs.iter().map(|p| fnv1a(p)).collect();
        PackSet {
            update_id: update_id.to_string(),
            canaries,
            packs,
            checksums,
        }
    }

    /// The serialized pack and checksum for one base version.
    pub fn for_version(&self, version: usize) -> (&[u8], u64) {
        (&self.packs[version], self.checksums[version])
    }

    /// Number of per-version builds.
    pub fn versions(&self) -> usize {
        self.packs.len()
    }
}

/// Builds the fleet update for the first `versions` base versions.
/// Versions listed in `poison_versions` get the poisoned build — the
/// "safe on one base version, misbehaves on another" shape the staged
/// rollout must contain.
pub fn build_packset(
    update_id: &str,
    versions: usize,
    poison_versions: &[usize],
    cache: &BuildCache,
) -> Result<PackSet, String> {
    let mut packs = Vec::new();
    let mut checksums = Vec::new();
    for v in 0..versions {
        let pre = version_tree(v);
        let post = patched_tree(&pre, poison_versions.contains(&v));
        let patch = diff_trees(&pre, &post);
        let (pack, _) = create_update_cached_traced(
            update_id,
            &pre,
            &patch,
            &CreateOptions::default(),
            cache,
            &mut Tracer::disabled(),
        )
        .map_err(|e| format!("{update_id} v{v}: create: {e}"))?;
        let bytes = pack.to_bytes();
        checksums.push(fnv1a(&bytes));
        packs.push(bytes);
    }
    Ok(PackSet {
        update_id: update_id.to_string(),
        canaries: default_canaries(),
        packs,
        checksums,
    })
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of simulated kernels.
    pub nodes: u32,
    /// Base versions cycled across nodes (≤ [`VERSION_NAMES`] len).
    pub versions: usize,
    /// vCPUs per node kernel (PR 8's SMP substrate).
    pub cpus: u32,
    /// Background workload threads per node, hammering the syscall
    /// path so waves run against *loaded* multi-CPU kernels.
    pub load_threads: u32,
    /// Master seed: derives every per-node seed.
    pub seed: u64,
    /// Keep node kernels resident after contact. Tests assert on
    /// resident kernels; large fleets stay non-resident to bound memory.
    pub resident: bool,
    /// The quarantine watch window each node runs post-apply.
    pub watch: WatchPolicy,
    /// The node-local stop_machine retry schedule (drains quiescence
    /// contention from the workload threads).
    pub retry: RetryPolicy,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            nodes: 48,
            versions: VERSION_NAMES.len(),
            cpus: 1,
            load_threads: 0,
            seed: 0xf1ee_7001,
            resident: false,
            watch: WatchPolicy {
                rounds: 2,
                steps_per_round: 500,
            },
            retry: RetryPolicy::fixed(10, 2_000),
        }
    }
}

/// xorshift64* — the repo's standard seeded generator.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Shared, thread-safe build context: per-version boot images plus the
/// build cache the load module compiles through.
pub struct FleetContext {
    images: Vec<ObjectSet>,
    cache: BuildCache,
}

impl FleetContext {
    fn new(cfg: &FleetConfig) -> Result<FleetContext, String> {
        let cache = BuildCache::new();
        let mut images = Vec::new();
        for v in 0..cfg.versions.clamp(1, VERSION_NAMES.len()) {
            let tree = version_tree(v);
            let (image, _) = build_tree_image_cached(&tree, &Options::distro(), &cache)
                .map_err(|e| format!("version {v} image: {e}"))?;
            images.push(image);
        }
        Ok(FleetContext { images, cache })
    }

    /// The shared build cache (pack builds can reuse it).
    pub fn cache(&self) -> &BuildCache {
        &self.cache
    }
}

/// A node's live kernel + lifecycle manager, present only while
/// materialized.
struct NodeRuntime {
    kernel: Kernel,
    mgr: UpdateManager,
}

/// One simulated kernel in the fleet.
pub struct FleetNode {
    /// Dense node id (`fleet.nodes[id]`).
    pub id: NodeId,
    /// Base version index into [`VERSION_NAMES`].
    pub version: usize,
    /// Ids of updates currently committed, oldest first.
    pub committed: Vec<String>,
    /// Text checksum of the freshly settled kernel, recorded at first
    /// materialization — the mass-rollback reference image.
    pub baseline_text: u64,
    /// Per committed update: the delivered pack bytes (the node's local
    /// pack cache, needed to rehydrate) and the pre-apply text checksum.
    applied: Vec<(String, Vec<u8>, u64)>,
    /// Updates revoked by a rollback order. A Deliver that arrives after
    /// its Rollback (reordered by a partition heal) must not resurrect
    /// the update, so rollback orders are sticky.
    revoked: Vec<String>,
    seed: u64,
    runtime: Option<NodeRuntime>,
}

impl FleetNode {
    fn new(id: NodeId, version: usize, seed: u64) -> FleetNode {
        FleetNode {
            id,
            version,
            committed: Vec::new(),
            baseline_text: 0,
            applied: Vec::new(),
            revoked: Vec::new(),
            seed,
            runtime: None,
        }
    }

    /// Placeholder left behind while a worker owns the real node.
    fn tombstone() -> FleetNode {
        FleetNode::new(u32::MAX, 0, 1)
    }

    /// Whether the node currently holds a live kernel.
    pub fn is_resident(&self) -> bool {
        self.runtime.is_some()
    }

    /// Text checksum of the resident kernel (None when not resident).
    pub fn resident_text_checksum(&self) -> Option<u64> {
        self.runtime.as_ref().map(|rt| rt.kernel.mem.text_checksum())
    }

    /// The pre-apply text checksum recorded for a committed update.
    pub fn pre_apply_checksum(&self, update: &str) -> Option<u64> {
        self.applied
            .iter()
            .find(|(id, _, _)| id == update)
            .map(|(_, _, pre)| *pre)
    }

    /// Boots (or rehydrates) the node's kernel: per-version cached
    /// image, SMP topology, seeded workload threads and settle skid,
    /// then re-application of every committed update from the local
    /// pack cache. The op order and all seeds are pure functions of the
    /// node, so a rehydrated kernel is byte-identical in text to the
    /// one that was dropped.
    fn materialize(&mut self, cx: &FleetContext, cfg: &FleetConfig) -> Result<(), String> {
        if self.runtime.is_some() {
            return Ok(());
        }
        let mut rng = self.seed;
        let mut kernel = Kernel::boot_image(&cx.images[self.version])
            .map_err(|e| format!("node {}: boot: {e}", self.id))?;
        if cfg.cpus > 1 {
            kernel.configure_smp(SmpConfig::with_cpus(cfg.cpus).with_seed(xorshift(&mut rng)));
        }
        if cfg.load_threads > 0 {
            let entry = load_workload(&mut kernel, &cx.cache)?;
            for _ in 0..cfg.load_threads {
                kernel
                    .spawn_at(entry, &[1_000_000_000], "fleet-load")
                    .map_err(|e| format!("node {}: load spawn: {e}", self.id))?;
                // Seeded skid so threads sharing a run queue don't park
                // in phase lockstep (same trick as the SMP sweep).
                kernel.run(257 + xorshift(&mut rng) % 509);
            }
        }
        kernel.run(1_000 + xorshift(&mut rng) % 1_009);
        if self.baseline_text == 0 {
            self.baseline_text = kernel.mem.text_checksum();
        }
        // Rehydration: re-apply the committed stack probe-free (each
        // update already survived quarantine the first time, and an
        // empty probe set passes every watch round trivially).
        let mut mgr = UpdateManager::with_watch(cfg.watch.clone());
        let opts = self.apply_options(cfg);
        for (id, bytes, _) in &self.applied {
            let pack = UpdatePack::parse(bytes)
                .map_err(|e| format!("node {}: cached pack {id}: {e}", self.id))?;
            mgr.apply_watched(&mut kernel, &pack, &mut [], &opts, &mut Tracer::disabled())
                .map_err(|e| format!("node {}: rehydrate {id}: {e}", self.id))?;
        }
        self.runtime = Some(NodeRuntime { kernel, mgr });
        Ok(())
    }

    fn apply_options(&self, cfg: &FleetConfig) -> ApplyOptions {
        ApplyOptions {
            retry: cfg.retry.clone(),
            smp: SmpConfig::with_cpus(cfg.cpus),
        }
    }

    /// Handles one tick's messages, returning the reports to send back.
    /// Non-resident nodes drop their kernel before returning.
    pub fn handle(
        &mut self,
        msgs: Vec<Payload>,
        cx: &FleetContext,
        cfg: &FleetConfig,
    ) -> Vec<Payload> {
        let mut out = Vec::new();
        for msg in msgs {
            let reply = match msg {
                Payload::Deliver {
                    update,
                    pack,
                    checksum,
                    canaries,
                } => Some(self.deliver(update, pack, checksum, &canaries, cx, cfg)),
                Payload::Rollback { update } => Some(self.rollback(update, cx, cfg)),
                // Nodes never receive reports; ignore strays.
                Payload::Report { .. } => None,
            };
            out.extend(reply);
        }
        if !cfg.resident {
            self.runtime = None;
        }
        out
    }

    fn deliver(
        &mut self,
        update: String,
        pack_bytes: Vec<u8>,
        checksum: u64,
        canaries: &[String],
        cx: &FleetContext,
        cfg: &FleetConfig,
    ) -> Payload {
        // A rollback order is sticky: a Deliver arriving after its
        // Rollback (reordered by a partition heal) must not resurrect
        // the update.
        if self.revoked.contains(&update) {
            return report(update, Verdict::RolledBack { restored: true });
        }
        // Duplicate deliveries are idempotent: re-ack, never re-apply.
        if self.committed.contains(&update) {
            return report(update, Verdict::AlreadyApplied);
        }
        if fnv1a(&pack_bytes) != checksum {
            return report(
                update,
                Verdict::Rejected {
                    reason: "pack checksum mismatch".to_string(),
                },
            );
        }
        let pack = match UpdatePack::parse(&pack_bytes) {
            Ok(pack) => pack,
            Err(e) => {
                return report(
                    update,
                    Verdict::Rejected {
                        reason: format!("unparsable pack: {e}"),
                    },
                )
            }
        };
        let mut probes: Vec<HealthProbe> = match canaries
            .iter()
            .map(|s| HealthProbe::parse(s))
            .collect::<Result<_, _>>()
        {
            Ok(probes) => probes,
            Err(e) => {
                return report(
                    update,
                    Verdict::Rejected {
                        reason: format!("bad canary: {e}"),
                    },
                )
            }
        };
        if let Err(e) = self.materialize(cx, cfg) {
            return report(
                update,
                Verdict::ApplyFailed {
                    reason: e,
                    restored: true,
                },
            );
        }
        let opts = self.apply_options(cfg);
        let rt = self.runtime.as_mut().expect("materialized");
        let pre = rt.kernel.mem.text_checksum();
        match rt.mgr.apply_watched(
            &mut rt.kernel,
            &pack,
            &mut probes,
            &opts,
            &mut Tracer::disabled(),
        ) {
            Ok(rep) => {
                self.committed.push(update.clone());
                self.applied.push((update.clone(), pack_bytes, pre));
                report(
                    update,
                    Verdict::Committed {
                        attempts: rep.attempts,
                        pause_steps: rep.pause_steps,
                    },
                )
            }
            Err(LifecycleError::Quarantine { probe, .. }) => {
                let restored = rt.kernel.mem.text_checksum() == pre;
                report(update, Verdict::Quarantined { probe, restored })
            }
            Err(LifecycleError::RollbackFailed { reason, .. }) => report(
                update,
                Verdict::ApplyFailed {
                    reason: format!("rollback stuck: {reason}"),
                    restored: false,
                },
            ),
            Err(e) => {
                let restored = rt.kernel.mem.text_checksum() == pre;
                report(
                    update,
                    Verdict::ApplyFailed {
                        reason: e.to_string(),
                        restored,
                    },
                )
            }
        }
    }

    fn rollback(&mut self, update: String, cx: &FleetContext, cfg: &FleetConfig) -> Payload {
        if !self.revoked.contains(&update) {
            self.revoked.push(update.clone());
        }
        // Never applied (or already reversed): trivially rolled back.
        if !self.committed.contains(&update) {
            return report(update, Verdict::RolledBack { restored: true });
        }
        if let Err(e) = self.materialize(cx, cfg) {
            return report(
                update,
                Verdict::ApplyFailed {
                    reason: e,
                    restored: false,
                },
            );
        }
        let pre = self
            .pre_apply_checksum(&update)
            .expect("committed updates record pre-apply checksums");
        let opts = self.apply_options(cfg);
        let rt = self.runtime.as_mut().expect("materialized");
        match rt
            .mgr
            .undo_any(&mut rt.kernel, &update, &opts, &mut Tracer::disabled())
        {
            Ok(_) => {
                let restored = rt.kernel.mem.text_checksum() == pre;
                self.committed.retain(|id| id != &update);
                self.applied.retain(|(id, _, _)| id != &update);
                report(update, Verdict::RolledBack { restored })
            }
            Err(e) => report(
                update,
                Verdict::ApplyFailed {
                    reason: format!("undo: {e}"),
                    restored: false,
                },
            ),
        }
    }
}

fn report(update: String, verdict: Verdict) -> Payload {
    Payload::Report { update, verdict }
}

/// Compiles (through the shared cache) and loads the sustained syscall
/// workload, returning its entry address. The source is the SMP sweep's
/// `SMP_LOAD_SRC`: `sys_open`/read/write/close hammering with no
/// cross-thread invariants, so N copies run indefinitely.
fn load_workload(kernel: &mut Kernel, cache: &BuildCache) -> Result<u64, String> {
    let opt = Options::pre_post();
    let mut fp = Fingerprint::new();
    fp.u64_field(options_fingerprint(&opt))
        .str_field("fleet/load.kc")
        .str_field(SMP_LOAD_SRC);
    let key = fp.finish();
    let obj = match cache.lookup(key) {
        Some(obj) => obj,
        None => {
            let obj = compile_unit("fleet/load.kc", SMP_LOAD_SRC, &opt)
                .map_err(|e| format!("fleet load compile: {e}"))?;
            cache.store(key, obj.clone());
            obj
        }
    };
    let module = kernel
        .insmod(&obj, false)
        .map_err(|e| format!("fleet load insmod: {e}"))?;
    module
        .symbol_addr("smp_load_main")
        .ok_or_else(|| "smp_load_main missing".to_string())
}

/// The whole simulated fleet: shared build context plus every node.
pub struct Fleet {
    /// The fleet-wide configuration.
    pub cfg: FleetConfig,
    cx: FleetContext,
    nodes: Vec<FleetNode>,
}

impl Fleet {
    /// Builds the fleet: per-version images once, then `cfg.nodes`
    /// compact nodes with versions assigned round-robin and per-node
    /// seeds derived from the master seed.
    pub fn new(cfg: FleetConfig) -> Result<Fleet, String> {
        let cfg = FleetConfig {
            versions: cfg.versions.clamp(1, VERSION_NAMES.len()),
            ..cfg
        };
        let cx = FleetContext::new(&cfg)?;
        let nodes = (0..cfg.nodes)
            .map(|id| {
                let mut seed = cfg
                    .seed
                    .wrapping_add((id as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                xorshift(&mut seed);
                FleetNode::new(id, id as usize % cfg.versions, seed | 1)
            })
            .collect();
        Ok(Fleet { cfg, cx, nodes })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty fleet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A node, by id.
    pub fn node(&self, id: NodeId) -> &FleetNode {
        &self.nodes[id as usize]
    }

    /// The shared build context.
    pub fn context(&self) -> &FleetContext {
        &self.cx
    }

    /// Version index of each node, densely by id.
    pub fn versions(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.version).collect()
    }

    /// Processes one tick's node-bound messages, sharded across `jobs`
    /// worker threads (the eval-driver pattern: an atomic work queue
    /// over owned slots, results re-assembled in input order so the
    /// outcome is byte-identical regardless of `jobs`).
    pub fn handle_batch(
        &mut self,
        batch: Vec<(NodeId, Vec<Payload>)>,
        jobs: usize,
    ) -> Vec<(NodeId, Vec<Payload>)> {
        if batch.is_empty() {
            return Vec::new();
        }
        // Take each contacted node out of the fleet so workers own them.
        type Slot = Mutex<Option<(NodeId, FleetNode, Vec<Payload>)>>;
        let tasks: Vec<Slot> = batch
            .into_iter()
            .map(|(id, msgs)| {
                let node = std::mem::replace(&mut self.nodes[id as usize], FleetNode::tombstone());
                Mutex::new(Some((id, node, msgs)))
            })
            .collect();
        let results: Vec<Slot> = tasks.iter().map(|_| Mutex::new(None)).collect();
        let cx = &self.cx;
        let cfg = &self.cfg;
        let jobs = jobs.clamp(1, tasks.len());
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks.len() {
                        break;
                    }
                    let (id, mut node, msgs) =
                        tasks[i].lock().unwrap().take().expect("task taken once");
                    let replies = node.handle(msgs, cx, cfg);
                    *results[i].lock().unwrap() = Some((id, node, replies));
                });
            }
        });
        let mut out = Vec::new();
        for slot in results {
            let (id, node, replies) = slot.into_inner().unwrap().expect("worker filled slot");
            self.nodes[id as usize] = node;
            out.push((id, replies));
        }
        out
    }
}
