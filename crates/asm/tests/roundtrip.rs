//! Property tests: encode/decode roundtrips and decoder totality.

// Gated: the proptest dependency only resolves with registry access.
// Re-add `proptest` to [dev-dependencies] and build with
// `--features proptest-tests` to run this suite.
#![cfg(feature = "proptest-tests")]

use ksplice_asm::{
    branch_info, decode, decode_len, disassemble_one, nop_len_at, BinOp, Cond, Instr, Reg,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::from_nibble)
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..6).prop_map(|i| Cond::from_index(i).unwrap())
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    (0u8..10).prop_map(|i| BinOp::from_index(i).unwrap())
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Hlt),
        Just(Instr::Ret),
        Just(Instr::Nop1),
        (2u8..=9).prop_map(Instr::NopN),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::MovRR(a, b)),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Instr::MovRI32(r, i)),
        (arb_reg(), any::<u64>()).prop_map(|(r, i)| Instr::MovRI64(r, i)),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(a, b, d)| Instr::Ld(a, b, d)),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(a, b, d)| Instr::St(a, b, d)),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(a, b, d)| Instr::Ld8(a, b, d)),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(a, b, d)| Instr::St8(a, b, d)),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(a, b, d)| Instr::Lea(a, b, d)),
        (arb_binop(), arb_reg(), arb_reg()).prop_map(|(o, a, b)| Instr::Bin(o, a, b)),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Instr::AddI(r, i)),
        arb_reg().prop_map(Instr::Neg),
        arb_reg().prop_map(Instr::Not),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Cmp(a, b)),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Instr::CmpI(r, i)),
        any::<i8>().prop_map(Instr::Jmp8),
        any::<i32>().prop_map(Instr::Jmp32),
        (arb_cond(), any::<i8>()).prop_map(|(c, r)| Instr::Jcc8(c, r)),
        (arb_cond(), any::<i32>()).prop_map(|(c, r)| Instr::Jcc32(c, r)),
        any::<i32>().prop_map(Instr::Call32),
        arb_reg().prop_map(Instr::CallR),
        arb_reg().prop_map(Instr::Push),
        arb_reg().prop_map(Instr::Pop),
        any::<u8>().prop_map(Instr::Int),
    ]
}

proptest! {
    /// Every instruction decodes back to itself with the declared length.
    #[test]
    fn encode_decode_roundtrip(instr in arb_instr()) {
        let bytes = instr.to_bytes();
        prop_assert_eq!(bytes.len(), instr.len());
        let (decoded, len) = decode(&bytes).unwrap();
        prop_assert_eq!(decoded, instr);
        prop_assert_eq!(len, bytes.len());
        prop_assert_eq!(decode_len(&bytes).unwrap(), bytes.len());
    }

    /// The decoder never panics on arbitrary bytes, and decoding is
    /// idempotent: re-encoding a decoded instruction (which canonicalises
    /// don't-care bits) decodes back to the same instruction and length.
    #[test]
    fn decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        match decode(&bytes) {
            Ok((instr, len)) => {
                prop_assert!(len <= bytes.len());
                let reenc = instr.to_bytes();
                let (instr2, len2) = decode(&reenc).unwrap();
                prop_assert_eq!(instr2, instr);
                prop_assert_eq!(len2, len);
            }
            Err(_) => {}
        }
        // These are total too.
        let _ = nop_len_at(&bytes, 0);
        let _ = branch_info(&bytes, 0x1000).ok();
    }

    /// A stream of concatenated instructions decodes instruction by
    /// instruction at exactly the encoded boundaries.
    #[test]
    fn stream_boundaries(instrs in proptest::collection::vec(arb_instr(), 1..20)) {
        let mut code = Vec::new();
        let mut boundaries = Vec::new();
        for i in &instrs {
            boundaries.push(code.len());
            i.encode(&mut code);
        }
        let mut at = 0usize;
        for (i, &start) in instrs.iter().zip(&boundaries) {
            prop_assert_eq!(at, start);
            let (decoded, len) = decode(&code[at..]).unwrap();
            prop_assert_eq!(&decoded, i);
            at += len;
        }
        prop_assert_eq!(at, code.len());
    }

    /// Disassembly is total and non-empty for every instruction.
    #[test]
    fn disasm_total(instr in arb_instr()) {
        prop_assert!(!disassemble_one(&instr).is_empty());
    }

    /// Branch targets honour the next-instruction-relative convention.
    #[test]
    fn branch_target_convention(rel in any::<i32>(), addr in 0u64..u64::MAX / 2) {
        let j = Instr::Jmp32(rel).to_bytes();
        let info = branch_info(&j, addr).unwrap().unwrap();
        prop_assert_eq!(info.target, addr.wrapping_add(5).wrapping_add(rel as i64 as u64));
    }
}
