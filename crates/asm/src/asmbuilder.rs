//! A small label-based assembler.
//!
//! The `kc` compiler's code generator and Ksplice's trampoline writer both
//! emit K64 code with forward references. The [`Assembler`] collects
//! instructions, local-label branches, alignment directives, and *patch
//! points* (bytes to be fixed up later by a linker relocation), then
//! resolves everything in [`Assembler::finish`].
//!
//! Branch *relaxation* is where the rel8/rel32 freedom enters: with
//! relaxation enabled the assembler picks the short `rel8` form whenever
//! the displacement fits, growing branches to `rel32` only as needed —
//! so the same instruction stream assembled at different distances can
//! legitimately produce different bytes (paper §4.3).

use std::collections::HashMap;
use std::fmt;

use crate::instr::Instr;
use crate::nop::nop_fill;
use crate::Cond;

/// A local code label; create with [`Assembler::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A location in the emitted code that a linker must later patch with a
/// symbol address (an unresolved relocation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchPoint {
    /// Byte offset of the to-be-patched field from the start of the code.
    pub offset: usize,
    /// Field width in bytes (4 or 8).
    pub width: usize,
    /// Symbol name the field refers to.
    pub name: String,
    /// Relocation addend.
    pub addend: i64,
    /// True if the stored value is PC-relative (`S + A − P`), false if
    /// absolute (`S + A`).
    pub pcrel: bool,
}

/// Errors from assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch referenced a label that was never bound.
    UnboundLabel(usize),
    /// A label was bound twice.
    Rebound(usize),
    /// A relaxed branch displacement overflowed `i32`.
    DisplacementOverflow,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(i) => write!(f, "label {i} referenced but never bound"),
            AsmError::Rebound(i) => write!(f, "label {i} bound twice"),
            AsmError::DisplacementOverflow => write!(f, "branch displacement exceeds 32 bits"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Item {
    /// A fully-encoded instruction.
    Fixed(Instr),
    /// A relaxable branch to a local label (`None` = unconditional).
    Branch { cond: Option<Cond>, label: Label },
    /// A call to a local label (always `rel32`).
    CallLabel(Label),
    /// An instruction one of whose fields a linker must patch later.
    Patched {
        instr: Instr,
        field_offset: usize,
        width: usize,
        name: String,
        addend: i64,
        pcrel: bool,
    },
    /// Bind a label at the current position.
    Bind(Label),
    /// Pad with canonical no-ops to the given power-of-two alignment.
    Align(u32),
}

/// The finished output of assembly: code bytes, unresolved patch points,
/// and resolved label offsets.
#[derive(Debug, Clone)]
pub struct Assembled {
    /// Final machine code.
    pub code: Vec<u8>,
    /// Linker patch points, in offset order.
    pub patches: Vec<PatchPoint>,
    /// Byte offset of every bound label.
    pub label_offsets: HashMap<Label, usize>,
}

/// Incremental assembler; see the module docs.
#[derive(Debug, Default)]
pub struct Assembler {
    items: Vec<Item>,
    next_label: usize,
    relax: bool,
}

impl Assembler {
    /// Creates an assembler that always emits `rel32` branch forms.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Creates an assembler with branch relaxation enabled: branches use
    /// the short `rel8` form whenever the displacement fits.
    pub fn new_relaxed() -> Assembler {
        Assembler {
            relax: true,
            ..Assembler::default()
        }
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        self.items.push(Item::Bind(label));
    }

    /// Emits a fixed instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.items.push(Item::Fixed(instr));
    }

    /// Emits an unconditional jump to a local label.
    pub fn jmp(&mut self, label: Label) {
        self.items.push(Item::Branch { cond: None, label });
    }

    /// Emits a conditional jump to a local label.
    pub fn jcc(&mut self, cond: Cond, label: Label) {
        self.items.push(Item::Branch {
            cond: Some(cond),
            label,
        });
    }

    /// Emits a call to a local label.
    pub fn call_label(&mut self, label: Label) {
        self.items.push(Item::CallLabel(label));
    }

    /// Emits `instr` and records that the `width`-byte field at
    /// `field_offset` within it must be patched with the address of
    /// `name` (plus `addend`; PC-relative if `pcrel`).
    pub fn emit_patched(
        &mut self,
        instr: Instr,
        field_offset: usize,
        width: usize,
        name: &str,
        addend: i64,
        pcrel: bool,
    ) {
        self.items.push(Item::Patched {
            instr,
            field_offset,
            width,
            name: name.to_string(),
            addend,
            pcrel,
        });
    }

    /// Pads with canonical no-ops to a power-of-two `alignment`.
    pub fn align(&mut self, alignment: u32) {
        debug_assert!(alignment.is_power_of_two());
        self.items.push(Item::Align(alignment));
    }

    /// Number of items queued so far (used by tests).
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// Resolves labels (relaxing branches if enabled) and produces the
    /// final code.
    pub fn finish(self) -> Result<Assembled, AsmError> {
        // Phase 1: decide each branch's form, iterating to a fixpoint.
        // Branches start short (when relaxing) and only ever grow, so the
        // loop terminates.
        let branch_count = self
            .items
            .iter()
            .filter(|i| matches!(i, Item::Branch { .. }))
            .count();
        let mut long = vec![!self.relax; branch_count];
        let (offsets, labels) = loop {
            let (offsets, labels, grew) = self.layout(&long)?;
            if !grew.iter().any(|&g| g) {
                break (offsets, labels);
            }
            for (l, g) in long.iter_mut().zip(&grew) {
                *l |= *g;
            }
        };

        // Phase 2: emit.
        let mut code = Vec::new();
        let mut patches = Vec::new();
        let mut branch_idx = 0usize;
        for (item, &start) in self.items.iter().zip(&offsets) {
            debug_assert_eq!(code.len(), start);
            match item {
                Item::Fixed(i) => i.encode(&mut code),
                Item::Bind(_) => {}
                Item::Align(a) => {
                    let a = *a as usize;
                    let pad = (a - code.len() % a) % a;
                    nop_fill(&mut code, pad);
                }
                Item::Branch { cond, label } => {
                    let target = *labels.get(label).ok_or(AsmError::UnboundLabel(label.0))?;
                    let is_long = long[branch_idx];
                    branch_idx += 1;
                    let len = branch_len(cond.is_some(), is_long);
                    let rel = target as i64 - (start + len) as i64;
                    let instr = if is_long {
                        let rel = i32::try_from(rel).map_err(|_| AsmError::DisplacementOverflow)?;
                        match cond {
                            None => Instr::Jmp32(rel),
                            Some(c) => Instr::Jcc32(*c, rel),
                        }
                    } else {
                        let rel = i8::try_from(rel).expect("short branch fits by construction");
                        match cond {
                            None => Instr::Jmp8(rel),
                            Some(c) => Instr::Jcc8(*c, rel),
                        }
                    };
                    instr.encode(&mut code);
                }
                Item::CallLabel(label) => {
                    let target = *labels.get(label).ok_or(AsmError::UnboundLabel(label.0))?;
                    let rel = target as i64 - (start + 5) as i64;
                    let rel = i32::try_from(rel).map_err(|_| AsmError::DisplacementOverflow)?;
                    Instr::Call32(rel).encode(&mut code);
                }
                Item::Patched {
                    instr,
                    field_offset,
                    width,
                    name,
                    addend,
                    pcrel,
                } => {
                    patches.push(PatchPoint {
                        offset: start + field_offset,
                        width: *width,
                        name: name.clone(),
                        addend: *addend,
                        pcrel: *pcrel,
                    });
                    instr.encode(&mut code);
                }
            }
        }
        Ok(Assembled {
            code,
            patches,
            label_offsets: labels,
        })
    }

    /// Computes the offset of every item given the current branch forms.
    /// Returns per-branch "must grow" flags for short branches whose
    /// displacement does not fit in `i8`.
    #[allow(clippy::type_complexity)]
    fn layout(
        &self,
        long: &[bool],
    ) -> Result<(Vec<usize>, HashMap<Label, usize>, Vec<bool>), AsmError> {
        let mut offsets = Vec::with_capacity(self.items.len());
        let mut labels: HashMap<Label, usize> = HashMap::new();
        let mut pos = 0usize;
        let mut branch_idx = 0usize;
        for item in &self.items {
            offsets.push(pos);
            match item {
                Item::Fixed(i) => pos += i.len(),
                Item::Bind(l) => {
                    if labels.insert(*l, pos).is_some() {
                        return Err(AsmError::Rebound(l.0));
                    }
                }
                Item::Align(a) => {
                    let a = *a as usize;
                    pos += (a - pos % a) % a;
                }
                Item::Branch { cond, .. } => {
                    pos += branch_len(cond.is_some(), long[branch_idx]);
                    branch_idx += 1;
                }
                Item::CallLabel(_) => pos += 5,
                Item::Patched { instr, .. } => pos += instr.len(),
            }
        }
        // Check which short branches fit.
        let mut grew = vec![false; long.len()];
        let mut branch_idx = 0usize;
        for (item, &start) in self.items.iter().zip(&offsets) {
            if let Item::Branch { cond, label } = item {
                let idx = branch_idx;
                branch_idx += 1;
                if long[idx] {
                    continue;
                }
                let target = *labels.get(label).ok_or(AsmError::UnboundLabel(label.0))?;
                let len = branch_len(cond.is_some(), false);
                let rel = target as i64 - (start + len) as i64;
                if i8::try_from(rel).is_err() {
                    grew[idx] = true;
                }
            }
        }
        Ok((offsets, labels, grew))
    }
}

fn branch_len(_conditional: bool, long: bool) -> usize {
    if long {
        5
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_all, Reg};

    fn decode_stream(code: &[u8]) -> Vec<Instr> {
        decode_all(code).expect("assembled code must decode")
    }

    #[test]
    fn forward_branch_resolves() {
        let mut a = Assembler::new();
        let end = a.new_label();
        a.emit(Instr::MovRI32(Reg::R0, 1));
        a.jmp(end);
        a.emit(Instr::MovRI32(Reg::R0, 2));
        a.bind(end);
        a.emit(Instr::Ret);
        let out = a.finish().unwrap();
        let instrs = decode_stream(&out.code);
        // Non-relaxed: rel32 jump over the 6-byte mov.
        assert_eq!(instrs[1], Instr::Jmp32(6));
    }

    #[test]
    fn relaxed_short_branch() {
        let mut a = Assembler::new_relaxed();
        let end = a.new_label();
        a.jmp(end);
        a.emit(Instr::Nop1);
        a.bind(end);
        a.emit(Instr::Ret);
        let out = a.finish().unwrap();
        assert_eq!(decode_stream(&out.code)[0], Instr::Jmp8(1));
    }

    #[test]
    fn relaxed_branch_grows_when_needed() {
        let mut a = Assembler::new_relaxed();
        let end = a.new_label();
        a.jmp(end);
        for _ in 0..40 {
            a.emit(Instr::MovRI32(Reg::R0, 0)); // 240 bytes, too far for rel8
        }
        a.bind(end);
        a.emit(Instr::Ret);
        let out = a.finish().unwrap();
        assert_eq!(decode_stream(&out.code)[0], Instr::Jmp32(240));
    }

    #[test]
    fn backward_branch() {
        let mut a = Assembler::new_relaxed();
        let top = a.new_label();
        a.bind(top);
        a.emit(Instr::Nop1);
        a.jmp(top);
        let out = a.finish().unwrap();
        // jmp.s encoded at offset 1, next instruction at 3, target 0.
        assert_eq!(decode_stream(&out.code)[1], Instr::Jmp8(-3));
    }

    #[test]
    fn unbound_label_errors() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.jmp(l);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn rebound_label_errors() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
        assert!(matches!(a.finish(), Err(AsmError::Rebound(_))));
    }

    #[test]
    fn alignment_pads_with_canonical_nops() {
        let mut a = Assembler::new();
        a.emit(Instr::Ret); // 1 byte
        a.align(16);
        let l = a.new_label();
        a.bind(l);
        a.emit(Instr::Hlt);
        let out = a.finish().unwrap();
        assert_eq!(out.label_offsets[&l], 16);
        assert_eq!(crate::nop::nop_run_len(&out.code, 1), 15);
    }

    #[test]
    fn patch_points_track_relaxation_shifts() {
        let mut a = Assembler::new_relaxed();
        let end = a.new_label();
        a.jmp(end); // 2 bytes when relaxed
        a.bind(end);
        a.emit_patched(Instr::Call32(0), 1, 4, "ext_fn", -4, true);
        let out = a.finish().unwrap();
        assert_eq!(out.patches.len(), 1);
        // Field begins after the 2-byte short jump plus the call opcode.
        assert_eq!(out.patches[0].offset, 3);
        assert_eq!(out.patches[0].name, "ext_fn");
        assert!(out.patches[0].pcrel);
    }

    #[test]
    fn call_label_is_always_rel32() {
        let mut a = Assembler::new_relaxed();
        let f = a.new_label();
        a.call_label(f);
        a.bind(f);
        a.emit(Instr::Ret);
        let out = a.finish().unwrap();
        assert_eq!(decode_stream(&out.code)[0], Instr::Call32(0));
    }
}
