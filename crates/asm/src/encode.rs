//! Binary encoding of K64 instructions.
//!
//! Opcode map (first byte):
//!
//! | byte        | instruction |
//! |-------------|-------------|
//! | `0x00`      | `hlt` |
//! | `0x01`      | `ret` |
//! | `0x90`      | `nop` (1 byte) |
//! | `0x0e`      | `nopN` — second byte is the total length (2–9), then zero padding |
//! | `0x10`      | `mov r,r` |
//! | `0x11`      | `mov r,imm32` |
//! | `0x12`      | `mov r,imm64` |
//! | `0x13`–`0x17` | `ld`, `st`, `ld8`, `st8`, `lea` |
//! | `0x20`      | binary op — second byte selects the operation |
//! | `0x2a`      | `addi r,imm32` |
//! | `0x2c`/`0x2d` | `neg` / `not` |
//! | `0x30`/`0x31` | `cmp r,r` / `cmpi r,imm32` |
//! | `0x40`/`0x41` | `jmp rel8` / `jmp rel32` |
//! | `0x42`–`0x47` | `jcc rel8` (condition = opcode − 0x42) |
//! | `0x48`–`0x4d` | `jcc rel32` (condition = opcode − 0x48) |
//! | `0x50`/`0x51` | `call rel32` / `call r` |
//! | `0x52`/`0x53` | `push` / `pop` |
//! | `0x60`      | `int imm8` |
//!
//! Register pairs pack into one byte as `(a << 4) | b`. All immediates and
//! displacements are little-endian.

use crate::instr::{BinOp, Instr};
use crate::Reg;

pub(crate) const OP_HLT: u8 = 0x00;
pub(crate) const OP_RET: u8 = 0x01;
pub(crate) const OP_NOP1: u8 = 0x90;
pub(crate) const OP_NOPN: u8 = 0x0e;
pub(crate) const OP_MOVRR: u8 = 0x10;
pub(crate) const OP_MOVRI32: u8 = 0x11;
pub(crate) const OP_MOVRI64: u8 = 0x12;
pub(crate) const OP_LD: u8 = 0x13;
pub(crate) const OP_ST: u8 = 0x14;
pub(crate) const OP_LD8: u8 = 0x15;
pub(crate) const OP_ST8: u8 = 0x16;
pub(crate) const OP_LEA: u8 = 0x17;
pub(crate) const OP_BIN: u8 = 0x20;
pub(crate) const OP_ADDI: u8 = 0x2a;
pub(crate) const OP_NEG: u8 = 0x2c;
pub(crate) const OP_NOT: u8 = 0x2d;
pub(crate) const OP_CMP: u8 = 0x30;
pub(crate) const OP_CMPI: u8 = 0x31;
pub(crate) const OP_JMP8: u8 = 0x40;
pub(crate) const OP_JMP32: u8 = 0x41;
pub(crate) const OP_JCC8_BASE: u8 = 0x42;
pub(crate) const OP_JCC32_BASE: u8 = 0x48;
pub(crate) const OP_CALL32: u8 = 0x50;
pub(crate) const OP_CALLR: u8 = 0x51;
pub(crate) const OP_PUSH: u8 = 0x52;
pub(crate) const OP_POP: u8 = 0x53;
pub(crate) const OP_INT: u8 = 0x60;

fn regs(a: Reg, b: Reg) -> u8 {
    (a.num() << 4) | b.num()
}

impl Instr {
    /// Appends the binary encoding of this instruction to `out`.
    ///
    /// # Panics
    ///
    /// Panics if a `NopN` length is outside 2–9; such values are
    /// unconstructible through [`crate::nop_fill`].
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Instr::Hlt => out.push(OP_HLT),
            Instr::Ret => out.push(OP_RET),
            Instr::Nop1 => out.push(OP_NOP1),
            Instr::NopN(n) => {
                assert!((2..=9).contains(&n), "NopN length {n} out of range");
                out.push(OP_NOPN);
                out.push(n);
                out.extend(std::iter::repeat_n(0u8, n as usize - 2));
            }
            Instr::MovRR(d, s) => {
                out.push(OP_MOVRR);
                out.push(regs(d, s));
            }
            Instr::MovRI32(d, imm) => {
                out.push(OP_MOVRI32);
                out.push(regs(d, Reg::R0));
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instr::MovRI64(d, imm) => {
                out.push(OP_MOVRI64);
                out.push(regs(d, Reg::R0));
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instr::Ld(d, b, disp) => mem(out, OP_LD, d, b, disp),
            Instr::St(b, s, disp) => mem(out, OP_ST, b, s, disp),
            Instr::Ld8(d, b, disp) => mem(out, OP_LD8, d, b, disp),
            Instr::St8(b, s, disp) => mem(out, OP_ST8, b, s, disp),
            Instr::Lea(d, b, disp) => mem(out, OP_LEA, d, b, disp),
            Instr::Bin(op, d, s) => {
                out.push(OP_BIN);
                out.push(op.index());
                out.push(regs(d, s));
            }
            Instr::AddI(d, imm) => {
                out.push(OP_ADDI);
                out.push(regs(d, Reg::R0));
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instr::Neg(d) => {
                out.push(OP_NEG);
                out.push(regs(d, Reg::R0));
            }
            Instr::Not(d) => {
                out.push(OP_NOT);
                out.push(regs(d, Reg::R0));
            }
            Instr::Cmp(a, b) => {
                out.push(OP_CMP);
                out.push(regs(a, b));
            }
            Instr::CmpI(a, imm) => {
                out.push(OP_CMPI);
                out.push(regs(a, Reg::R0));
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instr::Jmp8(rel) => {
                out.push(OP_JMP8);
                out.push(rel as u8);
            }
            Instr::Jmp32(rel) => {
                out.push(OP_JMP32);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Instr::Jcc8(c, rel) => {
                out.push(OP_JCC8_BASE + c.index());
                out.push(rel as u8);
            }
            Instr::Jcc32(c, rel) => {
                out.push(OP_JCC32_BASE + c.index());
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Instr::Call32(rel) => {
                out.push(OP_CALL32);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Instr::CallR(r) => {
                out.push(OP_CALLR);
                out.push(regs(r, Reg::R0));
            }
            Instr::Push(r) => {
                out.push(OP_PUSH);
                out.push(regs(r, Reg::R0));
            }
            Instr::Pop(r) => {
                out.push(OP_POP);
                out.push(regs(r, Reg::R0));
            }
            Instr::Int(v) => {
                out.push(OP_INT);
                out.push(v);
            }
        }
        debug_assert!(!matches!(self, Instr::Bin(b, ..) if BinOp::from_index(b.index()).is_none()));
    }

    /// Encodes this instruction into a fresh byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.len());
        self.encode(&mut v);
        v
    }
}

fn mem(out: &mut Vec<u8>, op: u8, a: Reg, b: Reg, disp: i32) {
    out.push(op);
    out.push(regs(a, b));
    out.extend_from_slice(&disp.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_length_matches_len() {
        let cases = [
            Instr::Hlt,
            Instr::Ret,
            Instr::Nop1,
            Instr::NopN(2),
            Instr::NopN(9),
            Instr::MovRR(Reg::R1, Reg::R2),
            Instr::MovRI32(Reg::R3, -7),
            Instr::MovRI64(Reg::R4, u64::MAX),
            Instr::Ld(Reg::R0, Reg::SP, 16),
            Instr::St(Reg::SP, Reg::R0, -8),
            Instr::Ld8(Reg::R1, Reg::R2, 0),
            Instr::St8(Reg::R2, Reg::R1, 3),
            Instr::Lea(Reg::R5, Reg::FP, -32),
            Instr::Bin(BinOp::Add, Reg::R0, Reg::R1),
            Instr::AddI(Reg::SP, -16),
            Instr::Neg(Reg::R9),
            Instr::Not(Reg::R10),
            Instr::Cmp(Reg::R0, Reg::R1),
            Instr::CmpI(Reg::R0, 100),
            Instr::Jmp8(-2),
            Instr::Jmp32(1000),
            Instr::Jcc8(crate::Cond::Le, 5),
            Instr::Jcc32(crate::Cond::G, -1000),
            Instr::Call32(0),
            Instr::CallR(Reg::R7),
            Instr::Push(Reg::FP),
            Instr::Pop(Reg::FP),
            Instr::Int(0x80),
        ];
        for i in cases {
            assert_eq!(i.to_bytes().len(), i.len(), "length mismatch for {i:?}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_nop_length_panics() {
        Instr::NopN(1).encode(&mut Vec::new());
    }
}
