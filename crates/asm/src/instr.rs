//! The K64 instruction set.

use crate::Reg;

/// A branch condition, evaluated against the flags set by `Cmp`/`CmpI`.
///
/// The flags register holds two bits: `ZF` (operands were equal) and `LF`
/// (first operand was signed-less-than the second).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (`ZF`).
    Z,
    /// Not equal (`!ZF`).
    Nz,
    /// Signed less-than (`LF`).
    L,
    /// Signed less-or-equal (`LF || ZF`).
    Le,
    /// Signed greater-than (`!LF && !ZF`).
    G,
    /// Signed greater-or-equal (`!LF`).
    Ge,
}

impl Cond {
    /// All six conditions, in encoding order.
    pub const ALL: [Cond; 6] = [Cond::Z, Cond::Nz, Cond::L, Cond::Le, Cond::G, Cond::Ge];

    /// The encoding index of this condition (0–5).
    pub fn index(self) -> u8 {
        match self {
            Cond::Z => 0,
            Cond::Nz => 1,
            Cond::L => 2,
            Cond::Le => 3,
            Cond::G => 4,
            Cond::Ge => 5,
        }
    }

    /// The condition with the given encoding index, if in range.
    pub fn from_index(i: u8) -> Option<Cond> {
        Cond::ALL.get(i as usize).copied()
    }

    /// Evaluates the condition against flag bits.
    pub fn eval(self, zf: bool, lf: bool) -> bool {
        match self {
            Cond::Z => zf,
            Cond::Nz => !zf,
            Cond::L => lf,
            Cond::Le => lf || zf,
            Cond::G => !lf && !zf,
            Cond::Ge => !lf,
        }
    }

    /// The condition testing the opposite outcome.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Z => Cond::Nz,
            Cond::Nz => Cond::Z,
            Cond::L => Cond::Ge,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
            Cond::Ge => Cond::L,
        }
    }

    /// The mnemonic suffix, e.g. `"z"` for [`Cond::Z`].
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Z => "z",
            Cond::Nz => "nz",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::G => "g",
            Cond::Ge => "ge",
        }
    }
}

/// A binary arithmetic/logical operation on two registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division; the VM traps on a zero divisor.
    Div,
    /// Signed remainder; the VM traps on a zero divisor.
    Mod,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl BinOp {
    /// All operations, in encoding order.
    pub const ALL: [BinOp; 10] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ];

    /// The encoding index of this operation (0–9).
    pub fn index(self) -> u8 {
        BinOp::ALL.iter().position(|&b| b == self).unwrap() as u8
    }

    /// The operation with the given encoding index, if in range.
    pub fn from_index(i: u8) -> Option<BinOp> {
        BinOp::ALL.get(i as usize).copied()
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }
}

/// A single decoded K64 instruction.
///
/// Branch displacements (`rel8`/`rel32`) are relative to the start of the
/// *next* instruction, exactly like x86 short and near jumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Stop the machine (kernel idle/panic; 1 byte).
    Hlt,
    /// Return: pop the return address and jump to it (1 byte).
    Ret,
    /// Single-byte no-op, `0x90`.
    Nop1,
    /// Multi-byte canonical no-op of the given total length (2–9 bytes).
    NopN(u8),
    /// `dst = src` (2 bytes).
    MovRR(Reg, Reg),
    /// `dst = sign_extend(imm32)` (6 bytes).
    MovRI32(Reg, i32),
    /// `dst = imm64` (10 bytes); the form relocations target for absolute
    /// symbol addresses (`KsAbs64`).
    MovRI64(Reg, u64),
    /// `dst = *(u64*)(base + disp)` (6 bytes).
    Ld(Reg, Reg, i32),
    /// `*(u64*)(base + disp) = src` (6 bytes).
    St(Reg, Reg, i32),
    /// `dst = zero_extend(*(u8*)(base + disp))` (6 bytes).
    Ld8(Reg, Reg, i32),
    /// `*(u8*)(base + disp) = low_byte(src)` (6 bytes).
    St8(Reg, Reg, i32),
    /// `dst = base + disp` (6 bytes).
    Lea(Reg, Reg, i32),
    /// `dst = dst <op> src` (3 bytes).
    Bin(BinOp, Reg, Reg),
    /// `dst = dst + sign_extend(imm32)` (6 bytes).
    AddI(Reg, i32),
    /// `dst = -dst` (2 bytes).
    Neg(Reg),
    /// `dst = !dst` (bitwise; 2 bytes).
    Not(Reg),
    /// Compare two registers and set `ZF`/`LF` (2 bytes).
    Cmp(Reg, Reg),
    /// Compare a register against a sign-extended immediate (6 bytes).
    CmpI(Reg, i32),
    /// Unconditional short jump (2 bytes).
    Jmp8(i8),
    /// Unconditional near jump (5 bytes).
    Jmp32(i32),
    /// Conditional short jump (2 bytes).
    Jcc8(Cond, i8),
    /// Conditional near jump (5 bytes).
    Jcc32(Cond, i32),
    /// Near call: push return address, jump (5 bytes).
    Call32(i32),
    /// Indirect call through a register (2 bytes).
    CallR(Reg),
    /// Push a register onto the stack (2 bytes).
    Push(Reg),
    /// Pop the stack into a register (2 bytes).
    Pop(Reg),
    /// Software interrupt / syscall with an 8-bit vector (2 bytes).
    Int(u8),
}

impl Instr {
    /// The encoded length of this instruction in bytes.
    pub fn len(&self) -> usize {
        match self {
            Instr::Hlt | Instr::Ret | Instr::Nop1 => 1,
            Instr::NopN(n) => *n as usize,
            Instr::MovRR(..)
            | Instr::Neg(..)
            | Instr::Not(..)
            | Instr::Jmp8(..)
            | Instr::Jcc8(..)
            | Instr::CallR(..)
            | Instr::Push(..)
            | Instr::Pop(..)
            | Instr::Cmp(..)
            | Instr::Int(..) => 2,
            Instr::Bin(..) => 3,
            Instr::Jmp32(..) | Instr::Jcc32(..) | Instr::Call32(..) => 5,
            Instr::MovRI32(..) | Instr::AddI(..) | Instr::CmpI(..) => 6,
            Instr::Ld(..) | Instr::St(..) | Instr::Ld8(..) | Instr::St8(..) | Instr::Lea(..) => 6,
            Instr::MovRI64(..) => 10,
        }
    }

    /// True if this instruction is empty — never; provided for clippy parity
    /// with [`Instr::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True for any no-op form.
    pub fn is_nop(&self) -> bool {
        matches!(self, Instr::Nop1 | Instr::NopN(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_roundtrip_and_negation() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_index(c.index()), Some(c));
            assert_eq!(c.negate().negate(), c);
            // A condition and its negation never agree.
            for &(zf, lf) in &[(false, false), (true, false), (false, true)] {
                assert_ne!(c.eval(zf, lf), c.negate().eval(zf, lf));
            }
        }
        assert_eq!(Cond::from_index(6), None);
    }

    #[test]
    fn binop_roundtrip() {
        for b in BinOp::ALL {
            assert_eq!(BinOp::from_index(b.index()), Some(b));
        }
        assert_eq!(BinOp::from_index(10), None);
    }

    #[test]
    fn cond_eval_table() {
        // zf=true, lf=false: equal.
        assert!(Cond::Z.eval(true, false));
        assert!(Cond::Le.eval(true, false));
        assert!(Cond::Ge.eval(true, false));
        assert!(!Cond::L.eval(true, false));
        assert!(!Cond::G.eval(true, false));
        // zf=false, lf=true: less.
        assert!(Cond::L.eval(false, true));
        assert!(Cond::Le.eval(false, true));
        assert!(!Cond::Ge.eval(false, true));
        // zf=false, lf=false: greater.
        assert!(Cond::G.eval(false, false));
        assert!(Cond::Ge.eval(false, false));
        assert!(Cond::Nz.eval(false, false));
    }
}
