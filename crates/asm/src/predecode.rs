//! Straight-line predecoding into basic blocks.
//!
//! The VM's decode-cached dispatcher (and any other consumer that
//! wants to reason about code at basic-block granularity) needs one
//! primitive: decode consecutive instructions starting at an address
//! until the first instruction that can redirect control flow. The
//! block is the natural caching unit — within it, execution is
//! provably sequential, so a dispatcher only has to re-consult the
//! instruction stream at block boundaries.

use crate::decode::decode;
use crate::instr::Instr;

/// True when `instr` can end or redirect control flow. A predecoded
/// basic block never extends past such an instruction.
pub fn ends_block(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Jmp8(_)
            | Instr::Jmp32(_)
            | Instr::Jcc8(..)
            | Instr::Jcc32(..)
            | Instr::Call32(_)
            | Instr::CallR(_)
            | Instr::Ret
            | Instr::Hlt
            | Instr::Int(_)
    )
}

/// Decodes one basic block from the front of `bytes`: consecutive
/// instructions up to and including the first control transfer, the
/// first undecodable byte, the end of `bytes`, or `max_instrs`
/// instructions — whichever comes first. Returns the decoded
/// `(instruction, encoded length)` pairs and the number of bytes
/// consumed. An empty result means the very first instruction did not
/// decode (the caller should fall back to its fault path).
pub fn predecode_block(bytes: &[u8], max_instrs: usize) -> (Vec<(Instr, u8)>, usize) {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() && out.len() < max_instrs {
        let Ok((instr, len)) = decode(&bytes[off..]) else {
            break;
        };
        off += len;
        out.push((instr, len as u8));
        if ends_block(&instr) {
            break;
        }
    }
    (out, off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asmbuilder::Assembler;
    use crate::reg::Reg;

    #[test]
    fn block_stops_at_control_transfer() {
        let mut a = Assembler::new();
        a.emit(Instr::MovRI32(Reg::R0, 1));
        a.emit(Instr::MovRI32(Reg::R1, 2));
        a.emit(Instr::Ret);
        a.emit(Instr::MovRI32(Reg::R2, 3)); // unreachable tail, next block
        let bytes = a.finish().unwrap().code;
        let (block, consumed) = predecode_block(&bytes, usize::MAX);
        assert_eq!(block.len(), 3);
        assert!(matches!(block[2].0, Instr::Ret));
        let total: usize = block.iter().map(|(_, l)| *l as usize).sum();
        assert_eq!(consumed, total);
        assert!(consumed < bytes.len());
    }

    #[test]
    fn undecodable_byte_ends_block_early() {
        let mut a = Assembler::new();
        a.emit(Instr::MovRI32(Reg::R0, 1));
        let mut bytes = a.finish().unwrap().code;
        let good = bytes.len();
        bytes.push(0xff); // not an opcode
        let (block, consumed) = predecode_block(&bytes, usize::MAX);
        assert_eq!(block.len(), 1);
        assert_eq!(consumed, good);
        // A block starting ON the bad byte is empty.
        let (none, zero) = predecode_block(&bytes[good..], usize::MAX);
        assert!(none.is_empty());
        assert_eq!(zero, 0);
    }

    #[test]
    fn max_instrs_caps_straight_line_runs() {
        let mut a = Assembler::new();
        for _ in 0..8 {
            a.emit(Instr::Nop1);
        }
        a.emit(Instr::Ret);
        let bytes = a.finish().unwrap().code;
        let (block, consumed) = predecode_block(&bytes, 4);
        assert_eq!(block.len(), 4);
        assert_eq!(consumed, 4);
    }
}
