//! K64: a synthetic, x86-flavoured instruction set architecture.
//!
//! Ksplice's run-pre matching (paper §4.3) requires three pieces of
//! architecture knowledge: the length of every instruction, which
//! instructions carry a PC-relative operand (and where in the encoding it
//! lives), and how to recognise the no-op sequences an assembler inserts
//! for code alignment. K64 is designed to exercise all three:
//!
//! * **Variable-length encoding.** Instructions are 1–10 bytes long and the
//!   length is determined by the leading opcode byte (plus one length byte
//!   for multi-byte no-ops), like x86.
//! * **Short and near branches.** Every jump exists in a `rel8` and a
//!   `rel32` form. A compiler is free to pick either form as long as the
//!   target matches, so byte-for-byte comparison of two compilations of the
//!   same source can differ in branch *form* while being semantically
//!   identical — exactly the situation §4.3 describes when
//!   `-ffunction-sections` turns small relative jumps into longer ones.
//! * **Canonical multi-byte no-ops.** `NOP1` is a single `0x90` byte; longer
//!   no-ops are a two-byte header plus padding, mirroring the efficient
//!   multi-byte nop sequences x86 assemblers emit for alignment.
//!
//! PC-relative offsets are relative to the *start of the next instruction*,
//! so the conventional relocation addend for a `rel32` field is `-4`,
//! matching the paper's worked example in §4.3.
//!
//! # Examples
//!
//! ```
//! use ksplice_asm::{Instr, Reg, decode};
//!
//! let mut bytes = Vec::new();
//! Instr::MovRI32(Reg::R0, 42).encode(&mut bytes);
//! Instr::Ret.encode(&mut bytes);
//! let (instr, len) = decode(&bytes).unwrap();
//! assert_eq!(instr, Instr::MovRI32(Reg::R0, 42));
//! assert_eq!(len, 6);
//! ```

mod asmbuilder;
mod branch;
mod decode;
mod disasm;
mod encode;
mod instr;
mod nop;
mod predecode;
mod reg;

pub use asmbuilder::{AsmError, Assembled, Assembler, Label, PatchPoint};
pub use branch::{branch_info, branches_equivalent, pcrel_operand, BranchInfo, PcrelOperand};
pub use decode::{decode, decode_all, decode_len, DecodeError};
pub use disasm::{disassemble, disassemble_one};
pub use instr::{BinOp, Cond, Instr};
pub use nop::{nop_fill, nop_len_at, nop_run_len, MAX_NOP_LEN};
pub use predecode::{ends_block, predecode_block};
pub use reg::Reg;

/// Width, in bytes, of a `rel32` PC-relative operand.
pub const REL32_WIDTH: usize = 4;

/// Conventional relocation addend for a `rel32` branch operand.
///
/// The stored field is `S + A - P` where `P` is the address of the field
/// itself; because K64 branches are relative to the start of the *next*
/// instruction and the field is the final four bytes of the instruction,
/// the addend is `-4` (paper §4.3, footnote 2).
pub const REL32_ADDEND: i64 = -4;
