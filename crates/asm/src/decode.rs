//! Decoding K64 machine code back into instructions.

use std::fmt;

use crate::encode::*;
use crate::instr::{BinOp, Instr};
use crate::{Cond, Reg};

/// An error produced while decoding machine code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended in the middle of an instruction.
    Truncated,
    /// The leading byte is not a defined opcode.
    BadOpcode(u8),
    /// A `nopN` header carried an out-of-range length byte.
    BadNopLength(u8),
    /// A binary-op instruction carried an out-of-range operation index.
    BadBinOp(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "byte stream truncated mid-instruction"),
            DecodeError::BadOpcode(b) => write!(f, "undefined opcode {b:#04x}"),
            DecodeError::BadNopLength(n) => write!(f, "nopN length {n} outside 2..=9"),
            DecodeError::BadBinOp(i) => write!(f, "binary-op index {i} outside 0..=9"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Returns the length in bytes of the instruction starting at `bytes[0]`,
/// without fully decoding it.
///
/// Run-pre matching uses this to walk the pre code instruction by
/// instruction (paper §4.3: the matcher "must know basic information about
/// the instruction set, such as the lengths of all instructions").
pub fn decode_len(bytes: &[u8]) -> Result<usize, DecodeError> {
    let &op = bytes.first().ok_or(DecodeError::Truncated)?;
    let len = match op {
        OP_HLT | OP_RET | OP_NOP1 => 1,
        OP_NOPN => {
            let &n = bytes.get(1).ok_or(DecodeError::Truncated)?;
            if !(2..=9).contains(&n) {
                return Err(DecodeError::BadNopLength(n));
            }
            n as usize
        }
        OP_MOVRR | OP_NEG | OP_NOT | OP_CMP | OP_JMP8 | OP_CALLR | OP_PUSH | OP_POP | OP_INT => 2,
        op if (OP_JCC8_BASE..OP_JCC8_BASE + 6).contains(&op) => 2,
        OP_BIN => 3,
        OP_JMP32 | OP_CALL32 => 5,
        op if (OP_JCC32_BASE..OP_JCC32_BASE + 6).contains(&op) => 5,
        OP_MOVRI32 | OP_ADDI | OP_CMPI | OP_LD | OP_ST | OP_LD8 | OP_ST8 | OP_LEA => 6,
        OP_MOVRI64 => 10,
        other => return Err(DecodeError::BadOpcode(other)),
    };
    if bytes.len() < len {
        return Err(DecodeError::Truncated);
    }
    Ok(len)
}

fn take_i32(bytes: &[u8], at: usize) -> Result<i32, DecodeError> {
    let b: [u8; 4] = bytes
        .get(at..at + 4)
        .ok_or(DecodeError::Truncated)?
        .try_into()
        .expect("slice length checked");
    Ok(i32::from_le_bytes(b))
}

/// Decodes the instruction starting at `bytes[0]`, returning it and its
/// encoded length.
pub fn decode(bytes: &[u8]) -> Result<(Instr, usize), DecodeError> {
    let len = decode_len(bytes)?;
    let op = bytes[0];
    let rb = |i: usize| -> (Reg, Reg) {
        let b = bytes[i];
        (Reg::from_nibble(b >> 4), Reg::from_nibble(b))
    };
    let instr = match op {
        OP_HLT => Instr::Hlt,
        OP_RET => Instr::Ret,
        OP_NOP1 => Instr::Nop1,
        OP_NOPN => Instr::NopN(bytes[1]),
        OP_MOVRR => {
            let (d, s) = rb(1);
            Instr::MovRR(d, s)
        }
        OP_MOVRI32 => Instr::MovRI32(rb(1).0, take_i32(bytes, 2)?),
        OP_MOVRI64 => {
            let imm: [u8; 8] = bytes[2..10].try_into().expect("length checked");
            Instr::MovRI64(rb(1).0, u64::from_le_bytes(imm))
        }
        OP_LD => {
            let (d, b) = rb(1);
            Instr::Ld(d, b, take_i32(bytes, 2)?)
        }
        OP_ST => {
            let (b, s) = rb(1);
            Instr::St(b, s, take_i32(bytes, 2)?)
        }
        OP_LD8 => {
            let (d, b) = rb(1);
            Instr::Ld8(d, b, take_i32(bytes, 2)?)
        }
        OP_ST8 => {
            let (b, s) = rb(1);
            Instr::St8(b, s, take_i32(bytes, 2)?)
        }
        OP_LEA => {
            let (d, b) = rb(1);
            Instr::Lea(d, b, take_i32(bytes, 2)?)
        }
        OP_BIN => {
            let bop = BinOp::from_index(bytes[1]).ok_or(DecodeError::BadBinOp(bytes[1]))?;
            let (d, s) = rb(2);
            Instr::Bin(bop, d, s)
        }
        OP_ADDI => Instr::AddI(rb(1).0, take_i32(bytes, 2)?),
        OP_NEG => Instr::Neg(rb(1).0),
        OP_NOT => Instr::Not(rb(1).0),
        OP_CMP => {
            let (a, b) = rb(1);
            Instr::Cmp(a, b)
        }
        OP_CMPI => Instr::CmpI(rb(1).0, take_i32(bytes, 2)?),
        OP_JMP8 => Instr::Jmp8(bytes[1] as i8),
        OP_JMP32 => Instr::Jmp32(take_i32(bytes, 1)?),
        op if (OP_JCC8_BASE..OP_JCC8_BASE + 6).contains(&op) => {
            let c = Cond::from_index(op - OP_JCC8_BASE).expect("range checked");
            Instr::Jcc8(c, bytes[1] as i8)
        }
        op if (OP_JCC32_BASE..OP_JCC32_BASE + 6).contains(&op) => {
            let c = Cond::from_index(op - OP_JCC32_BASE).expect("range checked");
            Instr::Jcc32(c, take_i32(bytes, 1)?)
        }
        OP_CALL32 => Instr::Call32(take_i32(bytes, 1)?),
        OP_CALLR => Instr::CallR(rb(1).0),
        OP_PUSH => Instr::Push(rb(1).0),
        OP_POP => Instr::Pop(rb(1).0),
        OP_INT => Instr::Int(bytes[1]),
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok((instr, len))
}

/// Decodes an entire byte slice into a sequence of instructions.
///
/// Fails if any instruction is undecodable or the slice ends
/// mid-instruction.
pub fn decode_all(mut bytes: &[u8]) -> Result<Vec<Instr>, DecodeError> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let (i, len) = decode(bytes)?;
        out.push(i);
        bytes = &bytes[len..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_stream() {
        assert_eq!(decode_len(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode_len(&[OP_MOVRI64, 0x00]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[OP_JMP32, 1, 2]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_opcode() {
        assert_eq!(decode_len(&[0xff]), Err(DecodeError::BadOpcode(0xff)));
    }

    #[test]
    fn bad_nop() {
        assert_eq!(decode_len(&[OP_NOPN, 1]), Err(DecodeError::BadNopLength(1)));
        assert_eq!(
            decode_len(&[OP_NOPN, 10]),
            Err(DecodeError::BadNopLength(10))
        );
    }

    #[test]
    fn bad_binop_index() {
        let bytes = [OP_BIN, 99, 0x01];
        assert_eq!(decode(&bytes), Err(DecodeError::BadBinOp(99)));
    }

    #[test]
    fn decode_all_stream() {
        let mut buf = Vec::new();
        let prog = [
            Instr::Push(Reg::FP),
            Instr::MovRR(Reg::FP, Reg::SP),
            Instr::MovRI32(Reg::R0, 1),
            Instr::Pop(Reg::FP),
            Instr::Ret,
        ];
        for i in &prog {
            i.encode(&mut buf);
        }
        assert_eq!(decode_all(&buf).unwrap(), prog);
    }
}
