//! PC-relative operand discovery and branch equivalence.
//!
//! Run-pre matching must "verify that relative jumps in the run and the pre
//! code point to corresponding locations even though they use different
//! relative jump offsets" (paper §4.3). These helpers expose, for any
//! instruction, whether it carries a PC-relative operand, where that
//! operand lives in the encoding, and what absolute target it denotes.

use crate::instr::Instr;
use crate::{decode, Cond, DecodeError};

/// Location and width of a PC-relative operand within an instruction
/// encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcrelOperand {
    /// Byte offset of the displacement field from the instruction start.
    pub field_offset: usize,
    /// Width of the displacement field: 1 (`rel8`) or 4 (`rel32`).
    pub field_width: usize,
    /// Total instruction length.
    pub instr_len: usize,
}

/// A decoded control transfer with a PC-relative target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// `None` for unconditional `jmp`, `Some` for a conditional jump.
    pub cond: Option<Cond>,
    /// True for `call`, false for jumps.
    pub is_call: bool,
    /// Absolute address of the branch target, given the instruction's own
    /// address.
    pub target: u64,
    /// Total instruction length.
    pub instr_len: usize,
}

/// If the instruction at `bytes[0]` carries a PC-relative operand, returns
/// its location; otherwise `None`. Errors propagate from the decoder.
pub fn pcrel_operand(bytes: &[u8]) -> Result<Option<PcrelOperand>, DecodeError> {
    let (instr, len) = decode(bytes)?;
    Ok(match instr {
        Instr::Jmp8(_) | Instr::Jcc8(..) => Some(PcrelOperand {
            field_offset: 1,
            field_width: 1,
            instr_len: len,
        }),
        Instr::Jmp32(_) | Instr::Jcc32(..) | Instr::Call32(_) => Some(PcrelOperand {
            field_offset: 1,
            field_width: 4,
            instr_len: len,
        }),
        _ => None,
    })
}

/// If the instruction at `bytes[0]`, located at absolute address `addr`,
/// is a PC-relative control transfer, returns its decoded target.
pub fn branch_info(bytes: &[u8], addr: u64) -> Result<Option<BranchInfo>, DecodeError> {
    let (instr, len) = decode(bytes)?;
    let next = addr.wrapping_add(len as u64);
    let mk = |cond, is_call, rel: i64| {
        Some(BranchInfo {
            cond,
            is_call,
            target: next.wrapping_add(rel as u64),
            instr_len: len,
        })
    };
    Ok(match instr {
        Instr::Jmp8(r) => mk(None, false, r as i64),
        Instr::Jmp32(r) => mk(None, false, r as i64),
        Instr::Jcc8(c, r) => mk(Some(c), false, r as i64),
        Instr::Jcc32(c, r) => mk(Some(c), false, r as i64),
        Instr::Call32(r) => mk(None, true, r as i64),
        _ => None,
    })
}

/// True if two PC-relative branches are semantically equivalent: same kind
/// (call vs jump), same condition, same absolute target — regardless of
/// whether each used the `rel8` or `rel32` form.
pub fn branches_equivalent(a: &BranchInfo, b: &BranchInfo) -> bool {
    a.cond == b.cond && a.is_call == b.is_call && a.target == b.target
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instr;

    #[test]
    fn short_and_near_jump_same_target_are_equivalent() {
        // A jmp8 at address 100 with rel 10 targets 112 (100 + 2 + 10).
        let short = Instr::Jmp8(10).to_bytes();
        let a = branch_info(&short, 100).unwrap().unwrap();
        assert_eq!(a.target, 112);
        // A jmp32 at address 50 with rel 57 targets 112 (50 + 5 + 57).
        let near = Instr::Jmp32(57).to_bytes();
        let b = branch_info(&near, 50).unwrap().unwrap();
        assert_eq!(b.target, 112);
        assert!(branches_equivalent(&a, &b));
    }

    #[test]
    fn different_condition_not_equivalent() {
        let x = Instr::Jcc8(Cond::Z, 0).to_bytes();
        let y = Instr::Jcc8(Cond::Nz, 0).to_bytes();
        let a = branch_info(&x, 0).unwrap().unwrap();
        let b = branch_info(&y, 0).unwrap().unwrap();
        assert!(!branches_equivalent(&a, &b));
    }

    #[test]
    fn call_vs_jump_not_equivalent() {
        let c = Instr::Call32(10).to_bytes();
        let j = Instr::Jmp32(10).to_bytes();
        let a = branch_info(&c, 0).unwrap().unwrap();
        let b = branch_info(&j, 0).unwrap().unwrap();
        assert_eq!(a.target, b.target);
        assert!(!branches_equivalent(&a, &b));
    }

    #[test]
    fn non_branches_have_no_info() {
        let m = Instr::MovRI32(crate::Reg::R0, 5).to_bytes();
        assert!(branch_info(&m, 0).unwrap().is_none());
        assert!(pcrel_operand(&m).unwrap().is_none());
        // Indirect calls are not PC-relative.
        let ic = Instr::CallR(crate::Reg::R3).to_bytes();
        assert!(branch_info(&ic, 0).unwrap().is_none());
    }

    #[test]
    fn pcrel_field_locations() {
        let j8 = Instr::Jcc8(Cond::L, -4).to_bytes();
        let op = pcrel_operand(&j8).unwrap().unwrap();
        assert_eq!((op.field_offset, op.field_width, op.instr_len), (1, 1, 2));
        let c32 = Instr::Call32(0).to_bytes();
        let op = pcrel_operand(&c32).unwrap().unwrap();
        assert_eq!((op.field_offset, op.field_width, op.instr_len), (1, 4, 5));
    }

    #[test]
    fn negative_displacement_wraps_correctly() {
        let j = Instr::Jmp32(-10).to_bytes();
        let info = branch_info(&j, 100).unwrap().unwrap();
        assert_eq!(info.target, 95); // 100 + 5 - 10
    }
}
