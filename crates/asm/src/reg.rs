//! General-purpose register file.

use std::fmt;

/// One of the sixteen 64-bit general-purpose registers.
///
/// The software calling convention (defined by the `kc` compiler and the
/// simulated kernel, not by the hardware) is:
///
/// * `R0` — return value, caller-saved
/// * `R1`–`R6` — arguments, caller-saved
/// * `R7`–`R13` — callee-saved temporaries
/// * `R14` — frame pointer (`FP`), callee-saved
/// * `R15` — stack pointer (`SP`)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// The frame pointer alias.
    pub const FP: Reg = Reg::R14;
    /// The stack pointer alias.
    pub const SP: Reg = Reg::R15;

    /// Returns the register with the given hardware number.
    ///
    /// Values above 15 wrap modulo 16; encodings only ever carry nibbles,
    /// so every 4-bit field decodes to a valid register.
    pub fn from_nibble(n: u8) -> Reg {
        // SAFETY-free table lookup keeps this obviously total.
        const TABLE: [Reg; 16] = [
            Reg::R0,
            Reg::R1,
            Reg::R2,
            Reg::R3,
            Reg::R4,
            Reg::R5,
            Reg::R6,
            Reg::R7,
            Reg::R8,
            Reg::R9,
            Reg::R10,
            Reg::R11,
            Reg::R12,
            Reg::R13,
            Reg::R14,
            Reg::R15,
        ];
        TABLE[(n & 0xf) as usize]
    }

    /// The hardware register number, 0–15.
    pub fn num(self) -> u8 {
        self as u8
    }

    /// All sixteen registers, in hardware order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0u8..16).map(Reg::from_nibble)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::R14 => write!(f, "fp"),
            Reg::R15 => write!(f, "sp"),
            r => write!(f, "r{}", r.num()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_roundtrip() {
        for r in Reg::all() {
            assert_eq!(Reg::from_nibble(r.num()), r);
        }
    }

    #[test]
    fn nibble_wraps() {
        assert_eq!(Reg::from_nibble(0x10), Reg::R0);
        assert_eq!(Reg::from_nibble(0xff), Reg::R15);
    }

    #[test]
    fn display_aliases() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::FP.to_string(), "fp");
        assert_eq!(Reg::SP.to_string(), "sp");
    }
}
