//! Textual disassembly, for diagnostics and tests.

use std::fmt::Write as _;

use crate::instr::Instr;
use crate::{decode, DecodeError};

/// Formats one instruction as assembly text.
pub fn disassemble_one(instr: &Instr) -> String {
    match *instr {
        Instr::Hlt => "hlt".into(),
        Instr::Ret => "ret".into(),
        Instr::Nop1 => "nop".into(),
        Instr::NopN(n) => format!("nop{n}"),
        Instr::MovRR(d, s) => format!("mov {d}, {s}"),
        Instr::MovRI32(d, imm) => format!("mov {d}, {imm}"),
        Instr::MovRI64(d, imm) => format!("movabs {d}, {imm:#x}"),
        Instr::Ld(d, b, disp) => format!("ld {d}, [{b}{disp:+}]"),
        Instr::St(b, s, disp) => format!("st [{b}{disp:+}], {s}"),
        Instr::Ld8(d, b, disp) => format!("ld8 {d}, [{b}{disp:+}]"),
        Instr::St8(b, s, disp) => format!("st8 [{b}{disp:+}], {s}"),
        Instr::Lea(d, b, disp) => format!("lea {d}, [{b}{disp:+}]"),
        Instr::Bin(op, d, s) => format!("{} {d}, {s}", op.mnemonic()),
        Instr::AddI(d, imm) => format!("addi {d}, {imm}"),
        Instr::Neg(d) => format!("neg {d}"),
        Instr::Not(d) => format!("not {d}"),
        Instr::Cmp(a, b) => format!("cmp {a}, {b}"),
        Instr::CmpI(a, imm) => format!("cmpi {a}, {imm}"),
        Instr::Jmp8(rel) => format!("jmp.s {rel:+}"),
        Instr::Jmp32(rel) => format!("jmp {rel:+}"),
        Instr::Jcc8(c, rel) => format!("j{}.s {rel:+}", c.mnemonic()),
        Instr::Jcc32(c, rel) => format!("j{} {rel:+}", c.mnemonic()),
        Instr::Call32(rel) => format!("call {rel:+}"),
        Instr::CallR(r) => format!("call {r}"),
        Instr::Push(r) => format!("push {r}"),
        Instr::Pop(r) => format!("pop {r}"),
        Instr::Int(v) => format!("int {v:#04x}"),
    }
}

/// Disassembles a full byte slice, one instruction per line, prefixed with
/// the byte offset. `base` offsets the printed addresses.
pub fn disassemble(code: &[u8], base: u64) -> Result<String, DecodeError> {
    let mut out = String::new();
    let mut at = 0usize;
    while at < code.len() {
        let (instr, len) = decode(&code[at..])?;
        let _ = writeln!(
            out,
            "{:#010x}: {}",
            base + at as u64,
            disassemble_one(&instr)
        );
        at += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, Reg};

    #[test]
    fn formats_representative_instructions() {
        assert_eq!(
            disassemble_one(&Instr::Ld(Reg::R0, Reg::SP, 8)),
            "ld r0, [sp+8]"
        );
        assert_eq!(
            disassemble_one(&Instr::St(Reg::FP, Reg::R1, -16)),
            "st [fp-16], r1"
        );
        assert_eq!(disassemble_one(&Instr::Jcc8(Cond::Le, -2)), "jle.s -2");
        assert_eq!(
            disassemble_one(&Instr::MovRI64(Reg::R2, 0xdead)),
            "movabs r2, 0xdead"
        );
    }

    #[test]
    fn disassembles_stream_with_addresses() {
        let mut code = Vec::new();
        Instr::Nop1.encode(&mut code);
        Instr::Ret.encode(&mut code);
        let text = disassemble(&code, 0x1000).unwrap();
        assert!(text.contains("0x00001000: nop"));
        assert!(text.contains("0x00001001: ret"));
    }
}
