//! Canonical no-op sequences.
//!
//! Assemblers insert efficient multi-byte no-op sequences to align code.
//! Run-pre matching "needs to be able to recognize these sequences so that
//! they can be skipped during the run-pre matching process" (paper §4.3).

use crate::instr::Instr;

/// The longest single canonical no-op instruction, in bytes.
pub const MAX_NOP_LEN: usize = 9;

/// If the bytes at `code[at..]` begin with a canonical no-op instruction,
/// returns its length; otherwise `None`.
///
/// Only *canonical* no-ops are recognised: the single-byte `0x90` and the
/// `nopN` form whose padding bytes are all zero. A `nopN` with non-zero
/// padding decodes fine but is not something our assembler emits, so the
/// matcher treats it as ordinary code.
pub fn nop_len_at(code: &[u8], at: usize) -> Option<usize> {
    let rest = code.get(at..)?;
    match crate::decode(rest) {
        Ok((Instr::Nop1, len)) => Some(len),
        Ok((Instr::NopN(n), len)) => {
            if rest[2..n as usize].iter().all(|&b| b == 0) {
                Some(len)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Emits the shortest sequence of canonical no-ops totalling exactly
/// `bytes` bytes.
///
/// Mirrors how an assembler pads to an alignment boundary: greedy
/// largest-first, so e.g. 12 bytes become one 9-byte nop plus one 3-byte
/// nop.
pub fn nop_fill(out: &mut Vec<u8>, mut bytes: usize) {
    while bytes > 0 {
        let take = bytes.min(MAX_NOP_LEN);
        // A remainder of 1 after a (take-1)-byte nop is fine since NOP1
        // exists, but NopN cannot encode length 1 if we greedily took all
        // but one byte of a 10-byte hole; the greedy split 9+1 handles it.
        if take == 1 {
            Instr::Nop1.encode(out);
        } else {
            Instr::NopN(take as u8).encode(out);
        }
        bytes -= take;
    }
}

/// Total number of leading padding bytes at `code[at..]` formed by
/// consecutive canonical no-ops.
pub fn nop_run_len(code: &[u8], at: usize) -> usize {
    let mut total = 0;
    while let Some(len) = nop_len_at(code, at + total) {
        total += len;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_exact_lengths() {
        for want in 0..64 {
            let mut buf = Vec::new();
            nop_fill(&mut buf, want);
            assert_eq!(buf.len(), want);
            assert_eq!(nop_run_len(&buf, 0), want);
        }
    }

    #[test]
    fn recognises_single_byte_nop() {
        assert_eq!(nop_len_at(&[0x90, 0x01], 0), Some(1));
        assert_eq!(nop_len_at(&[0x01, 0x90], 0), None);
        assert_eq!(nop_len_at(&[0x01, 0x90], 1), Some(1));
    }

    #[test]
    fn rejects_noncanonical_padding() {
        // nopN of length 4 with a non-zero padding byte.
        let bytes = [0x0e, 4, 0x00, 0x7f];
        assert_eq!(nop_len_at(&bytes, 0), None);
        let canonical = [0x0e, 4, 0x00, 0x00];
        assert_eq!(nop_len_at(&canonical, 0), Some(4));
    }

    #[test]
    fn out_of_bounds_is_none() {
        assert_eq!(nop_len_at(&[0x90], 5), None);
        assert_eq!(nop_run_len(&[], 0), 0);
        // `at` exactly at the end of the buffer: an empty rest, not a nop.
        assert_eq!(nop_len_at(&[0x90], 1), None);
        assert_eq!(nop_run_len(&[0x90], 1), 0);
    }

    #[test]
    fn truncated_nopn_at_buffer_end_is_not_a_nop() {
        // A nopN header that claims more bytes than the unit has left
        // must not be skipped: run-pre matching would walk off the
        // section. Header only, then header + partial padding.
        assert_eq!(nop_len_at(&[0x0e], 0), None);
        assert_eq!(nop_len_at(&[0x0e, 9, 0x00, 0x00], 0), None);
        // The same bytes with the claimed length present are fine.
        let mut full = vec![0x0e, 9];
        full.resize(9, 0x00);
        assert_eq!(nop_len_at(&full, 0), Some(9));
    }

    #[test]
    fn nopn_must_fit_exactly_at_unit_boundary() {
        // A multi-byte nop whose last padding byte is the last byte of
        // the unit is recognised; one byte short is not.
        let mut code = vec![0x01, 0x02]; // arbitrary non-nop prefix
        code.extend_from_slice(&[0x0e, 4, 0x00, 0x00]);
        assert_eq!(nop_len_at(&code, 2), Some(4));
        code.pop();
        assert_eq!(nop_len_at(&code, 2), None);
        assert_eq!(nop_run_len(&code, 2), 0);
    }

    #[test]
    fn degenerate_nopn_lengths_are_rejected() {
        // nopN of length 0 or 1 cannot encode (the header alone is two
        // bytes); a decoder seeing one must treat it as ordinary code.
        assert_eq!(nop_len_at(&[0x0e, 0], 0), None);
        assert_eq!(nop_len_at(&[0x0e, 1, 0x00], 0), None);
        // Above MAX_NOP_LEN is equally invalid.
        let mut huge = vec![0x0e, 10];
        huge.resize(10, 0x00);
        assert_eq!(nop_len_at(&huge, 0), None);
    }

    #[test]
    fn mixed_runs_accumulate_across_nop_forms() {
        // nop9 + nop1 + nop3 back to back: the run covers all of them
        // and stops at the first real instruction.
        let mut code = Vec::new();
        nop_fill(&mut code, 9);
        code.push(0x90);
        nop_fill(&mut code, 3);
        code.push(0x01); // hlt / non-nop opcode terminates the run
        assert_eq!(nop_run_len(&code, 0), 13);
        // A run started mid-sequence only counts the remaining nops.
        assert_eq!(nop_run_len(&code, 9), 4);
    }

    #[test]
    fn nop_only_tail_runs_to_end_of_unit() {
        // Alignment padding at the end of a compilation unit has no
        // terminating instruction; the run must stop cleanly at the
        // boundary instead of erroring.
        let mut code = vec![0x01];
        nop_fill(&mut code, 12);
        assert_eq!(nop_run_len(&code, 1), 12);
        assert_eq!(nop_run_len(&code, code.len()), 0);
        // Truncated trailing nop: the run stops before it.
        code.extend_from_slice(&[0x0e, 5, 0x00]);
        assert_eq!(nop_run_len(&code, 1), 12);
    }
}
