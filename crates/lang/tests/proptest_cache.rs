//! Proptest twin of `cache_property.rs`: cold build vs cached-then-
//! invalidated-then-rebuilt must produce byte-identical `ObjectSet`s for
//! arbitrary trees and edit sequences, with shrinking on failure.

// Gated: the proptest dependency only resolves with registry access.
// Re-add `proptest` to [dev-dependencies] and build with
// `--features proptest-tests` to run this suite.
#![cfg(feature = "proptest-tests")]

use ksplice_lang::{build_tree, build_tree_cached, BuildCache, Options, SourceTree};
use proptest::prelude::*;

fn kc_unit(i: usize, imm: i64, reps: u64, op: char) -> String {
    format!(
        "int fn{i}(int a, int b) {{\n\
         \x20   int k;\n\
         \x20   int acc;\n\
         \x20   acc = a;\n\
         \x20   for (k = 0; k < {reps}; k = k + 1) {{\n\
         \x20       acc = acc {op} b + {imm};\n\
         \x20   }}\n\
         \x20   return acc;\n\
         }}\n"
    )
}

#[derive(Debug, Clone)]
enum EditOp {
    RewriteUnit { slot: usize, imm: i64, reps: u64 },
    AddUnit { id: usize, imm: i64, reps: u64 },
    EditHeader { pad: u64 },
}

fn arb_tree() -> impl Strategy<Value = SourceTree> {
    (
        1usize..5,
        proptest::collection::vec((0i64..100, 1u64..6), 1..5),
        0u64..4,
    )
        .prop_map(|(n, shapes, pad)| {
            let mut tree = SourceTree::new();
            tree.insert(
                "include/defs.kh",
                &format!("struct rec {{ int a; int b; int pad{pad}; }};"),
            );
            for i in 0..n {
                let (imm, reps) = shapes[i % shapes.len()];
                tree.insert(&format!("sub/u{i}.kc"), &kc_unit(i, imm, reps, '+'));
            }
            tree
        })
}

fn arb_edits() -> impl Strategy<Value = Vec<EditOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..5, 0i64..100, 1u64..6)
                .prop_map(|(slot, imm, reps)| EditOp::RewriteUnit { slot, imm, reps }),
            (10usize..20, 0i64..100, 1u64..6)
                .prop_map(|(id, imm, reps)| EditOp::AddUnit { id, imm, reps }),
            (0u64..1000).prop_map(|pad| EditOp::EditHeader { pad }),
        ],
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cached_rebuild_is_byte_identical(tree in arb_tree(), edits in arb_edits()) {
        let opt = Options::pre_post();
        let cache = BuildCache::new();
        let mut tree = tree;
        let (warm0, _) = build_tree_cached(&tree, &opt, &cache).unwrap();
        prop_assert_eq!(warm0.to_bytes(), build_tree(&tree, &opt).unwrap().to_bytes());
        for op in edits {
            match op {
                EditOp::RewriteUnit { slot, imm, reps } => {
                    let paths: Vec<String> = tree
                        .paths()
                        .filter(|p| p.ends_with(".kc"))
                        .map(String::from)
                        .collect();
                    let victim = paths[slot % paths.len()].clone();
                    tree.set(&victim, kc_unit(90 + slot, imm, reps, '-'));
                }
                EditOp::AddUnit { id, imm, reps } => {
                    tree.insert(&format!("sub/new{id}.kc"), &kc_unit(id, imm, reps, '*'));
                }
                EditOp::EditHeader { pad } => {
                    tree.set(
                        "include/defs.kh",
                        format!("struct rec {{ int a; int b; int pad{pad}; }};"),
                    );
                }
            }
            let (warm, _) = build_tree_cached(&tree, &opt, &cache).unwrap();
            let cold = build_tree(&tree, &opt).unwrap();
            prop_assert_eq!(warm.to_bytes(), cold.to_bytes());
        }
    }
}
