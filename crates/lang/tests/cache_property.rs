//! Property test for the incremental build cache: for randomly generated
//! source trees and random edit sequences, a build served through a warm
//! (and then invalidated) cache is byte-identical to a cold build of the
//! same tree.
//!
//! Runs unconditionally — randomness comes from a hand-rolled xorshift64*
//! generator with fixed seeds, so the suite is deterministic and needs no
//! registry-only dependency. A proptest twin with shrinking lives in
//! `proptest_cache.rs` behind the `proptest-tests` feature.

use ksplice_lang::{build_tree, build_tree_cached, BuildCache, Options, SourceTree};

/// xorshift64* — tiny deterministic PRNG, good enough for tree shapes.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A small valid `.kc` unit whose body depends on the generator state.
fn gen_kc(rng: &mut Rng, i: u64) -> String {
    let imm = rng.below(100);
    let reps = 1 + rng.below(6);
    let op = match rng.below(3) {
        0 => "+",
        1 => "-",
        _ => "*",
    };
    format!(
        "int fn{i}(int a, int b) {{\n\
         \x20   int k;\n\
         \x20   int acc;\n\
         \x20   acc = a;\n\
         \x20   for (k = 0; k < {reps}; k = k + 1) {{\n\
         \x20       acc = acc {op} b + {imm};\n\
         \x20   }}\n\
         \x20   return acc;\n\
         }}\n"
    )
}

/// A small valid `.ks` unit.
fn gen_ks(rng: &mut Rng, i: u64) -> String {
    let imm = rng.below(64);
    format!("asm_entry{i}:\n    mov r0, {imm}\n    ret\n")
}

/// A random tree: a header, 1–5 `.kc` units and 0–2 `.ks` units.
fn gen_tree(rng: &mut Rng) -> SourceTree {
    let mut tree = SourceTree::new();
    let pad = rng.below(4);
    tree.insert(
        "include/defs.kh",
        &format!("struct rec {{ int a; int b; int pad{pad}; }};"),
    );
    for i in 0..1 + rng.below(5) {
        tree.insert(&format!("sub/u{i}.kc"), &gen_kc(rng, i));
    }
    for i in 0..rng.below(3) {
        tree.insert(&format!("arch/a{i}.ks"), &gen_ks(rng, i));
    }
    tree
}

/// Applies one random edit: rewrite a unit, add a unit, or change the
/// header (invalidating every `.kc`).
fn mutate(rng: &mut Rng, tree: &mut SourceTree) {
    match rng.below(4) {
        0 => {
            let paths: Vec<String> = tree
                .paths()
                .filter(|p| p.ends_with(".kc"))
                .map(String::from)
                .collect();
            let victim = paths[rng.below(paths.len() as u64) as usize].clone();
            let id = 90 + rng.below(10);
            let fresh = gen_kc(rng, id);
            tree.set(&victim, fresh);
        }
        1 => {
            let i = 50 + rng.below(50);
            let unit = gen_kc(rng, i);
            tree.insert(&format!("sub/new{i}.kc"), &unit);
        }
        2 => {
            let pad = rng.below(1000);
            tree.set(
                "include/defs.kh",
                format!("struct rec {{ int a; int b; int pad{pad}; }};"),
            );
        }
        _ => {
            let i = rng.below(10);
            let unit = gen_ks(rng, 70 + i);
            tree.insert(&format!("arch/more{i}.ks"), &unit);
        }
    }
}

#[test]
fn cached_rebuild_matches_cold_build_for_random_edit_sequences() {
    for seed in 1..=40u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut tree = gen_tree(&mut rng);
        let opt = Options::pre_post();
        let cache = BuildCache::new();
        // Warm the cache on the initial tree.
        let (warm0, _) = build_tree_cached(&tree, &opt, &cache).expect("initial build");
        assert_eq!(
            warm0.to_bytes(),
            build_tree(&tree, &opt).expect("cold").to_bytes(),
            "seed {seed}: initial cached build diverged"
        );
        // Apply 1–4 edits, rebuilding through the same cache each time.
        for step in 0..1 + rng.below(4) {
            mutate(&mut rng, &mut tree);
            let (warm, stats) = build_tree_cached(&tree, &opt, &cache).expect("cached rebuild");
            let cold = build_tree(&tree, &opt).expect("cold rebuild");
            assert_eq!(
                warm.to_bytes(),
                cold.to_bytes(),
                "seed {seed} step {step}: cached rebuild diverged from cold build"
            );
            assert!(
                stats.hits + stats.misses >= tree.iter().filter(|(p, _)| !p.ends_with(".kh")).count() as u64,
                "seed {seed} step {step}: stats lost units"
            );
        }
    }
}

#[test]
fn shared_cache_across_distinct_trees_never_cross_contaminates() {
    // One cache serving many unrelated trees (the eval driver's usage
    // pattern) must still reproduce every cold build exactly.
    let cache = BuildCache::new();
    let opt = Options::distro();
    for seed in 100..=120u64 {
        let mut rng = Rng::new(seed);
        let tree = gen_tree(&mut rng);
        let (warm, _) = build_tree_cached(&tree, &opt, &cache).expect("cached");
        let cold = build_tree(&tree, &opt).expect("cold");
        assert_eq!(warm.to_bytes(), cold.to_bytes(), "seed {seed} diverged");
    }
}
