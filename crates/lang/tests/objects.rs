//! Object-level tests of the compiler's output: section shapes, symbol
//! naming, relocation discipline — the contract the Ksplice core relies
//! on.

use ksplice_lang::{build_tree, compile_unit, Options, SourceTree};
use ksplice_object::{Binding, RelocKind, SymKind};

#[test]
fn data_sections_mode_gives_per_item_sections() {
    let obj = compile_unit(
        "m.kc",
        "int counter = 5;\
         static int debug;\
         byte msg[8] = \"hi\";\
         int get() { return counter + debug; }",
        &Options::pre_post(),
    )
    .unwrap();
    assert!(obj.section_by_name(".data.counter").is_some());
    assert!(obj.section_by_name(".bss.debug").is_some());
    assert!(obj.section_by_name(".data.msg").is_some());
    let (_, sym) = obj.symbol_by_name("debug").unwrap();
    assert_eq!(sym.binding, Binding::Local);
    let (_, sym) = obj.symbol_by_name("counter").unwrap();
    assert_eq!(sym.binding, Binding::Global);
    assert_eq!(sym.kind, SymKind::Object);
}

#[test]
fn merged_mode_pools_data() {
    let obj = compile_unit(
        "m.kc",
        "int counter = 5; static int debug; int get() { return counter + debug; }",
        &Options::distro(),
    )
    .unwrap();
    assert!(obj.section_by_name(".data").is_some());
    assert!(obj.section_by_name(".bss").is_some());
    assert!(obj.section_by_name(".data.counter").is_none());
}

#[test]
fn static_locals_get_gcc_style_suffixed_symbols() {
    let obj = compile_unit(
        "m.kc",
        "int f() { static int calls; calls = calls + 1; return calls; }\
         int g() { static int calls; calls = calls + 2; return calls; }",
        &Options::pre_post(),
    )
    .unwrap();
    // Two distinct storage symbols, both named like `calls.N`.
    let suffixed: Vec<&str> = obj
        .symbols
        .iter()
        .filter(|s| s.name.starts_with("calls."))
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(suffixed.len(), 2);
    assert_ne!(suffixed[0], suffixed[1]);
}

#[test]
fn cross_unit_calls_are_pcrel_with_conventional_addend() {
    let obj = compile_unit(
        "m.kc",
        "int f(int x) { return helper(x) + 1; }",
        &Options::pre_post(),
    )
    .unwrap();
    let (_, sec) = obj.section_by_name(".text.f").unwrap();
    let call_reloc = sec
        .relocs
        .iter()
        .find(|r| obj.symbols[r.symbol].name == "helper")
        .expect("call relocation");
    assert_eq!(call_reloc.kind, RelocKind::Pcrel32);
    assert_eq!(call_reloc.addend, ksplice_asm::REL32_ADDEND);
}

#[test]
fn data_references_are_abs64() {
    let obj = compile_unit(
        "m.kc",
        "int total; int bump(int n) { total = total + n; return total; }",
        &Options::pre_post(),
    )
    .unwrap();
    let (_, sec) = obj.section_by_name(".text.bump").unwrap();
    assert!(sec
        .relocs
        .iter()
        .any(|r| r.kind == RelocKind::Abs64 && obj.symbols[r.symbol].name == "total"));
}

#[test]
fn monolithic_intra_unit_calls_have_no_relocations() {
    let obj = compile_unit(
        "m.kc",
        "int callee(int x) { int i; int s; s = 0; for (i = 0; i < x; i = i + 1) { s = s + i; } return s; }\
         int caller(int x) { return callee(x) * 2; }",
        &Options::distro(),
    )
    .unwrap();
    let (_, text) = obj.section_by_name(".text").unwrap();
    // The only relocations in a self-contained unit's text are none at
    // all: the intra-unit call resolved at assembly time.
    assert!(text.relocs.is_empty(), "{:?}", text.relocs);
}

#[test]
fn function_symbols_carry_sizes() {
    let tree: SourceTree = [(
        "m.kc".to_string(),
        "int a() { return 1; } int b() { return 2; }".to_string(),
    )]
    .into_iter()
    .collect();
    for opt in [Options::distro(), Options::pre_post()] {
        let set = build_tree(&tree, &opt).unwrap();
        let obj = set.get("m.kc").unwrap();
        for name in ["a", "b"] {
            let (_, sym) = obj.symbol_by_name(name).unwrap();
            assert_eq!(sym.kind, SymKind::Func);
            assert!(sym.def.unwrap().size >= 5, "{name} too small");
        }
    }
}

#[test]
fn hook_sections_are_notes_with_abs64_relocs() {
    let obj = compile_unit(
        "m.kc",
        "int fixup() { return 0; }\
         int cleanup() { return 0; }\
         ksplice_apply(fixup);\
         ksplice_post_apply(cleanup);\
         ksplice_reverse(fixup);",
        &Options::pre_post(),
    )
    .unwrap();
    for (sec_name, target) in [
        (".ksplice.apply", "fixup"),
        (".ksplice.post_apply", "cleanup"),
        (".ksplice.reverse", "fixup"),
    ] {
        let (_, sec) = obj.section_by_name(sec_name).unwrap();
        assert_eq!(sec.kind, ksplice_object::SectionKind::Note);
        assert_eq!(sec.relocs.len(), 1);
        assert_eq!(sec.relocs[0].kind, RelocKind::Abs64);
        assert_eq!(obj.symbols[sec.relocs[0].symbol].name, target);
    }
}

#[test]
fn assembly_and_c_units_link_against_each_other() {
    let tree: SourceTree = [
        (
            "arch/glue.ks".to_string(),
            ".global asm_double\nasm_double:\n    call c_add\n    ret\n".to_string(),
        ),
        (
            "lib/add.kc".to_string(),
            "int c_add(int a, int b) { return a + b; }".to_string(),
        ),
    ]
    .into_iter()
    .collect();
    for opt in [Options::distro(), Options::pre_post()] {
        let set = build_tree(&tree, &opt).unwrap();
        let asm_obj = set.get("arch/glue.ks").unwrap();
        assert!(asm_obj.symbol_by_name("asm_double").is_some());
        // The cross-unit call is an undefined Pcrel32 reference.
        let has_ref = asm_obj.sections.iter().any(|s| {
            s.relocs
                .iter()
                .any(|r| asm_obj.symbols[r.symbol].name == "c_add")
        });
        assert!(has_ref);
    }
}

#[test]
fn deterministic_output_across_repeated_builds() {
    let src = "static int seen[4];\
        int audit(int x) { int i; for (i = 0; i < 4; i = i + 1) { if (seen[i] == x) { return 1; } } return 0; }\
        int record(int x) { if (!audit(x)) { seen[x & 3] = x; } return 0; }";
    let a = compile_unit("m.kc", src, &Options::pre_post()).unwrap();
    let b = compile_unit("m.kc", src, &Options::pre_post()).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.to_bytes(), b.to_bytes());
}
