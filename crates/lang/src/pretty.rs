//! AST pretty-printer: renders a [`Unit`] back to parseable `kc` source.
//!
//! The fuzzer mutates parsed ASTs but the `ksplice-create` pipeline
//! consumes source text and unified diffs, so mutants must be rendered
//! back to `kc`. The output is *canonical*: fixed 4-space indentation,
//! every control-flow body braced, minimal precedence-respecting
//! parentheses. Canonical form is a fixpoint — `pretty(parse(pretty(u)))
//! == pretty(u)` — which makes textual diffs between a unit and its
//! mutant minimal and stable.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a whole unit as canonical `kc` source.
pub fn pretty_unit(unit: &Unit) -> String {
    let mut out = String::new();
    for (i, item) in unit.items.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        pretty_item(&mut out, item);
    }
    out
}

fn pretty_item(out: &mut String, item: &FileItem) {
    match item {
        FileItem::Struct(s) => {
            let _ = writeln!(out, "struct {} {{", s.name);
            for (name, ty) in &s.fields {
                let _ = writeln!(out, "    {};", declarator(ty, name));
            }
            out.push_str("};\n");
        }
        FileItem::Global(g) => {
            if g.is_static {
                out.push_str("static ");
            }
            out.push_str(&declarator(&g.ty, &g.name));
            if let Some(init) = &g.init {
                out.push_str(" = ");
                match init {
                    Init::Scalar(e) => pretty_expr(out, e, 0),
                    Init::List(items) => {
                        out.push('{');
                        for (i, e) in items.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            pretty_expr(out, e, 0);
                        }
                        out.push('}');
                    }
                }
            }
            out.push_str(";\n");
        }
        FileItem::Func(f) => {
            if f.is_static {
                out.push_str("static ");
            }
            if f.is_inline {
                out.push_str("inline ");
            }
            let _ = write!(out, "int {}(", f.name);
            for (i, (name, ty)) in f.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&declarator(ty, name));
            }
            out.push_str(") {\n");
            for s in &f.body {
                pretty_stmt(out, s, 1);
            }
            out.push_str("}\n");
        }
        FileItem::Hook { kind, func, .. } => {
            let _ = writeln!(out, "{}({func});", kind.macro_name());
        }
        FileItem::Extern { name, is_func, .. } => {
            if *is_func {
                let _ = writeln!(out, "extern int {name}();");
            } else {
                let _ = writeln!(out, "extern int {name};");
            }
        }
    }
}

/// A C-style declarator: base type, pointer stars, name, array suffix.
fn declarator(ty: &Type, name: &str) -> String {
    let (elem, array) = match ty {
        Type::Array(elem, n) => (elem.as_ref(), Some(*n)),
        other => (other, None),
    };
    let mut stars = String::new();
    let mut base = elem;
    while let Type::Ptr(inner) = base {
        stars.push('*');
        base = inner;
    }
    let base_name = match base {
        Type::Int => "int".to_string(),
        Type::Byte => "byte".to_string(),
        Type::Struct(s) => format!("struct {s}"),
        // Unreachable by construction (pointers/arrays peeled above), but
        // render something parseable rather than panic.
        Type::Ptr(_) | Type::Array(..) => "int".to_string(),
    };
    match array {
        Some(n) => format!("{base_name} {stars}{name}[{n}]"),
        None => format!("{base_name} {stars}{name}"),
    }
}

/// `sizeof` accepts only a base type plus pointer stars.
fn sizeof_type(ty: &Type) -> String {
    let mut stars = String::new();
    let mut base = ty;
    while let Type::Ptr(inner) = base {
        stars.push('*');
        base = inner;
    }
    let base_name = match base {
        Type::Int => "int".to_string(),
        Type::Byte => "byte".to_string(),
        Type::Struct(s) => format!("struct {s}"),
        Type::Ptr(_) | Type::Array(..) => "int".to_string(),
    };
    format!("{base_name}{stars}")
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn pretty_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match &stmt.kind {
        StmtKind::Decl {
            name,
            ty,
            is_static,
            init,
        } => {
            if *is_static {
                out.push_str("static ");
            }
            out.push_str(&declarator(ty, name));
            if let Some(e) = init {
                out.push_str(" = ");
                pretty_expr(out, e, 0);
            }
            out.push_str(";\n");
        }
        StmtKind::Expr(e) => {
            pretty_expr(out, e, 0);
            out.push_str(";\n");
        }
        StmtKind::Assign { target, value } => {
            pretty_expr(out, target, 0);
            out.push_str(" = ");
            pretty_expr(out, value, 0);
            out.push_str(";\n");
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            out.push_str("if (");
            pretty_expr(out, cond, 0);
            out.push_str(") {\n");
            for s in then_body {
                pretty_stmt(out, s, level + 1);
            }
            indent(out, level);
            if else_body.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for s in else_body {
                    pretty_stmt(out, s, level + 1);
                }
                indent(out, level);
                out.push_str("}\n");
            }
        }
        StmtKind::While { cond, body } => {
            out.push_str("while (");
            pretty_expr(out, cond, 0);
            out.push_str(") {\n");
            for s in body {
                pretty_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            out.push_str("for (");
            if let Some(s) = init {
                pretty_simple(out, s);
            }
            out.push_str("; ");
            if let Some(c) = cond {
                pretty_expr(out, c, 0);
            }
            out.push_str("; ");
            if let Some(s) = step {
                pretty_simple(out, s);
            }
            out.push_str(") {\n");
            for s in body {
                pretty_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::Return(e) => {
            out.push_str("return");
            if let Some(e) = e {
                out.push(' ');
                pretty_expr(out, e, 0);
            }
            out.push_str(";\n");
        }
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
        StmtKind::Block(body) => {
            out.push_str("{\n");
            for s in body {
                pretty_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

/// A `for`-header statement: assignment or expression, no semicolon.
fn pretty_simple(out: &mut String, stmt: &Stmt) {
    match &stmt.kind {
        StmtKind::Assign { target, value } => {
            pretty_expr(out, target, 0);
            out.push_str(" = ");
            pretty_expr(out, value, 0);
        }
        StmtKind::Expr(e) => pretty_expr(out, e, 0),
        // Other kinds cannot appear in a `for` header; render as a
        // parseable no-op expression to stay total.
        _ => out.push('0'),
    }
}

/// Binary-operator precedence, matching the parser's levels exactly.
fn bin_level(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::LOr => 1,
        BinaryOp::LAnd => 2,
        BinaryOp::BitOr => 3,
        BinaryOp::BitXor => 4,
        BinaryOp::BitAnd => 5,
        BinaryOp::Eq | BinaryOp::Ne => 6,
        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => 7,
        BinaryOp::Shl | BinaryOp::Shr => 8,
        BinaryOp::Add | BinaryOp::Sub => 9,
        BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 10,
    }
}

fn bin_token(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
        BinaryOp::Mod => "%",
        BinaryOp::BitAnd => "&",
        BinaryOp::BitOr => "|",
        BinaryOp::BitXor => "^",
        BinaryOp::Shl => "<<",
        BinaryOp::Shr => ">>",
        BinaryOp::Eq => "==",
        BinaryOp::Ne => "!=",
        BinaryOp::Lt => "<",
        BinaryOp::Le => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::Ge => ">=",
        BinaryOp::LAnd => "&&",
        BinaryOp::LOr => "||",
    }
}

/// The precedence of an expression's top node: binaries use the parser's
/// level, unaries bind tighter (11), postfix tighter still (12), atoms
/// never need parentheses (13). A negative literal renders as a unary
/// minus, so it carries unary precedence.
fn expr_level(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Binary(op, ..) => bin_level(*op),
        ExprKind::Unary(..) => 11,
        ExprKind::Num(v) if *v < 0 => 11,
        ExprKind::Call { .. } | ExprKind::Index(..) | ExprKind::Field(..) | ExprKind::PField(..) => {
            12
        }
        ExprKind::Num(_) | ExprKind::Str(_) | ExprKind::Ident(_) | ExprKind::Sizeof(_) => 13,
    }
}

/// Writes `e`, parenthesizing when its top-level binding is looser than
/// `min_level` (the context's requirement).
fn pretty_expr(out: &mut String, e: &Expr, min_level: u8) {
    let level = expr_level(e);
    let parens = level < min_level;
    if parens {
        out.push('(');
    }
    match &e.kind {
        ExprKind::Num(v) => {
            if *v == i64::MIN {
                // `abs` would overflow; render as an equivalent constant
                // expression the lexer can take.
                out.push_str("(0 - 9223372036854775807 - 1)");
            } else if *v < 0 {
                let _ = write!(out, "-{}", v.unsigned_abs());
            } else {
                let _ = write!(out, "{v}");
            }
        }
        ExprKind::Str(bytes) => {
            out.push('"');
            for &b in bytes {
                match b {
                    b'\n' => out.push_str("\\n"),
                    b'\t' => out.push_str("\\t"),
                    0 => out.push_str("\\0"),
                    b'\\' => out.push_str("\\\\"),
                    b'"' => out.push_str("\\\""),
                    0x20..=0x7e => out.push(b as char),
                    // No numeric escape exists in `kc`; degrade losslessly
                    // enough for canonical-form purposes.
                    _ => out.push('?'),
                }
            }
            out.push('"');
        }
        ExprKind::Ident(name) => out.push_str(name),
        ExprKind::Unary(op, operand) => {
            let tok = match op {
                UnaryOp::Neg => '-',
                UnaryOp::BitNot => '~',
                UnaryOp::LNot => '!',
                UnaryOp::Deref => '*',
                UnaryOp::Addr => '&',
            };
            out.push(tok);
            // `-` followed by a negative rendering would fuse into `--`,
            // and `&` before another `&` into `&&`; keep the operand
            // parenthesized in those cases.
            let clash = match (op, &operand.kind) {
                (UnaryOp::Neg, ExprKind::Unary(UnaryOp::Neg, _)) => true,
                (UnaryOp::Neg, ExprKind::Num(v)) => *v < 0,
                (UnaryOp::Addr, ExprKind::Unary(UnaryOp::Addr, _)) => true,
                _ => false,
            };
            if clash {
                out.push('(');
                pretty_expr(out, operand, 0);
                out.push(')');
            } else {
                pretty_expr(out, operand, 11);
            }
        }
        ExprKind::Binary(op, l, r) => {
            let lv = bin_level(*op);
            pretty_expr(out, l, lv);
            let _ = write!(out, " {} ", bin_token(*op));
            pretty_expr(out, r, lv + 1);
        }
        ExprKind::Call { callee, args } => {
            pretty_expr(out, callee, 12);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                pretty_expr(out, a, 0);
            }
            out.push(')');
        }
        ExprKind::Index(base, idx) => {
            pretty_expr(out, base, 12);
            out.push('[');
            pretty_expr(out, idx, 0);
            out.push(']');
        }
        ExprKind::Field(base, f) => {
            pretty_expr(out, base, 12);
            out.push('.');
            out.push_str(f);
        }
        ExprKind::PField(base, f) => {
            pretty_expr(out, base, 12);
            out.push_str("->");
            out.push_str(f);
        }
        ExprKind::Sizeof(ty) => {
            let _ = write!(out, "sizeof({})", sizeof_type(ty));
        }
    }
    if parens {
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn roundtrip(src: &str) -> String {
        let u = parse_unit("t.kc", src).expect("original parses");
        let first = pretty_unit(&u);
        let u2 = parse_unit("t.kc", &first).expect("pretty output parses");
        let second = pretty_unit(&u2);
        assert_eq!(first, second, "canonical form must be a fixpoint");
        first
    }

    #[test]
    fn fixpoint_on_control_flow() {
        let s = roundtrip(
            "int f(int a, int b) { int i; for (i = 0; i < a; i = i + 1) \
             { if (b > 10) return b; else b = b + i; } while (b) { break; } return 0; }",
        );
        assert!(s.contains("for (i = 0; i < a; i = i + 1) {"));
        assert!(s.contains("} else {"));
    }

    #[test]
    fn minimal_parens_preserve_precedence() {
        let src = "int f(int a) { return (a + 1) * 2 - a / (3 + a) && !(a == 4); }";
        let u = parse_unit("t.kc", src).unwrap();
        let printed = pretty_unit(&u);
        let u2 = parse_unit("t.kc", &printed).unwrap();
        // Same AST shape modulo line numbers: compare canonical renderings.
        assert_eq!(printed, pretty_unit(&u2));
        assert!(printed.contains("(a + 1) * 2"));
        assert!(!printed.contains("((a + 1))"), "no redundant parens: {printed}");
    }

    #[test]
    fn negative_literals_and_unary_chains() {
        roundtrip("int f() { return 0 - 22; }");
        let u = parse_unit("t.kc", "int f() { return -5 - -3; }").unwrap();
        let printed = pretty_unit(&u);
        assert!(!printed.contains("--"), "no token fusion: {printed}");
        roundtrip(&printed);
    }

    #[test]
    fn globals_structs_hooks_externs() {
        let s = roundtrip(
            "struct task { int pid; struct task *next; int name[16]; };\
             static struct task init_task;\
             int prime[4] = {2, 3, 5, 7};\
             byte banner[8] = \"K64\\n\";\
             extern int printk(byte *fmt);\
             extern int jiffies;\
             static inline int min2(int a, int b) { if (a < b) { return a; } return b; }\
             ksplice_apply(min2);",
        );
        assert!(s.contains("struct task *next;"));
        assert!(s.contains("byte banner[8] = \"K64\\n\";"));
        assert!(s.contains("extern int printk();"));
        assert!(s.contains("extern int jiffies;"));
        assert!(s.contains("ksplice_apply(min2);"));
    }

    #[test]
    fn sizeof_and_pointer_declarators() {
        let s = roundtrip(
            "int f(struct file *fp, byte **names) { return sizeof(struct file) + sizeof(int*) + fp->mode + (*names)[0]; }",
        );
        assert!(s.contains("sizeof(struct file)"));
        assert!(s.contains("byte **names"));
    }
}
