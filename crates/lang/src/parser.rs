//! Recursive-descent parser for `kc`.

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use crate::CompileError;

/// Parses one compilation unit from source text.
pub fn parse_unit(name: &str, src: &str) -> Result<Unit, CompileError> {
    let tokens = lex(name, src)?;
    let mut p = Parser {
        unit: name.to_string(),
        tokens,
        pos: 0,
    };
    let mut items = Vec::new();
    while !p.at(&TokenKind::Eof) {
        items.push(p.item()?);
    }
    Ok(Unit {
        name: name.to_string(),
        items,
    })
}

struct Parser {
    unit: String,
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn next(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), CompileError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn err(&self, message: String) -> CompileError {
        CompileError::new(&self.unit, self.line(), message)
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.next() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(CompileError::new(
                &self.unit,
                self.tokens[self.pos.saturating_sub(1)].line,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    // ---- file-scope items ------------------------------------------------

    fn item(&mut self) -> Result<FileItem, CompileError> {
        let line = self.line();
        // Struct definition: `struct S { ... };` (vs `struct S x;` global).
        if self.at(&TokenKind::KwStruct) {
            if let TokenKind::Ident(_) = self.peek2() {
                if self.tokens[(self.pos + 2).min(self.tokens.len() - 1)].kind == TokenKind::LBrace
                {
                    return self.struct_def().map(FileItem::Struct);
                }
            }
        }
        if self.eat(&TokenKind::KwExtern) {
            // `extern int name;` or `extern int name(...);` — parameter
            // lists are skipped; everything external is int-shaped.
            self.expect(&TokenKind::KwInt)?;
            while self.eat(&TokenKind::Star) {}
            let name = self.ident()?;
            let mut is_func = false;
            if self.eat(&TokenKind::LParen) {
                is_func = true;
                let mut depth = 1;
                while depth > 0 {
                    match self.next() {
                        TokenKind::LParen => depth += 1,
                        TokenKind::RParen => depth -= 1,
                        TokenKind::Eof => return Err(self.err("unterminated extern".into())),
                        _ => {}
                    }
                }
            }
            self.expect(&TokenKind::Semi)?;
            return Ok(FileItem::Extern {
                name,
                is_func,
                line,
            });
        }
        // Ksplice hook macros: `ksplice_apply(fn);` at file scope.
        if let TokenKind::Ident(id) = self.peek() {
            if let Some(kind) = HookKind::ALL.iter().find(|k| k.macro_name() == id) {
                let kind = *kind;
                self.next();
                self.expect(&TokenKind::LParen)?;
                let func = self.ident()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                return Ok(FileItem::Hook { kind, func, line });
            }
        }
        // Function or global: [static] [inline] type stars name ...
        let is_static = self.eat(&TokenKind::KwStatic);
        let is_inline = self.eat(&TokenKind::KwInline);
        let base = self.base_type()?;
        let ty = self.pointer_suffix(base);
        let name = self.ident()?;
        if self.at(&TokenKind::LParen) {
            let f = self.function_rest(name, is_static, is_inline, line)?;
            return Ok(FileItem::Func(f));
        }
        if is_inline {
            return Err(self.err("`inline` is only valid on functions".into()));
        }
        let ty = self.array_suffix(ty)?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.initializer()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi)?;
        Ok(FileItem::Global(Global {
            name,
            ty,
            is_static,
            init,
            line,
        }))
    }

    fn struct_def(&mut self) -> Result<StructDef, CompileError> {
        let line = self.line();
        self.expect(&TokenKind::KwStruct)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let base = self.base_type()?;
            let ty = self.pointer_suffix(base);
            let fname = self.ident()?;
            let ty = self.array_suffix(ty)?;
            self.expect(&TokenKind::Semi)?;
            fields.push((fname, ty));
        }
        self.expect(&TokenKind::Semi)?;
        Ok(StructDef { name, fields, line })
    }

    fn base_type(&mut self) -> Result<Type, CompileError> {
        if self.eat(&TokenKind::KwInt) {
            Ok(Type::Int)
        } else if self.eat(&TokenKind::KwByte) {
            Ok(Type::Byte)
        } else if self.eat(&TokenKind::KwStruct) {
            Ok(Type::Struct(self.ident()?))
        } else {
            Err(self.err(format!("expected type, found {}", self.peek())))
        }
    }

    fn pointer_suffix(&mut self, mut ty: Type) -> Type {
        while self.eat(&TokenKind::Star) {
            ty = Type::ptr(ty);
        }
        ty
    }

    fn array_suffix(&mut self, ty: Type) -> Result<Type, CompileError> {
        if self.eat(&TokenKind::LBracket) {
            let n = match self.next() {
                TokenKind::Int(v) if v >= 0 => v as u64,
                other => return Err(self.err(format!("expected array length, found {other}"))),
            };
            self.expect(&TokenKind::RBracket)?;
            Ok(Type::Array(Box::new(ty), n))
        } else {
            Ok(ty)
        }
    }

    fn initializer(&mut self) -> Result<Init, CompileError> {
        if self.eat(&TokenKind::LBrace) {
            let mut items = Vec::new();
            if !self.at(&TokenKind::RBrace) {
                loop {
                    items.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                    // Allow a trailing comma.
                    if self.at(&TokenKind::RBrace) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RBrace)?;
            Ok(Init::List(items))
        } else {
            Ok(Init::Scalar(self.expr()?))
        }
    }

    fn function_rest(
        &mut self,
        name: String,
        is_static: bool,
        is_inline: bool,
        line: u32,
    ) -> Result<Function, CompileError> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let base = self.base_type()?;
                let ty = self.pointer_suffix(base);
                if !ty.is_scalar() {
                    return Err(
                        self.err("parameters must be scalar (pass structs by pointer)".into())
                    );
                }
                let pname = self.ident()?;
                params.push((pname, ty));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::LBrace)?;
        let body = self.block_body()?;
        Ok(Function {
            name,
            params,
            body,
            is_static,
            is_inline,
            line,
        })
    }

    // ---- statements ------------------------------------------------------

    fn block_body(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(self.err("unterminated block".into()));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn braced_or_single(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.eat(&TokenKind::LBrace) {
            self.block_body()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn is_decl_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt | TokenKind::KwByte | TokenKind::KwStatic
        ) || (self.at(&TokenKind::KwStruct) && matches!(self.peek2(), TokenKind::Ident(_)))
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if self.eat(&TokenKind::KwIf) {
            self.expect(&TokenKind::LParen)?;
            let cond = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            let then_body = self.braced_or_single()?;
            let else_body = if self.eat(&TokenKind::KwElse) {
                self.braced_or_single()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::new(
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                },
                line,
            ));
        }
        if self.eat(&TokenKind::KwWhile) {
            self.expect(&TokenKind::LParen)?;
            let cond = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            let body = self.braced_or_single()?;
            return Ok(Stmt::new(StmtKind::While { cond, body }, line));
        }
        if self.eat(&TokenKind::KwFor) {
            self.expect(&TokenKind::LParen)?;
            let init = if self.at(&TokenKind::Semi) {
                None
            } else {
                Some(Box::new(self.simple_stmt_no_semi()?))
            };
            self.expect(&TokenKind::Semi)?;
            let cond = if self.at(&TokenKind::Semi) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&TokenKind::Semi)?;
            let step = if self.at(&TokenKind::RParen) {
                None
            } else {
                Some(Box::new(self.simple_stmt_no_semi()?))
            };
            self.expect(&TokenKind::RParen)?;
            let body = self.braced_or_single()?;
            return Ok(Stmt::new(
                StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                },
                line,
            ));
        }
        if self.eat(&TokenKind::KwReturn) {
            let value = if self.at(&TokenKind::Semi) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::new(StmtKind::Return(value), line));
        }
        if self.eat(&TokenKind::KwBreak) {
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::new(StmtKind::Break, line));
        }
        if self.eat(&TokenKind::KwContinue) {
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::new(StmtKind::Continue, line));
        }
        if self.eat(&TokenKind::LBrace) {
            let body = self.block_body()?;
            return Ok(Stmt::new(StmtKind::Block(body), line));
        }
        if self.is_decl_start() {
            let is_static = self.eat(&TokenKind::KwStatic);
            let base = self.base_type()?;
            let ty = self.pointer_suffix(base);
            let name = self.ident()?;
            let ty = self.array_suffix(ty)?;
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::new(
                StmtKind::Decl {
                    name,
                    ty,
                    is_static,
                    init,
                },
                line,
            ));
        }
        let s = self.simple_stmt_no_semi()?;
        self.expect(&TokenKind::Semi)?;
        Ok(s)
    }

    /// An expression statement or assignment, without the trailing `;`
    /// (shared by ordinary statements and `for` headers).
    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let e = self.expr()?;
        if self.eat(&TokenKind::Assign) {
            let value = self.expr()?;
            Ok(Stmt::new(StmtKind::Assign { target: e, value }, line))
        } else {
            Ok(Stmt::new(StmtKind::Expr(e), line))
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary(0)
    }

    /// Precedence-climbing over binary operators. Level 0 is the loosest.
    fn binary(&mut self, min_level: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, level) = match self.peek() {
                TokenKind::OrOr => (BinaryOp::LOr, 1),
                TokenKind::AndAnd => (BinaryOp::LAnd, 2),
                TokenKind::Pipe => (BinaryOp::BitOr, 3),
                TokenKind::Caret => (BinaryOp::BitXor, 4),
                TokenKind::Amp => (BinaryOp::BitAnd, 5),
                TokenKind::EqEq => (BinaryOp::Eq, 6),
                TokenKind::NotEq => (BinaryOp::Ne, 6),
                TokenKind::Lt => (BinaryOp::Lt, 7),
                TokenKind::Le => (BinaryOp::Le, 7),
                TokenKind::Gt => (BinaryOp::Gt, 7),
                TokenKind::Ge => (BinaryOp::Ge, 7),
                TokenKind::Shl => (BinaryOp::Shl, 8),
                TokenKind::Shr => (BinaryOp::Shr, 8),
                TokenKind::Plus => (BinaryOp::Add, 9),
                TokenKind::Minus => (BinaryOp::Sub, 9),
                TokenKind::Star => (BinaryOp::Mul, 10),
                TokenKind::Slash => (BinaryOp::Div, 10),
                TokenKind::Percent => (BinaryOp::Mod, 10),
                _ => break,
            };
            if level < min_level {
                break;
            }
            let line = self.line();
            self.next();
            let rhs = self.binary(level + 1)?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), line);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Tilde => Some(UnaryOp::BitNot),
            TokenKind::Bang => Some(UnaryOp::LNot),
            TokenKind::Star => Some(UnaryOp::Deref),
            TokenKind::Amp => Some(UnaryOp::Addr),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let operand = self.unary()?;
            return Ok(Expr::new(ExprKind::Unary(op, Box::new(operand)), line));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.eat(&TokenKind::LParen) {
                let mut args = Vec::new();
                if !self.at(&TokenKind::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
                e = Expr::new(
                    ExprKind::Call {
                        callee: Box::new(e),
                        args,
                    },
                    line,
                );
            } else if self.eat(&TokenKind::LBracket) {
                let idx = self.expr()?;
                self.expect(&TokenKind::RBracket)?;
                e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), line);
            } else if self.eat(&TokenKind::Dot) {
                let f = self.ident()?;
                e = Expr::new(ExprKind::Field(Box::new(e), f), line);
            } else if self.eat(&TokenKind::Arrow) {
                let f = self.ident()?;
                e = Expr::new(ExprKind::PField(Box::new(e), f), line);
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.next() {
            TokenKind::Int(v) => Ok(Expr::new(ExprKind::Num(v), line)),
            TokenKind::Str(s) => Ok(Expr::new(ExprKind::Str(s), line)),
            TokenKind::Ident(name) => Ok(Expr::new(ExprKind::Ident(name), line)),
            TokenKind::KwSizeof => {
                self.expect(&TokenKind::LParen)?;
                let base = self.base_type()?;
                let ty = self.pointer_suffix(base);
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::new(ExprKind::Sizeof(ty), line))
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(CompileError::new(
                &self.unit,
                line,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Unit {
        parse_unit("t.kc", src).unwrap()
    }

    #[test]
    fn parses_function_with_control_flow() {
        let u = parse(
            "int f(int a, int b) {\
               int i;\
               for (i = 0; i < a; i = i + 1) { b = b + i; }\
               if (b > 10) return b; else return 0;\
             }",
        );
        let f = u.function("f").unwrap();
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.body.len(), 3);
    }

    #[test]
    fn parses_struct_and_global() {
        let u = parse(
            "struct task { int pid; struct task *next; int name[16]; };\
             static struct task init_task;\
             int jiffies = 100;",
        );
        let s = u.structs().next().unwrap();
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[1].1, Type::ptr(Type::Struct("task".into())));
        let globals: Vec<_> = u.globals().collect();
        assert!(globals[0].is_static);
        match &globals[1].init {
            Some(Init::Scalar(e)) => assert_eq!(e.kind, ExprKind::Num(100)),
            other => panic!("expected scalar init, got {other:?}"),
        }
    }

    #[test]
    fn parses_hooks_and_extern() {
        let u = parse(
            "extern int printk(byte *fmt);\
             int myupdate() { return 0; }\
             ksplice_apply(myupdate);",
        );
        assert!(matches!(
            u.items[2],
            FileItem::Hook {
                kind: HookKind::Apply,
                ..
            }
        ));
        assert!(matches!(u.items[0], FileItem::Extern { .. }));
    }

    #[test]
    fn precedence() {
        let u = parse("int f() { return 1 + 2 * 3 == 7 && 1; }");
        let f = u.function("f").unwrap();
        let StmtKind::Return(Some(e)) = &f.body[0].kind else {
            panic!("expected return");
        };
        // Top level must be &&.
        assert!(matches!(e.kind, ExprKind::Binary(BinaryOp::LAnd, ..)));
    }

    #[test]
    fn pointer_and_field_postfix() {
        let u = parse("int f(struct file *fp) { fp->mode = fp->mode | 1; return (*fp).mode; }");
        assert!(u.function("f").is_some());
    }

    #[test]
    fn static_local_and_array_decl() {
        let u = parse("int f() { static int calls; int buf[8]; buf[0] = calls; return 0; }");
        let f = u.function("f").unwrap();
        assert!(matches!(
            f.body[0].kind,
            StmtKind::Decl {
                is_static: true,
                ..
            }
        ));
    }

    #[test]
    fn inline_keyword() {
        let u = parse("static inline int min(int a, int b) { if (a < b) return a; return b; }");
        let f = u.function("min").unwrap();
        assert!(f.is_static && f.is_inline);
    }

    #[test]
    fn error_messages_carry_position() {
        let e = parse_unit("bad.kc", "int f( {").unwrap_err();
        assert_eq!(e.unit, "bad.kc");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_inline_global() {
        assert!(parse_unit("t.kc", "inline int x;").is_err());
    }

    #[test]
    fn global_array_initializer() {
        let u = parse("int prime[4] = {2, 3, 5, 7,};");
        let g = u.globals().next().unwrap();
        match &g.init {
            Some(Init::List(items)) => assert_eq!(items.len(), 4),
            other => panic!("expected list init, got {other:?}"),
        }
    }
}
