//! `.ks` assembly units.
//!
//! The Linux kernel contains pure assembly files, and security patches
//! touch them — the paper's closing example is CVE-2007-4573, a patch to
//! `ia32entry.S`, which Ksplice "handles using the same techniques and
//! code that handle patches to pure C functions" (§6.3). `.ks` files give
//! the simulated kernel the same property: textual K64 assembly compiled
//! through the same object pipeline, honouring `-ffunction-sections`.
//!
//! Syntax (line-oriented; `;`, `#` and `//` start comments):
//!
//! ```text
//! .global entry_32          ; export the next label
//! entry_32:                 ; non-.L labels define function symbols
//!     mov   r1, 42
//!     movabs r2, jiffies    ; symbol operand → Abs64 relocation
//!     ld    r3, [r2+0]
//!     cmpi  r3, 0
//!     jz    .Lout           ; .L labels are block-local
//!     call  do_work         ; external or cross-block → Pcrel32 reloc
//! .Lout:
//!     ret
//! ```
//!
//! Under function-sections each non-local label opens a fresh
//! `.text.<label>` section (so the differ sees per-function granularity
//! in assembly too); without it the whole file is one `.text`.

use ksplice_asm::{Assembler, BinOp, Cond, Instr, Label, Reg, REL32_ADDEND};
use ksplice_object::{Binding, Object, Reloc, RelocKind, Section, SectionFlags, SymKind, Symbol};
use std::collections::BTreeMap;

use crate::{CompileError, Options};

/// One maximal run of code under a single non-local label.
struct Block {
    name: String,
    global: bool,
    lines: Vec<(u32, String)>,
}

/// Assembles a `.ks` unit into an object.
pub fn assemble_unit(name: &str, src: &str, opt: &Options) -> Result<Object, CompileError> {
    let err = |line: u32, msg: String| CompileError::new(name, line, msg);
    // Split into labelled blocks.
    let mut blocks: Vec<Block> = Vec::new();
    let mut pending_globals: Vec<String> = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno as u32 + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".global") {
            pending_globals.push(rest.trim().to_string());
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if label.starts_with(".L") {
                // Local label: belongs to the current block.
                let block = blocks
                    .last_mut()
                    .ok_or_else(|| err(lineno, "local label before any function label".into()))?;
                block.lines.push((lineno, format!("{label}:")));
            } else {
                let global = pending_globals.iter().any(|g| g == label);
                blocks.push(Block {
                    name: label.to_string(),
                    global,
                    lines: Vec::new(),
                });
            }
            continue;
        }
        let block = blocks
            .last_mut()
            .ok_or_else(|| err(lineno, "instruction before any label".into()))?;
        block.lines.push((lineno, line));
    }
    for g in &pending_globals {
        if !blocks.iter().any(|b| b.name == *g) {
            return Err(err(0, format!(".global for unknown label `{g}`")));
        }
    }

    let block_names: Vec<String> = blocks.iter().map(|b| b.name.clone()).collect();
    let mut obj = Object::new(name);
    if opt.function_sections {
        for block in &blocks {
            let (code, patches) =
                assemble_block(name, block, &block_names, /* local_calls: */ None, opt)?;
            let sec_name = format!(".text.{}", block.name);
            let mut sec = Section::progbits(&sec_name, SectionFlags::text(), code);
            sec.align = 16;
            let idx = obj.add_section(sec);
            let size = obj.sections[idx].size;
            obj.add_symbol(Symbol::defined(
                &block.name,
                if block.global {
                    Binding::Global
                } else {
                    Binding::Local
                },
                SymKind::Func,
                idx,
                0,
                size,
            ));
            for (off, width, sym, addend, pcrel) in patches {
                let symbol = obj.intern_symbol(&sym);
                obj.sections[idx].relocs.push(Reloc {
                    offset: off,
                    kind: if pcrel {
                        RelocKind::Pcrel32
                    } else {
                        RelocKind::Abs64
                    },
                    symbol,
                    addend,
                });
                let _ = width;
            }
        }
    } else {
        // Monolithic: one assembler, entry labels shared across blocks.
        let mut asm = if opt.relax_branches() {
            Assembler::new_relaxed()
        } else {
            Assembler::new()
        };
        let mut entries: BTreeMap<String, Label> = BTreeMap::new();
        for b in &blocks {
            entries.insert(b.name.clone(), asm.new_label());
        }
        let mut placements = Vec::new();
        for block in &blocks {
            asm.align(16);
            let entry = entries[&block.name];
            asm.bind(entry);
            placements.push((block.name.clone(), block.global, entry));
            emit_block_into(name, block, &mut asm, &entries, opt)?;
        }
        let out = asm
            .finish()
            .map_err(|e| err(0, format!("assembly failed: {e}")))?;
        let mut sec = Section::progbits(".text", SectionFlags::text(), out.code);
        sec.align = 16;
        let idx = obj.add_section(sec);
        let end = obj.sections[idx].size;
        let mut offsets: Vec<(String, bool, u64)> = placements
            .into_iter()
            .map(|(n, g, l)| (n, g, out.label_offsets[&l] as u64))
            .collect();
        offsets.sort_by_key(|(_, _, o)| *o);
        for i in 0..offsets.len() {
            let (n, g, off) = offsets[i].clone();
            let next = offsets.get(i + 1).map(|(_, _, o)| *o).unwrap_or(end);
            obj.add_symbol(Symbol::defined(
                &n,
                if g { Binding::Global } else { Binding::Local },
                SymKind::Func,
                idx,
                off,
                next - off,
            ));
        }
        for p in out.patches {
            let symbol = obj.intern_symbol(&p.name);
            obj.sections[idx].relocs.push(Reloc {
                offset: p.offset as u64,
                kind: if p.pcrel {
                    RelocKind::Pcrel32
                } else {
                    RelocKind::Abs64
                },
                symbol,
                addend: p.addend,
            });
        }
    }
    obj.validate()
        .map_err(|e| err(0, format!("internal: invalid object: {e}")))?;
    Ok(obj)
}

type Patch = (u64, usize, String, i64, bool);

/// Assembles one block standalone (function-sections mode).
fn assemble_block(
    unit: &str,
    block: &Block,
    block_names: &[String],
    _local: Option<()>,
    opt: &Options,
) -> Result<(Vec<u8>, Vec<Patch>), CompileError> {
    let mut asm = Assembler::new(); // function-sections: never relaxed
    let entries = BTreeMap::new();
    let _ = block_names;
    emit_block_into(unit, block, &mut asm, &entries, opt)?;
    let out = asm
        .finish()
        .map_err(|e| CompileError::new(unit, 0, format!("assembly failed: {e}")))?;
    Ok((
        out.code,
        out.patches
            .into_iter()
            .map(|p| (p.offset as u64, p.width, p.name, p.addend, p.pcrel))
            .collect(),
    ))
}

/// Emits a block's instructions into `asm`. `entries` maps same-unit
/// function labels (monolithic mode) for assembly-time call resolution.
fn emit_block_into(
    unit: &str,
    block: &Block,
    asm: &mut Assembler,
    entries: &BTreeMap<String, Label>,
    _opt: &Options,
) -> Result<(), CompileError> {
    // Collect local labels first.
    let mut locals: BTreeMap<String, Label> = BTreeMap::new();
    for (_, line) in &block.lines {
        if let Some(l) = line.strip_suffix(':') {
            locals.insert(l.to_string(), asm.new_label());
        }
    }
    for (lineno, line) in &block.lines {
        let err = |msg: String| CompileError::new(unit, *lineno, msg);
        if let Some(l) = line.strip_suffix(':') {
            asm.bind(locals[l]);
            continue;
        }
        let (mn, rest) = line
            .split_once(char::is_whitespace)
            .map(|(a, b)| (a, b.trim()))
            .unwrap_or((line.as_str(), ""));
        let ops: Vec<String> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(|s| s.trim().to_string()).collect()
        };
        match mn {
            "ret" => asm.emit(Instr::Ret),
            "hlt" => asm.emit(Instr::Hlt),
            "nop" => asm.emit(Instr::Nop1),
            "mov" => {
                let d = reg(&ops, 0).ok_or_else(|| err("mov needs a register".into()))?;
                if let Some(s) = reg(&ops, 1) {
                    asm.emit(Instr::MovRR(d, s));
                } else {
                    let imm: i64 = int(&ops, 1).ok_or_else(|| err("bad mov operand".into()))?;
                    let imm32 = i32::try_from(imm)
                        .map_err(|_| err("mov imm too large; use movabs".into()))?;
                    asm.emit(Instr::MovRI32(d, imm32));
                }
            }
            "movabs" => {
                let d = reg(&ops, 0).ok_or_else(|| err("movabs needs a register".into()))?;
                match int(&ops, 1) {
                    Some(v) => asm.emit(Instr::MovRI64(d, v as u64)),
                    None => {
                        let sym = ops
                            .get(1)
                            .ok_or_else(|| err("movabs needs an operand".into()))?;
                        asm.emit_patched(Instr::MovRI64(d, 0), 2, 8, sym, 0, false);
                    }
                }
            }
            "ld" | "st" | "ld8" | "st8" | "lea" => {
                emit_mem(asm, mn, &ops).map_err(err)?;
            }
            "add" | "sub" | "mul" | "div" | "mod" | "and" | "or" | "xor" | "shl" | "shr" => {
                let op = BinOp::ALL
                    .iter()
                    .find(|b| b.mnemonic() == mn)
                    .copied()
                    .expect("mnemonic table covers arm");
                let d = reg(&ops, 0).ok_or_else(|| err("needs registers".into()))?;
                let s = reg(&ops, 1).ok_or_else(|| err("needs registers".into()))?;
                asm.emit(Instr::Bin(op, d, s));
            }
            "addi" => {
                let d = reg(&ops, 0).ok_or_else(|| err("addi needs a register".into()))?;
                let imm = int(&ops, 1).ok_or_else(|| err("addi needs an immediate".into()))?;
                asm.emit(Instr::AddI(d, imm as i32));
            }
            "neg" => asm.emit(Instr::Neg(
                reg(&ops, 0).ok_or_else(|| err("neg reg".into()))?,
            )),
            "not" => asm.emit(Instr::Not(
                reg(&ops, 0).ok_or_else(|| err("not reg".into()))?,
            )),
            "cmp" => {
                let a = reg(&ops, 0).ok_or_else(|| err("cmp regs".into()))?;
                let b = reg(&ops, 1).ok_or_else(|| err("cmp regs".into()))?;
                asm.emit(Instr::Cmp(a, b));
            }
            "cmpi" => {
                let a = reg(&ops, 0).ok_or_else(|| err("cmpi reg".into()))?;
                let imm = int(&ops, 1).ok_or_else(|| err("cmpi imm".into()))?;
                asm.emit(Instr::CmpI(a, imm as i32));
            }
            "push" => asm.emit(Instr::Push(
                reg(&ops, 0).ok_or_else(|| err("push reg".into()))?,
            )),
            "pop" => asm.emit(Instr::Pop(
                reg(&ops, 0).ok_or_else(|| err("pop reg".into()))?,
            )),
            "int" => {
                let v = int(&ops, 0).ok_or_else(|| err("int vector".into()))?;
                asm.emit(Instr::Int(v as u8));
            }
            "jmp" | "jz" | "jnz" | "jl" | "jle" | "jg" | "jge" => {
                let target = ops
                    .first()
                    .ok_or_else(|| err("jump needs a target".into()))?;
                let cond = match mn {
                    "jmp" => None,
                    other => Some(
                        Cond::ALL
                            .iter()
                            .find(|c| format!("j{}", c.mnemonic()) == other)
                            .copied()
                            .expect("mnemonic arm covers conditions"),
                    ),
                };
                if let Some(&l) = locals.get(target) {
                    match cond {
                        None => asm.jmp(l),
                        Some(c) => asm.jcc(c, l),
                    }
                } else if let Some(&l) = entries.get(target) {
                    // Cross-function jump within the monolithic unit.
                    match cond {
                        None => asm.jmp(l),
                        Some(c) => asm.jcc(c, l),
                    }
                } else {
                    // Cross-section/external jump: rel32 relocation. Only
                    // unconditional form supported symbolically.
                    match cond {
                        None => asm.emit_patched(Instr::Jmp32(0), 1, 4, target, REL32_ADDEND, true),
                        Some(_) => return Err(err("conditional jump to external symbol".into())),
                    }
                }
            }
            "call" => {
                let target = ops
                    .first()
                    .ok_or_else(|| err("call needs a target".into()))?;
                if let Some(r) = parse_reg(target) {
                    asm.emit(Instr::CallR(r));
                } else if let Some(&l) = entries.get(target) {
                    asm.call_label(l);
                } else if let Some(&l) = locals.get(target) {
                    asm.call_label(l);
                } else {
                    asm.emit_patched(Instr::Call32(0), 1, 4, target, REL32_ADDEND, true);
                }
            }
            ".align" => {
                let n = int(&ops, 0)
                    .or_else(|| rest.parse::<i64>().ok())
                    .ok_or_else(|| err(".align needs a power of two".into()))?;
                asm.align(n as u32);
            }
            other => return Err(err(format!("unknown mnemonic `{other}`"))),
        }
    }
    Ok(())
}

fn emit_mem(asm: &mut Assembler, mn: &str, ops: &[String]) -> Result<(), String> {
    // ld d, [b+disp] / st [b+disp], s / lea d, [b+disp]
    let (reg_idx, mem_idx) = if mn.starts_with("st") { (1, 0) } else { (0, 1) };
    let r = reg(ops, reg_idx).ok_or("memory op needs a register")?;
    let mem = ops.get(mem_idx).ok_or("memory op needs an address")?;
    let inner = mem
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or("address must be [reg+disp]")?;
    let (base_s, disp) = match inner.find(['+', '-']) {
        Some(i) if i > 0 => {
            let (b, d) = inner.split_at(i);
            (b.trim(), parse_int(d.trim()).ok_or("bad displacement")?)
        }
        _ => (inner.trim(), 0),
    };
    let base = parse_reg(base_s).ok_or("bad base register")?;
    let disp = disp as i32;
    let instr = match mn {
        "ld" => Instr::Ld(r, base, disp),
        "st" => Instr::St(base, r, disp),
        "ld8" => Instr::Ld8(r, base, disp),
        "st8" => Instr::St8(base, r, disp),
        "lea" => Instr::Lea(r, base, disp),
        _ => unreachable!("caller matched mnemonic"),
    };
    asm.emit(instr);
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for pat in [";", "#", "//"] {
        if let Some(i) = line.find(pat) {
            end = end.min(i);
        }
    }
    &line[..end]
}

fn parse_reg(s: &str) -> Option<Reg> {
    match s {
        "fp" => return Some(Reg::FP),
        "sp" => return Some(Reg::SP),
        _ => {}
    }
    let n: u8 = s.strip_prefix('r')?.parse().ok()?;
    if n < 16 {
        Some(Reg::from_nibble(n))
    } else {
        None
    }
}

fn reg(ops: &[String], i: usize) -> Option<Reg> {
    ops.get(i).and_then(|s| parse_reg(s))
}

fn parse_int(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let body = body.strip_prefix('+').unwrap_or(body);
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn int(ops: &[String], i: usize) -> Option<i64> {
    ops.get(i).and_then(|s| parse_int(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENTRY: &str = "\
.global entry_32
entry_32:
    push fp
    mov fp, sp
    cmpi r1, 0
    jz .Lout
    call do_syscall
.Lout:
    mov sp, fp
    pop fp
    ret
helper:
    movabs r0, jiffies
    ld r0, [r0+0]
    ret
";

    #[test]
    fn function_sections_split_blocks() {
        let obj = assemble_unit("arch/entry.ks", ENTRY, &Options::pre_post()).unwrap();
        assert!(obj.section_by_name(".text.entry_32").is_some());
        assert!(obj.section_by_name(".text.helper").is_some());
        // entry_32 is global, helper local.
        let (_, e) = obj.symbol_by_name("entry_32").unwrap();
        assert_eq!(e.binding, Binding::Global);
        let (_, h) = obj.symbol_by_name("helper").unwrap();
        assert_eq!(h.binding, Binding::Local);
        // The call to do_syscall became a Pcrel32 reloc; jiffies an Abs64.
        let (_, esec) = obj.section_by_name(".text.entry_32").unwrap();
        assert_eq!(esec.relocs.len(), 1);
        assert_eq!(esec.relocs[0].kind, RelocKind::Pcrel32);
        let (_, hsec) = obj.section_by_name(".text.helper").unwrap();
        assert_eq!(hsec.relocs[0].kind, RelocKind::Abs64);
    }

    #[test]
    fn monolithic_single_text() {
        let obj = assemble_unit("arch/entry.ks", ENTRY, &Options::distro()).unwrap();
        assert!(obj.section_by_name(".text").is_some());
        assert!(obj.symbol_by_name("entry_32").is_some());
        assert!(obj.symbol_by_name("helper").is_some());
    }

    #[test]
    fn local_labels_resolve_without_relocs() {
        let src =
            ".global f\nf:\n    cmpi r1, 5\n    jle .Ldone\n    mov r0, 1\n.Ldone:\n    ret\n";
        let obj = assemble_unit("a.ks", src, &Options::pre_post()).unwrap();
        let (_, sec) = obj.section_by_name(".text.f").unwrap();
        assert!(sec.relocs.is_empty());
    }

    #[test]
    fn errors_are_positioned() {
        let e = assemble_unit("a.ks", "f:\n    bogus r1\n", &Options::distro()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = assemble_unit("a.ks", "    mov r0, 1\n", &Options::distro()).unwrap_err();
        assert!(e.message.contains("before any label"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let src = "f:\n    mov r0, 0x10\n    addi sp, -16\n    ret\n";
        let obj = assemble_unit("a.ks", src, &Options::distro()).unwrap();
        assert!(obj.section_by_name(".text").is_some());
    }
}
