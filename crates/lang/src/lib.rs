//! The `kc` compiler: a small C-like systems language compiled to K64
//! KELF objects.
//!
//! Ksplice's two core techniques exist because of *compiler freedoms*:
//! gcc inlines functions that never say `inline`, lays a whole unit's code
//! into one `.text` section with assembly-time-resolved relative jumps,
//! pads with alignment no-ops, and — under `-ffunction-sections` — turns
//! short jumps into long ones (paper §3.1, §4.2, §4.3). A reproduction
//! whose "compiler" is a fixed byte template would make run-pre matching
//! trivially true, so this crate is a real (if small) optimizing compiler
//! that exhibits every one of those freedoms:
//!
//! * **Function inlining** at the AST level: any sufficiently small
//!   same-unit function is inlined at `-O1` and above, whether or not it
//!   is declared `inline` (the keyword merely raises the size budget) —
//!   so "looking for the `inline` keyword in the source" genuinely does
//!   not tell you where code was duplicated.
//! * **`-ffunction-sections` / `-fdata-sections`**: with the options on,
//!   every function and datum gets its own section and all cross-item
//!   references become relocations; with them off (how shipped "run"
//!   kernels are built, §6.3), a unit's functions share one `.text` with
//!   assembler-resolved intra-unit calls, alignment padding between
//!   functions, and **relaxed** (possibly `rel8`) branches.
//! * **Static symbols**: file-scope `static` items and `static` locals
//!   produce local symbols whose bare names collide across units — the
//!   `kallsyms` ambiguity of §4.1.
//! * **Compiler versioning**: [`Options::cc_version`] perturbs codegen
//!   (register choice and alignment) the way a different gcc release
//!   would, so "wrong compiler version" is a testable run-pre abort.
//!
//! Source trees may also contain `.ks` files — textual K64 assembly — so
//! patches to pure assembly (paper's CVE-2007-4573 example) flow through
//! the same pipeline.
//!
//! # Examples
//!
//! ```
//! use ksplice_lang::{compile_unit, Options};
//!
//! let src = "int answer() { return 42; }";
//! let obj = compile_unit("demo.kc", src, &Options::pre_post()).unwrap();
//! assert!(obj.section_by_name(".text.answer").is_some());
//! ```

mod asmfile;
mod ast;
mod build;
mod drift;
mod cache;
mod codegen;
mod fold;
mod inline;
mod lexer;
mod mutate;
mod parser;
mod pretty;
mod sema;
mod token;
mod visit;

pub use asmfile::assemble_unit;
pub use ast::{
    BinaryOp, Expr, ExprKind, FileItem, Function, Global, HookKind, Init, Stmt, StmtKind,
    StructDef, Type, UnaryOp, Unit,
};
pub use build::{
    build_tree, build_tree_cached, build_tree_image_cached, compile_unit, compile_unit_with,
    parse_headers,
    tree_function_index, tree_inline_report, SourceTree,
};
pub use cache::{options_fingerprint, BuildCache, BuildStats, Fingerprint};
pub use drift::{
    canonicalize_tree, generate_drift, DriftClass, DriftLevel, DriftLog, DriftOp, FnFate,
};
pub use inline::{inline_report, InlineReport};
pub use lexer::lex;
pub use mutate::{apply_mutation, generate_mutant, FuzzRng, MutateError, Mutation, MutatorKind};
pub use parser::parse_unit;
pub use pretty::pretty_unit;
pub use visit::{
    walk_expr_mut, walk_stmts_exprs_mut, walk_unit_blocks_mut, walk_unit_fn_exprs_mut, BlockCx,
};
pub use sema::{check_unit, check_unit_with, HeaderContext, Sema, StructLayout, WORD};
pub use token::{Token, TokenKind};

/// A source-position-tagged compile error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Compilation unit path.
    pub unit: String,
    /// 1-based line number, when known.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.unit, self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

impl CompileError {
    pub(crate) fn new(unit: &str, line: u32, message: impl Into<String>) -> CompileError {
        CompileError {
            unit: unit.to_string(),
            line,
            message: message.into(),
        }
    }
}

/// Optimisation and layout options for a build — the knobs
/// `ksplice-create` and the distributor's original kernel build turn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// 0 = no inlining or folding; 1 = inline small/`inline` functions and
    /// fold constants; 2 = same with a larger inline budget.
    pub opt_level: u8,
    /// Give every function its own `.text.<name>` section and make every
    /// cross-item reference a relocation (`-ffunction-sections`).
    pub function_sections: bool,
    /// Give every datum its own `.data/.bss/.rodata.<name>` section
    /// (`-fdata-sections`).
    pub data_sections: bool,
    /// Simulated compiler release; different versions make different
    /// (equally valid) codegen choices, so objects from different versions
    /// generally do not match byte-for-byte (paper §4.3).
    pub cc_version: u32,
}

impl Options {
    /// How a distributor ships a kernel: monolithic sections, relaxed
    /// branches, full optimisation (paper §6.3: none of the original
    /// binary kernels had `-ffunction-sections` enabled).
    pub fn distro() -> Options {
        Options {
            opt_level: 2,
            function_sections: false,
            data_sections: false,
            cc_version: 1,
        }
    }

    /// How `ksplice-create` builds the pre and post trees: per-item
    /// sections so code makes no layout assumptions (paper §3.2).
    pub fn pre_post() -> Options {
        Options {
            opt_level: 2,
            function_sections: true,
            data_sections: true,
            cc_version: 1,
        }
    }

    /// True when branch relaxation (short `rel8` forms) is enabled: only
    /// in monolithic-text builds — under function-sections the compiler
    /// emits the general `rel32` form throughout (paper §4.3: "small
    /// relative jump instructions can turn into longer jump instructions
    /// when `-ffunction-sections` is enabled").
    pub fn relax_branches(&self) -> bool {
        !self.function_sections && self.opt_level >= 1
    }
}

impl Default for Options {
    fn default() -> Options {
        Options::distro()
    }
}
