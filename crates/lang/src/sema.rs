//! Semantic analysis: struct layouts, name resolution, type checking.
//!
//! `kc` follows kernel C's weak scalar discipline — `int` and pointers
//! convert freely — but structural properties are checked strictly:
//! struct layouts are computed (and by-value recursion rejected), field
//! accesses must name real fields, lvalues are required where addresses
//! or assignments need them, and global initialisers must be
//! link-time constants.

use std::collections::{BTreeMap, HashSet};

use crate::ast::*;
use crate::CompileError;

/// Word size in bytes: every scalar occupies one 64-bit word.
pub const WORD: u64 = 8;

/// A computed struct layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// Total size including tail padding.
    pub size: u64,
    /// Alignment of the whole struct.
    pub align: u64,
    /// `(name, byte offset, type)` per field, in declaration order.
    pub fields: Vec<(String, u64, Type)>,
}

impl StructLayout {
    /// Finds a field by name.
    pub fn field(&self, name: &str) -> Option<(u64, &Type)> {
        self.fields
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, off, ty)| (*off, ty))
    }
}

/// A link-time constant value, the result of const-evaluating a global
/// initialiser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstVal {
    /// A plain integer.
    Int(i64),
    /// The address of a symbol plus a byte offset (needs a relocation).
    SymAddr(String, i64),
    /// A string literal (emitted to `.rodata`, needs a relocation).
    Str(Vec<u8>),
}

/// Semantic summary of a compilation unit, consumed by code generation.
#[derive(Debug, Clone)]
pub struct Sema {
    /// Unit path (for error messages).
    pub unit: String,
    /// All visible struct layouts (headers + unit).
    pub structs: BTreeMap<String, StructLayout>,
    /// Functions defined in this unit, with arity.
    pub functions: BTreeMap<String, usize>,
    /// Globals defined in this unit.
    pub globals: BTreeMap<String, Type>,
    /// Globals declared by headers (typed externals, no storage here).
    pub header_globals: BTreeMap<String, Type>,
    /// Names declared `extern` in this unit.
    pub externs: HashSet<String>,
    /// The subset of `externs` declared with a parameter list (functions).
    pub extern_funcs: HashSet<String>,
}

impl Sema {
    /// The size in bytes of a type.
    ///
    /// # Panics
    ///
    /// Panics on an unknown struct name; [`check_unit`] guarantees all
    /// mentioned structs have layouts.
    pub fn size_of(&self, ty: &Type) -> u64 {
        match ty {
            Type::Int | Type::Ptr(_) => WORD,
            Type::Byte => 1,
            Type::Struct(name) => {
                self.structs
                    .get(name)
                    .unwrap_or_else(|| panic!("unknown struct `{name}` after checking"))
                    .size
            }
            Type::Array(elem, n) => self.size_of(elem) * n,
        }
    }

    /// Looks up a struct layout.
    pub fn layout(&self, name: &str) -> Option<&StructLayout> {
        self.structs.get(name)
    }

    /// Field offset and type within a named struct.
    pub fn field(&self, sname: &str, fname: &str) -> Option<(u64, &Type)> {
        self.structs.get(sname)?.field(fname)
    }

    /// The type of a named global visible in this unit (unit definitions
    /// shadow header declarations).
    pub fn global_type(&self, name: &str) -> Option<&Type> {
        self.globals
            .get(name)
            .or_else(|| self.header_globals.get(name))
    }
}

/// Shared declarations parsed from `include/*.kh` headers.
#[derive(Debug, Clone, Default)]
pub struct HeaderContext {
    pub structs: Vec<StructDef>,
    pub globals: Vec<(String, Type)>,
}

impl HeaderContext {
    /// Builds a header context from parsed header units.
    ///
    /// Headers may contain struct definitions and uninitialised global
    /// declarations (which act as typed externals); anything else is
    /// rejected.
    pub fn from_units(units: &[Unit]) -> Result<HeaderContext, CompileError> {
        let mut ctx = HeaderContext::default();
        for u in units {
            for item in &u.items {
                match item {
                    FileItem::Struct(s) => ctx.structs.push(s.clone()),
                    FileItem::Global(g) => {
                        if g.init.is_some() {
                            return Err(CompileError::new(
                                &u.name,
                                g.line,
                                "headers may not initialise globals",
                            ));
                        }
                        ctx.globals.push((g.name.clone(), g.ty.clone()));
                    }
                    FileItem::Extern { .. } => {}
                    FileItem::Func(f) => {
                        return Err(CompileError::new(
                            &u.name,
                            f.line,
                            "headers may not define functions",
                        ))
                    }
                    FileItem::Hook { line, .. } => {
                        return Err(CompileError::new(
                            &u.name,
                            *line,
                            "headers may not register hooks",
                        ))
                    }
                }
            }
        }
        Ok(ctx)
    }
}

/// Checks a unit and produces its semantic summary.
pub fn check_unit(unit: &Unit) -> Result<Sema, CompileError> {
    check_unit_with(unit, &HeaderContext::default())
}

/// Checks a unit against shared header declarations.
pub fn check_unit_with(unit: &Unit, headers: &HeaderContext) -> Result<Sema, CompileError> {
    let mut checker = Checker::new(unit, headers)?;
    checker.run(unit)?;
    Ok(checker.sema)
}

struct Checker {
    sema: Sema,
}

impl Checker {
    fn new(unit: &Unit, headers: &HeaderContext) -> Result<Checker, CompileError> {
        let uname = unit.name.clone();
        // Collect struct definitions: headers first, then the unit's own.
        let mut defs: BTreeMap<String, StructDef> = BTreeMap::new();
        for s in headers.structs.iter().chain(unit.structs()) {
            if defs.insert(s.name.clone(), s.clone()).is_some() {
                return Err(CompileError::new(
                    &uname,
                    s.line,
                    format!("duplicate definition of struct `{}`", s.name),
                ));
            }
        }
        // Compute layouts with cycle detection.
        let mut structs = BTreeMap::new();
        for name in defs.keys().cloned().collect::<Vec<_>>() {
            let mut visiting = HashSet::new();
            layout_of(&uname, &defs, &mut structs, &mut visiting, &name)?;
        }
        let mut sema = Sema {
            unit: uname.clone(),
            structs,
            functions: BTreeMap::new(),
            globals: BTreeMap::new(),
            header_globals: headers.globals.iter().cloned().collect(),
            externs: HashSet::new(),
            extern_funcs: HashSet::new(),
        };
        // Collect unit-level names.
        for item in &unit.items {
            match item {
                FileItem::Func(f) => {
                    let prev = sema.functions.insert(f.name.clone(), f.params.len());
                    if prev.is_some() {
                        return Err(CompileError::new(
                            &uname,
                            f.line,
                            format!("duplicate function `{}`", f.name),
                        ));
                    }
                }
                FileItem::Global(g) => {
                    let prev = sema.globals.insert(g.name.clone(), g.ty.clone());
                    if prev.is_some() {
                        return Err(CompileError::new(
                            &uname,
                            g.line,
                            format!("duplicate global `{}`", g.name),
                        ));
                    }
                }
                FileItem::Extern { name, is_func, .. } => {
                    sema.externs.insert(name.clone());
                    if *is_func {
                        sema.extern_funcs.insert(name.clone());
                    }
                }
                _ => {}
            }
        }
        Ok(Checker { sema })
    }

    fn run(&mut self, unit: &Unit) -> Result<(), CompileError> {
        for item in &unit.items {
            match item {
                FileItem::Global(g) => self.check_global(g)?,
                FileItem::Func(f) => self.check_function(f)?,
                FileItem::Hook { func, line, .. } => {
                    if !self.sema.functions.contains_key(func) {
                        return Err(
                            self.err(*line, format!("hook references unknown function `{func}`"))
                        );
                    }
                }
                FileItem::Struct(_) | FileItem::Extern { .. } => {}
            }
        }
        Ok(())
    }

    fn err(&self, line: u32, message: impl Into<String>) -> CompileError {
        CompileError::new(&self.sema.unit, line, message)
    }

    fn check_type(&self, ty: &Type, line: u32) -> Result<(), CompileError> {
        match ty {
            Type::Int | Type::Byte => Ok(()),
            Type::Ptr(t) => self.check_type(t, line),
            Type::Struct(name) => {
                if self.sema.structs.contains_key(name) {
                    Ok(())
                } else {
                    Err(self.err(line, format!("unknown struct `{name}`")))
                }
            }
            Type::Array(t, _) => self.check_type(t, line),
        }
    }

    fn check_global(&self, g: &Global) -> Result<(), CompileError> {
        self.check_type(&g.ty, g.line)?;
        // A unit definition may repeat a header declaration only at the
        // same type.
        if let Some(hty) = self.sema.header_globals.get(&g.name) {
            if *hty != g.ty {
                return Err(self.err(
                    g.line,
                    format!("global `{}` conflicts with header declaration", g.name),
                ));
            }
        }
        match &g.init {
            None => Ok(()),
            Some(Init::Scalar(e)) => {
                let byte_array = matches!(&g.ty, Type::Array(elem, _) if **elem == Type::Byte);
                if !g.ty.is_scalar() && !byte_array {
                    return Err(self.err(g.line, "scalar initialiser on aggregate global"));
                }
                let v = self.require_const(e)?;
                if byte_array && !matches!(v, ConstVal::Str(_)) {
                    return Err(self.err(g.line, "byte array initialiser must be a string"));
                }
                Ok(())
            }
            Some(Init::List(items)) => {
                let max = match &g.ty {
                    Type::Array(_, n) => *n,
                    Type::Struct(name) => self.sema.structs[name].fields.len() as u64,
                    _ => return Err(self.err(g.line, "list initialiser on scalar global")),
                };
                if items.len() as u64 > max {
                    return Err(self.err(g.line, "too many initialisers"));
                }
                for e in items {
                    self.require_const(e)?;
                }
                Ok(())
            }
        }
    }

    fn require_const(&self, e: &Expr) -> Result<ConstVal, CompileError> {
        self.const_eval(e)
            .ok_or_else(|| self.err(e.line, "initialiser is not a link-time constant"))
    }

    /// Evaluates a link-time constant expression, if it is one.
    pub(crate) fn const_eval(&self, e: &Expr) -> Option<ConstVal> {
        const_eval_with(e, &|name| {
            if self.sema.functions.contains_key(name)
                || self.sema.global_type(name).is_some()
                || self.sema.externs.contains(name)
            {
                Some(())
            } else {
                None
            }
        })
    }

    fn check_function(&self, f: &Function) -> Result<(), CompileError> {
        let mut scopes = Scopes::new();
        scopes.push();
        for (name, ty) in &f.params {
            self.check_type(ty, f.line)?;
            if !scopes.declare(name, ty.clone()) {
                return Err(self.err(f.line, format!("duplicate parameter `{name}`")));
            }
        }
        self.check_block(&f.body, &mut scopes, 0)?;
        scopes.pop();
        Ok(())
    }

    fn check_block(
        &self,
        body: &[Stmt],
        scopes: &mut Scopes,
        loop_depth: u32,
    ) -> Result<(), CompileError> {
        scopes.push();
        for s in body {
            self.check_stmt(s, scopes, loop_depth)?;
        }
        scopes.pop();
        Ok(())
    }

    fn check_stmt(
        &self,
        s: &Stmt,
        scopes: &mut Scopes,
        loop_depth: u32,
    ) -> Result<(), CompileError> {
        match &s.kind {
            StmtKind::Decl {
                name,
                ty,
                is_static,
                init,
            } => {
                self.check_type(ty, s.line)?;
                if let Some(e) = init {
                    if *is_static {
                        // Static locals need link-time-constant inits.
                        self.require_const(e)?;
                    } else {
                        let t = self.type_of(e, scopes)?;
                        self.require_scalar(&t, e.line)?;
                    }
                    if !ty.is_scalar() {
                        return Err(self.err(s.line, "initialiser on aggregate local"));
                    }
                }
                if !scopes.declare(name, ty.clone()) {
                    return Err(self.err(s.line, format!("duplicate local `{name}`")));
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.type_of(e, scopes)?;
                Ok(())
            }
            StmtKind::Assign { target, value } => {
                if !is_lvalue(target) {
                    return Err(self.err(s.line, "assignment target is not an lvalue"));
                }
                let tt = self.type_of(target, scopes)?;
                self.require_scalar(&tt, target.line)?;
                let vt = self.type_of(value, scopes)?;
                self.require_scalar(&vt, value.line)?;
                Ok(())
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let t = self.type_of(cond, scopes)?;
                self.require_scalar(&t, cond.line)?;
                self.check_block(then_body, scopes, loop_depth)?;
                self.check_block(else_body, scopes, loop_depth)
            }
            StmtKind::While { cond, body } => {
                let t = self.type_of(cond, scopes)?;
                self.require_scalar(&t, cond.line)?;
                self.check_block(body, scopes, loop_depth + 1)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                scopes.push();
                if let Some(i) = init {
                    self.check_stmt(i, scopes, loop_depth)?;
                }
                if let Some(c) = cond {
                    let t = self.type_of(c, scopes)?;
                    self.require_scalar(&t, c.line)?;
                }
                if let Some(st) = step {
                    self.check_stmt(st, scopes, loop_depth)?;
                }
                self.check_block(body, scopes, loop_depth + 1)?;
                scopes.pop();
                Ok(())
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    let t = self.type_of(e, scopes)?;
                    self.require_scalar(&t, e.line)?;
                }
                Ok(())
            }
            StmtKind::Break | StmtKind::Continue => {
                if loop_depth == 0 {
                    Err(self.err(s.line, "break/continue outside a loop"))
                } else {
                    Ok(())
                }
            }
            StmtKind::Block(body) => self.check_block(body, scopes, loop_depth),
        }
    }

    fn require_scalar(&self, t: &Type, line: u32) -> Result<(), CompileError> {
        // Arrays decay to pointers when used as values.
        if t.is_scalar() || matches!(t, Type::Array(..)) {
            Ok(())
        } else {
            Err(self.err(line, format!("expected a scalar value, found {t:?}")))
        }
    }

    /// Types an expression. Weak typing: `int` and pointers interconvert;
    /// `byte` reads widen to `int`.
    fn type_of(&self, e: &Expr, scopes: &Scopes) -> Result<Type, CompileError> {
        match &e.kind {
            ExprKind::Num(_) => Ok(Type::Int),
            ExprKind::Str(_) => Ok(Type::ptr(Type::Byte)),
            ExprKind::Sizeof(ty) => {
                self.check_type(ty, e.line)?;
                Ok(Type::Int)
            }
            ExprKind::Ident(name) => {
                if let Some(t) = scopes.lookup(name) {
                    return Ok(t.clone());
                }
                if let Some(t) = self.sema.global_type(name) {
                    return Ok(t.clone());
                }
                if self.sema.functions.contains_key(name) || self.sema.externs.contains(name) {
                    // Function designators and declared externals are
                    // address-valued.
                    return Ok(Type::Int);
                }
                // Implicit external (C89-style): an int-shaped symbol.
                Ok(Type::Int)
            }
            ExprKind::Unary(op, inner) => {
                let t = self.type_of(inner, scopes)?;
                match op {
                    UnaryOp::Neg | UnaryOp::BitNot | UnaryOp::LNot => {
                        self.require_scalar(&t, inner.line)?;
                        Ok(Type::Int)
                    }
                    UnaryOp::Deref => match t {
                        Type::Ptr(elem) => Ok(*elem),
                        // Deref of a plain int: word pointer semantics.
                        Type::Int => Ok(Type::Int),
                        other => Err(self.err(
                            inner.line,
                            format!("cannot dereference a value of type {other:?}"),
                        )),
                    },
                    UnaryOp::Addr => {
                        if !is_lvalue(inner) {
                            // Taking a function's address is allowed.
                            if let ExprKind::Ident(n) = &inner.kind {
                                if self.sema.functions.contains_key(n)
                                    || self.sema.externs.contains(n)
                                {
                                    return Ok(Type::Int);
                                }
                            }
                            return Err(self.err(inner.line, "cannot take address of rvalue"));
                        }
                        Ok(Type::ptr(t))
                    }
                }
            }
            ExprKind::Binary(op, l, r) => {
                let lt = self.type_of(l, scopes)?;
                let rt = self.type_of(r, scopes)?;
                // Arrays decay to pointers in arithmetic.
                let lt = decay(lt);
                let rt = decay(rt);
                self.require_scalar(&lt, l.line)?;
                self.require_scalar(&rt, r.line)?;
                match op {
                    BinaryOp::Add | BinaryOp::Sub => {
                        if let Type::Ptr(_) = lt {
                            Ok(lt)
                        } else if let Type::Ptr(_) = rt {
                            Ok(rt)
                        } else {
                            Ok(Type::Int)
                        }
                    }
                    _ => Ok(Type::Int),
                }
            }
            ExprKind::Call { callee, args } => {
                // Direct calls: an identifier that is not a local variable.
                if let ExprKind::Ident(name) = &callee.kind {
                    if scopes.lookup(name).is_none() {
                        if let Some(&arity) = self.sema.functions.get(name) {
                            if arity != args.len() {
                                return Err(self.err(
                                    e.line,
                                    format!(
                                        "`{name}` takes {arity} argument(s), {} given",
                                        args.len()
                                    ),
                                ));
                            }
                        }
                        for a in args {
                            let t = self.type_of(a, scopes)?;
                            self.require_scalar(&decay(t), a.line)?;
                        }
                        if args.len() > 6 {
                            return Err(self.err(e.line, "calls support at most 6 arguments"));
                        }
                        return Ok(Type::Int);
                    }
                }
                // Indirect call through a scalar value.
                let ct = self.type_of(callee, scopes)?;
                self.require_scalar(&decay(ct), callee.line)?;
                if args.len() > 6 {
                    return Err(self.err(e.line, "calls support at most 6 arguments"));
                }
                for a in args {
                    let t = self.type_of(a, scopes)?;
                    self.require_scalar(&decay(t), a.line)?;
                }
                Ok(Type::Int)
            }
            ExprKind::Index(base, idx) => {
                let bt = self.type_of(base, scopes)?;
                let it = self.type_of(idx, scopes)?;
                self.require_scalar(&it, idx.line)?;
                match bt {
                    Type::Array(elem, _) | Type::Ptr(elem) => Ok(*elem),
                    Type::Int => Ok(Type::Int),
                    other => {
                        Err(self.err(base.line, format!("cannot index a value of type {other:?}")))
                    }
                }
            }
            ExprKind::Field(base, fname) => {
                let bt = self.type_of(base, scopes)?;
                let Type::Struct(sname) = bt else {
                    return Err(self.err(base.line, "`.` requires a struct value"));
                };
                self.field_type(&sname, fname, e.line)
            }
            ExprKind::PField(base, fname) => {
                let bt = self.type_of(base, scopes)?;
                let Type::Ptr(inner) = decay(bt) else {
                    return Err(self.err(base.line, "`->` requires a struct pointer"));
                };
                let Type::Struct(sname) = *inner else {
                    return Err(self.err(base.line, "`->` requires a struct pointer"));
                };
                self.field_type(&sname, fname, e.line)
            }
        }
    }

    fn field_type(&self, sname: &str, fname: &str, line: u32) -> Result<Type, CompileError> {
        self.sema
            .field(sname, fname)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| self.err(line, format!("struct `{sname}` has no field `{fname}`")))
    }
}

/// Arrays decay to pointers when used as values.
fn decay(t: Type) -> Type {
    match t {
        Type::Array(elem, _) => Type::Ptr(elem),
        other => other,
    }
}

/// Lvalue syntax: names, derefs, indexing and field chains.
pub(crate) fn is_lvalue(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::Ident(_)
            | ExprKind::Unary(UnaryOp::Deref, _)
            | ExprKind::Index(..)
            | ExprKind::Field(..)
            | ExprKind::PField(..)
    )
}

/// Const-evaluates `e`; `known_symbol` reports whether a name is a symbol
/// whose address may be taken at link time.
pub(crate) fn const_eval_with(
    e: &Expr,
    known_symbol: &dyn Fn(&str) -> Option<()>,
) -> Option<ConstVal> {
    match &e.kind {
        ExprKind::Num(v) => Some(ConstVal::Int(*v)),
        ExprKind::Str(s) => Some(ConstVal::Str(s.clone())),
        ExprKind::Ident(name) => {
            // A bare function / global name in a const context denotes its
            // address (function pointers in ops tables).
            known_symbol(name).map(|_| ConstVal::SymAddr(name.clone(), 0))
        }
        ExprKind::Unary(UnaryOp::Addr, inner) => match &inner.kind {
            ExprKind::Ident(name) => known_symbol(name).map(|_| ConstVal::SymAddr(name.clone(), 0)),
            _ => None,
        },
        ExprKind::Unary(op, inner) => {
            let v = const_eval_with(inner, known_symbol)?;
            let ConstVal::Int(v) = v else { return None };
            Some(ConstVal::Int(match op {
                UnaryOp::Neg => v.wrapping_neg(),
                UnaryOp::BitNot => !v,
                UnaryOp::LNot => (v == 0) as i64,
                _ => return None,
            }))
        }
        ExprKind::Binary(op, l, r) => {
            let lv = const_eval_with(l, known_symbol)?;
            let rv = const_eval_with(r, known_symbol)?;
            match (lv, rv) {
                (ConstVal::Int(a), ConstVal::Int(b)) => eval_binop(*op, a, b).map(ConstVal::Int),
                (ConstVal::SymAddr(s, off), ConstVal::Int(b)) => match op {
                    BinaryOp::Add => Some(ConstVal::SymAddr(s, off.wrapping_add(b))),
                    BinaryOp::Sub => Some(ConstVal::SymAddr(s, off.wrapping_sub(b))),
                    _ => None,
                },
                _ => None,
            }
        }
        ExprKind::Sizeof(_) => None, // sizeof needs layout context; folded earlier.
        _ => None,
    }
}

/// Integer constant arithmetic; division by zero is not a constant.
pub(crate) fn eval_binop(op: BinaryOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinaryOp::Add => a.wrapping_add(b),
        BinaryOp::Sub => a.wrapping_sub(b),
        BinaryOp::Mul => a.wrapping_mul(b),
        BinaryOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinaryOp::Mod => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinaryOp::BitAnd => a & b,
        BinaryOp::BitOr => a | b,
        BinaryOp::BitXor => a ^ b,
        BinaryOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinaryOp::Shr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
        BinaryOp::Eq => (a == b) as i64,
        BinaryOp::Ne => (a != b) as i64,
        BinaryOp::Lt => (a < b) as i64,
        BinaryOp::Le => (a <= b) as i64,
        BinaryOp::Gt => (a > b) as i64,
        BinaryOp::Ge => (a >= b) as i64,
        BinaryOp::LAnd => ((a != 0) && (b != 0)) as i64,
        BinaryOp::LOr => ((a != 0) || (b != 0)) as i64,
    })
}

/// Scope stack for local declarations.
struct Scopes {
    stack: Vec<Vec<(String, Type)>>,
}

impl Scopes {
    fn new() -> Scopes {
        Scopes { stack: Vec::new() }
    }

    fn push(&mut self) {
        self.stack.push(Vec::new());
    }

    fn pop(&mut self) {
        self.stack.pop();
    }

    /// Declares a name in the innermost scope; false if already present
    /// *in that scope* (shadowing outer scopes is allowed).
    fn declare(&mut self, name: &str, ty: Type) -> bool {
        let top = self.stack.last_mut().expect("scope stack never empty");
        if top.iter().any(|(n, _)| n == name) {
            return false;
        }
        top.push((name.to_string(), ty));
        true
    }

    fn lookup(&self, name: &str) -> Option<&Type> {
        self.stack
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|(n, _)| n == name).map(|(_, t)| t))
    }
}

/// Computes a struct layout with cycle detection.
fn layout_of(
    unit: &str,
    defs: &BTreeMap<String, StructDef>,
    done: &mut BTreeMap<String, StructLayout>,
    visiting: &mut HashSet<String>,
    name: &str,
) -> Result<StructLayout, CompileError> {
    if let Some(l) = done.get(name) {
        return Ok(l.clone());
    }
    let def = defs
        .get(name)
        .ok_or_else(|| CompileError::new(unit, 0, format!("unknown struct `{name}`")))?;
    if !visiting.insert(name.to_string()) {
        return Err(CompileError::new(
            unit,
            def.line,
            format!("struct `{name}` recursively contains itself by value"),
        ));
    }
    let mut offset = 0u64;
    let mut align = 1u64;
    let mut fields = Vec::new();
    for (fname, fty) in &def.fields {
        let (fsize, falign) = type_size_align(unit, defs, done, visiting, fty)?;
        offset = round_up(offset, falign);
        fields.push((fname.clone(), offset, fty.clone()));
        offset += fsize;
        align = align.max(falign);
    }
    let layout = StructLayout {
        size: round_up(offset.max(1), align),
        align,
        fields,
    };
    visiting.remove(name);
    done.insert(name.to_string(), layout.clone());
    Ok(layout)
}

fn type_size_align(
    unit: &str,
    defs: &BTreeMap<String, StructDef>,
    done: &mut BTreeMap<String, StructLayout>,
    visiting: &mut HashSet<String>,
    ty: &Type,
) -> Result<(u64, u64), CompileError> {
    Ok(match ty {
        Type::Int | Type::Ptr(_) => (WORD, WORD),
        Type::Byte => (1, 1),
        Type::Struct(n) => {
            let l = layout_of(unit, defs, done, visiting, n)?;
            (l.size, l.align)
        }
        Type::Array(elem, n) => {
            let (s, a) = type_size_align(unit, defs, done, visiting, elem)?;
            (s * n, a)
        }
    })
}

pub(crate) fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two() || align == 1);
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn check(src: &str) -> Result<Sema, CompileError> {
        check_unit(&parse_unit("t.kc", src).unwrap())
    }

    #[test]
    fn struct_layout_offsets() {
        let s =
            check("struct inode { int ino; byte tag; int mode; byte name[3]; int uid; };").unwrap();
        let l = s.layout("inode").unwrap();
        assert_eq!(l.field("ino").unwrap().0, 0);
        assert_eq!(l.field("tag").unwrap().0, 8);
        assert_eq!(l.field("mode").unwrap().0, 16); // aligned up from 9
        assert_eq!(l.field("name").unwrap().0, 24);
        assert_eq!(l.field("uid").unwrap().0, 32); // aligned up from 27
        assert_eq!(l.size, 40);
    }

    #[test]
    fn nested_struct_layout() {
        let s = check("struct a { int x; }; struct b { struct a hdr; int y; };").unwrap();
        assert_eq!(s.layout("b").unwrap().size, 16);
        assert_eq!(s.field("b", "y").unwrap().0, 8);
    }

    #[test]
    fn recursive_by_value_rejected() {
        let e = check("struct s { struct s inner; };").unwrap_err();
        assert!(e.message.contains("recursively"));
        // Self-pointers are fine.
        check("struct s { struct s *next; };").unwrap();
    }

    #[test]
    fn field_errors() {
        let e = check("struct s { int a; }; int f(struct s *p) { return p->b; }").unwrap_err();
        assert!(e.message.contains("no field `b`"));
        let e = check("int f(int x) { return x.a; }").unwrap_err();
        assert!(e.message.contains("requires a struct"));
    }

    #[test]
    fn lvalue_enforcement() {
        assert!(check("int f() { 1 = 2; return 0; }").is_err());
        assert!(check("int f() { int x; &(x + 1); return 0; }").is_err());
        check("int f() { int x; x = 2; return x; }").unwrap();
    }

    #[test]
    fn loop_control_scoping() {
        assert!(check("int f() { break; return 0; }").is_err());
        check("int f() { while (1) { break; } return 0; }").unwrap();
    }

    #[test]
    fn call_arity_checked_for_unit_functions() {
        let e = check("int g(int a) { return a; } int f() { return g(1, 2); }").unwrap_err();
        assert!(e.message.contains("takes 1 argument"));
        // External functions have unknown arity: allowed.
        check("int f() { return printk(1, 2, 3); }").unwrap();
    }

    #[test]
    fn const_initialisers() {
        check("int x = 4 * 10 + 2;").unwrap();
        check("int f() { return 0; } int ptr = &f;").unwrap();
        assert!(check("int y = z + 1;").is_err()); // z unknown at link time
        assert!(check("int f(int a) { static int s = a; return s; }").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(check("int x; int x;").is_err());
        assert!(check("int f() { return 0; } int f() { return 1; }").is_err());
        assert!(check("int f() { int a; int a; return 0; }").is_err());
        // Shadowing in an inner scope is fine.
        check("int f() { int a; { int a; a = 1; } return a; }").unwrap();
    }

    #[test]
    fn headers_provide_structs_and_globals() {
        let hdr = parse_unit(
            "include/fs.kh",
            "struct file { int mode; }; struct file *cur;",
        )
        .unwrap();
        let ctx = HeaderContext::from_units(&[hdr]).unwrap();
        let unit = parse_unit("fs/open.kc", "int f() { return cur->mode; }").unwrap();
        check_unit_with(&unit, &ctx).unwrap();
    }

    #[test]
    fn header_rules_enforced() {
        let bad = parse_unit("include/x.kh", "int x = 3;").unwrap();
        assert!(HeaderContext::from_units(&[bad]).is_err());
        let bad = parse_unit("include/x.kh", "int f() { return 0; }").unwrap();
        assert!(HeaderContext::from_units(&[bad]).is_err());
    }

    #[test]
    fn hook_must_reference_defined_function() {
        assert!(check("ksplice_apply(nonexistent);").is_err());
        check("int up() { return 0; } ksplice_apply(up);").unwrap();
    }

    #[test]
    fn pointer_arithmetic_types() {
        check(
            "struct e { int v; };\
             int f(struct e *p, int n) { return (p + n)->v; }",
        )
        .unwrap();
    }
}
